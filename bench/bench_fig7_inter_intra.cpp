// Fig. 7: inter- vs intra-resource spatial models. The inter model mixes
// CPU and RAM series of a box as mutual predictors; the intra models treat
// each resource class separately. Reports signature-set reduction and
// spatial-model fit error for DTW and CBC.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/signature_search.hpp"
#include "core/spatial_model.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 7 — inter- vs intra-resource models",
        "CBC(DTW): inter 66%(26%) signatures / 20%(28%) APE beats "
        "intra-CPU 81%(41%)/21%(26%) and intra-RAM 90%(45%)/23%(31%)");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 120);
    options.num_days = bench::env_int("ATM_TRAIN_DAYS", 2);
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    const core::ResourceScope scopes[] = {core::ResourceScope::kInter,
                                          core::ResourceScope::kIntraCpu,
                                          core::ResourceScope::kIntraRam};
    const char* scope_names[] = {"inter-CPU/RAM", "intra-CPU", "intra-RAM"};
    const char* method_names[] = {"DTW", "CBC"};

    std::vector<double> ratio[2][3];
    std::vector<double> ape[2][3];

    for (int b = 0; b < options.num_boxes; ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        const auto all_series = box.demand_matrix();
        for (int s = 0; s < 3; ++s) {
            const auto indices = core::scope_indices(all_series.size(), scopes[s]);
            std::vector<std::vector<double>> series;
            series.reserve(indices.size());
            for (int idx : indices) {
                series.push_back(all_series[static_cast<std::size_t>(idx)]);
            }
            if (series.empty()) continue;
            for (int m = 0; m < 2; ++m) {
                core::SignatureSearchOptions search;
                search.method = m == 0 ? core::ClusteringMethod::kDtw
                                       : core::ClusteringMethod::kCbc;
                const auto result = core::find_signatures(series, search);
                ratio[m][s].push_back(100.0 * result.signature_ratio(series.size()));
                core::SpatialModel model;
                model.fit(series, result.signatures);
                if (!model.dependent_fit_ape().empty()) {
                    ape[m][s].push_back(100.0 * ts::mean(model.dependent_fit_ape()));
                }
            }
        }
    }

    std::printf("(a) ratio of signature to original series (%%)\n");
    for (int m = 0; m < 2; ++m) {
        for (int s = 0; s < 3; ++s) {
            bench::print_summary_row(
                std::string(method_names[m]) + " " + scope_names[s], ratio[m][s]);
        }
    }
    std::printf("\n(b) spatial-model fit error, mean APE (%%)\n");
    for (int m = 0; m < 2; ++m) {
        for (int s = 0; s < 3; ++s) {
            bench::print_summary_row(
                std::string(method_names[m]) + " " + scope_names[s], ape[m][s]);
        }
    }
    return 0;
}
