// Robustness check: the headline results (Fig. 2/3 characterization and
// the Fig. 8 policy ordering) across independent trace seeds. A claim
// that only holds for one synthetic seed is an artifact; this bench shows
// the spread.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "ticketing/characterization.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Robustness — headline results across trace seeds",
                  "not in the paper; guards against seed-specific artifacts");

    const int boxes = bench::env_int("ATM_BOXES", 120);
    std::printf("%-8s %10s %10s %10s %12s %12s %12s\n", "seed", "cpu box%",
                "rho pair", "tkts/box", "ATM red.%", "maxmin red.%",
                "ATM-maxmin");
    for (std::uint64_t seed : {20150403ULL, 1ULL, 42ULL, 777ULL, 123456ULL}) {
        trace::TraceGenOptions options;
        options.num_boxes = boxes;
        options.num_days = 2;
        options.seed = seed;
        const trace::Trace trace = trace::generate_trace(options);

        const auto tickets = ticketing::characterize_tickets(trace, 60.0);
        const auto corr = ticketing::characterize_correlations(trace);

        std::vector<double> atm_red;
        std::vector<double> maxmin_red;
        for (const trace::BoxTrace& box : trace.boxes) {
            const auto results = core::evaluate_resize_policies_on_actuals(
                box, 96, 1, 0.6, 5.0,
                {resize::ResizePolicy::kAtmGreedy,
                 resize::ResizePolicy::kMaxMinFairness});
            if (results[0].cpu_before > 0) {
                atm_red.push_back(results[0].cpu_reduction_pct());
                maxmin_red.push_back(results[1].cpu_reduction_pct());
            }
        }
        const double atm = ts::mean(atm_red);
        const double maxmin = ts::mean(maxmin_red);
        std::printf("%-8llu %9.1f%% %10.2f %10.1f %11.1f%% %11.1f%% %+11.1f\n",
                    static_cast<unsigned long long>(seed),
                    100.0 * tickets.boxes_with_cpu_tickets,
                    ts::mean(corr.inter_pair), tickets.mean_cpu_tickets_per_box,
                    atm, maxmin, atm - maxmin);
    }
    std::printf("\nexpected: cpu box%% 50-60, rho pair 0.55-0.65, ATM above\n"
                "max-min by a positive margin on every seed.\n");
    return 0;
}
