// Ablation (beyond the paper's fixed eps = 5): ticket reduction and MCKP
// problem size as a function of the discretization factor epsilon.
// Larger epsilon shrinks the candidate sets (cheaper solves) and widens
// the safety margin (rounding demands up), at the cost of allocating more
// capacity than strictly needed.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "resize/reduced_demand.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Ablation — discretization factor epsilon",
                  "paper fixes eps=5 (percent of capacity); sweep 0..20");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 120);
    options.num_days = 2;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    std::printf("%-8s %14s %14s %18s\n", "eps(%)", "CPU red.(%)", "RAM red.(%)",
                "candidates/VM");
    for (double eps : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0}) {
        std::vector<double> cpu_red;
        std::vector<double> ram_red;
        double candidate_sum = 0.0;
        std::size_t candidate_groups = 0;
        for (int b = 0; b < options.num_boxes; ++b) {
            const trace::BoxTrace box = trace::generate_box(options, b);
            const auto results = core::evaluate_resize_policies_on_actuals(
                box, 96, 1, 0.6, eps, {resize::ResizePolicy::kAtmGreedy});
            if (results[0].cpu_before > 0) {
                cpu_red.push_back(results[0].cpu_reduction_pct());
            }
            if (results[0].ram_before > 0) {
                ram_red.push_back(results[0].ram_reduction_pct());
            }
            // Candidate-count proxy for solver size: CPU demand day 1.
            const auto demands = box.demand_matrix();
            for (std::size_t i = 0; i < box.vms.size(); ++i) {
                const auto& row = demands[i * 2];
                const std::vector<double> day(row.end() - 96, row.end());
                const double eps_abs =
                    eps / 100.0 * box.vms[i].cpu_capacity_ghz;
                const auto set =
                    resize::build_reduced_demand_set(day, 0.6, eps_abs);
                candidate_sum += static_cast<double>(set.candidates.size());
                ++candidate_groups;
            }
        }
        std::printf("%-8.0f %10.1f+-%-5.1f %8.1f+-%-5.1f %14.1f\n", eps,
                    ts::mean(cpu_red), ts::stddev(cpu_red), ts::mean(ram_red),
                    ts::stddev(ram_red),
                    candidate_sum / static_cast<double>(candidate_groups));
    }
    return 0;
}
