// Fig. 2: characterization of usage tickets for CPU and RAM per box at
// ticket thresholds 60/70/80%:
//   (a) percentage of boxes with at least one ticket,
//   (b) mean +- std of tickets per box,
//   (c) number of culprit VMs (covering 80% of a box's tickets).

#include <cstdio>

#include "bench_common.hpp"
#include "ticketing/characterization.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 2 — usage-ticket characterization",
        "(a) CPU 57/46/40%, RAM 38/~20/10% of boxes; (b) CPU 39/33/29, "
        "RAM 15/11/9 tickets/box; (c) 1-2 culprit VMs");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 600);
    options.num_days = 1;  // the paper characterizes April 3, 2015
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));
    const trace::Trace trace = trace::generate_trace(options);
    std::printf("population: %zu boxes, %zu VMs\n\n", trace.boxes.size(),
                trace.total_vms());

    std::printf("(a) %% of boxes with >=1 ticket   (b) tickets per box         "
                "(c) culprit VMs\n");
    std::printf("%-10s %8s %8s   %18s %18s   %8s %8s\n", "threshold", "CPU",
                "RAM", "CPU mean+-std", "RAM mean+-std", "CPU", "RAM");
    for (double th : {60.0, 70.0, 80.0}) {
        const auto c = ticketing::characterize_tickets(trace, th);
        std::printf("%-10.0f %7.1f%% %7.1f%%   %9.1f +- %5.1f  %9.1f +- %5.1f   "
                    "%8.2f %8.2f\n",
                    th, 100.0 * c.boxes_with_cpu_tickets,
                    100.0 * c.boxes_with_ram_tickets, c.mean_cpu_tickets_per_box,
                    c.std_cpu_tickets_per_box, c.mean_ram_tickets_per_box,
                    c.std_ram_tickets_per_box, c.mean_cpu_culprits,
                    c.mean_ram_culprits);
    }
    return 0;
}
