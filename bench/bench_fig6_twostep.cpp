// Fig. 6: effectiveness of the two-step signature search.
//   (a) ratio of signature to original series after step 1 (clustering)
//       and after step 2 (VIF + stepwise regression), for DTW and CBC;
//   (b) mean absolute percentage error of the spatial model's fit of the
//       dependent series at each step.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/signature_search.hpp"
#include "core/spatial_model.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 6 — clustering vs stepwise regression",
        "(a) signature ratio: DTW 26%->26%, CBC 82%->66%; (b) APE: DTW "
        "~28%, CBC ~20%, stepwise costs <=1%");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 120);
    options.num_days = bench::env_int("ATM_TRAIN_DAYS", 2);
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    struct Cell {
        std::vector<double> ratio_pct;
        std::vector<double> ape_pct;
    };
    // [method][step], step 0 = clustering only, step 1 = + stepwise.
    Cell cells[2][2];

    for (int b = 0; b < options.num_boxes; ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        const auto series = box.demand_matrix();
        for (int m = 0; m < 2; ++m) {
            for (int step = 0; step < 2; ++step) {
                core::SignatureSearchOptions search;
                search.method = m == 0 ? core::ClusteringMethod::kDtw
                                       : core::ClusteringMethod::kCbc;
                search.apply_stepwise = step == 1;
                const auto result = core::find_signatures(series, search);
                cells[m][step].ratio_pct.push_back(
                    100.0 * result.signature_ratio(series.size()));

                core::SpatialModel model;
                model.fit(series, result.signatures);
                const auto& apes = model.dependent_fit_ape();
                if (!apes.empty()) {
                    cells[m][step].ape_pct.push_back(100.0 * ts::mean(apes));
                }
            }
        }
    }

    const char* method_names[] = {"DTW", "CBC"};
    const char* step_names[] = {"clustering", "+stepwise"};
    std::printf("(a) ratio of signature to original series (%%)\n");
    for (int m = 0; m < 2; ++m) {
        for (int step = 0; step < 2; ++step) {
            bench::print_summary_row(
                std::string(method_names[m]) + " " + step_names[step],
                cells[m][step].ratio_pct);
        }
    }
    std::printf("\n(b) spatial-model fit error, mean APE (%%)\n");
    for (int m = 0; m < 2; ++m) {
        for (int step = 0; step < 2; ++step) {
            bench::print_summary_row(
                std::string(method_names[m]) + " " + step_names[step],
                cells[m][step].ape_pct);
        }
    }
    return 0;
}
