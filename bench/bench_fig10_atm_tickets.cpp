// Fig. 10: ticket reduction of the full ATM pipeline (spatial-temporal
// prediction + resizing) against the max-min fairness and stingy
// baselines, on gap-free boxes: 5 training days, resize the following day,
// count tickets on the actual demands of that day. One fleet run per
// clustering method (ATM_JOBS workers).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 10 — full-ATM ticket reduction (prediction + resizing)",
        "ATM ~60% CPU / ~70% RAM; baselines worse; huge per-box variance; "
        "max-min can increase tickets on some boxes");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 40);
    options.num_days = 6;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    trace::TraceGenOptions gen = options;
    gen.num_boxes = options.num_boxes * 2;
    const trace::Trace t = trace::generate_trace(gen);

    // ATM with both clustering methods + the two baselines (baselines see
    // the same predicted demands ATM does, from the CBC run).
    const char* row_names[] = {"ATM w/ DTW", "ATM w/ CBC", "Stingy",
                               "Max-min fairness"};
    std::vector<double> cpu_reduction[4];
    std::vector<double> ram_reduction[4];

    auto record = [&](std::size_t row, const core::PolicyTickets& ticket) {
        if (ticket.cpu_before > 0) {
            cpu_reduction[row].push_back(ticket.cpu_reduction_pct());
        }
        if (ticket.ram_before > 0) {
            ram_reduction[row].push_back(ticket.ram_reduction_pct());
        }
    };

    std::size_t evaluated = 0;
    for (int m = 0; m < 2; ++m) {
        core::FleetConfig config;
        config.pipeline.search.method = m == 0 ? core::ClusteringMethod::kDtw
                                               : core::ClusteringMethod::kCbc;
        config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
        config.pipeline.train_days = 5;
        config.jobs = bench::env_int("ATM_JOBS", 0);
        config.max_boxes = options.num_boxes;
        config.policies = {
            resize::ResizePolicy::kAtmGreedy,
            resize::ResizePolicy::kStingy,
            resize::ResizePolicy::kMaxMinFairness,
        };
        config.collect_metrics = true;

        const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
        evaluated = fleet.boxes_evaluated();
        for (const core::FleetBoxResult& b : fleet.boxes) {
            if (!b.error.empty()) continue;
            record(static_cast<std::size_t>(m), b.result.policies[0]);
            if (m == 1) {
                record(2, b.result.policies[1]);
                record(3, b.result.policies[2]);
            }
        }
        std::printf("%s: %zu boxes, %d jobs, %.2fs wall\n", row_names[m],
                    fleet.boxes_evaluated(), fleet.jobs, fleet.wall_seconds);
        bench::print_stage_breakdown(fleet.metrics);
    }
    std::printf("evaluated %zu gap-free boxes\n\n", evaluated);

    std::printf("reduction in tickets (%%), boxes with tickets before:\n\nCPU:\n");
    for (std::size_t r = 0; r < 4; ++r) {
        const ts::Summary s = ts::summarize(cpu_reduction[r]);
        std::printf("  %-18s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu)\n",
                    row_names[r], s.mean, s.median, s.stddev, s.count);
    }
    std::printf("RAM:\n");
    for (std::size_t r = 0; r < 4; ++r) {
        const ts::Summary s = ts::summarize(ram_reduction[r]);
        std::printf("  %-18s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu)\n",
                    row_names[r], s.mean, s.median, s.stddev, s.count);
    }
    return 0;
}
