// Fig. 10: ticket reduction of the full ATM pipeline (spatial-temporal
// prediction + resizing) against the max-min fairness and stingy
// baselines, on gap-free boxes: 5 training days, resize the following day,
// count tickets on the actual demands of that day.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 10 — full-ATM ticket reduction (prediction + resizing)",
        "ATM ~60% CPU / ~70% RAM; baselines worse; huge per-box variance; "
        "max-min can increase tickets on some boxes");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 40);
    options.num_days = 6;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    const std::vector<resize::ResizePolicy> policies{
        resize::ResizePolicy::kAtmGreedy,
        resize::ResizePolicy::kStingy,
        resize::ResizePolicy::kMaxMinFairness,
    };

    // ATM with both clustering methods + the two baselines (baselines see
    // the same predicted demands ATM does).
    struct Row {
        const char* name;
        core::ClusteringMethod method;
        std::size_t policy_index;
    };
    const Row rows[] = {
        {"ATM w/ DTW", core::ClusteringMethod::kDtw, 0},
        {"ATM w/ CBC", core::ClusteringMethod::kCbc, 0},
        {"Stingy", core::ClusteringMethod::kCbc, 1},
        {"Max-min fairness", core::ClusteringMethod::kCbc, 2},
    };

    std::vector<double> cpu_reduction[4];
    std::vector<double> ram_reduction[4];

    int evaluated = 0;
    for (int b = 0; b < options.num_boxes * 2 && evaluated < options.num_boxes;
         ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        if (box.has_gaps) continue;
        ++evaluated;
        for (int m = 0; m < 2; ++m) {
            core::PipelineConfig config;
            config.search.method = m == 0 ? core::ClusteringMethod::kDtw
                                          : core::ClusteringMethod::kCbc;
            config.temporal = forecast::TemporalModel::kNeuralNetwork;
            config.train_days = 5;
            const auto result = core::run_pipeline_on_box(
                box, options.windows_per_day, config, policies);
            // ATM row m; baseline rows only from the CBC run (row index 2, 3).
            auto record = [&](std::size_t row, const core::PolicyTickets& t) {
                if (t.cpu_before > 0) {
                    cpu_reduction[row].push_back(t.cpu_reduction_pct());
                }
                if (t.ram_before > 0) {
                    ram_reduction[row].push_back(t.ram_reduction_pct());
                }
            };
            record(static_cast<std::size_t>(m), result.policies[0]);
            if (m == 1) {
                record(2, result.policies[1]);
                record(3, result.policies[2]);
            }
        }
    }
    std::printf("evaluated %d gap-free boxes\n\n", evaluated);

    std::printf("reduction in tickets (%%), boxes with tickets before:\n\nCPU:\n");
    for (std::size_t r = 0; r < 4; ++r) {
        const ts::Summary s = ts::summarize(cpu_reduction[r]);
        std::printf("  %-18s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu)\n",
                    rows[r].name, s.mean, s.median, s.stddev, s.count);
    }
    std::printf("RAM:\n");
    for (std::size_t r = 0; r < 4; ++r) {
        const ts::Summary s = ts::summarize(ram_reduction[r]);
        std::printf("  %-18s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu)\n",
                    rows[r].name, s.mean, s.median, s.stddev, s.count);
    }
    return 0;
}
