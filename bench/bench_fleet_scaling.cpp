// Fleet-executor scaling study: wall-clock of the full ATM pipeline over
// a box population at increasing worker counts, against the legacy
// serial loop (run_pipeline_on_box per box, one thread, no pool).
//
// Prints per-jobs wall time, throughput (boxes/sec), speedup over
// serial, and verifies that the fleet aggregates are bit-identical at
// every worker count — the executor's determinism contract. The same
// rows are written as a JSON perf-trajectory artifact (schema
// atm.bench.v1) to ATM_BENCH_JSON (default BENCH_fleet.json) so CI and
// before/after comparisons can diff machine-readable numbers.
//
// The largest multi-worker row whose worker count fits the machine is
// additionally *asserted*: its speedup over jobs=1 must clear a floor
// scaled to the hardware (>=8 threads: 2.0x, >=4: 1.6x, >=2: 1.1x,
// single-core: 0.75x — i.e. scheduling overhead must stay small even
// where no parallel speedup is physically possible). A violation exits
// nonzero so CI catches scaling regressions. ATM_BENCH_MIN_SPEEDUP
// overrides the floor (set 0 to disable).
//
// ATM_PAPER_SCALE=1 appends the paper-scale section: a 6000-box /
// ~80K-VM / 7-day fleet (the population of the DSN'16 datacenter) timed
// at jobs=1 and jobs=8, with peak RSS and the scheduler's arena
// counters, written under "paper" in the JSON artifact.
//
// Knobs: ATM_BOXES (default 24), ATM_MAX_JOBS (default
// max(8, hardware concurrency) so the sweep exercises oversubscription
// even on small CI runners), ATM_JOBS (explicit comma-separated sweep,
// e.g. ATM_JOBS=1,3,12 — overrides ATM_MAX_JOBS; jobs=1 is always
// prepended as the determinism reference), ATM_SEED, ATM_BENCH_JSON,
// ATM_PAPER_SCALE, ATM_PAPER_BOXES, ATM_BENCH_MIN_SPEEDUP.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/json.hpp"
#include "tracegen/generator.hpp"

namespace {

/// Jobs sweep: ATM_JOBS comma list if set, else 1 and doubling worker
/// counts up to `max_jobs` (plus max_jobs itself when not a power of
/// two). jobs=1 always leads so later rows have a serial reference.
std::vector<int> sweep_job_counts(int max_jobs) {
    std::vector<int> job_counts;
    if (const char* spec = std::getenv("ATM_JOBS")) {
        std::string token;
        for (const char* c = spec;; ++c) {
            if (*c != '\0' && *c != ',') {
                token.push_back(*c);
                continue;
            }
            if (!token.empty()) {
                const int jobs = std::atoi(token.c_str());
                if (jobs > 0 &&
                    std::find(job_counts.begin(), job_counts.end(), jobs) ==
                        job_counts.end()) {
                    job_counts.push_back(jobs);
                }
                token.clear();
            }
            if (*c == '\0') break;
        }
    } else {
        for (int j = 1; j <= max_jobs; j *= 2) job_counts.push_back(j);
        if (max_jobs > 1 && job_counts.back() != max_jobs) {
            job_counts.push_back(max_jobs);
        }
    }
    if (job_counts.empty() || job_counts.front() != 1) {
        job_counts.erase(
            std::remove(job_counts.begin(), job_counts.end(), 1),
            job_counts.end());
        job_counts.insert(job_counts.begin(), 1);
    }
    return job_counts;
}

/// Peak resident set size of the process so far, in bytes (0 where
/// getrusage is unavailable). Monotone over the process lifetime, so
/// report it after the largest run.
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
    return 0;
#endif
}

/// Minimum acceptable speedup of the largest machine-fitting parallel
/// row over jobs=1, scaled to what the hardware can deliver.
double min_speedup_floor(unsigned hw) {
    if (const char* env = std::getenv("ATM_BENCH_MIN_SPEEDUP")) {
        return std::atof(env);
    }
    if (hw >= 8) return 2.0;
    if (hw >= 4) return 1.6;
    if (hw >= 2) return 1.1;
    // Single hardware thread: no speedup is possible; require only that
    // the sharded scheduler's overhead stays bounded.
    return 0.75;
}

atm::obs::json::Value exec_stats_json(const atm::core::FleetExecStats& stats) {
    namespace json = atm::obs::json;
    json::Value v = json::Value::make_object();
    v.set("workers", json::Value::of(static_cast<std::int64_t>(stats.workers)));
    v.set("shard_size",
          json::Value::of(static_cast<std::uint64_t>(stats.shard_size)));
    v.set("arena_bytes_reserved", json::Value::of(stats.arena_bytes_reserved));
    v.set("arena_high_water", json::Value::of(stats.arena_high_water));
    v.set("arena_allocations", json::Value::of(stats.arena_allocations));
    v.set("arena_slabs", json::Value::of(stats.arena_slabs));
    return v;
}

}  // namespace

int main() {
    using namespace atm;
    bench::banner("Fleet executor — wall-clock scaling vs worker count",
                  "embarrassingly parallel per-box batch; target >=2x at 4 cores");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 24);
    options.num_days = 6;
    options.gappy_box_fraction = 0.0;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kDtw;
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.pipeline.train_days = 5;
    config.collect_metrics = true;

    const unsigned hw = std::thread::hardware_concurrency();
    // Default past the physical core count: the executor's contract is
    // determinism at ANY worker count, and oversubscribed rows are the
    // cheap way to shake out schedule-dependent bugs on small runners.
    const int max_jobs = bench::env_int(
        "ATM_MAX_JOBS", std::max(8, hw == 0 ? 1 : static_cast<int>(hw)));

    std::printf("%zu boxes, %u hardware threads, simd=%s\n\n", t.boxes.size(),
                hw, simd::to_string(simd::active_path()));
    std::printf("%6s %10s %11s %9s %s\n", "jobs", "wall(s)", "boxes/sec",
                "speedup", "identical");

    double serial_wall = 0.0;
    core::FleetResult reference;
    const std::vector<int> job_counts = sweep_job_counts(max_jobs);

    // Speedup of the largest parallel row that fits the machine (jobs <=
    // hardware threads) — the row the scaling assertion judges.
    double asserted_speedup = -1.0;
    int asserted_jobs = 0;

    obs::json::Value runs = obs::json::Value::make_array();
    for (const int jobs : job_counts) {
        config.jobs = jobs;
        const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
        bool identical = true;
        if (jobs == 1) {
            serial_wall = fleet.wall_seconds;
            reference = fleet;
        } else {
            for (std::size_t b = 0; identical && b < fleet.boxes.size(); ++b) {
                const auto& got = fleet.boxes[b].result;
                const auto& want = reference.boxes[b].result;
                identical = got.ape_all == want.ape_all &&
                            got.ape_peak == want.ape_peak &&
                            got.policies.size() == want.policies.size();
                for (std::size_t p = 0; identical && p < got.policies.size(); ++p) {
                    identical = got.policies[p].cpu_after == want.policies[p].cpu_after &&
                                got.policies[p].ram_after == want.policies[p].ram_after;
                }
            }
        }
        const double speedup =
            serial_wall > 0.0 ? serial_wall / fleet.wall_seconds : 1.0;
        const double boxes_per_sec =
            fleet.wall_seconds > 0.0
                ? static_cast<double>(t.boxes.size()) / fleet.wall_seconds
                : 0.0;
        if (jobs > 1 &&
            (hw < 2 || jobs <= static_cast<int>(hw)) && jobs >= asserted_jobs) {
            asserted_jobs = jobs;
            asserted_speedup = speedup;
        }
        std::printf("%6d %10.2f %11.2f %8.2fx %s\n", jobs, fleet.wall_seconds,
                    boxes_per_sec, speedup,
                    jobs == 1 ? "(reference)" : (identical ? "yes" : "NO"));
        if (!identical) {
            std::fprintf(stderr,
                         "FAIL: jobs=%d results differ from the jobs=1 "
                         "reference\n",
                         jobs);
            return 1;
        }

        obs::json::Value run = obs::json::Value::make_object();
        run.set("jobs", obs::json::Value::of(static_cast<std::int64_t>(jobs)));
        run.set("wall_seconds", obs::json::Value::of(fleet.wall_seconds));
        run.set("boxes_per_sec", obs::json::Value::of(boxes_per_sec));
        run.set("speedup", obs::json::Value::of(speedup));
        run.set("identical", obs::json::Value::of(identical));
        run.set("exec_stats", exec_stats_json(fleet.exec_stats));
        runs.array.push_back(std::move(run));
    }

    std::printf("\n");
    bench::print_stage_breakdown(reference.metrics);

    obs::json::Value doc = obs::json::Value::make_object();
    doc.set("schema", obs::json::Value::of(bench::kBenchSchema));
    doc.set("bench", obs::json::Value::of("fleet_scaling"));
    doc.set("boxes",
            obs::json::Value::of(static_cast<std::uint64_t>(t.boxes.size())));
    doc.set("days",
            obs::json::Value::of(static_cast<std::int64_t>(options.num_days)));
    doc.set("seed", obs::json::Value::of(
                        static_cast<std::uint64_t>(options.seed)));
    doc.set("hardware_threads",
            obs::json::Value::of(static_cast<std::uint64_t>(hw)));
    // Dispatched SIMD kernel path: rows from different ISAs are not
    // comparable wall-clock-for-wall-clock, so stamp the provenance.
    doc.set("simd", obs::json::Value::of(reference.simd_path));
    doc.set("runs", std::move(runs));
    obs::json::Value counters = obs::json::Value::make_object();
    for (const char* name :
         {"cluster.dtw.pairs", "cluster.dtw.cells", "linalg.vif.iterations",
          "forecast.mlp.epochs", "resize.mckp.greedy_iterations"}) {
        counters.set(name,
                     obs::json::Value::of(reference.metrics.counter(name)));
    }
    doc.set("counters", std::move(counters));

    // ---- paper-scale section (opt-in: it is minutes of work) -----------
    if (bench::env_int("ATM_PAPER_SCALE", 0) != 0) {
        trace::TraceGenOptions paper_options;
        paper_options.num_boxes = bench::env_int("ATM_PAPER_BOXES", 6000);
        paper_options.num_days = 7;
        // ~13.3 VMs/box x 6000 boxes ~= the paper's ~80K-VM datacenter.
        paper_options.mean_vms_per_box = 13.3;
        paper_options.gappy_box_fraction = 0.0;
        paper_options.seed = options.seed;
        std::printf("\npaper scale: generating %d boxes x %d days...\n",
                    paper_options.num_boxes, paper_options.num_days);
        const trace::Trace paper_trace = trace::generate_trace(paper_options);
        std::printf("paper scale: %zu boxes / %zu VMs\n", paper_trace.boxes.size(),
                    paper_trace.total_vms());

        core::FleetConfig paper_config = config;
        paper_config.collect_metrics = false;  // pure wall-clock run

        obs::json::Value paper_runs = obs::json::Value::make_array();
        std::printf("%6s %10s %11s %14s %16s\n", "jobs", "wall(s)",
                    "boxes/sec", "peak RSS(MB)", "arena high(MB)");
        std::int64_t paper_cpu_after = -1;
        for (const int jobs : {1, 8}) {
            paper_config.jobs = jobs;
            const core::FleetResult fleet =
                core::run_pipeline_on_fleet(paper_trace, paper_config);
            const double boxes_per_sec =
                fleet.wall_seconds > 0.0
                    ? static_cast<double>(paper_trace.boxes.size()) /
                          fleet.wall_seconds
                    : 0.0;
            const std::uint64_t rss = peak_rss_bytes();
            std::printf("%6d %10.2f %11.2f %14.1f %16.2f\n", jobs,
                        fleet.wall_seconds, boxes_per_sec,
                        static_cast<double>(rss) / (1024.0 * 1024.0),
                        static_cast<double>(fleet.exec_stats.arena_high_water) /
                            (1024.0 * 1024.0));
            // Cheap cross-jobs identity probe on the aggregate (the small
            // sweep above does the exhaustive per-box comparison).
            const std::int64_t cpu_after =
                fleet.totals.empty() ? 0 : fleet.totals[0].cpu_after;
            if (paper_cpu_after < 0) {
                paper_cpu_after = cpu_after;
            } else if (cpu_after != paper_cpu_after) {
                std::fprintf(stderr,
                             "FAIL: paper-scale jobs=%d aggregate differs\n",
                             jobs);
                return 1;
            }
            obs::json::Value run = obs::json::Value::make_object();
            run.set("jobs",
                    obs::json::Value::of(static_cast<std::int64_t>(jobs)));
            run.set("wall_seconds", obs::json::Value::of(fleet.wall_seconds));
            run.set("boxes_per_sec", obs::json::Value::of(boxes_per_sec));
            run.set("peak_rss_bytes", obs::json::Value::of(rss));
            run.set("exec_stats", exec_stats_json(fleet.exec_stats));
            paper_runs.array.push_back(std::move(run));
        }
        obs::json::Value paper = obs::json::Value::make_object();
        paper.set("boxes", obs::json::Value::of(static_cast<std::uint64_t>(
                               paper_trace.boxes.size())));
        paper.set("vms", obs::json::Value::of(static_cast<std::uint64_t>(
                             paper_trace.total_vms())));
        paper.set("days", obs::json::Value::of(static_cast<std::int64_t>(
                              paper_options.num_days)));
        paper.set("runs", std::move(paper_runs));
        doc.set("paper", std::move(paper));
    }

    const char* out_env = std::getenv("ATM_BENCH_JSON");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_fleet.json";
    bench::write_json_file(out_path, doc);
    std::printf("\nwrote %s\n", out_path.c_str());

    // ---- scaling assertion ---------------------------------------------
    const double floor = min_speedup_floor(hw);
    if (asserted_jobs > 0 && floor > 0.0) {
        std::printf("scaling assertion: jobs=%d speedup %.2fx vs floor %.2fx "
                    "(%u hardware threads)\n",
                    asserted_jobs, asserted_speedup, floor, hw);
        if (asserted_speedup < floor) {
            std::fprintf(stderr,
                         "FAIL: jobs=%d speedup %.2fx is below the %.2fx "
                         "floor for this machine\n",
                         asserted_jobs, asserted_speedup, floor);
            return 1;
        }
    }
    return 0;
}
