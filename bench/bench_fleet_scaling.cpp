// Fleet-executor scaling study: wall-clock of the full ATM pipeline over
// a box population at increasing worker counts, against the legacy
// serial loop (run_pipeline_on_box per box, one thread, no pool).
//
// Prints per-jobs wall time, throughput (boxes/sec), speedup over
// serial, and verifies that the fleet aggregates are bit-identical at
// every worker count — the executor's determinism contract. The same
// rows are written as a JSON perf-trajectory artifact (schema
// atm.bench.v1) to ATM_BENCH_JSON (default BENCH_fleet.json) so CI and
// before/after comparisons can diff machine-readable numbers.
//
// Knobs: ATM_BOXES (default 24), ATM_MAX_JOBS (default
// max(8, hardware concurrency) so the sweep exercises oversubscription
// even on small CI runners), ATM_JOBS (explicit comma-separated sweep,
// e.g. ATM_JOBS=1,3,12 — overrides ATM_MAX_JOBS; jobs=1 is always
// prepended as the determinism reference), ATM_SEED, ATM_BENCH_JSON.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/json.hpp"
#include "tracegen/generator.hpp"

namespace {

/// Jobs sweep: ATM_JOBS comma list if set, else 1 and doubling worker
/// counts up to `max_jobs` (plus max_jobs itself when not a power of
/// two). jobs=1 always leads so later rows have a serial reference.
std::vector<int> sweep_job_counts(int max_jobs) {
    std::vector<int> job_counts;
    if (const char* spec = std::getenv("ATM_JOBS")) {
        std::string token;
        for (const char* c = spec;; ++c) {
            if (*c != '\0' && *c != ',') {
                token.push_back(*c);
                continue;
            }
            if (!token.empty()) {
                const int jobs = std::atoi(token.c_str());
                if (jobs > 0 &&
                    std::find(job_counts.begin(), job_counts.end(), jobs) ==
                        job_counts.end()) {
                    job_counts.push_back(jobs);
                }
                token.clear();
            }
            if (*c == '\0') break;
        }
    } else {
        for (int j = 1; j <= max_jobs; j *= 2) job_counts.push_back(j);
        if (max_jobs > 1 && job_counts.back() != max_jobs) {
            job_counts.push_back(max_jobs);
        }
    }
    if (job_counts.empty() || job_counts.front() != 1) {
        job_counts.erase(
            std::remove(job_counts.begin(), job_counts.end(), 1),
            job_counts.end());
        job_counts.insert(job_counts.begin(), 1);
    }
    return job_counts;
}

}  // namespace

int main() {
    using namespace atm;
    bench::banner("Fleet executor — wall-clock scaling vs worker count",
                  "embarrassingly parallel per-box batch; target >=2x at 4 cores");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 24);
    options.num_days = 6;
    options.gappy_box_fraction = 0.0;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kDtw;
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.pipeline.train_days = 5;
    config.collect_metrics = true;

    const unsigned hw = std::thread::hardware_concurrency();
    // Default past the physical core count: the executor's contract is
    // determinism at ANY worker count, and oversubscribed rows are the
    // cheap way to shake out schedule-dependent bugs on small runners.
    const int max_jobs = bench::env_int(
        "ATM_MAX_JOBS", std::max(8, hw == 0 ? 1 : static_cast<int>(hw)));

    std::printf("%zu boxes, %u hardware threads, simd=%s\n\n", t.boxes.size(),
                hw, simd::to_string(simd::active_path()));
    std::printf("%6s %10s %11s %9s %s\n", "jobs", "wall(s)", "boxes/sec",
                "speedup", "identical");

    double serial_wall = 0.0;
    core::FleetResult reference;
    const std::vector<int> job_counts = sweep_job_counts(max_jobs);

    obs::json::Value runs = obs::json::Value::make_array();
    for (const int jobs : job_counts) {
        config.jobs = jobs;
        const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
        bool identical = true;
        if (jobs == 1) {
            serial_wall = fleet.wall_seconds;
            reference = fleet;
        } else {
            for (std::size_t b = 0; identical && b < fleet.boxes.size(); ++b) {
                const auto& got = fleet.boxes[b].result;
                const auto& want = reference.boxes[b].result;
                identical = got.ape_all == want.ape_all &&
                            got.ape_peak == want.ape_peak &&
                            got.policies.size() == want.policies.size();
                for (std::size_t p = 0; identical && p < got.policies.size(); ++p) {
                    identical = got.policies[p].cpu_after == want.policies[p].cpu_after &&
                                got.policies[p].ram_after == want.policies[p].ram_after;
                }
            }
        }
        const double speedup =
            serial_wall > 0.0 ? serial_wall / fleet.wall_seconds : 1.0;
        const double boxes_per_sec =
            fleet.wall_seconds > 0.0
                ? static_cast<double>(t.boxes.size()) / fleet.wall_seconds
                : 0.0;
        std::printf("%6d %10.2f %11.2f %8.2fx %s\n", jobs, fleet.wall_seconds,
                    boxes_per_sec, speedup,
                    jobs == 1 ? "(reference)" : (identical ? "yes" : "NO"));

        obs::json::Value run = obs::json::Value::make_object();
        run.set("jobs", obs::json::Value::of(static_cast<std::int64_t>(jobs)));
        run.set("wall_seconds", obs::json::Value::of(fleet.wall_seconds));
        run.set("boxes_per_sec", obs::json::Value::of(boxes_per_sec));
        run.set("speedup", obs::json::Value::of(speedup));
        run.set("identical", obs::json::Value::of(identical));
        runs.array.push_back(std::move(run));
    }

    std::printf("\n");
    bench::print_stage_breakdown(reference.metrics);

    obs::json::Value doc = obs::json::Value::make_object();
    doc.set("schema", obs::json::Value::of(bench::kBenchSchema));
    doc.set("bench", obs::json::Value::of("fleet_scaling"));
    doc.set("boxes",
            obs::json::Value::of(static_cast<std::uint64_t>(t.boxes.size())));
    doc.set("days",
            obs::json::Value::of(static_cast<std::int64_t>(options.num_days)));
    doc.set("seed", obs::json::Value::of(
                        static_cast<std::uint64_t>(options.seed)));
    // Dispatched SIMD kernel path: rows from different ISAs are not
    // comparable wall-clock-for-wall-clock, so stamp the provenance.
    doc.set("simd", obs::json::Value::of(reference.simd_path));
    doc.set("runs", std::move(runs));
    obs::json::Value counters = obs::json::Value::make_object();
    for (const char* name :
         {"cluster.dtw.pairs", "cluster.dtw.cells", "linalg.vif.iterations",
          "forecast.mlp.epochs", "resize.mckp.greedy_iterations"}) {
        counters.set(name,
                     obs::json::Value::of(reference.metrics.counter(name)));
    }
    doc.set("counters", std::move(counters));

    const char* out_env = std::getenv("ATM_BENCH_JSON");
    const std::string out_path =
        out_env != nullptr ? out_env : "BENCH_fleet.json";
    bench::write_json_file(out_path, doc);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
