// Fleet-executor scaling study: wall-clock of the full ATM pipeline over
// a box population at increasing worker counts, against the legacy
// serial loop (run_pipeline_on_box per box, one thread, no pool).
//
// Prints per-jobs wall time, speedup over serial, and verifies that the
// fleet aggregates are bit-identical at every worker count — the
// executor's determinism contract.
//
// Knobs: ATM_BOXES (default 24), ATM_MAX_JOBS (default hardware
// concurrency), ATM_SEED.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Fleet executor — wall-clock scaling vs worker count",
                  "embarrassingly parallel per-box batch; target >=2x at 4 cores");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 24);
    options.num_days = 6;
    options.gappy_box_fraction = 0.0;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kDtw;
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.pipeline.train_days = 5;
    config.collect_metrics = true;

    const unsigned hw = std::thread::hardware_concurrency();
    const int max_jobs = bench::env_int("ATM_MAX_JOBS",
                                        hw == 0 ? 1 : static_cast<int>(hw));

    std::printf("%zu boxes, %u hardware threads\n\n", t.boxes.size(),
                hw);
    std::printf("%6s %10s %9s %s\n", "jobs", "wall(s)", "speedup", "identical");

    double serial_wall = 0.0;
    core::FleetResult reference;
    std::vector<int> job_counts{1};
    for (int j = 2; j <= max_jobs; j *= 2) job_counts.push_back(j);
    if (job_counts.back() != max_jobs && max_jobs > 1) {
        job_counts.push_back(max_jobs);
    }

    for (const int jobs : job_counts) {
        config.jobs = jobs;
        const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
        bool identical = true;
        if (jobs == 1) {
            serial_wall = fleet.wall_seconds;
            reference = fleet;
        } else {
            for (std::size_t b = 0; identical && b < fleet.boxes.size(); ++b) {
                const auto& got = fleet.boxes[b].result;
                const auto& want = reference.boxes[b].result;
                identical = got.ape_all == want.ape_all &&
                            got.ape_peak == want.ape_peak &&
                            got.policies.size() == want.policies.size();
                for (std::size_t p = 0; identical && p < got.policies.size(); ++p) {
                    identical = got.policies[p].cpu_after == want.policies[p].cpu_after &&
                                got.policies[p].ram_after == want.policies[p].ram_after;
                }
            }
        }
        std::printf("%6d %10.2f %8.2fx %s\n", jobs, fleet.wall_seconds,
                    serial_wall > 0.0 ? serial_wall / fleet.wall_seconds : 1.0,
                    jobs == 1 ? "(reference)" : (identical ? "yes" : "NO"));
    }

    std::printf("\n");
    bench::print_stage_breakdown(reference.metrics);
    return 0;
}
