// Fig. 9: CDF of the full-ATM prediction error on gap-free production
// boxes — spatial models (DTW or CBC signature search) combined with the
// neural-network temporal model, trained on 5 days and predicting the
// following day. Reports per-box mean APE over all windows ("All") and
// over windows whose actual usage exceeds the 60% threshold ("Peak").
// Each clustering method is one fleet run (ATM_JOBS workers).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 9 — full-ATM prediction-error CDFs (NN temporal model)",
        "mean APE: DTW 31% all / 20% peak; CBC 23% all / 17% peak");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 40);
    options.num_days = 6;  // 5 training days + 1 evaluation day
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    // Generate a double-size population and let the fleet driver keep the
    // first ATM_BOXES gap-free boxes (the paper evaluates gap-free only).
    trace::TraceGenOptions gen = options;
    gen.num_boxes = options.num_boxes * 2;
    const trace::Trace t = trace::generate_trace(gen);

    std::vector<double> ape_all[2];
    std::vector<double> ape_peak[2];
    const char* names[] = {"ATM w/ DTW", "ATM w/ CBC"};

    std::size_t evaluated = 0;
    for (int m = 0; m < 2; ++m) {
        core::FleetConfig config;
        config.pipeline.search.method = m == 0 ? core::ClusteringMethod::kDtw
                                               : core::ClusteringMethod::kCbc;
        config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
        config.pipeline.train_days = 5;
        config.jobs = bench::env_int("ATM_JOBS", 0);
        config.max_boxes = options.num_boxes;
        config.policies.clear();  // accuracy study: no resizing
        config.collect_metrics = true;

        const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
        evaluated = fleet.boxes_evaluated();
        for (const core::FleetBoxResult& b : fleet.boxes) {
            if (!b.error.empty()) continue;
            ape_all[m].push_back(100.0 * b.result.ape_all);
            if (b.result.ape_peak > 0.0) {
                ape_peak[m].push_back(100.0 * b.result.ape_peak);
            }
        }
        std::printf("%s: %zu boxes, %d jobs, %.2fs wall\n", names[m],
                    fleet.boxes_evaluated(), fleet.jobs, fleet.wall_seconds);
        bench::print_stage_breakdown(fleet.metrics);
    }
    std::printf("evaluated %zu gap-free boxes\n\n", evaluated);

    for (int m = 0; m < 2; ++m) {
        std::printf("%s: mean APE all=%.1f%%, peak=%.1f%%\n", names[m],
                    ts::mean(ape_all[m]), ts::mean(ape_peak[m]));
    }
    std::printf("\n");
    for (int m = 0; m < 2; ++m) {
        bench::print_cdf(std::string(names[m]) + " - All", ape_all[m]);
        bench::print_cdf(std::string(names[m]) + " - Peak", ape_peak[m]);
    }
    return 0;
}
