// Fig. 9: CDF of the full-ATM prediction error on gap-free production
// boxes — spatial models (DTW or CBC signature search) combined with the
// neural-network temporal model, trained on 5 days and predicting the
// following day. Reports per-box mean APE over all windows ("All") and
// over windows whose actual usage exceeds the 60% threshold ("Peak").

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 9 — full-ATM prediction-error CDFs (NN temporal model)",
        "mean APE: DTW 31% all / 20% peak; CBC 23% all / 17% peak");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 40);
    options.num_days = 6;  // 5 training days + 1 evaluation day
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    std::vector<double> ape_all[2];
    std::vector<double> ape_peak[2];
    const char* names[] = {"ATM w/ DTW", "ATM w/ CBC"};

    int evaluated = 0;
    for (int b = 0; b < options.num_boxes * 2 && evaluated < options.num_boxes;
         ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        if (box.has_gaps) continue;  // the paper keeps only gap-free boxes
        ++evaluated;
        for (int m = 0; m < 2; ++m) {
            core::PipelineConfig config;
            config.search.method = m == 0 ? core::ClusteringMethod::kDtw
                                          : core::ClusteringMethod::kCbc;
            config.temporal = forecast::TemporalModel::kNeuralNetwork;
            config.train_days = 5;
            const auto result =
                core::run_pipeline_on_box(box, options.windows_per_day, config, {});
            ape_all[m].push_back(100.0 * result.ape_all);
            if (result.ape_peak > 0.0) {
                ape_peak[m].push_back(100.0 * result.ape_peak);
            }
        }
    }
    std::printf("evaluated %d gap-free boxes\n\n", evaluated);

    for (int m = 0; m < 2; ++m) {
        std::printf("%s: mean APE all=%.1f%%, peak=%.1f%%\n", names[m],
                    ts::mean(ape_all[m]), ts::mean(ape_peak[m]));
    }
    std::printf("\n");
    for (int m = 0; m < 2; ++m) {
        bench::print_cdf(std::string(names[m]) + " - All", ape_all[m]);
        bench::print_cdf(std::string(names[m]) + " - Peak", ape_peak[m]);
    }
    return 0;
}
