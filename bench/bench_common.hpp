#pragma once

// Shared helpers for the figure-regeneration benches. Every bench accepts
// scale knobs via environment variables (ATM_BOXES, ATM_SEED, ...) so a
// paper-scale run (6000 boxes) is one env var away from the fast default.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/io.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "timeseries/cdf.hpp"
#include "timeseries/stats.hpp"

namespace atm::bench {

/// Schema tag stamped on every bench JSON artifact (BENCH_*.json).
inline constexpr const char* kBenchSchema = "atm.bench.v1";

/// Serializes `doc` to `path` (pretty-printed, trailing newline) so bench
/// runs leave a machine-readable perf trajectory next to the binary.
/// Written atomically (temp + rename), so an interrupted bench never
/// leaves a truncated artifact. Throws std::runtime_error on failure.
inline void write_json_file(const std::string& path,
                            const obs::json::Value& doc) {
    exec::write_file_atomic(path, obs::json::serialize(doc, 2) + '\n');
}

/// Integer knob from the environment with a default.
inline int env_int(const char* name, int fallback) {
    const char* value = std::getenv(name);
    return value == nullptr ? fallback : std::atoi(value);
}

inline double env_double(const char* name, double fallback) {
    const char* value = std::getenv(name);
    return value == nullptr ? fallback : std::atof(value);
}

/// Prints a figure banner with the paper reference values for comparison.
inline void banner(const char* figure, const char* paper_says) {
    std::printf("==============================================================\n");
    std::printf("%s\n", figure);
    std::printf("paper: %s\n", paper_says);
    std::printf("==============================================================\n");
}

/// Prints a box-plot style summary row (the paper's Fig. 6/7 box plots).
inline void print_summary_row(const std::string& label,
                              std::span<const double> values) {
    const ts::Summary s = ts::summarize(values);
    std::printf("%-28s p25=%7.2f median=%7.2f p75=%7.2f mean=%7.2f "
                "min=%7.2f max=%7.2f (n=%zu)\n",
                label.c_str(), s.p25, s.median, s.p75, s.mean, s.min, s.max,
                s.count);
}

/// Prints an empirical CDF as (x, F) rows, `points` rows.
inline void print_cdf(const std::string& label, std::span<const double> values,
                      int points = 11) {
    const ts::EmpiricalCdf cdf(values);
    std::printf("%s CDF (n=%zu):\n", label.c_str(), cdf.sample_count());
    for (const auto& p : cdf.grid(points)) {
        std::printf("  x=%8.3f  F=%.3f\n", p.x, p.f);
    }
}

/// Prints the per-stage timer breakdown of a metrics snapshot (every
/// timer named `stage.*`), sorted by total time, plus the headline work
/// counters. Feed it FleetResult::metrics from a collect_metrics run.
inline void print_stage_breakdown(const obs::MetricsSnapshot& metrics) {
    std::vector<std::pair<std::string, obs::TimerStat>> stages;
    double total = 0.0;
    for (const auto& [name, stat] : metrics.timers) {
        if (name.rfind("stage.", 0) != 0) continue;
        stages.emplace_back(name, stat);
        total += stat.total_seconds();
    }
    if (stages.empty()) {
        std::printf("(no stage metrics collected)\n");
        return;
    }
    std::sort(stages.begin(), stages.end(), [](const auto& a, const auto& b) {
        return a.second.total_ns > b.second.total_ns;
    });
    std::printf("stage breakdown (CPU-side wall per stage, all boxes):\n");
    for (const auto& [name, stat] : stages) {
        std::printf("  %-20s %8.3fs %5.1f%%  (n=%llu)\n", name.c_str() + 6,
                    stat.total_seconds(),
                    total > 0.0 ? 100.0 * stat.total_seconds() / total : 0.0,
                    static_cast<unsigned long long>(stat.count));
    }
    const auto counter = [&metrics](const char* name) {
        return static_cast<unsigned long long>(metrics.counter(name));
    };
    std::printf("  dtw cells=%llu (cache hit/miss %llu/%llu)  "
                "vif iters=%llu  mlp epochs=%llu  mckp iters=%llu\n",
                counter("cluster.dtw.cells"), counter("cluster.dtw.cache_hits"),
                counter("cluster.dtw.cache_misses"),
                counter("linalg.vif.iterations"), counter("forecast.mlp.epochs"),
                counter("resize.mckp.greedy_iterations"));
}

}  // namespace atm::bench
