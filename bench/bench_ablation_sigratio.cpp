// Ablation: spatial-model fit error as a function of the (forced)
// signature-set size. The paper's search picks the size automatically
// (silhouette / correlation threshold); this sweeps it directly by
// cutting the DTW dendrogram at fixed k, showing the accuracy-vs-cost
// frontier that motivates the signature-set concept.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cluster/dtw.hpp"
#include "cluster/hierarchical.hpp"
#include "core/spatial_model.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Ablation — forced signature-set size",
                  "not in the paper; accuracy-vs-size frontier of the "
                  "spatial model");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 60);
    options.num_days = 2;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    std::printf("%-16s %14s %12s\n", "forced ratio", "APE mean(%)",
                "boxes used");
    for (double ratio : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
        std::vector<double> apes;
        for (int b = 0; b < options.num_boxes; ++b) {
            const trace::BoxTrace box = trace::generate_box(options, b);
            const auto series = box.demand_matrix();
            const int n = static_cast<int>(series.size());
            const int k = std::max(1, static_cast<int>(ratio * n + 0.5));
            const auto dist = cluster::dtw_distance_matrix(series);
            const auto labels = cluster::hierarchical_cluster(dist, k);
            const auto medoids = cluster::cluster_medoids(dist, labels);
            if (static_cast<int>(medoids.size()) >= n) continue;  // no dependents
            core::SpatialModel model;
            model.fit(series, medoids);
            if (!model.dependent_fit_ape().empty()) {
                apes.push_back(100.0 * ts::mean(model.dependent_fit_ape()));
            }
        }
        std::printf("%-16.2f %14.1f %12zu\n", ratio, ts::mean(apes),
                    apes.size());
    }
    return 0;
}
