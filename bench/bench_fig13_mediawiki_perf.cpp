// Fig. 13: mean response time and throughput of wiki-one and wiki-two,
// original vs ATM-resized.
//
// Known deviation (documented in EXPERIMENTS.md): the paper measured a 7%
// *increase* in wiki-two's response time after resizing; in our open-loop
// fluid model removing the Apache saturation lowers response time instead.
// Throughput direction and wiki-one's RT improvement at constant
// throughput reproduce.

#include <cstdio>

#include "bench_common.hpp"
#include "mediawiki/simulator.hpp"

int main() {
    using namespace atm;
    bench::banner("Fig. 13 — MediaWiki performance, original vs resized",
                  "wiki-one: RT 582->454 ms (-22%), TPUT flat; wiki-two: "
                  "TPUT 14->17 rps (+21%), RT 915->979 ms (+7%)");

    const wiki::TestbedSpec spec = wiki::make_mediawiki_testbed();
    const wiki::SimResult original = wiki::simulate(spec);
    const wiki::SimResult resized =
        wiki::simulate(wiki::resize_with_atm(spec, original));

    for (std::size_t w = 0; w < spec.wikis.size(); ++w) {
        const auto& before = original.wikis[w];
        const auto& after = resized.wikis[w];
        std::printf("%s:\n", spec.wikis[w].name.c_str());
        std::printf("  mean RT    %7.0f ms -> %7.0f ms  (%+.1f%%)\n",
                    1000.0 * before.mean_response_time_s,
                    1000.0 * after.mean_response_time_s,
                    100.0 * (after.mean_response_time_s /
                                 before.mean_response_time_s -
                             1.0));
        std::printf("  mean TPUT  %7.1f rps -> %6.1f rps  (%+.1f%%)\n",
                    before.mean_throughput_rps, after.mean_throughput_rps,
                    100.0 * (after.mean_throughput_rps /
                                 before.mean_throughput_rps -
                             1.0));
    }
    return 0;
}
