// Fig. 1: CPU usage time series of 4 VMs co-located on one box, showing
// spatial dependency — usage of several VMs moves synchronously and their
// 60%-threshold tickets trigger together.
//
// Prints one day of 15-minute samples for the first four VMs of a box
// whose driver-following VMs are strongly correlated, plus the pairwise
// correlations and the windows where tickets coincide.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ticketing/tickets.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Fig. 1 — motivating example: spatial dependency",
                  "VMs 1, 3, 4 move synchronously; tickets trigger together "
                  "around hour 19");

    trace::TraceGenOptions options;
    options.num_days = 1;
    options.num_boxes = bench::env_int("ATM_BOXES", 200);
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    // Pick the box with >= 4 VMs whose top CPU-CPU correlation pair count
    // is maximal — the clearest Fig.-1-style exhibit in the population.
    trace::BoxTrace best;
    int best_strong_pairs = -1;
    for (int b = 0; b < options.num_boxes; ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        if (box.vms.size() < 4 || box.has_gaps) continue;
        int strong = 0;
        for (std::size_t i = 0; i < box.vms.size(); ++i) {
            for (std::size_t j = i + 1; j < box.vms.size(); ++j) {
                if (ts::pearson(box.vms[i].cpu_usage_pct.view(),
                                box.vms[j].cpu_usage_pct.view()) > 0.7) {
                    ++strong;
                }
            }
        }
        if (strong > best_strong_pairs) {
            best_strong_pairs = strong;
            best = box;
        }
    }

    std::printf("selected %s (%zu VMs, %d strongly-correlated CPU pairs)\n\n",
                best.name.c_str(), best.vms.size(), best_strong_pairs);

    const std::size_t vms = std::min<std::size_t>(4, best.vms.size());
    std::printf("%-6s", "hour");
    for (std::size_t i = 0; i < vms; ++i) std::printf("  VM%zu(%%)", i + 1);
    std::printf("  tickets@60%%\n");
    for (int w = 0; w < 96; w += 2) {  // every 30 minutes for readability
        std::printf("%5.1f ", w / 4.0);
        int tickets = 0;
        for (std::size_t i = 0; i < vms; ++i) {
            const double u = best.vms[i].cpu_usage_pct[static_cast<std::size_t>(w)];
            std::printf("  %6.1f", u);
            if (u > 60.0) ++tickets;
        }
        std::printf("  %s\n", std::string(static_cast<std::size_t>(tickets), '*').c_str());
    }

    std::printf("\npairwise CPU correlations:\n");
    for (std::size_t i = 0; i < vms; ++i) {
        for (std::size_t j = i + 1; j < vms; ++j) {
            std::printf("  rho(VM%zu, VM%zu) = %.2f\n", i + 1, j + 1,
                        ts::pearson(best.vms[i].cpu_usage_pct.view(),
                                    best.vms[j].cpu_usage_pct.view()));
        }
    }
    return 0;
}
