// Fig. 12: CPU utilization of every VM on nodes 2-4 of the MediaWiki
// testbed, with and without ATM resizing, against the 60% ticket
// threshold. The paper's headline: resizing pulls all VMs below the
// threshold and tickets collapse from 49 to 1.

#include <cstdio>

#include "bench_common.hpp"
#include "mediawiki/simulator.hpp"
#include "timeseries/stats.hpp"

int main() {
    using namespace atm;
    bench::banner("Fig. 12 — MediaWiki CPU utilization, original vs resized",
                  "tickets drop 49 -> 1; all VM usage below 60% after resize");

    const wiki::TestbedSpec spec = wiki::make_mediawiki_testbed();
    const wiki::SimResult original = wiki::simulate(spec);
    const wiki::TestbedSpec resized_spec = wiki::resize_with_atm(spec, original);
    const wiki::SimResult resized = wiki::simulate(resized_spec);

    std::printf("tickets: original=%d  resized=%d\n\n", original.total_tickets,
                resized.total_tickets);

    for (int node = 2; node <= 4; ++node) {
        std::printf("--- node%d ---\n", node);
        for (std::size_t i = 0; i < spec.vms.size(); ++i) {
            if (spec.vms[i].node != node) continue;
            std::printf("%-14s limit %.2f -> %.2f cores, tickets %d -> %d\n",
                        spec.vms[i].name.c_str(), spec.vms[i].cpu_limit_cores,
                        resized_spec.vms[i].cpu_limit_cores,
                        original.vm_tickets[i], resized.vm_tickets[i]);
            // Usage over time, one sample per 30 simulated minutes.
            const auto& orig = original.vm_cpu_usage_pct[i];
            const auto& rsz = resized.vm_cpu_usage_pct[i];
            std::printf("  hour:      ");
            for (std::size_t t = 0; t < orig.size(); t += 30) {
                std::printf("%5.1f", static_cast<double>(t) / 60.0);
            }
            std::printf("\n  original:  ");
            for (std::size_t t = 0; t < orig.size(); t += 30) {
                std::printf("%5.0f", orig[t]);
            }
            std::printf("\n  resized:   ");
            for (std::size_t t = 0; t < rsz.size(); t += 30) {
                std::printf("%5.0f", rsz[t]);
            }
            std::printf("\n  threshold:  60 (usage in %% of cgroup limit)\n");
        }
    }
    return 0;
}
