// Ablation: the full resize-on-actuals study at ticket thresholds
// 60/70/80% (the paper characterizes all three thresholds in Fig. 2 but
// fixes 60% for the resizing evaluation).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Ablation — ticket threshold",
                  "paper evaluates resizing at threshold 60% only");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 120);
    options.num_days = 2;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    const std::vector<resize::ResizePolicy> policies{
        resize::ResizePolicy::kAtmGreedy,
        resize::ResizePolicy::kMaxMinFairness,
    };

    std::printf("%-10s %22s %22s\n", "threshold", "ATM cpu/ram red.(%)",
                "max-min cpu/ram red.(%)");
    for (double alpha : {0.6, 0.7, 0.8}) {
        std::vector<double> cpu_red[2];
        std::vector<double> ram_red[2];
        for (int b = 0; b < options.num_boxes; ++b) {
            const trace::BoxTrace box = trace::generate_box(options, b);
            const auto results = core::evaluate_resize_policies_on_actuals(
                box, 96, 1, alpha, 5.0, policies);
            for (std::size_t p = 0; p < policies.size(); ++p) {
                if (results[p].cpu_before > 0) {
                    cpu_red[p].push_back(results[p].cpu_reduction_pct());
                }
                if (results[p].ram_before > 0) {
                    ram_red[p].push_back(results[p].ram_reduction_pct());
                }
            }
        }
        std::printf("%-10.0f %10.1f / %-9.1f %10.1f / %-9.1f\n", alpha * 100,
                    ts::mean(cpu_red[0]), ts::mean(ram_red[0]),
                    ts::mean(cpu_red[1]), ts::mean(ram_red[1]));
    }
    return 0;
}
