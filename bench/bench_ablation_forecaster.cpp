// Ablation: which temporal model predicts the signature series — the
// paper's neural network vs AR(p) vs seasonal-naive. The paper stresses
// that any temporal model plugs into ATM; this quantifies the trade-off
// on the same boxes (prediction APE and downstream ticket reduction).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Ablation — temporal model for signature series",
                  "paper uses a neural network (PRACTISE); any model plugs in");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 25);
    options.num_days = 6;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    const forecast::TemporalModel models[] = {
        forecast::TemporalModel::kNeuralNetwork,
        forecast::TemporalModel::kAutoregressive,
        forecast::TemporalModel::kHoltWinters,
        forecast::TemporalModel::kSeasonalNaive,
        forecast::TemporalModel::kEnsemble,
    };

    std::printf("%-16s %12s %12s %14s %14s\n", "model", "APE all(%)",
                "APE peak(%)", "CPU red.(%)", "RAM red.(%)");
    for (const auto model : models) {
        std::vector<double> ape_all;
        std::vector<double> ape_peak;
        std::vector<double> cpu_red;
        std::vector<double> ram_red;
        int evaluated = 0;
        for (int b = 0; b < options.num_boxes * 2 && evaluated < options.num_boxes;
             ++b) {
            const trace::BoxTrace box = trace::generate_box(options, b);
            if (box.has_gaps) continue;
            ++evaluated;
            core::PipelineConfig config;
            config.search.method = core::ClusteringMethod::kCbc;
            config.temporal = model;
            config.train_days = 5;
            const auto result = core::run_pipeline_on_box(
                box, 96, config, {resize::ResizePolicy::kAtmGreedy});
            ape_all.push_back(100.0 * result.ape_all);
            if (result.ape_peak > 0.0) ape_peak.push_back(100.0 * result.ape_peak);
            if (result.policies[0].cpu_before > 0) {
                cpu_red.push_back(result.policies[0].cpu_reduction_pct());
            }
            if (result.policies[0].ram_before > 0) {
                ram_red.push_back(result.policies[0].ram_reduction_pct());
            }
        }
        std::printf("%-16s %12.1f %12.1f %14.1f %14.1f\n",
                    forecast::to_string(model).c_str(), ts::mean(ape_all),
                    ts::mean(ape_peak), ts::mean(cpu_red), ts::mean(ram_red));
    }
    return 0;
}
