// Fig. 5: distribution of the number of clusters found by DTW vs CBC over
// the box population, split by the resource type (CPU/RAM) of the
// resulting signature series.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/signature_search.hpp"
#include "tracegen/generator.hpp"

namespace {

struct Bucket {
    int lo;
    int hi;
    const char* label;
};
constexpr Bucket kBuckets[] = {{2, 3, "2-3"},     {4, 5, "4-5"},
                               {6, 7, "6-7"},     {8, 9, "8-9"},
                               {10, 15, "10-15"}, {16, 31, "16-31"},
                               {32, 64, "32-64"}};

}  // namespace

int main() {
    using namespace atm;
    bench::banner("Fig. 5 — cluster-count distribution, DTW vs CBC",
                  "DTW: ~70% of boxes in 2-3 clusters, signature types "
                  "~50/50 CPU/RAM; CBC: more clusters, mostly CPU signatures");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 120);
    options.num_days = bench::env_int("ATM_TRAIN_DAYS", 2);
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    struct MethodStats {
        std::vector<int> bucket_count = std::vector<int>(std::size(kBuckets), 0);
        int cpu_signatures = 0;
        int ram_signatures = 0;
    };
    MethodStats dtw_stats;
    MethodStats cbc_stats;

    for (int b = 0; b < options.num_boxes; ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        const auto series = box.demand_matrix();
        for (auto method : {core::ClusteringMethod::kDtw, core::ClusteringMethod::kCbc}) {
            core::SignatureSearchOptions search;
            search.method = method;
            search.apply_stepwise = false;  // Fig. 5 shows step-1 clustering
            const auto result = core::find_signatures(series, search);
            MethodStats& stats =
                method == core::ClusteringMethod::kDtw ? dtw_stats : cbc_stats;
            for (std::size_t k = 0; k < std::size(kBuckets); ++k) {
                if (result.num_clusters >= kBuckets[k].lo &&
                    result.num_clusters <= kBuckets[k].hi) {
                    ++stats.bucket_count[k];
                    break;
                }
            }
            for (int sig : result.signatures) {
                if (sig % ts::kNumResources == 0) {
                    ++stats.cpu_signatures;
                } else {
                    ++stats.ram_signatures;
                }
            }
        }
    }

    std::printf("%-8s %12s %12s\n", "clusters", "DTW boxes%", "CBC boxes%");
    for (std::size_t k = 0; k < std::size(kBuckets); ++k) {
        std::printf("%-8s %11.1f%% %11.1f%%\n", kBuckets[k].label,
                    100.0 * dtw_stats.bucket_count[k] / options.num_boxes,
                    100.0 * cbc_stats.bucket_count[k] / options.num_boxes);
    }
    auto pct_cpu = [](const MethodStats& s) {
        const int total = s.cpu_signatures + s.ram_signatures;
        return total == 0 ? 0.0 : 100.0 * s.cpu_signatures / total;
    };
    std::printf("\nsignature composition: DTW %.1f%% CPU / %.1f%% RAM;  "
                "CBC %.1f%% CPU / %.1f%% RAM\n",
                pct_cpu(dtw_stats), 100.0 - pct_cpu(dtw_stats),
                pct_cpu(cbc_stats), 100.0 - pct_cpu(cbc_stats));
    return 0;
}
