// Extension experiment: Dominant Resource Fairness (the multi-resource
// fair allocator the paper cites as reference [17]) against per-resource
// max-min and ATM on actual demands. DRF couples the two resources; ATM
// treats them separately but ticket-optimally.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "resize/drf.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Extension — DRF vs max-min vs ATM (actual demands)",
                  "not in the paper; DRF is its reference [17]");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 150);
    options.num_days = 2;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    std::vector<double> atm_red;
    std::vector<double> maxmin_red;
    std::vector<double> drf_red;

    for (int b = 0; b < options.num_boxes; ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        const auto demands = box.demand_matrix();
        const std::size_t m = box.vms.size();

        // Day-1 slices for both resources.
        resize::MultiResourceInput multi;
        multi.alpha = 0.6;
        multi.cpu_capacity = box.cpu_capacity_ghz;
        multi.ram_capacity = box.ram_capacity_gb;
        int before = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const auto& cpu_row = demands[i * 2];
            const auto& ram_row = demands[i * 2 + 1];
            multi.cpu_demands.emplace_back(cpu_row.end() - 96, cpu_row.end());
            multi.ram_demands.emplace_back(ram_row.end() - 96, ram_row.end());
            before += ticketing::count_demand_tickets(
                multi.cpu_demands.back(), box.vms[i].cpu_capacity_ghz, 0.6);
            before += ticketing::count_demand_tickets(
                multi.ram_demands.back(), box.vms[i].ram_capacity_gb, 0.6);
        }
        if (before == 0) continue;

        const auto policy_results = core::evaluate_resize_policies_on_actuals(
            box, 96, 1, 0.6, 5.0,
            {resize::ResizePolicy::kAtmGreedy,
             resize::ResizePolicy::kMaxMinFairness});
        const auto drf = resize::drf_resize(multi);
        const int drf_after = drf.cpu_tickets + drf.ram_tickets;

        auto reduction = [before](int after) {
            return 100.0 * static_cast<double>(before - after) / before;
        };
        atm_red.push_back(reduction(policy_results[0].cpu_after +
                                    policy_results[0].ram_after));
        maxmin_red.push_back(reduction(policy_results[1].cpu_after +
                                       policy_results[1].ram_after));
        drf_red.push_back(reduction(drf_after));
    }

    std::printf("combined CPU+RAM ticket reduction over ticketing boxes:\n");
    bench::print_summary_row("ATM greedy", atm_red);
    bench::print_summary_row("max-min (per resource)", maxmin_red);
    bench::print_summary_row("DRF (multi-resource)", drf_red);
    return 0;
}
