// Extension experiment (the paper's stated future work): online dynamic
// management — walk-forward retraining and resizing every day of the
// trace week. Reports per-day prediction error and ticket reduction.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/rolling.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Extension — rolling (online) ATM over the trace week",
                  "not in the paper (Section VII future work)");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 30);
    options.num_days = 7;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    core::PipelineConfig config;
    config.search.method = core::ClusteringMethod::kCbc;
    config.temporal = forecast::TemporalModel::kAutoregressive;
    config.train_days = 5;

    // Per evaluated day (5, 6): aggregate over boxes.
    struct DayAgg {
        std::vector<double> ape;
        long before = 0;
        long after = 0;
    };
    std::vector<DayAgg> days(2);

    int evaluated = 0;
    for (int b = 0; b < options.num_boxes * 2 && evaluated < options.num_boxes;
         ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        if (box.has_gaps) continue;
        ++evaluated;
        const core::RollingResult result =
            core::run_rolling_pipeline(box, 96, 7, config);
        for (std::size_t d = 0; d < result.days.size() && d < days.size(); ++d) {
            days[d].ape.push_back(100.0 * result.days[d].ape_all);
            days[d].before +=
                result.days[d].cpu_before + result.days[d].ram_before;
            days[d].after += result.days[d].cpu_after + result.days[d].ram_after;
        }
    }
    std::printf("evaluated %d gap-free boxes\n\n", evaluated);
    std::printf("%-6s %12s %14s %14s %12s\n", "day", "APE mean(%)",
                "tickets before", "tickets after", "reduction");
    for (std::size_t d = 0; d < days.size(); ++d) {
        const double red =
            days[d].before > 0
                ? 100.0 * static_cast<double>(days[d].before - days[d].after) /
                      static_cast<double>(days[d].before)
                : 0.0;
        std::printf("%-6zu %12.1f %14ld %14ld %11.1f%%\n", d + 5,
                    ts::mean(days[d].ape), days[d].before, days[d].after, red);
    }
    return 0;
}
