// Fig. 8: ticket reduction with *perfect* demand knowledge — the resizing
// algorithms see the actual demands of the evaluation day (no prediction).
// Compares ATM with and without epsilon-discretization against the
// max-min fairness and stingy baselines, for CPU and RAM. Runs on the
// fleet executor (ATM_JOBS workers, default hardware concurrency).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 8 — resizing on actual demands (no prediction)",
        "ATM ~95%/96% (CPU/RAM); max-min ~70%; stingy 54%/15%; "
        "max-min has a large negative tail");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 400);
    options.num_days = 2;  // day 0 provides the lower-bound history
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.pipeline.epsilon_pct = bench::env_double("ATM_EPSILON_PCT", 5.0);
    config.pipeline.alpha = 0.6;
    config.jobs = bench::env_int("ATM_JOBS", 0);
    config.skip_gappy_boxes = false;  // the perfect-knowledge study keeps all
    config.policies = {
        resize::ResizePolicy::kAtmGreedyNoDiscretization,
        resize::ResizePolicy::kAtmGreedy,
        resize::ResizePolicy::kStingy,
        resize::ResizePolicy::kMaxMinFairness,
    };
    const char* names[] = {"ATM w/o discretizing", "ATM w/ discretizing",
                           "Stingy", "Max-min fairness"};

    const core::FleetResult fleet = core::evaluate_resize_on_fleet(t, /*day=*/1, config);

    std::vector<double> cpu_reduction[4];
    std::vector<double> ram_reduction[4];
    for (const core::FleetBoxResult& b : fleet.boxes) {
        if (!b.error.empty()) continue;
        for (std::size_t p = 0; p < config.policies.size(); ++p) {
            const core::PolicyTickets& r = b.result.policies[p];
            if (r.cpu_before > 0) cpu_reduction[p].push_back(r.cpu_reduction_pct());
            if (r.ram_before > 0) ram_reduction[p].push_back(r.ram_reduction_pct());
        }
    }

    std::printf("evaluated %zu boxes with %d jobs in %.2fs wall\n\n",
                fleet.boxes_evaluated(), fleet.jobs, fleet.wall_seconds);
    std::printf("reduction in tickets (%%), over boxes that had tickets:\n\n");
    std::printf("CPU:\n");
    for (std::size_t p = 0; p < config.policies.size(); ++p) {
        const ts::Summary s = ts::summarize(cpu_reduction[p]);
        std::printf("  %-22s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu boxes)\n",
                    names[p], s.mean, s.median, s.stddev, s.count);
    }
    std::printf("RAM:\n");
    for (std::size_t p = 0; p < config.policies.size(); ++p) {
        const ts::Summary s = ts::summarize(ram_reduction[p]);
        std::printf("  %-22s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu boxes)\n",
                    names[p], s.mean, s.median, s.stddev, s.count);
    }
    return 0;
}
