// Fig. 8: ticket reduction with *perfect* demand knowledge — the resizing
// algorithms see the actual demands of the evaluation day (no prediction).
// Compares ATM with and without epsilon-discretization against the
// max-min fairness and stingy baselines, for CPU and RAM.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner(
        "Fig. 8 — resizing on actual demands (no prediction)",
        "ATM ~95%/96% (CPU/RAM); max-min ~70%; stingy 54%/15%; "
        "max-min has a large negative tail");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 400);
    options.num_days = 2;  // day 0 provides the lower-bound history
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));
    const double epsilon_pct = bench::env_double("ATM_EPSILON_PCT", 5.0);

    const std::vector<resize::ResizePolicy> policies{
        resize::ResizePolicy::kAtmGreedyNoDiscretization,
        resize::ResizePolicy::kAtmGreedy,
        resize::ResizePolicy::kStingy,
        resize::ResizePolicy::kMaxMinFairness,
    };
    const char* names[] = {"ATM w/o discretizing", "ATM w/ discretizing",
                           "Stingy", "Max-min fairness"};

    std::vector<double> cpu_reduction[4];
    std::vector<double> ram_reduction[4];

    for (int b = 0; b < options.num_boxes; ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        const auto results = core::evaluate_resize_policies_on_actuals(
            box, options.windows_per_day, /*day=*/1, /*alpha=*/0.6, epsilon_pct,
            policies);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            if (results[p].cpu_before > 0) {
                cpu_reduction[p].push_back(results[p].cpu_reduction_pct());
            }
            if (results[p].ram_before > 0) {
                ram_reduction[p].push_back(results[p].ram_reduction_pct());
            }
        }
    }

    std::printf("reduction in tickets (%%), over boxes that had tickets:\n\n");
    std::printf("CPU:\n");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const ts::Summary s = ts::summarize(cpu_reduction[p]);
        std::printf("  %-22s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu boxes)\n",
                    names[p], s.mean, s.median, s.stddev, s.count);
    }
    std::printf("RAM:\n");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const ts::Summary s = ts::summarize(ram_reduction[p]);
        std::printf("  %-22s mean=%7.1f%%  median=%7.1f%%  std=%6.1f  (n=%zu boxes)\n",
                    names[p], s.mean, s.median, s.stddev, s.count);
    }
    return 0;
}
