// Ablation: Sakoe-Chiba banding for DTW. The paper uses unconstrained
// DTW; banding bounds the warp and cuts the O(len^2) cost. Measures the
// effect on the chosen cluster counts and the resulting spatial-model fit.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/signature_search.hpp"
#include "core/spatial_model.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Ablation — DTW Sakoe-Chiba band width",
                  "paper uses unconstrained DTW (band = inf)");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 50);
    options.num_days = 2;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    std::printf("%-10s %10s %12s %14s %12s\n", "band", "clusters", "sig ratio%",
                "fit APE(%)", "time (ms)");
    for (int band : {-1, 48, 16, 8, 4, 2}) {
        std::vector<double> clusters;
        std::vector<double> ratios;
        std::vector<double> apes;
        const auto start = std::chrono::steady_clock::now();
        for (int b = 0; b < options.num_boxes; ++b) {
            const trace::BoxTrace box = trace::generate_box(options, b);
            const auto series = box.demand_matrix();
            core::SignatureSearchOptions search;
            search.method = core::ClusteringMethod::kDtw;
            search.dtw_band = band;
            const auto result = core::find_signatures(series, search);
            clusters.push_back(result.num_clusters);
            ratios.push_back(100.0 * result.signature_ratio(series.size()));
            core::SpatialModel model;
            model.fit(series, result.signatures);
            if (!model.dependent_fit_ape().empty()) {
                apes.push_back(100.0 * ts::mean(model.dependent_fit_ape()));
            }
        }
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
        char label[16];
        std::snprintf(label, sizeof(label), band < 0 ? "inf" : "%d", band);
        std::printf("%-10s %10.1f %12.1f %14.1f %12lld\n", label,
                    ts::mean(clusters), ts::mean(ratios), ts::mean(apes),
                    static_cast<long long>(elapsed));
    }
    return 0;
}
