// Microbenchmarks (google-benchmark) backing the paper's "low
// computational overhead" claim: per-operation cost of the building
// blocks — DTW distance, hierarchical clustering, CBC, OLS fit, the MCKP
// greedy, and MLP training — at per-box problem sizes, plus the fleet
// executor (per-worker-count pipeline throughput and the parallel DTW
// matrix).

#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cluster/cbc.hpp"
#include "cluster/dtw.hpp"
#include "cluster/hierarchical.hpp"
#include "core/fleet.hpp"
#include "exec/thread_pool.hpp"
#include "forecast/mlp_forecaster.hpp"
#include "forecast/nn.hpp"
#include "forecast/seasonal_naive.hpp"
#include "linalg/ols.hpp"
#include "linalg/ridge.hpp"
#include "linalg/simd/simd.hpp"
#include "resize/policies.hpp"
#include "tracegen/generator.hpp"

namespace {

using namespace atm;

std::vector<std::vector<double>> box_series(int days) {
    trace::TraceGenOptions options;
    options.num_days = days;
    options.gappy_box_fraction = 0.0;
    return trace::generate_box(options, 3).demand_matrix();
}

void BM_DtwDistance(benchmark::State& state) {
    const auto series = box_series(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cluster::dtw_distance(series[0], series[2]));
    }
}
BENCHMARK(BM_DtwDistance)->Arg(1)->Arg(2)->Arg(5);

void BM_DtwDistanceBanded(benchmark::State& state) {
    const auto series = box_series(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cluster::dtw_distance(series[0], series[2], /*band=*/8));
    }
}
BENCHMARK(BM_DtwDistanceBanded)->Arg(1)->Arg(2)->Arg(5);

/// Warm-workspace DTW pair: the steady-state cost inside the pairwise
/// matrix loop — no per-call DP-row allocations, band-window-only resets.
void BM_DtwDistanceWorkspace(benchmark::State& state) {
    const auto series = box_series(static_cast<int>(state.range(0)));
    cluster::DtwWorkspace workspace;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cluster::dtw_distance(
            series[0], series[2], /*band=*/8, workspace));
    }
}
BENCHMARK(BM_DtwDistanceWorkspace)->Arg(1)->Arg(2)->Arg(5);

/// Full pairwise matrix under a Sakoe-Chiba band — the headline kernel
/// for the banded signature search. Arg = days of history per series.
void BM_DtwMatrixBanded(benchmark::State& state) {
    const auto series = box_series(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cluster::dtw_distance_matrix(series, /*band=*/8).size());
    }
}
BENCHMARK(BM_DtwMatrixBanded)->Arg(1)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_DtwMatrixPlusClustering(benchmark::State& state) {
    const auto series = box_series(1);
    for (auto _ : state) {
        const auto dist = cluster::dtw_distance_matrix(series);
        const auto best = cluster::cluster_best_k(
            dist, 2, static_cast<int>(series.size()) / 2);
        benchmark::DoNotOptimize(best.num_clusters);
    }
}
BENCHMARK(BM_DtwMatrixPlusClustering);

void BM_CbcClustering(benchmark::State& state) {
    const auto series = box_series(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cluster::cbc_cluster(series).size());
    }
}
BENCHMARK(BM_CbcClustering);

void BM_OlsFit(benchmark::State& state) {
    const auto series = box_series(5);
    const std::vector<std::vector<double>> predictors(series.begin(),
                                                      series.begin() + 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(la::ols_fit(series[5], predictors).r_squared);
    }
}
BENCHMARK(BM_OlsFit);

/// Fused OLS through the VIF backward-elimination driver: span views
/// over the signature columns, implicit-Q Householder solves (no m×m Qᵀ
/// temporary, no per-trial column copies).
void BM_VifReduce(benchmark::State& state) {
    const auto series = box_series(5);
    const std::vector<std::vector<double>> predictors(series.begin(),
                                                      series.begin() + 5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(la::reduce_multicollinearity(predictors).size());
    }
}
BENCHMARK(BM_VifReduce)->Unit(benchmark::kMillisecond);

/// Fused ridge normal equations: columns centered once into a contiguous
/// block, Gram matrix accumulated straight from it.
void BM_RidgeFit(benchmark::State& state) {
    const auto series = box_series(5);
    const std::vector<std::vector<double>> predictors(series.begin(),
                                                      series.begin() + 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            la::ridge_fit(series[5], predictors, 0.5).r_squared);
    }
}
BENCHMARK(BM_RidgeFit);

void BM_MckpGreedyResize(benchmark::State& state) {
    const auto series = box_series(1);
    resize::ResizeInput input;
    input.alpha = 0.6;
    double peak_sum = 0.0;
    for (std::size_t i = 0; i < series.size(); i += 2) {
        input.demands.push_back(series[i]);
        for (double d : series[i]) peak_sum = std::max(peak_sum, d);
    }
    input.total_capacity = peak_sum * static_cast<double>(input.demands.size()) * 0.6;
    for (auto _ : state) {
        benchmark::DoNotOptimize(resize::atm_resize(input).tickets);
    }
}
BENCHMARK(BM_MckpGreedyResize);

void BM_MlpTrainSignature(benchmark::State& state) {
    const auto series = box_series(5);
    for (auto _ : state) {
        forecast::MlpForecaster model;
        model.fit(series[0]);
        benchmark::DoNotOptimize(model.forecast(96).front());
    }
}
BENCHMARK(BM_MlpTrainSignature)->Unit(benchmark::kMillisecond);

/// Raw network training loop (no forecaster wrapper): flattened
/// per-layer weight arrays and a reused caller-owned workspace, so the
/// per-sample SGD loop runs allocation-free.
void BM_MlpNetworkTrain(benchmark::State& state) {
    const auto series = box_series(5);
    const auto& s = series[0];
    const std::size_t lags = 8;
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (std::size_t i = lags; i < s.size(); ++i) {
        inputs.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(i - lags),
                            s.begin() + static_cast<std::ptrdiff_t>(i));
        targets.push_back(s[i]);
    }
    forecast::MlpTrainOptions options;
    options.epochs = 20;
    forecast::MlpWorkspace workspace;
    for (auto _ : state) {
        forecast::MlpNetwork net({static_cast<int>(lags), 8, 1},
                                 forecast::Activation::kTanh, 42);
        benchmark::DoNotOptimize(net.train(inputs, targets, options, &workspace));
    }
}
BENCHMARK(BM_MlpNetworkTrain)->Unit(benchmark::kMillisecond);

void BM_SeasonalNaive(benchmark::State& state) {
    const auto series = box_series(5);
    for (auto _ : state) {
        forecast::SeasonalNaiveForecaster model(96);
        model.fit(series[0]);
        benchmark::DoNotOptimize(model.forecast(96).front());
    }
}
BENCHMARK(BM_SeasonalNaive);

/// Parallel DTW matrix fill: arg = pool worker count (0 = serial path).
void BM_DtwMatrixParallel(benchmark::State& state) {
    const auto series = box_series(1);
    const auto workers = static_cast<unsigned>(state.range(0));
    std::unique_ptr<exec::ThreadPool> pool;
    if (workers > 0) pool = std::make_unique<exec::ThreadPool>(workers);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cluster::dtw_distance_matrix(series, -1, pool.get()).size());
    }
}
BENCHMARK(BM_DtwMatrixParallel)->Arg(0)->Arg(2)->Arg(4);

/// Fleet-driver throughput at a given worker count: the full per-box
/// pipeline (DTW signature search + seasonal-naive temporal model +
/// greedy resize) over a small fixed fleet. Arg = FleetConfig::jobs;
/// comparing Arg(1) with Arg(4+) is the multi-core speedup of the fleet
/// scheduler (bench_fleet_scaling prints the same as a speedup table).
void BM_FleetPipeline(benchmark::State& state) {
    static const trace::Trace t = [] {
        trace::TraceGenOptions options;
        options.num_boxes = 8;
        options.num_days = 6;
        options.gappy_box_fraction = 0.0;
        return trace::generate_trace(options);
    }();
    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kDtw;
    config.pipeline.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.jobs = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
        benchmark::DoNotOptimize(fleet.totals.front().cpu_after);
    }
}
BENCHMARK(BM_FleetPipeline)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// Raw MLP training epoch loop under a pinned SIMD kernel path — the
/// differential counterpart to BM_MlpNetworkTrain (which runs on the
/// ambient dispatch). Registered once per supported path by main().
void BM_MlpTrain(benchmark::State& state, simd::Path path) {
    const simd::Path ambient = simd::active_path();
    simd::set_path(path);
    const auto series = box_series(5);
    const auto& s = series[0];
    const std::size_t lags = 8;
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (std::size_t i = lags; i < s.size(); ++i) {
        inputs.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(i - lags),
                            s.begin() + static_cast<std::ptrdiff_t>(i));
        targets.push_back(s[i]);
    }
    forecast::MlpTrainOptions options;
    options.epochs = 20;
    forecast::MlpWorkspace workspace;
    for (auto _ : state) {
        forecast::MlpNetwork net({static_cast<int>(lags), 8, 1},
                                 forecast::Activation::kTanh, 42);
        benchmark::DoNotOptimize(net.train(inputs, targets, options, &workspace));
    }
    simd::set_path(ambient);
}

/// Pairwise banded DTW matrix under a pinned SIMD kernel path — one row
/// per (path, days) pair so BENCH_kernels.json carries the scalar vs
/// vector speedup explicitly instead of only the dispatched winner.
void BM_DtwMatrixBandedPath(benchmark::State& state, simd::Path path) {
    const simd::Path ambient = simd::active_path();
    simd::set_path(path);
    const auto series = box_series(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cluster::dtw_distance_matrix(series, /*band=*/8).size());
    }
    simd::set_path(ambient);
}

/// Registers the per-path differential rows (one set per SIMD path this
/// CPU can run). Must run before RunSpecifiedBenchmarks().
void register_per_path_benchmarks() {
    for (const simd::Path path : simd::supported_paths()) {
        const std::string tag = std::string("<") + simd::to_string(path) + ">";
        benchmark::RegisterBenchmark(
            ("BM_DtwMatrixBanded" + tag).c_str(),
            [path](benchmark::State& state) {
                BM_DtwMatrixBandedPath(state, path);
            })
            ->Arg(1)
            ->Arg(5)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("BM_MlpTrain" + tag).c_str(),
            [path](benchmark::State& state) { BM_MlpTrain(state, path); })
            ->Unit(benchmark::kMillisecond);
    }
}

}  // namespace

// Custom main (vs BENCHMARK_MAIN): the per-path rows depend on runtime
// CPU detection, so they are registered dynamically, and the dispatched
// SIMD path is stamped into the JSON context for artifact provenance.
int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::AddCustomContext(
        "simd", atm::simd::to_string(atm::simd::active_path()));
    register_per_path_benchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
