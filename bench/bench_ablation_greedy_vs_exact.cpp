// Ablation: optimality gap of the greedy MTRV solver against the exact
// MCKP dynamic program, on the per-box instances of the Fig. 8 study.
// The paper uses the greedy ("minimal algorithm") and never quantifies
// the gap; this measures it.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "resize/mckp.hpp"
#include "resize/policies.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Ablation — greedy MTRV vs exact MCKP",
                  "not in the paper; quantifies the greedy's optimality gap");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 80);
    options.num_days = 1;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));

    // Stress the solver with a tightened budget: fraction of the true box
    // capacity, so contention forces non-trivial downgrade decisions.
    std::printf("%-14s %12s %12s %12s %10s\n", "budget factor", "greedy tkts",
                "exact tkts", "gap (tkts)", "gap boxes");
    for (double factor : {1.0, 0.7, 0.5, 0.35}) {
        long greedy_total = 0;
        long exact_total = 0;
        int gap_boxes = 0;
        for (int b = 0; b < options.num_boxes; ++b) {
            const trace::BoxTrace box = trace::generate_box(options, b);
            const auto demands = box.demand_matrix();
            resize::ResizeInput input;
            input.alpha = 0.6;
            input.total_capacity = box.cpu_capacity_ghz * factor;
            for (std::size_t i = 0; i < box.vms.size(); ++i) {
                const auto& row = demands[i * 2];
                input.demands.emplace_back(row.end() - 96, row.end());
            }
            const auto greedy = resize::atm_resize(input);
            const auto exact = resize::atm_resize_exact(input, 4096);
            greedy_total += greedy.tickets;
            exact_total += exact.tickets;
            if (exact.tickets < greedy.tickets) ++gap_boxes;
        }
        std::printf("%-14.2f %12ld %12ld %12ld %10d\n", factor, greedy_total,
                    exact_total, greedy_total - exact_total, gap_boxes);
    }
    return 0;
}
