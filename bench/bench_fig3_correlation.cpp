// Fig. 3: cumulative distribution of the per-box median Pearson
// correlation for the four spatial-dependency classes: intra-CPU,
// intra-RAM, inter-all (any CPU x RAM pair) and inter-pair (CPU x RAM of
// the same VM).

#include <cstdio>

#include "bench_common.hpp"
#include "ticketing/characterization.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;
    bench::banner("Fig. 3 — spatial-correlation CDFs",
                  "mean rho: intra-CPU 0.26, intra-RAM 0.24, inter-all 0.30, "
                  "inter-pair 0.62; inter-pair CDF far right of the others");

    trace::TraceGenOptions options;
    options.num_boxes = bench::env_int("ATM_BOXES", 600);
    options.num_days = 1;
    options.seed = static_cast<std::uint64_t>(bench::env_int("ATM_SEED", 20150403));
    const trace::Trace trace = trace::generate_trace(options);

    const auto corr = ticketing::characterize_correlations(trace);
    std::printf("class        mean   median  (per-box medians, %zu boxes)\n",
                trace.boxes.size());
    std::printf("intra-CPU   %6.3f  %6.3f\n", ts::mean(corr.intra_cpu),
                ts::median(corr.intra_cpu));
    std::printf("intra-RAM   %6.3f  %6.3f\n", ts::mean(corr.intra_ram),
                ts::median(corr.intra_ram));
    std::printf("inter-all   %6.3f  %6.3f\n", ts::mean(corr.inter_all),
                ts::median(corr.inter_all));
    std::printf("inter-pair  %6.3f  %6.3f\n\n", ts::mean(corr.inter_pair),
                ts::median(corr.inter_pair));

    bench::print_cdf("intra-CPU", corr.intra_cpu);
    bench::print_cdf("intra-RAM", corr.intra_ram);
    bench::print_cdf("inter-all", corr.inter_all);
    bench::print_cdf("inter-pair", corr.inter_pair);
    return 0;
}
