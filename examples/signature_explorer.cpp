// Signature explorer: dissects the signature search on one box — pairwise
// correlations, DTW vs CBC vs k-medoids clusterings, VIF values of the
// initial signature set, the final signatures and how well each dependent
// series is explained. Useful to understand *why* ATM picked a set.
//
// Usage: signature_explorer [box_index] [dtw|cbc]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cluster/cbc.hpp"
#include "cluster/dtw.hpp"
#include "cluster/hierarchical.hpp"
#include "cluster/kmedoids.hpp"
#include "core/signature_search.hpp"
#include "core/spatial_model.hpp"
#include "linalg/ols.hpp"
#include "timeseries/resource.hpp"
#include "tracegen/generator.hpp"

namespace {

const char* series_name(std::size_t flat) {
    static char buffer[32];
    const auto id = atm::ts::SeriesId::from_flat(static_cast<int>(flat));
    std::snprintf(buffer, sizeof(buffer), "vm%d/%s", id.vm_index,
                  atm::ts::to_string(id.resource).c_str());
    return buffer;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace atm;
    const int box_index = argc > 1 ? std::atoi(argv[1]) : 3;
    const bool use_cbc = argc > 2 && std::strcmp(argv[2], "cbc") == 0;

    trace::TraceGenOptions gen;
    gen.num_days = 2;
    gen.gappy_box_fraction = 0.0;
    const trace::BoxTrace box = trace::generate_box(gen, box_index);
    const auto series = box.demand_matrix();
    const std::size_t n = series.size();
    std::printf("box%d: %zu VMs -> %zu demand series\n\n", box_index,
                box.vms.size(), n);

    // --- pairwise correlations (compact heat rows) -------------------------
    const auto rho = cluster::correlation_matrix(series);
    std::printf("pairwise correlation (x = |rho| >= 0.7, + >= 0.4, . else):\n");
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("  %-10s ", series_name(i));
        for (std::size_t j = 0; j < n; ++j) {
            const double r = std::abs(rho[i][j]);
            std::printf("%c", i == j ? '#' : r >= 0.7 ? 'x' : r >= 0.4 ? '+' : '.');
        }
        std::printf("\n");
    }

    // --- three clusterings side by side --------------------------------------
    const auto dist = cluster::dtw_distance_matrix(series);
    const auto best = cluster::cluster_best_k(
        dist, 2, std::max(2, static_cast<int>(n) / 2));
    std::printf("\nDTW hierarchical: %d clusters (silhouette %.2f)\n",
                best.num_clusters, best.silhouette);

    const auto pam = cluster::k_medoids(dist, best.num_clusters);
    std::printf("k-medoids (same k): cost %.1f, medoids:", pam.total_cost);
    for (int m : pam.medoids) {
        std::printf(" %s", series_name(static_cast<std::size_t>(m)));
    }
    std::printf("\n");

    const auto cbc = cluster::cbc_cluster(series);
    std::printf("CBC: %zu clusters, heads:", cbc.size());
    for (const auto& c : cbc) {
        std::printf(" %s(%zu)", series_name(static_cast<std::size_t>(c.head)),
                    c.members.size() + 1);
    }
    std::printf("\n");

    // --- the two-step search --------------------------------------------------
    core::SignatureSearchOptions options;
    options.method =
        use_cbc ? core::ClusteringMethod::kCbc : core::ClusteringMethod::kDtw;
    const auto result = core::find_signatures(series, options);

    std::printf("\n%s search: %zu initial -> %zu final signatures\n",
                use_cbc ? "CBC" : "DTW", result.initial_signatures.size(),
                result.signatures.size());

    if (result.initial_signatures.size() >= 2) {
        std::vector<std::vector<double>> sig_series;
        for (int idx : result.initial_signatures) {
            sig_series.push_back(series[static_cast<std::size_t>(idx)]);
        }
        const auto vifs = la::variance_inflation_factors(sig_series);
        std::printf("VIFs of the initial set (> 4 flags multicollinearity):\n");
        for (std::size_t s = 0; s < vifs.size(); ++s) {
            std::printf("  %-10s %8.2f\n",
                        series_name(static_cast<std::size_t>(
                            result.initial_signatures[s])),
                        vifs[s]);
        }
    }

    core::SpatialModel model;
    model.fit(series, result.signatures);
    std::printf("\ndependent-series fit (in-sample APE):\n");
    for (std::size_t d = 0; d < model.dependent_indices().size(); ++d) {
        std::printf("  %-10s %6.1f%%\n",
                    series_name(static_cast<std::size_t>(
                        model.dependent_indices()[d])),
                    100.0 * model.dependent_fit_ape()[d]);
    }
    return 0;
}
