// MediaWiki resize walk-through (the Section V-B experiment): simulate the
// two-wiki testbed, apply ATM resizing from the observed per-window
// demands, re-run, and print the cgroup limit changes and the performance
// impact per wiki. Demonstrates driving the resize layer directly from
// user-collected measurements (no trace generator involved).

#include <cstdio>

#include "mediawiki/simulator.hpp"

int main() {
    using namespace atm::wiki;

    const TestbedSpec spec = make_mediawiki_testbed();
    std::printf("testbed: %zu nodes, %zu VMs, wikis:", spec.nodes.size(),
                spec.vms.size());
    for (const WikiSpec& w : spec.wikis) std::printf(" %s", w.name.c_str());
    std::printf("\n\n");

    // --- original run -------------------------------------------------------
    const SimResult original = simulate(spec);
    std::printf("original run: %d usage tickets at the 60%% threshold\n",
                original.total_tickets);
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        if (original.vm_tickets[i] > 0) {
            std::printf("  %-14s %d tickets (limit %.1f cores)\n",
                        spec.vms[i].name.c_str(), original.vm_tickets[i],
                        spec.vms[i].cpu_limit_cores);
        }
    }

    // --- ATM resizing ---------------------------------------------------------
    const TestbedSpec resized_spec =
        resize_with_atm(spec, original, /*alpha=*/0.6, /*epsilon_cores=*/0.3);
    std::printf("\ncgroup limit changes (cores):\n");
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        const double delta = resized_spec.vms[i].cpu_limit_cores -
                             spec.vms[i].cpu_limit_cores;
        std::printf("  %-14s %.2f -> %.2f  (%+.2f)\n", spec.vms[i].name.c_str(),
                    spec.vms[i].cpu_limit_cores,
                    resized_spec.vms[i].cpu_limit_cores, delta);
    }

    // --- resized run ------------------------------------------------------------
    const SimResult resized = simulate(resized_spec);
    std::printf("\nresized run: %d usage tickets\n", resized.total_tickets);
    for (std::size_t w = 0; w < spec.wikis.size(); ++w) {
        std::printf("%s: RT %.0f -> %.0f ms, TPUT %.1f -> %.1f req/s\n",
                    spec.wikis[w].name.c_str(),
                    1000.0 * original.wikis[w].mean_response_time_s,
                    1000.0 * resized.wikis[w].mean_response_time_s,
                    original.wikis[w].mean_throughput_rps,
                    resized.wikis[w].mean_throughput_rps);
    }
    return 0;
}
