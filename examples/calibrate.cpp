// Internal calibration driver: prints the generator's Section II statistics
// against the paper targets. Not part of the figure benches; used while
// tuning TraceGenOptions defaults (kept in-tree so recalibration after a
// generator change is one command).
#include <cstdio>
#include <cstdlib>

#include "ticketing/characterization.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

int main(int argc, char** argv) {
    atm::trace::TraceGenOptions options;
    options.num_boxes = argc > 1 ? std::atoi(argv[1]) : 300;
    options.num_days = 1;  // characterization uses one day
    const atm::trace::Trace trace = atm::trace::generate_trace(options);

    std::printf("boxes=%zu vms=%zu (%.1f vms/box)\n", trace.boxes.size(),
                trace.total_vms(),
                static_cast<double>(trace.total_vms()) / trace.boxes.size());

    std::printf("\n-- Fig 2 targets: CPU box%% 57/46/40, RAM box%% 38/20/10; "
                "CPU tickets 39/33/29, RAM 15/11/9; culprits 1-2 --\n");
    for (double th : {60.0, 70.0, 80.0}) {
        const auto c = atm::ticketing::characterize_tickets(trace, th, 0);
        std::printf(
            "th=%2.0f%%: boxes cpu=%4.1f%% ram=%4.1f%% | tickets/box cpu=%5.1f(+-%4.1f) "
            "ram=%5.1f(+-%4.1f) | culprits cpu=%.2f ram=%.2f\n",
            th, 100 * c.boxes_with_cpu_tickets, 100 * c.boxes_with_ram_tickets,
            c.mean_cpu_tickets_per_box, c.std_cpu_tickets_per_box,
            c.mean_ram_tickets_per_box, c.std_ram_tickets_per_box,
            c.mean_cpu_culprits, c.mean_ram_culprits);
    }

    std::printf("\n-- Fig 3 targets (median of per-box medians): intra-CPU .26 "
                "intra-RAM .24 inter-all .30 inter-pair .62 --\n");
    const auto corr = atm::ticketing::characterize_correlations(trace, 0);
    std::printf("intra-CPU  median=%.3f mean=%.3f\n",
                atm::ts::median(corr.intra_cpu), atm::ts::mean(corr.intra_cpu));
    std::printf("intra-RAM  median=%.3f mean=%.3f\n",
                atm::ts::median(corr.intra_ram), atm::ts::mean(corr.intra_ram));
    std::printf("inter-all  median=%.3f mean=%.3f\n",
                atm::ts::median(corr.inter_all), atm::ts::mean(corr.inter_all));
    std::printf("inter-pair median=%.3f mean=%.3f\n",
                atm::ts::median(corr.inter_pair), atm::ts::mean(corr.inter_pair));
    return 0;
}
