// Data-center study: runs the Section II characterization plus the full
// ATM pipeline over a configurable synthetic population and prints an
// operator-style report: where the tickets are, who the culprits are, how
// well they can be predicted, and how many tickets resizing removes.
//
// Usage: datacenter_study [num_boxes] [threshold_pct]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/pipeline.hpp"
#include "ticketing/characterization.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

int main(int argc, char** argv) {
    using namespace atm;
    const int num_boxes = argc > 1 ? std::atoi(argv[1]) : 60;
    const double threshold = argc > 2 ? std::atof(argv[2]) : 60.0;

    trace::TraceGenOptions gen;
    gen.num_boxes = num_boxes;
    gen.num_days = 6;
    const trace::Trace trace = trace::generate_trace(gen);

    std::printf("=== data-center study: %zu boxes, %zu VMs, threshold %.0f%% ===\n\n",
                trace.boxes.size(), trace.total_vms(), threshold);

    // --- where are the tickets? -------------------------------------------
    const auto tickets = ticketing::characterize_tickets(trace, threshold);
    std::printf("boxes with CPU tickets: %.1f%%   RAM tickets: %.1f%%\n",
                100.0 * tickets.boxes_with_cpu_tickets,
                100.0 * tickets.boxes_with_ram_tickets);
    std::printf("tickets/box: CPU %.1f (+-%.1f)   RAM %.1f (+-%.1f)\n",
                tickets.mean_cpu_tickets_per_box, tickets.std_cpu_tickets_per_box,
                tickets.mean_ram_tickets_per_box, tickets.std_ram_tickets_per_box);
    std::printf("culprit VMs per ticketing box: CPU %.2f   RAM %.2f\n\n",
                tickets.mean_cpu_culprits, tickets.mean_ram_culprits);

    // --- how correlated are co-located VMs? --------------------------------
    const auto corr = ticketing::characterize_correlations(trace);
    std::printf("spatial correlation (mean of per-box medians):\n");
    std::printf("  intra-CPU %.2f  intra-RAM %.2f  inter-all %.2f  inter-pair %.2f\n\n",
                ts::mean(corr.intra_cpu), ts::mean(corr.intra_ram),
                ts::mean(corr.inter_all), ts::mean(corr.inter_pair));

    // --- ATM over the gap-free subset ---------------------------------------
    core::PipelineConfig config;
    config.search.method = core::ClusteringMethod::kCbc;
    config.temporal = forecast::TemporalModel::kAutoregressive;  // fast
    config.alpha = threshold / 100.0;

    std::vector<double> ratios;
    std::vector<double> apes;
    long before = 0;
    long after = 0;
    int evaluated = 0;
    for (const trace::BoxTrace& box : trace.boxes) {
        if (box.has_gaps) continue;
        ++evaluated;
        const auto result = core::run_pipeline_on_box(
            box, gen.windows_per_day, config, {resize::ResizePolicy::kAtmGreedy});
        ratios.push_back(100.0 * result.search.signature_ratio(box.vms.size() * 2));
        apes.push_back(100.0 * result.ape_all);
        before += result.policies[0].cpu_before + result.policies[0].ram_before;
        after += result.policies[0].cpu_after + result.policies[0].ram_after;
    }

    std::printf("ATM on %d gap-free boxes (CBC + AR temporal model):\n", evaluated);
    std::printf("  signature ratio: mean %.0f%% of series need a temporal model\n",
                ts::mean(ratios));
    std::printf("  next-day prediction APE: mean %.1f%%\n", ts::mean(apes));
    std::printf("  tickets (CPU+RAM): %ld -> %ld  (%.1f%% reduction)\n", before,
                after,
                before > 0 ? 100.0 * static_cast<double>(before - after) /
                                 static_cast<double>(before)
                           : 0.0);
    return 0;
}
