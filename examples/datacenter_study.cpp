// Data-center study: runs the Section II characterization plus the full
// ATM pipeline over a configurable synthetic population and prints an
// operator-style report: where the tickets are, who the culprits are, how
// well they can be predicted, and how many tickets resizing removes.
//
// Usage: datacenter_study [num_boxes] [threshold_pct] [jobs]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/fleet.hpp"
#include "ticketing/characterization.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

int main(int argc, char** argv) {
    using namespace atm;
    const int num_boxes = argc > 1 ? std::atoi(argv[1]) : 60;
    const double threshold = argc > 2 ? std::atof(argv[2]) : 60.0;
    const int jobs = argc > 3 ? std::atoi(argv[3]) : 0;

    trace::TraceGenOptions gen;
    gen.num_boxes = num_boxes;
    gen.num_days = 6;
    const trace::Trace trace = trace::generate_trace(gen);

    std::printf("=== data-center study: %zu boxes, %zu VMs, threshold %.0f%% ===\n\n",
                trace.boxes.size(), trace.total_vms(), threshold);

    // --- where are the tickets? -------------------------------------------
    const auto tickets = ticketing::characterize_tickets(trace, threshold);
    std::printf("boxes with CPU tickets: %.1f%%   RAM tickets: %.1f%%\n",
                100.0 * tickets.boxes_with_cpu_tickets,
                100.0 * tickets.boxes_with_ram_tickets);
    std::printf("tickets/box: CPU %.1f (+-%.1f)   RAM %.1f (+-%.1f)\n",
                tickets.mean_cpu_tickets_per_box, tickets.std_cpu_tickets_per_box,
                tickets.mean_ram_tickets_per_box, tickets.std_ram_tickets_per_box);
    std::printf("culprit VMs per ticketing box: CPU %.2f   RAM %.2f\n\n",
                tickets.mean_cpu_culprits, tickets.mean_ram_culprits);

    // --- how correlated are co-located VMs? --------------------------------
    const auto corr = ticketing::characterize_correlations(trace);
    std::printf("spatial correlation (mean of per-box medians):\n");
    std::printf("  intra-CPU %.2f  intra-RAM %.2f  inter-all %.2f  inter-pair %.2f\n\n",
                ts::mean(corr.intra_cpu), ts::mean(corr.intra_ram),
                ts::mean(corr.inter_all), ts::mean(corr.inter_pair));

    // --- ATM over the gap-free subset, on the fleet executor ----------------
    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kCbc;
    config.pipeline.temporal = forecast::TemporalModel::kAutoregressive;  // fast
    config.pipeline.alpha = threshold / 100.0;
    config.jobs = jobs;  // 0 = hardware concurrency
    if (const std::string problems = config.validate(); !problems.empty()) {
        std::fprintf(stderr, "bad config: %s\n", problems.c_str());
        return 1;
    }

    const core::FleetResult fleet = core::run_pipeline_on_fleet(trace, config);

    std::vector<double> ratios;
    std::vector<double> apes;
    for (const core::FleetBoxResult& b : fleet.boxes) {
        if (!b.error.empty()) continue;
        const std::size_t series =
            trace.boxes[static_cast<std::size_t>(b.box_index)].vms.size() * 2;
        ratios.push_back(100.0 * b.result.search.signature_ratio(series));
        apes.push_back(100.0 * b.result.ape_all);
    }
    const std::int64_t before =
        fleet.totals[0].cpu_before + fleet.totals[0].ram_before;
    const std::int64_t after =
        fleet.totals[0].cpu_after + fleet.totals[0].ram_after;

    std::printf("ATM on %zu gap-free boxes (CBC + AR temporal model, %d jobs, "
                "%.2fs wall):\n",
                fleet.boxes_evaluated(), fleet.jobs, fleet.wall_seconds);
    std::printf("  signature ratio: mean %.0f%% of series need a temporal model\n",
                ts::mean(ratios));
    std::printf("  next-day prediction APE: mean %.1f%%\n", ts::mean(apes));
    std::printf("  tickets (CPU+RAM): %lld -> %lld  (%.1f%% reduction)\n",
                static_cast<long long>(before), static_cast<long long>(after),
                before > 0 ? 100.0 * static_cast<double>(before - after) /
                                 static_cast<double>(before)
                           : 0.0);
    return 0;
}
