// Quickstart: the whole ATM loop on one synthetic box in ~60 lines.
//
//   1. generate a week of monitoring data for one physical box,
//   2. find the signature demand series (CBC clustering + stepwise),
//   3. predict the next day (NN for signatures, OLS spatial model for the
//      dependent series),
//   4. resize the co-located VMs with the greedy MCKP algorithm,
//   5. compare usage tickets before and after.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/fleet.hpp"
#include "tracegen/generator.hpp"

int main() {
    using namespace atm;

    // --- 1. one box with ten-ish co-located VMs, 6 days x 96 windows -----
    trace::TraceGenOptions gen;
    gen.num_days = 6;  // 5 training days + 1 evaluation day
    gen.gappy_box_fraction = 0.0;
    const trace::BoxTrace box = trace::generate_box(gen, /*index=*/7);
    std::printf("box with %zu VMs, %.1f GHz / %.1f GB virtual capacity\n",
                box.vms.size(), box.cpu_capacity_ghz, box.ram_capacity_gb);

    // --- 2..4. the full ATM pipeline -------------------------------------
    // FleetConfig is the one place pipeline parameters are declared and
    // validated; fleet runs take it directly, single-box runs use .pipeline.
    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kCbc;
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.pipeline.train_days = 5;
    config.pipeline.alpha = 0.6;       // 60% ticket threshold
    config.pipeline.epsilon_pct = 5.0; // the paper's discretization factor
    config.policies = {resize::ResizePolicy::kAtmGreedy,
                       resize::ResizePolicy::kMaxMinFairness,
                       resize::ResizePolicy::kStingy};
    if (const std::string problems = config.validate(); !problems.empty()) {
        std::fprintf(stderr, "bad config: %s\n", problems.c_str());
        return 1;
    }

    const core::BoxPipelineResult result = core::run_pipeline_on_box(
        box, gen.windows_per_day, config.pipeline, config.policies);

    // --- 5. results --------------------------------------------------------
    std::printf("\nsignature series: %zu of %zu (%.0f%%), %d clusters\n",
                result.search.signatures.size(), box.vms.size() * 2,
                100.0 * result.search.signature_ratio(box.vms.size() * 2),
                result.search.num_clusters);
    std::printf("next-day prediction error: %.1f%% APE (%.1f%% at peaks)\n",
                100.0 * result.ape_all, 100.0 * result.ape_peak);

    std::printf("\n%-18s %22s %22s\n", "policy", "CPU tickets", "RAM tickets");
    for (const core::PolicyTickets& p : result.policies) {
        std::printf("%-18s %8d -> %-8d %10d -> %-8d\n",
                    resize::to_string(p.policy).c_str(), p.cpu_before, p.cpu_after,
                    p.ram_before, p.ram_after);
    }
    return 0;
}
