// Internal calibration driver for the MediaWiki testbed simulator: prints
// original vs ATM-resized metrics against the Fig. 12/13 targets.
#include <cstdio>

#include "mediawiki/simulator.hpp"

int main() {
    using namespace atm::wiki;
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult original = simulate(spec);
    const TestbedSpec resized_spec = resize_with_atm(spec, original);
    const SimResult resized = simulate(resized_spec);

    std::printf("-- targets: tickets 49 -> 1; wiki-one RT 582->454ms TPUT flat; "
                "wiki-two TPUT 14->17 RT ~flat --\n");
    std::printf("tickets: original=%d resized=%d\n", original.total_tickets,
                resized.total_tickets);
    for (std::size_t w = 0; w < spec.wikis.size(); ++w) {
        std::printf("%s: RT %.0f -> %.0f ms | TPUT %.1f -> %.1f rps\n",
                    spec.wikis[w].name.c_str(),
                    1000.0 * original.wikis[w].mean_response_time_s,
                    1000.0 * resized.wikis[w].mean_response_time_s,
                    original.wikis[w].mean_throughput_rps,
                    resized.wikis[w].mean_throughput_rps);
    }
    std::printf("\nper-VM limits (cores) and tickets:\n");
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        std::printf("  %-14s node%d  limit %.2f -> %.2f  tickets %d -> %d\n",
                    spec.vms[i].name.c_str(), spec.vms[i].node,
                    spec.vms[i].cpu_limit_cores,
                    resized_spec.vms[i].cpu_limit_cores, original.vm_tickets[i],
                    resized.vm_tickets[i]);
    }
    return 0;
}
