// atm — command-line front end for the ATM library.
//
// Subcommands:
//   atm generate <out>          synthesize a monitoring trace (CSV, or the
//                               binary atm.trace.bin.v1 format for *.bin)
//   atm characterize <trace>    Section-II report: tickets, culprits,
//                               correlations
//   atm predict <trace>         fleet signature search + next-day accuracy
//   atm resize <trace>          fleet next-day resizing from predictions
//   atm backtest <trace>        temporal-model shoot-out on one series
//   atm serve <trace>           atmd: streaming prediction/resizing daemon
//   atm play <trace>            stream a trace into a running atmd
//   atm trace pack|unpack       convert between CSV and the binary format
//
// Every subcommand supports --help, accepts both `--key value` and
// `--key=value`, and rejects unknown or malformed flags with a
// diagnostic. `predict` and `resize` run the fleet executor — `--jobs N`
// selects the worker count (default: hardware concurrency).
//
// Trace inputs are format-sniffed: both the CSV schema of
// src/tracegen/trace_io.hpp and the mmap-loaded binary format of
// src/tracegen/trace_binary.hpp are accepted everywhere, so real
// monitoring exports and packed paper-scale traces are analyzed the
// same way.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/metrics_report.hpp"
#include "exec/arg_parser.hpp"
#include "exec/cancel.hpp"
#include "forecast/backtest.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/metrics.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "ticketing/characterization.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"
#include "tracegen/trace_binary.hpp"
#include "tracegen/trace_io.hpp"

namespace {

using namespace atm;

/// Operator stop token for the fleet subcommands. `cancel()` is
/// async-signal-safe (a relaxed atomic CAS), so the SIGINT handler may
/// trip it directly.
exec::CancellationToken g_stop;  // NOLINT(cert-err58-cpp)

extern "C" void handle_stop_signal(int sig) {
    if (g_stop.cancelled()) {
        // Second signal: the operator wants out *now*. Restore the
        // default disposition and re-raise so the shell sees a real
        // signal death; the journal already holds every completed unit.
        std::signal(sig, SIG_DFL);
        std::raise(sig);
        return;
    }
    g_stop.cancel(exec::CancelReason::kStop);
}

/// First SIGINT/SIGTERM drains (finish in-flight work, journal it, write
/// partial outputs); a second one kills. SIGTERM gets the same graceful
/// path as Ctrl-C because that is what process supervisors and `timeout`
/// send — a fleet run or daemon under systemd should flush, not die torn.
void install_sigint_drain() {
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
}

/// Shared model/threshold flags of the prediction-driven subcommands.
void add_pipeline_flags(exec::ArgParser& parser) {
    parser.option("method", "cbc", "clustering method: dtw|cbc")
        .option("model", "mlp",
                "temporal model: mlp|ar|holt-winters|seasonal-naive|ensemble")
        .option("threshold", "60", "ticket threshold in percent")
        .option("epsilon", "5", "discretization factor, % of VM capacity")
        .option("train-days", "5", "days of training history")
        .option("jobs", "0", "worker threads; 0 = hardware concurrency")
        .option("shard-size", "0",
                "boxes per scheduler shard; 0 = auto (execution knob, "
                "never affects results)")
        .option("simd", "",
                "force the SIMD kernel path: scalar|avx2|avx512|neon "
                "(default: best supported; env ATM_SIMD)")
        .option("box", "", "evaluate only the box with this name")
        .option("max-boxes", "-1",
                "evaluate at most this many selected boxes (trace order); "
                "negative = unlimited")
        .option("metrics-out", "",
                "write a JSON stage-metrics report (atm.metrics.v1) here")
        .option("fault-spec", "",
                "chaos testing: comma-separated site=action[@rate] rules "
                "(e.g. samples=nan@0.01,pipeline.forecast=throw@0.5)")
        .option("fault-seed", "42", "seed for the deterministic fault plan")
        .option("checkpoint", "",
                "append-only journal of completed boxes; enables --resume "
                "after a crash or kill")
        .option("max-retries", "0",
                "extra attempts per box on transient failures")
        .option("box-deadline", "0",
                "per-box wall-clock deadline in seconds; 0 = none")
        .flag("resume",
              "replay boxes already recorded in --checkpoint instead of "
              "recomputing them")
        .flag("include-gappy", "also evaluate boxes with monitoring gaps");
}

/// Builds the validated FleetConfig from parsed flags; throws
/// ArgParseError on unknown enum values, std::invalid_argument on ranges.
core::FleetConfig fleet_config_from_flags(const exec::ArgParser& parser) {
    core::FleetConfig config;

    const std::string method = parser.get("method");
    if (method == "dtw") {
        config.pipeline.search.method = core::ClusteringMethod::kDtw;
    } else if (method == "cbc") {
        config.pipeline.search.method = core::ClusteringMethod::kCbc;
    } else {
        throw exec::ArgParseError("unknown --method '" + method +
                                  "' (expected dtw|cbc)");
    }

    const std::string model = parser.get("model");
    if (model == "mlp") {
        config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    } else if (model == "ar") {
        config.pipeline.temporal = forecast::TemporalModel::kAutoregressive;
    } else if (model == "holt-winters") {
        config.pipeline.temporal = forecast::TemporalModel::kHoltWinters;
    } else if (model == "seasonal-naive") {
        config.pipeline.temporal = forecast::TemporalModel::kSeasonalNaive;
    } else if (model == "ensemble") {
        config.pipeline.temporal = forecast::TemporalModel::kEnsemble;
    } else {
        throw exec::ArgParseError(
            "unknown --model '" + model +
            "' (expected mlp|ar|holt-winters|seasonal-naive|ensemble)");
    }

    config.pipeline.alpha = parser.get_double("threshold") / 100.0;
    config.pipeline.epsilon_pct = parser.get_double("epsilon");
    config.pipeline.train_days = parser.get_int("train-days");
    config.jobs = parser.get_int("jobs");
    config.shard_size = parser.get_int("shard-size");

    // The flag wins over a conflicting ATM_SIMD environment variable —
    // both go through simd::set_path, so an unsupported choice is a
    // usage error before any work starts.
    if (const std::string& simd = parser.get("simd"); !simd.empty()) {
        try {
            simd::set_path(simd::parse_path(simd));
        } catch (const std::invalid_argument& e) {
            throw exec::ArgParseError(e.what());
        }
    }
    config.skip_gappy_boxes = !parser.get_flag("include-gappy");
    if (!parser.get("box").empty()) config.box_names = {parser.get("box")};
    config.max_boxes = parser.get_int("max-boxes");

    // Fail a bad report path *before* the fleet run, as a usage error.
    if (const std::string& metrics_out = parser.get("metrics-out");
        !metrics_out.empty()) {
        exec::require_writable_file("metrics-out", metrics_out);
        config.collect_metrics = true;
    }

    // Resilience knobs (DESIGN.md §7.12). The journal path must be
    // writable up front — discovering it isn't after an hour of fleet
    // work would defeat the point.
    if (const std::string& checkpoint = parser.get("checkpoint");
        !checkpoint.empty()) {
        exec::require_writable_file("checkpoint", checkpoint);
        config.checkpoint_path = checkpoint;
    }
    config.resume = parser.get_flag("resume");
    config.max_retries = parser.get_int("max-retries");
    config.box_deadline_seconds = parser.get_double("box-deadline");

    // Reproducible chaos runs (see DESIGN.md §7.11); a malformed spec is a
    // usage error reported before any work starts.
    if (const std::string& fault_spec = parser.get("fault-spec");
        !fault_spec.empty()) {
        try {
            config.faults =
                exec::FaultPlan::parse(fault_spec, parser.get_u64("fault-seed"));
        } catch (const std::invalid_argument& e) {
            throw exec::ArgParseError(e.what());
        }
    }

    if (const std::string problems = config.validate(); !problems.empty()) {
        throw exec::ArgParseError(problems);
    }
    return config;
}

/// True when `path` names the binary trace format by extension.
bool wants_binary_trace(const std::string& path) {
    return path.size() >= 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

int cmd_generate(int argc, char** argv) {
    exec::ArgParser parser(
        "atm generate",
        "synthesize a monitoring trace; *.bin writes the binary "
        "atm.trace.bin.v1 format, anything else CSV");
    parser.positional("out", "output path (*.bin = binary, else CSV)")
        .option("boxes", "50", "number of physical boxes")
        .option("days", "7", "trace length in days")
        .option("seed", "20150403", "trace generator seed");
    if (!parser.parse(argc, argv, 2)) return 0;

    trace::TraceGenOptions options;
    options.num_boxes = parser.get_int("boxes");
    options.num_days = parser.get_int("days");
    options.seed = parser.get_u64("seed");
    const trace::Trace t = trace::generate_trace(options);
    const std::string out = parser.get("out");
    if (wants_binary_trace(out)) {
        trace::write_trace_binary_file(out, t);
    } else {
        trace::write_trace_csv_file(out.c_str(), t);
    }
    std::printf("wrote %zu boxes / %zu VMs / %d days to %s\n", t.boxes.size(),
                t.total_vms(), options.num_days, out.c_str());
    return 0;
}

int cmd_trace(int argc, char** argv) {
    const std::string verb = argc > 2 ? argv[2] : "";
    if (verb == "pack") {
        exec::ArgParser parser(
            "atm trace pack",
            "convert a CSV trace to the binary atm.trace.bin.v1 format "
            "(mmap-loaded, ~10x faster to read at fleet scale)");
        parser.positional("in.csv", "input CSV trace")
            .positional("out.bin", "output binary trace");
        if (!parser.parse(argc, argv, 3)) return 0;
        const trace::Trace t =
            trace::read_trace_csv_file(parser.get("in.csv").c_str());
        trace::write_trace_binary_file(parser.get("out.bin"), t);
        std::printf("packed %zu boxes / %zu VMs into %s\n", t.boxes.size(),
                    t.total_vms(), parser.get("out.bin").c_str());
        return 0;
    }
    if (verb == "unpack") {
        exec::ArgParser parser("atm trace unpack",
                               "convert a binary trace back to CSV");
        parser.positional("in.bin", "input binary trace")
            .positional("out.csv", "output CSV trace");
        if (!parser.parse(argc, argv, 3)) return 0;
        const trace::Trace t = trace::read_trace_binary_file(parser.get("in.bin"));
        trace::write_trace_csv_file(parser.get("out.csv").c_str(), t);
        std::printf("unpacked %zu boxes / %zu VMs into %s\n", t.boxes.size(),
                    t.total_vms(), parser.get("out.csv").c_str());
        return 0;
    }
    std::fprintf(stderr,
                 "usage: atm trace pack <in.csv> <out.bin>\n"
                 "       atm trace unpack <in.bin> <out.csv>\n");
    return verb.empty() || verb == "--help" || verb == "-h" ? 0 : 2;
}

int cmd_characterize(int argc, char** argv) {
    exec::ArgParser parser(
        "atm characterize",
        "Section-II style report: ticket distribution, culprits, correlations");
    parser.positional("trace.csv", "input trace CSV")
        .option("threshold", "60", "ticket threshold in percent");
    if (!parser.parse(argc, argv, 2)) return 0;

    const double threshold = parser.get_double("threshold");
    const trace::Trace t = trace::read_trace_any_file(parser.get("trace.csv"));
    std::printf("trace: %zu boxes, %zu VMs\n\n", t.boxes.size(), t.total_vms());

    const auto c = ticketing::characterize_tickets(t, threshold);
    std::printf("threshold %.0f%%:\n", threshold);
    std::printf("  boxes with tickets: CPU %.1f%%  RAM %.1f%%\n",
                100 * c.boxes_with_cpu_tickets, 100 * c.boxes_with_ram_tickets);
    std::printf("  tickets/box:        CPU %.1f (+-%.1f)  RAM %.1f (+-%.1f)\n",
                c.mean_cpu_tickets_per_box, c.std_cpu_tickets_per_box,
                c.mean_ram_tickets_per_box, c.std_ram_tickets_per_box);
    std::printf("  culprit VMs:        CPU %.2f  RAM %.2f\n", c.mean_cpu_culprits,
                c.mean_ram_culprits);

    const auto corr = ticketing::characterize_correlations(t);
    std::printf("\ncorrelation (mean of per-box medians):\n");
    std::printf("  intra-CPU %.3f  intra-RAM %.3f  inter-all %.3f  inter-pair %.3f\n",
                ts::mean(corr.intra_cpu), ts::mean(corr.intra_ram),
                ts::mean(corr.inter_all), ts::mean(corr.inter_pair));
    return 0;
}

int cmd_predict(int argc, char** argv) {
    exec::ArgParser parser(
        "atm predict",
        "fleet signature search + next-day prediction accuracy per box");
    parser.positional("trace.csv", "input trace CSV");
    add_pipeline_flags(parser);
    if (!parser.parse(argc, argv, 2)) return 0;

    core::FleetConfig config = fleet_config_from_flags(parser);
    config.policies.clear();  // prediction only, no resizing
    install_sigint_drain();
    config.stop = &g_stop;
    // Trace loading happens outside any box pipeline, so its metrics live
    // in a CLI-owned registry merged into the report as `extra`.
    obs::MetricsRegistry cli_metrics(config.collect_metrics);
    const trace::Trace t = trace::read_trace_any_file(
        parser.get("trace.csv"), 96,
        config.collect_metrics ? &cli_metrics : nullptr);

    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);

    // Partial outputs are still written on an interrupted (drained) run:
    // the report is atomic and the journal holds every finished box.
    if (const std::string& out = parser.get("metrics-out"); !out.empty()) {
        core::write_metrics_report_file(out, fleet, "predict",
                                        cli_metrics.snapshot());
        std::printf("metrics report: %s\n", out.c_str());
    }

    std::printf("%-12s %10s %10s %12s %10s\n", "box", "series", "signatures",
                "APE all(%)", "peak(%)");
    for (const core::FleetBoxResult& b : fleet.boxes) {
        if (!b.error.empty()) {
            std::printf("%-12s failed [%s@%s]: %s\n", b.box_name.c_str(),
                        core::to_string(b.error_code), b.error_stage.c_str(),
                        b.error.c_str());
            continue;
        }
        const auto& box = t.boxes[static_cast<std::size_t>(b.box_index)];
        std::printf("%-12s %10zu %10zu %12.1f %10.1f\n", b.box_name.c_str(),
                    box.vms.size() * 2, b.result.search.signatures.size(),
                    100.0 * b.result.ape_all, 100.0 * b.result.ape_peak);
    }
    if (fleet.boxes_evaluated() > 0) {
        std::printf("\nmean APE over %zu boxes: %.1f%% (peak %.1f%%)\n",
                    fleet.boxes_evaluated(), 100.0 * fleet.mean_ape_all,
                    100.0 * fleet.mean_ape_peak);
    }
    std::printf("%zu skipped, %zu failed; %d jobs, %.2fs wall\n",
                fleet.boxes_skipped, fleet.boxes_failed, fleet.jobs,
                fleet.wall_seconds);
    for (const auto& [code, count] : fleet.failures_by_code) {
        std::printf("  %zu x %s\n", count, core::to_string(code));
    }
    if (fleet.boxes_replayed > 0) {
        std::printf("%zu boxes replayed from checkpoint\n",
                    fleet.boxes_replayed);
    }
    if (fleet.interrupted) {
        std::printf("interrupted: drained in-flight boxes and stopped; "
                    "re-run with --checkpoint <path> --resume to continue\n");
        return 130;  // 128 + SIGINT, the conventional interrupted status
    }
    return 0;
}

int cmd_resize(int argc, char** argv) {
    exec::ArgParser parser(
        "atm resize",
        "fleet next-day resizing from predicted demands; prints per-box tickets");
    parser.positional("trace.csv", "input trace CSV");
    add_pipeline_flags(parser);
    parser.option("policy", "atm", "resize policy: atm|max-min|stingy");
    if (!parser.parse(argc, argv, 2)) return 0;

    core::FleetConfig config = fleet_config_from_flags(parser);
    const std::string policy_name = parser.get("policy");
    if (policy_name == "atm") {
        config.policies = {resize::ResizePolicy::kAtmGreedy};
    } else if (policy_name == "max-min") {
        config.policies = {resize::ResizePolicy::kMaxMinFairness};
    } else if (policy_name == "stingy") {
        config.policies = {resize::ResizePolicy::kStingy};
    } else {
        throw exec::ArgParseError("unknown --policy '" + policy_name +
                                  "' (expected atm|max-min|stingy)");
    }
    install_sigint_drain();
    config.stop = &g_stop;
    obs::MetricsRegistry cli_metrics(config.collect_metrics);
    const trace::Trace t = trace::read_trace_any_file(
        parser.get("trace.csv"), 96,
        config.collect_metrics ? &cli_metrics : nullptr);

    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);

    if (const std::string& out = parser.get("metrics-out"); !out.empty()) {
        core::write_metrics_report_file(out, fleet, "resize",
                                        cli_metrics.snapshot());
        std::printf("metrics report: %s\n", out.c_str());
    }

    std::printf("%-12s %14s %14s\n", "box", "CPU tickets", "RAM tickets");
    for (const core::FleetBoxResult& b : fleet.boxes) {
        if (!b.error.empty()) {
            std::printf("%-12s failed [%s@%s]: %s\n", b.box_name.c_str(),
                        core::to_string(b.error_code), b.error_stage.c_str(),
                        b.error.c_str());
            continue;
        }
        const auto& p = b.result.policies[0];
        std::printf("%-12s %6d -> %-6d %6d -> %-6d\n", b.box_name.c_str(),
                    p.cpu_before, p.cpu_after, p.ram_before, p.ram_after);
    }
    const core::FleetPolicyTotals& total = fleet.totals[0];
    const std::int64_t before = total.cpu_before + total.ram_before;
    const std::int64_t after = total.cpu_after + total.ram_after;
    std::printf("\ntotal: %lld -> %lld tickets (%.1f%% reduction, policy %s, "
                "%d jobs, %.2fs wall)\n",
                static_cast<long long>(before), static_cast<long long>(after),
                before > 0 ? 100.0 * static_cast<double>(before - after) /
                                 static_cast<double>(before)
                           : 0.0,
                policy_name.c_str(), fleet.jobs, fleet.wall_seconds);
    if (fleet.boxes_replayed > 0) {
        std::printf("%zu boxes replayed from checkpoint\n",
                    fleet.boxes_replayed);
    }
    if (fleet.interrupted) {
        std::printf("interrupted: drained in-flight boxes and stopped; "
                    "re-run with --checkpoint <path> --resume to continue\n");
        return 130;
    }
    return 0;
}

int cmd_backtest(int argc, char** argv) {
    exec::ArgParser parser(
        "atm backtest",
        "rolling-origin comparison of every temporal model on one series");
    parser.positional("trace.csv", "input trace CSV")
        .option("box", "", "box name (default: first box)")
        .option("vm", "0", "VM index within the box")
        .option("resource", "cpu", "series to backtest: cpu|ram");
    if (!parser.parse(argc, argv, 2)) return 0;

    const std::string box_name = parser.get("box");
    const int vm_index = parser.get_int("vm");
    const std::string resource = parser.get("resource");
    if (resource != "cpu" && resource != "ram") {
        throw exec::ArgParseError("unknown --resource '" + resource +
                                  "' (expected cpu|ram)");
    }
    const trace::Trace t = trace::read_trace_any_file(parser.get("trace.csv"));

    const trace::BoxTrace* box = nullptr;
    for (const trace::BoxTrace& b : t.boxes) {
        if (box_name.empty() || b.name == box_name) {
            box = &b;
            break;
        }
    }
    if (box == nullptr || vm_index < 0 ||
        static_cast<std::size_t>(vm_index) >= box->vms.size()) {
        std::fprintf(stderr, "atm backtest: box/vm not found\n");
        return 2;
    }
    const auto& series = resource == "ram"
                             ? box->vms[static_cast<std::size_t>(vm_index)].ram_demand_gb
                             : box->vms[static_cast<std::size_t>(vm_index)].cpu_demand_ghz;
    std::printf("backtesting %s (%zu samples)\n\n", series.name().c_str(),
                series.size());

    const auto results = forecast::compare_models(
        series.values(), t.windows_per_day,
        /*min_history=*/static_cast<std::size_t>(2 * t.windows_per_day),
        /*horizon=*/t.windows_per_day,
        /*step=*/static_cast<std::size_t>(t.windows_per_day));
    std::printf("%-16s %8s %12s %12s %8s\n", "model", "folds", "MAPE(%)",
                "peak(%)", "RMSE");
    for (const auto& r : results) {
        std::printf("%-16s %8zu %12.1f %12.1f %8.3f\n", r.model.c_str(),
                    r.folds.size(), 100.0 * r.mean_mape,
                    100.0 * r.mean_peak_mape, r.mean_rmse);
    }
    return 0;
}

int cmd_serve(int argc, char** argv) {
    exec::ArgParser parser(
        "atm serve",
        "run atmd: a streaming prediction/resizing daemon over a Unix "
        "socket (protocol atm.serve.v1); box metadata comes from the "
        "trace, samples from clients");
    parser.positional("trace.csv", "trace supplying box/VM metadata")
        .option("socket", "", "Unix-domain socket path to listen on")
        .option("method", "cbc", "clustering method: dtw|cbc")
        .option("model", "mlp", "temporal model: mlp|seasonal-naive")
        .option("threshold", "60", "ticket threshold in percent")
        .option("epsilon", "5", "discretization factor, % of VM capacity")
        .option("train-days", "5", "rolling-window length in days")
        .option("seed", "42", "model seed")
        .option("queue-depth", "256",
                "bounded ingest queue; beyond it clients get busy + "
                "retry-after (backpressure)")
        .option("slo-ms", "0",
                "per-window latency SLO in ms; overruns shed work down "
                "the degradation ladder (0 = off)")
        .option("drift-threshold", "0.25",
                "mean-|correlation| drift that re-triggers signature search")
        .option("retrain-every", "4", "warm-retrain cadence in windows")
        .option("retrain-epochs", "8", "SGD epochs per warm retrain")
        .option("train-epochs", "40", "SGD epochs per cold fit")
        .option("max-retries", "2",
                "apply retries on transient (injected) failures")
        .option("backoff-ms", "1", "initial retry backoff")
        .option("backoff-max-ms", "100", "retry backoff cap")
        .option("journal", "",
                "epoch journal path; enables crash-safe warm restart")
        .option("metrics-out", "",
                "serve metrics report (atm.serve-metrics.v1), written "
                "atomically and refreshed while serving")
        .option("metrics-every", "64",
                "rewrite the metrics report every N applied windows")
        .option("retry-after-ms", "25", "backpressure hint sent with busy")
        .option("apply-delay-ms", "0",
                "test seam: sleep before each apply (backpressure tests)")
        .option("fault-spec", "",
                "chaos testing, e.g. serve.ingest=throw@0.1 or "
                "serve.apply=throw@0.05")
        .option("fault-seed", "42", "seed for the deterministic fault plan")
        .flag("resume", "warm-restart from --journal when its header matches");
    if (!parser.parse(argc, argv, 2)) return 0;

    serve::ServeConfig config;
    const std::string method = parser.get("method");
    if (method == "dtw") {
        config.pipeline.search.method = core::ClusteringMethod::kDtw;
    } else if (method == "cbc") {
        config.pipeline.search.method = core::ClusteringMethod::kCbc;
    } else {
        throw exec::ArgParseError("unknown --method '" + method +
                                  "' (expected dtw|cbc)");
    }
    const std::string model = parser.get("model");
    if (model == "mlp") {
        config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    } else if (model == "seasonal-naive") {
        config.pipeline.temporal = forecast::TemporalModel::kSeasonalNaive;
    } else {
        throw exec::ArgParseError("unknown --model '" + model +
                                  "' (expected mlp|seasonal-naive)");
    }
    config.pipeline.alpha = parser.get_double("threshold") / 100.0;
    config.pipeline.epsilon_pct = parser.get_double("epsilon");
    config.pipeline.train_days = parser.get_int("train-days");
    config.pipeline.seed = static_cast<unsigned>(parser.get_u64("seed"));
    config.queue_depth = parser.get_int("queue-depth");
    config.slo_ms = parser.get_double("slo-ms");
    config.drift_threshold = parser.get_double("drift-threshold");
    config.retrain_every = parser.get_int("retrain-every");
    config.retrain_epochs = parser.get_int("retrain-epochs");
    config.train_epochs = parser.get_int("train-epochs");
    config.max_retries = parser.get_int("max-retries");
    config.backoff_ms = parser.get_double("backoff-ms");
    config.backoff_max_ms = parser.get_double("backoff-max-ms");
    config.journal_path = parser.get("journal");
    config.resume = parser.get_flag("resume");
    if (const std::string& fault_spec = parser.get("fault-spec");
        !fault_spec.empty()) {
        try {
            config.faults =
                exec::FaultPlan::parse(fault_spec, parser.get_u64("fault-seed"));
        } catch (const std::invalid_argument& e) {
            throw exec::ArgParseError(e.what());
        }
    }
    if (const std::string problems = config.validate(); !problems.empty()) {
        throw exec::ArgParseError(problems);
    }

    serve::DaemonOptions options;
    options.socket_path = parser.get("socket");
    if (options.socket_path.empty()) {
        throw exec::ArgParseError("--socket is required");
    }
    options.metrics_path = parser.get("metrics-out");
    if (!options.metrics_path.empty()) {
        exec::require_writable_file("metrics-out", options.metrics_path);
    }
    if (!config.journal_path.empty()) {
        exec::require_writable_file("journal", config.journal_path);
    }
    options.metrics_every_windows = parser.get_int("metrics-every");
    options.retry_after_ms = parser.get_double("retry-after-ms");
    options.apply_delay_ms = parser.get_double("apply-delay-ms");

    install_sigint_drain();
    options.stop = &g_stop;

    const trace::Trace t = trace::read_trace_any_file(parser.get("trace.csv"));
    serve::ServeDaemon daemon(t, config, options);
    std::printf("atmd: listening on %s (%zu boxes%s)\n",
                daemon.socket_path().c_str(), t.boxes.size(),
                config.resume ? ", resume" : "");
    std::fflush(stdout);
    const int code = daemon.run();
    std::printf("atmd: drained, exit %d\n", code);
    return code;
}

int cmd_play(int argc, char** argv) {
    exec::ArgParser parser(
        "atm play",
        "stream a trace's windows into a running atmd (reference client); "
        "retries on backpressure, skips epochs the daemon already has");
    parser.positional("trace.csv", "trace whose demand samples to stream")
        .option("socket", "", "daemon socket path")
        .option("windows", "-1",
                "stream at most this many windows per box; negative = all")
        .option("connect-timeout-ms", "10000", "daemon connect timeout")
        .flag("shutdown", "send a shutdown request after streaming");
    if (!parser.parse(argc, argv, 2)) return 0;

    const std::string socket_path = parser.get("socket");
    if (socket_path.empty()) throw exec::ArgParseError("--socket is required");
    const trace::Trace t = trace::read_trace_any_file(parser.get("trace.csv"));

    serve::ServeClient client = serve::ServeClient::connect(
        socket_path, parser.get_int("connect-timeout-ms"));
    std::printf("play: connected (%d boxes at daemon%s)\n",
                client.hello().boxes,
                client.hello().resumed ? ", warm restart" : "");

    std::size_t windows = t.boxes.empty() ? 0 : t.boxes.front().length();
    if (const int limit = parser.get_int("windows"); limit >= 0) {
        windows = std::min(windows, static_cast<std::size_t>(limit));
    }
    std::uint64_t applied = 0;
    std::uint64_t warming = 0;
    std::uint64_t stale = 0;
    std::uint64_t degraded = 0;
    std::vector<double> cpu;
    std::vector<double> ram;
    for (std::size_t epoch = 0; epoch < windows; ++epoch) {
        for (const trace::BoxTrace& box : t.boxes) {
            cpu.clear();
            ram.clear();
            for (const trace::VmTrace& vm : box.vms) {
                cpu.push_back(vm.cpu_demand_ghz.values()[epoch]);
                ram.push_back(vm.ram_demand_gb.values()[epoch]);
            }
            const serve::Response response =
                client.window_retry(box.name, epoch, cpu, ram);
            if (response.type == "error") {
                std::fprintf(stderr, "play: %s\n", response.message.c_str());
                return 1;
            }
            if (response.status == "applied") {
                ++applied;
                if (response.ladder != 0) ++degraded;
            } else if (response.status == "warming") {
                ++warming;
            } else if (response.status == "stale") {
                // Warm restart: the daemon's journal already has this
                // window; re-sending from epoch 0 is the protocol.
                ++stale;
            } else {
                std::fprintf(stderr, "play: box %s epoch %zu: %s\n",
                             box.name.c_str(), epoch,
                             response.status.c_str());
                return 1;
            }
        }
    }
    std::printf("play: %llu applied (%llu degraded), %llu warming, "
                "%llu already journaled\n",
                static_cast<unsigned long long>(applied),
                static_cast<unsigned long long>(degraded),
                static_cast<unsigned long long>(warming),
                static_cast<unsigned long long>(stale));
    if (parser.get_flag("shutdown")) {
        client.shutdown();
        std::printf("play: daemon shutdown requested\n");
    }
    return 0;
}

void print_usage(std::FILE* out) {
    std::fprintf(out,
                 "atm — Active Ticket Managing (DSN'16 reproduction)\n"
                 "usage: atm <subcommand> [args] [--help]\n\n"
                 "subcommands:\n"
                 "  generate      synthesize a monitoring trace as CSV\n"
                 "  characterize  ticket/correlation report over a trace\n"
                 "  predict       fleet next-day prediction accuracy (--jobs N)\n"
                 "  resize        fleet prediction-driven resizing (--jobs N)\n"
                 "  backtest      temporal-model comparison on one series\n"
                 "  serve         run atmd, the streaming daemon (Unix socket)\n"
                 "  play          stream a trace into a running atmd\n"
                 "  trace         pack/unpack between CSV and binary traces\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2 || std::string(argv[1]) == "--help") {
        print_usage(argc < 2 ? stderr : stdout);
        return argc < 2 ? 2 : 0;
    }
    try {
        const std::string cmd = argv[1];
        if (cmd == "generate") return cmd_generate(argc, argv);
        if (cmd == "characterize") return cmd_characterize(argc, argv);
        if (cmd == "predict") return cmd_predict(argc, argv);
        if (cmd == "resize") return cmd_resize(argc, argv);
        if (cmd == "backtest") return cmd_backtest(argc, argv);
        if (cmd == "serve") return cmd_serve(argc, argv);
        if (cmd == "play") return cmd_play(argc, argv);
        if (cmd == "trace") return cmd_trace(argc, argv);
        std::fprintf(stderr, "atm: unknown subcommand '%s'\n", cmd.c_str());
        print_usage(stderr);
        return 2;
    } catch (const atm::exec::ArgParseError& e) {
        std::fprintf(stderr, "atm: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "atm: %s\n", e.what());
        return 1;
    }
}
