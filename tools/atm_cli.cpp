// atm — command-line front end for the ATM library.
//
// Subcommands:
//   atm generate <out.csv> [--boxes N] [--days D] [--seed S]
//       synthesize a monitoring trace and write it as CSV
//   atm characterize <trace.csv> [--threshold P]
//       Section-II style report: ticket distribution, culprits, correlations
//   atm predict <trace.csv> [--box NAME] [--method dtw|cbc] [--model M]
//       signature search + next-day prediction accuracy per box
//   atm resize <trace.csv> [--threshold P] [--epsilon E] [--policy P]
//       next-day resizing from predicted demands; prints per-box tickets
//   atm backtest <trace.csv> --box NAME --vm INDEX
//       rolling-origin comparison of every temporal model on one series
//
// All subcommands accept CSVs in the schema of src/tracegen/trace_io.hpp,
// so real monitoring exports can be analyzed the same way as synthetic
// traces.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "forecast/backtest.hpp"
#include "ticketing/characterization.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"
#include "tracegen/trace_io.hpp"

namespace {

using namespace atm;

/// Minimal flag parser: --key value pairs after the positional arguments.
std::map<std::string, std::string> parse_flags(int argc, char** argv, int first) {
    std::map<std::string, std::string> flags;
    for (int i = first; i + 1 < argc; i += 2) {
        if (std::strncmp(argv[i], "--", 2) != 0) {
            throw std::runtime_error(std::string("expected flag, got ") + argv[i]);
        }
        flags[argv[i] + 2] = argv[i + 1];
    }
    return flags;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

int cmd_generate(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: atm generate <out.csv> [--boxes N] [--days D] [--seed S]\n");
        return 2;
    }
    const auto flags = parse_flags(argc, argv, 3);
    trace::TraceGenOptions options;
    options.num_boxes = std::stoi(flag_or(flags, "boxes", "50"));
    options.num_days = std::stoi(flag_or(flags, "days", "7"));
    options.seed = std::stoull(flag_or(flags, "seed", "20150403"));
    const trace::Trace t = trace::generate_trace(options);
    trace::write_trace_csv_file(argv[2], t);
    std::printf("wrote %zu boxes / %zu VMs / %d days to %s\n", t.boxes.size(),
                t.total_vms(), options.num_days, argv[2]);
    return 0;
}

int cmd_characterize(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr, "usage: atm characterize <trace.csv> [--threshold P]\n");
        return 2;
    }
    const auto flags = parse_flags(argc, argv, 3);
    const double threshold = std::stod(flag_or(flags, "threshold", "60"));
    const trace::Trace t = trace::read_trace_csv_file(argv[2]);
    std::printf("trace: %zu boxes, %zu VMs\n\n", t.boxes.size(), t.total_vms());

    const auto c = ticketing::characterize_tickets(t, threshold);
    std::printf("threshold %.0f%%:\n", threshold);
    std::printf("  boxes with tickets: CPU %.1f%%  RAM %.1f%%\n",
                100 * c.boxes_with_cpu_tickets, 100 * c.boxes_with_ram_tickets);
    std::printf("  tickets/box:        CPU %.1f (+-%.1f)  RAM %.1f (+-%.1f)\n",
                c.mean_cpu_tickets_per_box, c.std_cpu_tickets_per_box,
                c.mean_ram_tickets_per_box, c.std_ram_tickets_per_box);
    std::printf("  culprit VMs:        CPU %.2f  RAM %.2f\n", c.mean_cpu_culprits,
                c.mean_ram_culprits);

    const auto corr = ticketing::characterize_correlations(t);
    std::printf("\ncorrelation (mean of per-box medians):\n");
    std::printf("  intra-CPU %.3f  intra-RAM %.3f  inter-all %.3f  inter-pair %.3f\n",
                ts::mean(corr.intra_cpu), ts::mean(corr.intra_ram),
                ts::mean(corr.inter_all), ts::mean(corr.inter_pair));
    return 0;
}

core::PipelineConfig config_from_flags(
    const std::map<std::string, std::string>& flags) {
    core::PipelineConfig config;
    const std::string method = flag_or(flags, "method", "cbc");
    config.search.method = method == "dtw" ? core::ClusteringMethod::kDtw
                                           : core::ClusteringMethod::kCbc;
    const std::string model = flag_or(flags, "model", "mlp");
    if (model == "mlp") {
        config.temporal = forecast::TemporalModel::kNeuralNetwork;
    } else if (model == "ar") {
        config.temporal = forecast::TemporalModel::kAutoregressive;
    } else if (model == "holt-winters") {
        config.temporal = forecast::TemporalModel::kHoltWinters;
    } else if (model == "seasonal-naive") {
        config.temporal = forecast::TemporalModel::kSeasonalNaive;
    } else if (model == "ensemble") {
        config.temporal = forecast::TemporalModel::kEnsemble;
    } else {
        throw std::runtime_error("unknown --model " + model);
    }
    config.alpha = std::stod(flag_or(flags, "threshold", "60")) / 100.0;
    config.epsilon_pct = std::stod(flag_or(flags, "epsilon", "5"));
    config.train_days = std::stoi(flag_or(flags, "train-days", "5"));
    return config;
}

int cmd_predict(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: atm predict <trace.csv> [--box NAME] [--method dtw|cbc] "
                     "[--model mlp|ar|holt-winters|seasonal-naive|ensemble]\n");
        return 2;
    }
    const auto flags = parse_flags(argc, argv, 3);
    const core::PipelineConfig config = config_from_flags(flags);
    const std::string only_box = flag_or(flags, "box", "");
    const trace::Trace t = trace::read_trace_csv_file(argv[2]);

    std::printf("%-12s %10s %10s %12s %10s\n", "box", "series", "signatures",
                "APE all(%)", "peak(%)");
    std::vector<double> apes;
    for (const trace::BoxTrace& box : t.boxes) {
        if (!only_box.empty() && box.name != only_box) continue;
        if (box.has_gaps) continue;
        const auto result = core::run_pipeline_on_box(box, t.windows_per_day,
                                                      config, {});
        apes.push_back(100.0 * result.ape_all);
        std::printf("%-12s %10zu %10zu %12.1f %10.1f\n", box.name.c_str(),
                    box.vms.size() * 2, result.search.signatures.size(),
                    100.0 * result.ape_all, 100.0 * result.ape_peak);
    }
    if (!apes.empty()) {
        std::printf("\nmean APE over %zu gap-free boxes: %.1f%%\n", apes.size(),
                    ts::mean(apes));
    }
    return 0;
}

int cmd_resize(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: atm resize <trace.csv> [--threshold P] [--epsilon E] "
                     "[--policy atm|max-min|stingy] [--model M]\n");
        return 2;
    }
    const auto flags = parse_flags(argc, argv, 3);
    const core::PipelineConfig config = config_from_flags(flags);
    const std::string policy_name = flag_or(flags, "policy", "atm");
    resize::ResizePolicy policy = resize::ResizePolicy::kAtmGreedy;
    if (policy_name == "max-min") {
        policy = resize::ResizePolicy::kMaxMinFairness;
    } else if (policy_name == "stingy") {
        policy = resize::ResizePolicy::kStingy;
    } else if (policy_name != "atm") {
        throw std::runtime_error("unknown --policy " + policy_name);
    }
    const trace::Trace t = trace::read_trace_csv_file(argv[2]);

    long before = 0;
    long after = 0;
    std::printf("%-12s %14s %14s\n", "box", "CPU tickets", "RAM tickets");
    for (const trace::BoxTrace& box : t.boxes) {
        if (box.has_gaps) continue;
        const auto result =
            core::run_pipeline_on_box(box, t.windows_per_day, config, {policy});
        const auto& p = result.policies[0];
        std::printf("%-12s %6d -> %-6d %6d -> %-6d\n", box.name.c_str(),
                    p.cpu_before, p.cpu_after, p.ram_before, p.ram_after);
        before += p.cpu_before + p.ram_before;
        after += p.cpu_after + p.ram_after;
    }
    std::printf("\ntotal: %ld -> %ld tickets (%.1f%% reduction, policy %s)\n",
                before, after,
                before > 0 ? 100.0 * static_cast<double>(before - after) /
                                 static_cast<double>(before)
                           : 0.0,
                policy_name.c_str());
    return 0;
}

int cmd_backtest(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: atm backtest <trace.csv> --box NAME --vm INDEX "
                     "[--resource cpu|ram]\n");
        return 2;
    }
    const auto flags = parse_flags(argc, argv, 3);
    const std::string box_name = flag_or(flags, "box", "");
    const int vm_index = std::stoi(flag_or(flags, "vm", "0"));
    const bool ram = flag_or(flags, "resource", "cpu") == "ram";
    const trace::Trace t = trace::read_trace_csv_file(argv[2]);

    const trace::BoxTrace* box = nullptr;
    for (const trace::BoxTrace& b : t.boxes) {
        if (box_name.empty() || b.name == box_name) {
            box = &b;
            break;
        }
    }
    if (box == nullptr || vm_index < 0 ||
        static_cast<std::size_t>(vm_index) >= box->vms.size()) {
        std::fprintf(stderr, "atm backtest: box/vm not found\n");
        return 2;
    }
    const auto& series = ram ? box->vms[static_cast<std::size_t>(vm_index)].ram_demand_gb
                             : box->vms[static_cast<std::size_t>(vm_index)].cpu_demand_ghz;
    std::printf("backtesting %s (%zu samples)\n\n", series.name().c_str(),
                series.size());

    const auto results = forecast::compare_models(
        series.values(), t.windows_per_day,
        /*min_history=*/static_cast<std::size_t>(2 * t.windows_per_day),
        /*horizon=*/t.windows_per_day,
        /*step=*/static_cast<std::size_t>(t.windows_per_day));
    std::printf("%-16s %8s %12s %12s %8s\n", "model", "folds", "MAPE(%)",
                "peak(%)", "RMSE");
    for (const auto& r : results) {
        std::printf("%-16s %8zu %12.1f %12.1f %8.3f\n", r.model.c_str(),
                    r.folds.size(), 100.0 * r.mean_mape,
                    100.0 * r.mean_peak_mape, r.mean_rmse);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr,
                     "atm — Active Ticket Managing (DSN'16 reproduction)\n"
                     "subcommands: generate, characterize, predict, resize, backtest\n");
        return 2;
    }
    try {
        const std::string cmd = argv[1];
        if (cmd == "generate") return cmd_generate(argc, argv);
        if (cmd == "characterize") return cmd_characterize(argc, argv);
        if (cmd == "predict") return cmd_predict(argc, argv);
        if (cmd == "resize") return cmd_resize(argc, argv);
        if (cmd == "backtest") return cmd_backtest(argc, argv);
        std::fprintf(stderr, "atm: unknown subcommand '%s'\n", cmd.c_str());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "atm: %s\n", e.what());
        return 1;
    }
}
