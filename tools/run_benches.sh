#!/usr/bin/env sh
# Regenerates the two bench JSON artifacts (schema atm.bench.v1):
#   BENCH_kernels.json — google-benchmark microbench suite (bench_perf_micro)
#   BENCH_fleet.json   — fleet-executor scaling rows (bench_fleet_scaling)
#
# Usage: tools/run_benches.sh [build-dir] [out-dir]
#   build-dir  defaults to ./build (must already be configured; a Release
#              build gives the numbers quoted in README/DESIGN)
#   out-dir    defaults to the current directory
#
# Knobs (forwarded to the benches):
#   ATM_BENCH_MIN_TIME  --benchmark_min_time value (default 0.05; newer
#                       google-benchmark also accepts suffixed forms
#                       like 0.01s)
#   ATM_BOXES / ATM_MAX_JOBS / ATM_SEED  fleet-scaling scale knobs
#   ATM_PAPER_SCALE=1   also time the paper-scale fleet (6000 boxes /
#                       ~80K VMs / 7 days, jobs 1 and 8) and record the
#                       rows under "paper" in BENCH_fleet.json — minutes
#                       of work, so off by default
#   ATM_PAPER_BOXES     paper-scale box count override
#   ATM_BENCH_MIN_SPEEDUP  override the scaling-assertion floor (0 = off)
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
MIN_TIME="${ATM_BENCH_MIN_TIME:-0.05}"
mkdir -p "$OUT_DIR"

cmake --build "$BUILD_DIR" --target bench_perf_micro bench_fleet_scaling

"$BUILD_DIR/bench/bench_perf_micro" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$OUT_DIR/BENCH_kernels.json" \
    --benchmark_out_format=json

ATM_BENCH_JSON="$OUT_DIR/BENCH_fleet.json" "$BUILD_DIR/bench/bench_fleet_scaling"

echo "bench artifacts:"
ls -l "$OUT_DIR/BENCH_kernels.json" "$OUT_DIR/BENCH_fleet.json"
