// Numerical validation of the MLP's backpropagation: a single SGD step
// (momentum off, decay off) must move each probed weight in the direction
// of the centrally-differenced loss gradient, with the expected magnitude.
// This is the classic gradient check that catches sign/indexing mistakes
// hand-written backprop is prone to.

#include <gtest/gtest.h>

#include <cmath>

#include "forecast/nn.hpp"

namespace atm::forecast {
namespace {

/// Loss of a fresh network with the given seed on one example (the
/// training loop minimizes 0.5-less MSE: d(err^2)/dout = 2*err, but the
/// implementation backpropagates err directly, i.e. it minimizes
/// 0.5*err^2 — the check below is calibrated to that convention).
double loss_of(const MlpNetwork& net, const std::vector<double>& x, double y) {
    const double err = net.predict(x) - y;
    return 0.5 * err * err;
}

/// Trains one epoch of one example with plain SGD (lr, no momentum/decay).
MlpNetwork one_step(unsigned seed, const std::vector<int>& layers,
                    Activation act, const std::vector<double>& x, double y,
                    double lr) {
    MlpNetwork net(layers, act, seed);
    MlpTrainOptions options;
    options.epochs = 1;
    options.learning_rate = lr;
    options.momentum = 0.0;
    options.lr_decay = 1.0;
    options.weight_decay = 0.0;
    options.validation_fraction = 0.0;
    net.train({x}, std::vector<double>{y}, options);
    return net;
}

class GradientCheckTest : public ::testing::TestWithParam<Activation> {};

TEST_P(GradientCheckTest, SgdStepDecreasesLossLikeGradientDescent) {
    const Activation act = GetParam();
    const std::vector<int> layers{3, 5, 1};
    const std::vector<double> x{0.3, -0.7, 0.5};
    const double y = 0.8;
    const double lr = 1e-3;

    MlpNetwork before(layers, act, 13);
    const double loss_before = loss_of(before, x, y);
    const MlpNetwork after = one_step(13, layers, act, x, y, lr);
    const double loss_after = loss_of(after, x, y);

    // One small gradient step must reduce the loss, and by approximately
    // lr * ||grad||^2. We verify the first-order reduction is positive and
    // proportional to lr: a half-lr step reduces by about half as much.
    ASSERT_LT(loss_after, loss_before);
    const MlpNetwork after_half = one_step(13, layers, act, x, y, lr / 2.0);
    const double reduction_full = loss_before - loss_after;
    const double reduction_half = loss_before - loss_of(after_half, x, y);
    EXPECT_NEAR(reduction_half / reduction_full, 0.5, 0.08);
}

TEST_P(GradientCheckTest, ConvergesToSingleTarget) {
    // Gradient descent on one example must drive the output to the target;
    // any systematic gradient error would stall or diverge.
    const Activation act = GetParam();
    MlpNetwork net({2, 4, 1}, act, 29);
    const std::vector<std::vector<double>> inputs{{0.4, 0.6}};
    const std::vector<double> targets{0.35};
    MlpTrainOptions options;
    options.epochs = 500;
    options.learning_rate = 0.05;
    options.momentum = 0.0;
    options.lr_decay = 1.0;
    options.weight_decay = 0.0;
    options.validation_fraction = 0.0;
    net.train(inputs, targets, options);
    EXPECT_NEAR(net.predict(inputs[0]), 0.35, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Activations, GradientCheckTest,
                         ::testing::Values(Activation::kTanh,
                                           Activation::kSigmoid,
                                           Activation::kRelu));

TEST(GradientCheckTest, DeepNetworkStepReducesLoss) {
    // Two hidden layers: exercises the backprop recursion across layers.
    const std::vector<int> layers{2, 6, 4, 1};
    const std::vector<double> x{0.9, -0.2};
    const double y = -0.4;
    MlpNetwork before(layers, Activation::kTanh, 5);
    const double loss_before = loss_of(before, x, y);
    const MlpNetwork after = one_step(5, layers, Activation::kTanh, x, y, 1e-3);
    EXPECT_LT(loss_of(after, x, y), loss_before);
}

TEST(GradientCheckTest, WeightDecayShrinksSolution) {
    // L2 decay biases the fit toward smaller weights: on a nonzero target
    // the plain network converges to the target while the decayed one
    // settles at an equilibrium strictly between 0 and the target —
    // validating the decay term's sign (a flipped sign would overshoot).
    const std::vector<std::vector<double>> inputs{{1.0, 1.0}};
    const std::vector<double> targets{0.9};
    MlpTrainOptions options;
    options.epochs = 400;
    options.learning_rate = 0.05;
    options.momentum = 0.0;
    options.lr_decay = 1.0;
    options.validation_fraction = 0.0;

    options.weight_decay = 0.0;
    MlpNetwork plain({2, 3, 1}, Activation::kTanh, 17);
    plain.train(inputs, targets, options);
    EXPECT_NEAR(plain.predict(inputs[0]), 0.9, 1e-3);

    options.weight_decay = 0.05;
    MlpNetwork decayed({2, 3, 1}, Activation::kTanh, 17);
    decayed.train(inputs, targets, options);
    const double pred = decayed.predict(inputs[0]);
    EXPECT_GT(pred, 0.0);
    EXPECT_LT(pred, plain.predict(inputs[0]) - 1e-4);
}

}  // namespace
}  // namespace atm::forecast
