#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "forecast/backtest.hpp"
#include "forecast/seasonal_naive.hpp"

namespace atm::forecast {
namespace {

std::vector<double> periodic(int n, int period) {
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
        xs[static_cast<std::size_t>(t)] =
            50.0 + 20.0 * std::sin(2.0 * std::numbers::pi * t / period);
    }
    return xs;
}

TEST(BacktestTest, FoldLayout) {
    const auto series = periodic(100, 10);
    const auto result = backtest(
        series, [] { return std::make_unique<SeasonalNaiveForecaster>(10); },
        /*min_history=*/50, /*horizon=*/10, /*step=*/10);
    // Origins 50, 60, 70, 80, 90.
    ASSERT_EQ(result.folds.size(), 5u);
    EXPECT_EQ(result.folds.front().origin, 50u);
    EXPECT_EQ(result.folds.back().origin, 90u);
    EXPECT_EQ(result.model, "seasonal-naive");
}

TEST(BacktestTest, PerfectModelZeroError) {
    const auto series = periodic(120, 12);
    const auto result = backtest(
        series, [] { return std::make_unique<SeasonalNaiveForecaster>(12); },
        48, 12, 12);
    EXPECT_NEAR(result.mean_mape, 0.0, 1e-9);
    EXPECT_NEAR(result.mean_rmse, 0.0, 1e-9);
}

TEST(BacktestTest, WrongPeriodHasError) {
    const auto series = periodic(120, 12);
    const auto result = backtest(
        series, [] { return std::make_unique<SeasonalNaiveForecaster>(7); },
        48, 12, 12);
    EXPECT_GT(result.mean_mape, 0.05);
}

TEST(BacktestTest, TooShortThrows) {
    const auto series = periodic(20, 10);
    EXPECT_THROW(backtest(series,
                          [] { return std::make_unique<SeasonalNaiveForecaster>(10); },
                          50, 10, 10),
                 std::invalid_argument);
    EXPECT_THROW(backtest(series,
                          [] { return std::make_unique<SeasonalNaiveForecaster>(10); },
                          10, 0, 10),
                 std::invalid_argument);
}

TEST(CompareModelsTest, SortedByMape) {
    const auto series = periodic(96 * 4, 96);
    const auto results = compare_models(series, 96, 96 * 2, 96, 96);
    ASSERT_EQ(results.size(), 5u);
    for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_LE(results[i - 1].mean_mape, results[i].mean_mape);
    }
    // On a perfectly periodic series the seasonal-naive must win outright.
    EXPECT_EQ(results.front().model, "seasonal-naive");
    EXPECT_NEAR(results.front().mean_mape, 0.0, 1e-9);
}

}  // namespace
}  // namespace atm::forecast
