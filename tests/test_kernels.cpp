// Kernel regression suite for the contiguous, allocation-free numeric
// kernels (ctest label `kernels`): every rewritten hot loop — banded DTW
// with workspace reuse, the pair-chunked distance matrix, the flattened
// MLP, the fused OLS/ridge solvers — is pinned against a straightforward
// reference implementation, bit-identical where the refactor reorders no
// arithmetic, and the zero-allocation steady-state contract is enforced
// with a counting global operator new.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <span>
#include <vector>

#include "cluster/dtw.hpp"
#include "exec/thread_pool.hpp"
#include "forecast/nn.hpp"
#include "linalg/flat_matrix.hpp"
#include "linalg/matrix.hpp"
#include "linalg/ols.hpp"
#include "linalg/ridge.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/metrics.hpp"

// ---- Counting allocator -----------------------------------------------------
// Global operator new override counting every heap allocation in the
// binary. Tests measure the count across a region that must be
// allocation-free in the steady state (see DESIGN.md "Verifying the
// allocation-free claim"). The counter is atomic so pool threads in the
// matrix tests stay well-defined.

namespace {
std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
    return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
    throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace atm;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> wave(std::size_t n, unsigned seed, double phase) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> noise(0.0, 0.05);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = 0.5 + 0.4 * std::sin(0.13 * static_cast<double>(i) + phase) +
                 noise(rng);
    }
    return out;
}

// Textbook full-table DTW — the recurrence straight from the paper, no
// rolling rows, no band. Arithmetic per cell matches the kernel exactly.
double reference_dtw_full(std::span<const double> p, std::span<const double> q) {
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 && m == 0) return 0.0;
    if (n == 0 || m == 0) return kInf;
    std::vector<std::vector<double>> table(n + 1, std::vector<double>(m + 1, kInf));
    table[0][0] = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            const double d = diff * diff;
            const double best =
                std::min({table[i - 1][j - 1], table[i - 1][j], table[i][j - 1]});
            table[i][j] = best == kInf ? kInf : d + best;
        }
    }
    return table[n][m];
}

// The pre-refactor banded kernel: per-call DP-row allocations and a full
// O(m) row reset per DP row (instead of the band window only). Same band
// bounds, same cell arithmetic.
double reference_dtw_banded(std::span<const double> p, std::span<const double> q,
                            int band) {
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 && m == 0) return 0.0;
    if (n == 0 || m == 0) return kInf;
    std::vector<double> prev(m + 1, kInf);
    std::vector<double> curr(m + 1, kInf);
    prev[0] = 0.0;
    const double slope =
        n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;
    for (std::size_t i = 1; i <= n; ++i) {
        std::fill(curr.begin(), curr.end(), kInf);
        std::size_t j_lo = 1;
        std::size_t j_hi = m;
        if (band >= 0) {
            const double center = slope * static_cast<double>(i);
            const auto lo = static_cast<long long>(std::floor(center)) - band;
            const auto hi = static_cast<long long>(std::ceil(center)) + band;
            j_lo = static_cast<std::size_t>(std::max(1LL, lo));
            j_hi = static_cast<std::size_t>(std::min(static_cast<long long>(m), hi));
        }
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            const double d = diff * diff;
            const double best = std::min({prev[j - 1], prev[j], curr[j - 1]});
            curr[j] = best == kInf ? kInf : d + best;
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

// ---- DTW -------------------------------------------------------------------

TEST(KernelsDtwTest, UnbandedMatchesFullTableReferenceBitExactly) {
    for (const auto& [np, nq] : {std::pair<std::size_t, std::size_t>{96, 96},
                                 {96, 131},
                                 {1, 96},
                                 {17, 3}}) {
        const std::vector<double> p = wave(np, 1, 0.0);
        const std::vector<double> q = wave(nq, 2, 0.9);
        EXPECT_EQ(cluster::dtw_distance(p, q), reference_dtw_full(p, q))
            << np << "x" << nq;
    }
}

TEST(KernelsDtwTest, BandedMatchesFullRowResetReferenceBitExactly) {
    // The band-window-only row reset must be invisible in the result: the
    // window is monotone in i, so cells outside it still hold the +inf
    // the call wrote initially, exactly like the full per-row reset.
    for (const int band : {0, 1, 4, 8, 50}) {
        for (const auto& [np, nq] : {std::pair<std::size_t, std::size_t>{96, 96},
                                     {96, 131},
                                     {131, 96},
                                     {7, 96}}) {
            const std::vector<double> p = wave(np, 3, 0.2);
            const std::vector<double> q = wave(nq, 4, 1.3);
            EXPECT_EQ(cluster::dtw_distance(p, q, band),
                      reference_dtw_banded(p, q, band))
                << "band=" << band << " " << np << "x" << nq;
        }
    }
}

TEST(KernelsDtwTest, WorkspaceReuseAcrossSizesMatchesFreshWorkspaces) {
    // One workspace carried through pairs of different lengths and bands
    // must give the same answers as a fresh workspace per call — each
    // call owns every cell it reads.
    cluster::DtwWorkspace shared;
    const std::vector<std::size_t> sizes{96, 33, 131, 5, 96};
    for (std::size_t a = 0; a < sizes.size(); ++a) {
        for (const int band : {-1, 3, 8}) {
            const std::vector<double> p = wave(sizes[a], 10 + static_cast<unsigned>(a), 0.1);
            const std::vector<double> q =
                wave(sizes[(a + 1) % sizes.size()], 20 + static_cast<unsigned>(a), 0.7);
            cluster::DtwWorkspace fresh;
            EXPECT_EQ(cluster::dtw_distance(p, q, band, shared),
                      cluster::dtw_distance(p, q, band, fresh))
                << "pair " << a << " band " << band;
        }
    }
}

TEST(KernelsDtwTest, SteadyStatePairLoopDoesNotAllocate) {
    const std::vector<double> p = wave(96, 5, 0.0);
    const std::vector<double> q = wave(96, 6, 0.5);
    cluster::DtwWorkspace workspace;
    // Warm-up sizes the rows; everything after must be allocation-free.
    (void)cluster::dtw_distance(p, q, 8, workspace);
    (void)cluster::dtw_distance(p, q, -1, workspace);
    const std::uint64_t before = allocation_count();
    double acc = 0.0;
    for (int rep = 0; rep < 25; ++rep) {
        acc += cluster::dtw_distance(p, q, 8, workspace);
        acc += cluster::dtw_distance(p, q, -1, workspace);
    }
    EXPECT_EQ(allocation_count() - before, 0u);
    EXPECT_GT(acc, 0.0);
}

TEST(KernelsDtwTest, DistanceMatrixIsContiguousSymmetricAndPairExact) {
    std::vector<std::vector<double>> series;
    for (unsigned s = 0; s < 7; ++s) series.push_back(wave(96, s, 0.3 * s));
    const la::FlatMatrix dist = cluster::dtw_distance_matrix(series, 8);
    ASSERT_EQ(dist.rows(), series.size());
    ASSERT_EQ(dist.cols(), series.size());
    // One contiguous block, row-major.
    EXPECT_EQ(&dist[1][0], dist.data().data() + series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        EXPECT_EQ(dist(i, i), 0.0);
        for (std::size_t j = i + 1; j < series.size(); ++j) {
            EXPECT_EQ(dist(i, j), dist(j, i));
            EXPECT_EQ(dist(i, j), reference_dtw_banded(series[i], series[j], 8));
        }
    }
}

TEST(KernelsDtwTest, PairChunkedMatrixBitIdenticalAcrossWorkerCounts) {
    std::vector<std::vector<double>> series;
    for (unsigned s = 0; s < 9; ++s) series.push_back(wave(80, 40 + s, 0.2 * s));
    obs::MetricsRegistry serial_metrics;
    const la::FlatMatrix serial =
        cluster::dtw_distance_matrix(series, 6, nullptr, &serial_metrics);
    for (const unsigned workers : {1u, 2u, 5u}) {
        exec::ThreadPool pool(workers);
        obs::MetricsRegistry pool_metrics;
        const la::FlatMatrix parallel =
            cluster::dtw_distance_matrix(series, 6, &pool, &pool_metrics);
        EXPECT_EQ(serial, parallel) << workers << " workers";
        // Counter totals are chunking-invariant.
        EXPECT_EQ(serial_metrics.snapshot().counter("cluster.dtw.pairs"),
                  pool_metrics.snapshot().counter("cluster.dtw.pairs"));
        EXPECT_EQ(serial_metrics.snapshot().counter("cluster.dtw.cells"),
                  pool_metrics.snapshot().counter("cluster.dtw.cells"));
    }
}

TEST(KernelsDtwTest, AlignDistanceMatchesDistanceKernel) {
    const std::vector<double> p = wave(60, 7, 0.0);
    const std::vector<double> q = wave(75, 8, 1.1);
    const cluster::DtwAlignment alignment = cluster::dtw_align(p, q);
    EXPECT_EQ(alignment.distance, cluster::dtw_distance(p, q));
    ASSERT_FALSE(alignment.path.empty());
    EXPECT_EQ(alignment.path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
    EXPECT_EQ(alignment.path.back(),
              (std::pair<std::size_t, std::size_t>{p.size() - 1, q.size() - 1}));
}

// ---- FlatMatrix ------------------------------------------------------------

TEST(KernelsFlatMatrixTest, ConvertsFromNestedVectorsAndRejectsRagged) {
    const std::vector<std::vector<double>> nested{{1.0, 2.0}, {3.0, 4.0}};
    const la::FlatMatrix m = nested;
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m(1, 0), 3.0);
    EXPECT_EQ(m[0][1], 2.0);
    const std::vector<std::vector<double>> ragged{{1.0, 2.0}, {3.0}};
    EXPECT_THROW(la::FlatMatrix{ragged}, std::invalid_argument);
}

// ---- MLP -------------------------------------------------------------------

// Nested-vector reference network replicating the historical layout:
// weights[l][j][i] drawn row-by-row from mt19937(seed), tanh hidden
// units, linear output. The flattened MlpNetwork must reproduce its
// forward pass bit-for-bit for the same seed.
struct ReferenceMlp {
    std::vector<std::vector<std::vector<double>>> weights;
    std::vector<std::vector<double>> biases;

    ReferenceMlp(const std::vector<int>& layer_sizes, unsigned seed) {
        std::mt19937 rng(seed);
        for (std::size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
            const int fan_in = layer_sizes[l];
            const int fan_out = layer_sizes[l + 1];
            const double limit =
                std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
            std::uniform_real_distribution<double> dist(-limit, limit);
            std::vector<std::vector<double>> w(static_cast<std::size_t>(fan_out));
            for (auto& row : w) {
                row.resize(static_cast<std::size_t>(fan_in));
                for (double& x : row) x = dist(rng);
            }
            weights.push_back(std::move(w));
            biases.emplace_back(static_cast<std::size_t>(fan_out), 0.0);
        }
    }

    double predict(std::span<const double> inputs) const {
        std::vector<double> acts(inputs.begin(), inputs.end());
        for (std::size_t l = 0; l < weights.size(); ++l) {
            std::vector<double> next(weights[l].size());
            for (std::size_t j = 0; j < weights[l].size(); ++j) {
                double acc = biases[l][j];
                for (std::size_t i = 0; i < weights[l][j].size(); ++i) {
                    acc += weights[l][j][i] * acts[i];
                }
                next[j] = l + 1 == weights.size() ? acc : std::tanh(acc);
            }
            acts = std::move(next);
        }
        return acts.front();
    }
};

TEST(KernelsMlpTest, FlattenedForwardMatchesNestedReferenceBitExactly) {
    // Bit-exactness vs the nested reference holds on the scalar kernel
    // path only — vectorized forward layers reassociate their dot
    // products (linalg/simd/simd.hpp tolerance policy), so this test
    // pins the scalar path explicitly (and restores the dispatch after).
    const simd::Path ambient = simd::active_path();
    simd::set_path(simd::Path::kScalar);
    const std::vector<int> layer_sizes{8, 6, 4, 1};
    const forecast::MlpNetwork net(layer_sizes, forecast::Activation::kTanh, 42);
    const ReferenceMlp reference(layer_sizes, 42);
    for (unsigned s = 0; s < 5; ++s) {
        const std::vector<double> x = wave(8, 100 + s, 0.3 * s);
        EXPECT_EQ(net.predict(x), reference.predict(x)) << "input " << s;
    }
    simd::set_path(ambient);
}

TEST(KernelsMlpTest, TrainWithAndWithoutWorkspaceIsBitIdentical) {
    const std::vector<double> s = wave(160, 11, 0.0);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (std::size_t i = 6; i < s.size(); ++i) {
        inputs.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(i - 6),
                            s.begin() + static_cast<std::ptrdiff_t>(i));
        targets.push_back(s[i]);
    }
    forecast::MlpTrainOptions options;
    options.epochs = 12;

    forecast::MlpNetwork plain({6, 5, 1}, forecast::Activation::kTanh, 7);
    forecast::MlpNetwork with_ws({6, 5, 1}, forecast::Activation::kTanh, 7);
    forecast::MlpWorkspace workspace;
    const double loss_plain = plain.train(inputs, targets, options);
    const double loss_ws = with_ws.train(inputs, targets, options, &workspace);
    EXPECT_EQ(loss_plain, loss_ws);
    for (unsigned q = 0; q < 4; ++q) {
        const std::vector<double> x = wave(6, 200 + q, 0.1 * q);
        EXPECT_EQ(plain.predict(x), with_ws.predict(x, workspace));
    }
}

TEST(KernelsMlpTest, TrainAllocationCountIndependentOfEpochs) {
    const std::vector<double> s = wave(140, 13, 0.4);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (std::size_t i = 6; i < s.size(); ++i) {
        inputs.emplace_back(s.begin() + static_cast<std::ptrdiff_t>(i - 6),
                            s.begin() + static_cast<std::ptrdiff_t>(i));
        targets.push_back(s[i]);
    }
    // Per-sample SGD must be allocation-free: the only allocations a
    // train() call may make are per-call setup (the shuffle order vector),
    // never per-epoch or per-sample.
    const auto allocations_for = [&](int epochs) {
        forecast::MlpNetwork net({6, 5, 1}, forecast::Activation::kTanh, 3);
        forecast::MlpWorkspace workspace;
        forecast::MlpTrainOptions options;
        options.epochs = 1;
        net.train(inputs, targets, options, &workspace);  // warm workspace
        options.epochs = epochs;
        const std::uint64_t before = allocation_count();
        net.train(inputs, targets, options, &workspace);
        return allocation_count() - before;
    };
    const std::uint64_t few = allocations_for(3);
    const std::uint64_t many = allocations_for(24);
    EXPECT_EQ(few, many) << "per-epoch allocations detected";
}

// ---- OLS / ridge -----------------------------------------------------------

TEST(KernelsOlsTest, ImplicitQMatchesExplicitQrReference) {
    // The fused solver applies Householder reflectors to b in flight; the
    // pre-refactor path multiplied by an explicitly accumulated Qᵀ. Both
    // compute the same projection through differently-ordered sums, so
    // the results agree to rounding (~1e-12 here), not bit-for-bit —
    // which is why the golden fleet suite (1e-9 tolerance on doubles,
    // exact on counters) gates this refactor end-to-end.
    std::mt19937 rng(99);
    std::normal_distribution<double> noise(0.0, 0.1);
    const std::size_t n = 120;
    la::Matrix a(n, 4);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / 10.0;
        a(i, 0) = 1.0;
        a(i, 1) = std::sin(t);
        a(i, 2) = std::cos(0.7 * t);
        a(i, 3) = t;
        b[i] = 2.0 - 0.5 * a(i, 1) + 0.25 * a(i, 2) + 0.1 * t + noise(rng);
    }
    const std::vector<double> fused = la::solve_least_squares(a, b);

    const la::QrResult qr = la::qr_decompose(a);
    std::vector<double> qtb(4, 0.0);
    for (std::size_t j = 0; j < 4; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) acc += qr.q(i, j) * b[i];
        qtb[j] = acc;
    }
    std::vector<double> reference(4, 0.0);
    for (std::size_t ii = 4; ii-- > 0;) {
        double acc = qtb[ii];
        for (std::size_t j = ii + 1; j < 4; ++j) acc -= qr.r(ii, j) * reference[j];
        const double diag = qr.r(ii, ii);
        reference[ii] = std::abs(diag) < 1e-12 ? 0.0 : acc / diag;
    }
    ASSERT_EQ(fused.size(), reference.size());
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(fused[j], reference[j], 1e-10) << "coefficient " << j;
    }
}

TEST(KernelsOlsTest, SpanViewsMatchNestedVectorOverloadBitExactly) {
    const std::vector<double> y = wave(90, 30, 0.0);
    std::vector<std::vector<double>> predictors;
    for (unsigned s = 0; s < 3; ++s) predictors.push_back(wave(90, 31 + s, 0.4 * s));
    const la::OlsFit nested = la::ols_fit(y, predictors);
    std::vector<std::span<const double>> views(predictors.begin(),
                                               predictors.end());
    const la::OlsFit viewed = la::ols_fit(y, views);
    EXPECT_EQ(nested.coefficients, viewed.coefficients);
    EXPECT_EQ(nested.r_squared, viewed.r_squared);
    EXPECT_EQ(nested.fitted, viewed.fitted);
}

TEST(KernelsRidgeTest, CenteredColumnFusionIsBitIdenticalToPairwiseReference) {
    const std::vector<double> y = wave(100, 50, 0.2);
    std::vector<std::vector<double>> predictors;
    for (unsigned s = 0; s < 3; ++s) predictors.push_back(wave(100, 51 + s, 0.5 * s));
    const double lambda = 0.75;
    const la::OlsFit fused = la::ridge_fit(y, predictors, lambda);

    // Pre-refactor accumulation: re-subtract the means inside every
    // (j, k) product. The fused path centers once; the subtracted values
    // are identical, so every accumulated sum — and hence the solve and
    // the coefficients — must match bit-for-bit.
    const std::size_t n = y.size();
    const std::size_t p = predictors.size();
    const auto mean_of = [](std::span<const double> xs) {
        double acc = 0.0;
        for (double x : xs) acc += x;
        return acc / static_cast<double>(xs.size());
    };
    const double ybar = mean_of(y);
    std::vector<double> xbar(p, 0.0);
    for (std::size_t j = 0; j < p; ++j) xbar[j] = mean_of(predictors[j]);
    la::Matrix gram(p, p);
    std::vector<double> xty(p, 0.0);
    for (std::size_t j = 0; j < p; ++j) {
        for (std::size_t k = j; k < p; ++k) {
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                acc += (predictors[j][i] - xbar[j]) * (predictors[k][i] - xbar[k]);
            }
            gram(j, k) = acc;
            gram(k, j) = acc;
        }
        gram(j, j) += lambda;
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            acc += (predictors[j][i] - xbar[j]) * (y[i] - ybar);
        }
        xty[j] = acc;
    }
    const std::vector<double> beta = la::solve_spd(gram, xty);
    std::vector<double> reference(p + 1, 0.0);
    double intercept = ybar;
    for (std::size_t j = 0; j < p; ++j) {
        reference[j + 1] = beta[j];
        intercept -= beta[j] * xbar[j];
    }
    reference[0] = intercept;
    EXPECT_EQ(fused.coefficients, reference);
}

}  // namespace
