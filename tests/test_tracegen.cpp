#include <gtest/gtest.h>

#include <algorithm>

#include "ticketing/characterization.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

namespace atm::trace {
namespace {

TraceGenOptions small_options() {
    TraceGenOptions options;
    options.num_boxes = 40;
    options.num_days = 2;
    return options;
}

TEST(GeneratorTest, ShapesAreConsistent) {
    const Trace trace = generate_trace(small_options());
    ASSERT_EQ(trace.boxes.size(), 40u);
    for (const BoxTrace& box : trace.boxes) {
        EXPECT_GE(box.vms.size(), 2u);
        EXPECT_LE(box.vms.size(), 32u);
        for (const VmTrace& vm : box.vms) {
            EXPECT_EQ(vm.cpu_usage_pct.size(), 2u * 96u);
            EXPECT_EQ(vm.ram_usage_pct.size(), 2u * 96u);
        }
    }
}

TEST(GeneratorTest, UsageWithinBounds) {
    const Trace trace = generate_trace(small_options());
    for (const BoxTrace& box : trace.boxes) {
        for (const VmTrace& vm : box.vms) {
            for (double u : vm.cpu_usage_pct) {
                EXPECT_GE(u, 0.0);
                EXPECT_LE(u, 100.0);
            }
            for (double u : vm.ram_usage_pct) {
                EXPECT_GE(u, 0.0);
                EXPECT_LE(u, 100.0);
            }
        }
    }
}

TEST(GeneratorTest, DeterministicPerSeed) {
    const Trace a = generate_trace(small_options());
    const Trace b = generate_trace(small_options());
    ASSERT_EQ(a.boxes.size(), b.boxes.size());
    for (std::size_t i = 0; i < a.boxes.size(); ++i) {
        ASSERT_EQ(a.boxes[i].vms.size(), b.boxes[i].vms.size());
        for (std::size_t v = 0; v < a.boxes[i].vms.size(); ++v) {
            EXPECT_EQ(a.boxes[i].vms[v].cpu_usage_pct.values(),
                      b.boxes[i].vms[v].cpu_usage_pct.values());
        }
    }
}

TEST(GeneratorTest, BoxIndependentOfPopulationSize) {
    // Box 7 must be identical whether 10 or 40 boxes are generated.
    TraceGenOptions options = small_options();
    const BoxTrace direct = generate_box(options, 7);
    options.num_boxes = 10;
    const Trace small = generate_trace(options);
    EXPECT_EQ(small.boxes[7].vms.size(), direct.vms.size());
    EXPECT_EQ(small.boxes[7].vms[0].cpu_usage_pct.values(),
              direct.vms[0].cpu_usage_pct.values());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
    TraceGenOptions a = small_options();
    TraceGenOptions b = small_options();
    b.seed = a.seed + 1;
    const BoxTrace box_a = generate_box(a, 0);
    const BoxTrace box_b = generate_box(b, 0);
    // Either layout or samples must differ.
    const bool same_layout = box_a.vms.size() == box_b.vms.size();
    if (same_layout) {
        EXPECT_NE(box_a.vms[0].cpu_usage_pct.values(),
                  box_b.vms[0].cpu_usage_pct.values());
    }
}

TEST(GeneratorTest, MeanConsolidationNearTen) {
    TraceGenOptions options = small_options();
    options.num_boxes = 200;
    options.num_days = 1;
    const Trace trace = generate_trace(options);
    const double mean_vms = static_cast<double>(trace.total_vms()) /
                            static_cast<double>(trace.boxes.size());
    EXPECT_GT(mean_vms, 8.0);
    EXPECT_LT(mean_vms, 12.0);
}

TEST(GeneratorTest, BoxCapacityNearAllocationSum) {
    // Consolidated production boxes overcommit: the backed capacity is
    // within the configured headroom band around the allocation sum.
    const TraceGenOptions options = small_options();
    const Trace trace = generate_trace(options);
    for (const BoxTrace& box : trace.boxes) {
        double cpu = 0.0;
        double ram = 0.0;
        for (const VmTrace& vm : box.vms) {
            cpu += vm.cpu_capacity_ghz;
            ram += vm.ram_capacity_gb;
        }
        EXPECT_GE(box.cpu_capacity_ghz, options.capacity_headroom_min * cpu - 1e-9);
        EXPECT_LE(box.cpu_capacity_ghz, options.capacity_headroom_max * cpu + 1e-9);
        EXPECT_GE(box.ram_capacity_gb, options.capacity_headroom_min * ram - 1e-9);
        EXPECT_LE(box.ram_capacity_gb, options.capacity_headroom_max * ram + 1e-9);
    }
}

TEST(GeneratorTest, GapFlagMatchesZeroRuns) {
    TraceGenOptions options = small_options();
    options.num_boxes = 120;
    options.gappy_box_fraction = 0.5;
    const Trace trace = generate_trace(options);
    int gappy = 0;
    for (const BoxTrace& box : trace.boxes) {
        if (box.has_gaps) ++gappy;
    }
    EXPECT_GT(gappy, 30);
    EXPECT_LT(gappy, 90);
}

TEST(GeneratorTest, GapFreeFractionAvailable) {
    TraceGenOptions options = small_options();
    options.num_boxes = 100;
    const Trace trace = generate_trace(options);
    int clean = 0;
    for (const BoxTrace& box : trace.boxes) {
        if (!box.has_gaps) ++clean;
    }
    // Default gappy fraction is 0.3 -> ~70 clean boxes.
    EXPECT_GT(clean, 50);
}

TEST(GeneratorTest, DemandMatrixLayout) {
    const BoxTrace box = generate_box(small_options(), 3);
    const auto demands = box.demand_matrix();
    ASSERT_EQ(demands.size(), box.vms.size() * 2);
    // Row 0 = vm0 CPU demand. Demand equals usage/100 * capacity below
    // saturation and exceeds it (latent demand) when usage pegs at 100%.
    const VmTrace& vm0 = box.vms[0];
    for (std::size_t t = 0; t < vm0.cpu_usage_pct.size(); ++t) {
        const double from_usage =
            vm0.cpu_usage_pct[t] / 100.0 * vm0.cpu_capacity_ghz;
        if (vm0.cpu_usage_pct[t] < 100.0) {
            EXPECT_NEAR(demands[0][t], from_usage, 1e-12);
        } else {
            EXPECT_GE(demands[0][t], from_usage - 1e-12);
        }
    }
}

TEST(GeneratorTest, LatentDemandExceedsCapacitySomewhere) {
    // Deep violators are under-provisioned: somewhere in a reasonable
    // population a VM's demand exceeds its allocation (usage pegged 100%).
    TraceGenOptions options = small_options();
    options.num_boxes = 60;
    const Trace trace = generate_trace(options);
    bool found = false;
    for (const BoxTrace& box : trace.boxes) {
        for (const VmTrace& vm : box.vms) {
            for (double d : vm.cpu_demand_ghz) {
                if (d > vm.cpu_capacity_ghz * 1.05) {
                    found = true;
                    break;
                }
            }
        }
    }
    EXPECT_TRUE(found);
}

TEST(GeneratorTest, InvalidTimeGridThrows) {
    TraceGenOptions options = small_options();
    options.windows_per_day = 0;
    EXPECT_THROW(generate_box(options, 0), std::invalid_argument);
}

// --- statistical targets from Section II (coarse tolerance bands) --------

class CharacterizationTest : public ::testing::Test {
  protected:
    static const Trace& trace() {
        static const Trace t = [] {
            TraceGenOptions options;
            options.num_boxes = 250;
            options.num_days = 1;
            return generate_trace(options);
        }();
        return t;
    }
};

TEST_F(CharacterizationTest, TicketPercentagesDecreaseWithThreshold) {
    const auto c60 = ticketing::characterize_tickets(trace(), 60.0);
    const auto c70 = ticketing::characterize_tickets(trace(), 70.0);
    const auto c80 = ticketing::characterize_tickets(trace(), 80.0);
    EXPECT_GT(c60.boxes_with_cpu_tickets, c70.boxes_with_cpu_tickets);
    EXPECT_GT(c70.boxes_with_cpu_tickets, c80.boxes_with_cpu_tickets);
    EXPECT_GT(c60.boxes_with_ram_tickets, c70.boxes_with_ram_tickets);
    EXPECT_GT(c70.boxes_with_ram_tickets, c80.boxes_with_ram_tickets);
}

TEST_F(CharacterizationTest, CpuTicketsDominateRam) {
    for (double th : {60.0, 70.0, 80.0}) {
        const auto c = ticketing::characterize_tickets(trace(), th);
        EXPECT_GT(c.boxes_with_cpu_tickets, c.boxes_with_ram_tickets);
        EXPECT_GT(c.mean_cpu_tickets_per_box, c.mean_ram_tickets_per_box);
    }
}

TEST_F(CharacterizationTest, Fig2aBands) {
    const auto c60 = ticketing::characterize_tickets(trace(), 60.0);
    EXPECT_NEAR(c60.boxes_with_cpu_tickets, 0.57, 0.10);
    EXPECT_NEAR(c60.boxes_with_ram_tickets, 0.38, 0.10);
    const auto c80 = ticketing::characterize_tickets(trace(), 80.0);
    EXPECT_NEAR(c80.boxes_with_cpu_tickets, 0.40, 0.10);
    EXPECT_NEAR(c80.boxes_with_ram_tickets, 0.10, 0.08);
}

TEST_F(CharacterizationTest, Fig2bBands) {
    const auto c60 = ticketing::characterize_tickets(trace(), 60.0);
    EXPECT_NEAR(c60.mean_cpu_tickets_per_box, 39.0, 15.0);
    EXPECT_NEAR(c60.mean_ram_tickets_per_box, 15.0, 10.0);
}

TEST_F(CharacterizationTest, Fig2cCulpritsAreOneToTwo) {
    for (double th : {60.0, 70.0, 80.0}) {
        const auto c = ticketing::characterize_tickets(trace(), th);
        EXPECT_GE(c.mean_cpu_culprits, 1.0);
        EXPECT_LE(c.mean_cpu_culprits, 2.0);
        EXPECT_GE(c.mean_ram_culprits, 1.0);
        EXPECT_LE(c.mean_ram_culprits, 2.0);
    }
}

TEST_F(CharacterizationTest, Fig3CorrelationOrdering) {
    const auto corr = ticketing::characterize_correlations(trace());
    const double intra_cpu = ts::mean(corr.intra_cpu);
    const double intra_ram = ts::mean(corr.intra_ram);
    const double inter_all = ts::mean(corr.inter_all);
    const double inter_pair = ts::mean(corr.inter_pair);
    // Paper: inter-pair (0.62) >> inter-all (0.30) > intra (0.26 / 0.24).
    EXPECT_GT(inter_pair, 0.45);
    EXPECT_GT(inter_all, intra_cpu - 0.02);
    EXPECT_NEAR(intra_cpu, 0.26, 0.08);
    EXPECT_NEAR(intra_ram, 0.24, 0.08);
    EXPECT_NEAR(inter_pair, 0.62, 0.12);
}

TEST_F(CharacterizationTest, CorrelationVectorsPerBox) {
    const auto corr = ticketing::characterize_correlations(trace());
    EXPECT_EQ(corr.intra_cpu.size(), trace().boxes.size());
    EXPECT_EQ(corr.inter_pair.size(), trace().boxes.size());
}

}  // namespace
}  // namespace atm::trace
