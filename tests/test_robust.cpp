// Chaos suite (ctest -L robust): the fault-injection plan grammar, the
// deterministic fault draws, and the fleet under escalating fault plans.
// The fleet runs assert the robustness contract of DESIGN.md §7.11: no
// crash, structured error codes matching the injected faults, exact
// exclusion of failed boxes from aggregates, finite outputs from degraded
// boxes, and bit-identical results for jobs=1 vs jobs=8.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "core/pipeline.hpp"
#include "core/spatial_model.hpp"
#include "exec/cancel.hpp"
#include "exec/fault.hpp"
#include "exec/journal.hpp"
#include "tracegen/generator.hpp"

namespace atm {
namespace {

using core::PipelineErrorCode;

// ---------------------------------------------------------------- FaultPlan

TEST(FaultPlanTest, ParsesSpecGrammar) {
    const exec::FaultPlan plan = exec::FaultPlan::parse(
        "samples=nan@0.05,series=truncate@0.5,pipeline.forecast=throw", 7);
    EXPECT_EQ(plan.seed, 7u);
    ASSERT_EQ(plan.rules.size(), 3u);
    EXPECT_EQ(plan.rules[0].site, "samples");
    EXPECT_EQ(plan.rules[0].action, exec::FaultAction::kNan);
    EXPECT_DOUBLE_EQ(plan.rules[0].rate, 0.05);
    EXPECT_EQ(plan.rules[1].site, "series");
    EXPECT_EQ(plan.rules[1].action, exec::FaultAction::kTruncate);
    EXPECT_DOUBLE_EQ(plan.rules[1].rate, 0.5);
    EXPECT_EQ(plan.rules[2].site, "pipeline.forecast");
    EXPECT_EQ(plan.rules[2].action, exec::FaultAction::kThrow);
    EXPECT_DOUBLE_EQ(plan.rules[2].rate, 1.0);  // default rate
    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(plan.has_data_faults());
}

TEST(FaultPlanTest, EmptySpecDisablesInjection) {
    const exec::FaultPlan plan = exec::FaultPlan::parse("", 42);
    EXPECT_TRUE(plan.empty());
    EXPECT_FALSE(plan.has_data_faults());
    // A throw-only plan carries no data faults.
    EXPECT_FALSE(exec::FaultPlan::parse("fleet.box=throw@0.5", 1).has_data_faults());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
    const std::vector<std::string> bad = {
        "samples=bogus",        // unknown action
        "nan@0.5",              // no '='
        "=nan@0.5",             // empty site
        "samples=nan@0",        // rate must be > 0
        "samples=nan@1.5",      // rate must be <= 1
        "samples=nan@x",        // unparseable rate
        "pipeline.search=nan",  // sample action on a code site
        "samples=truncate",     // truncate needs site 'series'
        "samples=throw",        // throw needs a code site
        "series=throw",         // ditto
        ",,,",                  // non-empty spec without a single rule
    };
    for (const std::string& spec : bad) {
        EXPECT_THROW(exec::FaultPlan::parse(spec, 1), std::invalid_argument)
            << "spec: " << spec;
    }
}

// -------------------------------------------------------------- FaultContext

TEST(FaultContextTest, NullPlanIsInert) {
    const exec::FaultContext ctx;
    EXPECT_NO_THROW(ctx.check_site("pipeline.start"));
    std::vector<double> xs(16, 1.0);
    EXPECT_EQ(ctx.corrupt_samples(xs, 0), 0u);
    EXPECT_EQ(xs, std::vector<double>(16, 1.0));
    EXPECT_EQ(ctx.truncated_length(144), 144u);
}

TEST(FaultContextTest, SampleCorruptionIsDeterministicPerEntityAndStream) {
    const exec::FaultPlan plan = exec::FaultPlan::parse("samples=nan@0.2", 7);
    const auto corrupt = [&plan](std::uint64_t entity, std::uint64_t stream) {
        const exec::FaultContext ctx{&plan, entity};
        std::vector<double> xs(256, 1.0);
        const std::uint64_t n = ctx.corrupt_samples(xs, stream);
        std::vector<bool> pattern(xs.size());
        for (std::size_t t = 0; t < xs.size(); ++t) pattern[t] = std::isnan(xs[t]);
        EXPECT_GT(n, 0u);
        EXPECT_LT(n, xs.size());
        return pattern;
    };
    EXPECT_EQ(corrupt(3, 0), corrupt(3, 0));  // same key, same samples
    EXPECT_NE(corrupt(3, 0), corrupt(4, 0));  // entity changes the draw
    EXPECT_NE(corrupt(3, 0), corrupt(3, 1));  // so does the stream
}

TEST(FaultContextTest, CorruptionActionsProduceTheirValues) {
    const auto apply = [](const std::string& spec) {
        const exec::FaultPlan plan = exec::FaultPlan::parse(spec, 5);
        const exec::FaultContext ctx{&plan, 0};
        std::vector<double> xs(32, 1.0);
        EXPECT_EQ(ctx.corrupt_samples(xs, 0), xs.size()) << spec;
        return xs;
    };
    for (const double x : apply("samples=nan@1")) EXPECT_TRUE(std::isnan(x));
    for (const double x : apply("samples=inf@1")) EXPECT_TRUE(std::isinf(x));
    for (const double x : apply("samples=negative@1")) EXPECT_DOUBLE_EQ(x, -2.0);
    for (const double x : apply("samples=zero-run@1")) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(FaultContextTest, ThrowVerdictIsStablePerEntityAndSite) {
    const exec::FaultPlan plan = exec::FaultPlan::parse("forecast.fit=throw@0.5", 11);
    const auto fires = [&plan](std::uint64_t entity) {
        const exec::FaultContext ctx{&plan, entity};
        try {
            ctx.check_site("forecast.fit");
            return false;
        } catch (const exec::InjectedFault& e) {
            EXPECT_EQ(e.site(), "forecast.fit");
            return true;
        }
    };
    std::size_t fired = 0;
    for (std::uint64_t entity = 0; entity < 64; ++entity) {
        const bool verdict = fires(entity);
        EXPECT_EQ(fires(entity), verdict);  // re-asking never flips it
        EXPECT_EQ(fires(entity), verdict);
        if (verdict) ++fired;
        // An unarmed site never throws, whatever the entity.
        const exec::FaultContext ctx{&plan, entity};
        EXPECT_NO_THROW(ctx.check_site("pipeline.start"));
    }
    // At rate 0.5 over 64 entities both verdicts must occur.
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, 64u);
}

TEST(FaultContextTest, EpochRerollsDrawsAndZeroEpochKeepsLegacyChain) {
    const exec::FaultPlan plan =
        exec::FaultPlan::parse("serve.apply=throw@0.5", 11);
    const auto fires = [&plan](std::uint64_t entity, std::uint64_t epoch) {
        exec::FaultContext ctx{&plan, entity};
        ctx.epoch = epoch;
        try {
            ctx.check_site("serve.apply");
            return false;
        } catch (const exec::InjectedFault&) {
            return true;
        }
    };
    // Epoch 0 is bit-identical to a context without the field, so batch
    // key chains (and golden chaos runs) are untouched.
    for (std::uint64_t entity = 0; entity < 8; ++entity) {
        const exec::FaultContext legacy{&plan, entity};
        bool legacy_fires = false;
        try {
            legacy.check_site("serve.apply");
        } catch (const exec::InjectedFault&) {
            legacy_fires = true;
        }
        EXPECT_EQ(fires(entity, 0), legacy_fires);
    }
    // Each (entity, epoch) is an independent Bernoulli: deterministic on
    // re-ask, and across 64 epochs both verdicts occur for a fixed box —
    // no box is permanently wedged or permanently spared by a 0.5 plan.
    std::size_t fired = 0;
    for (std::uint64_t epoch = 1; epoch <= 64; ++epoch) {
        const bool verdict = fires(3, epoch);
        EXPECT_EQ(fires(3, epoch), verdict);
        if (verdict) ++fired;
    }
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, 64u);
    // Distinct boxes draw independently at the same epoch.
    bool differs = false;
    for (std::uint64_t entity = 0; entity < 32 && !differs; ++entity) {
        differs = fires(entity, 7) != fires(entity + 32, 7);
    }
    EXPECT_TRUE(differs);
}

TEST(FaultContextTest, TruncationDropsTheTrailingQuarter) {
    const exec::FaultPlan plan = exec::FaultPlan::parse("series=truncate@1", 3);
    const exec::FaultContext ctx{&plan, 0};
    EXPECT_EQ(ctx.truncated_length(144), 108u);
    EXPECT_EQ(ctx.truncated_length(7), 6u);
    EXPECT_EQ(ctx.truncated_length(0), 0u);
    const exec::FaultPlan no_truncate = exec::FaultPlan::parse("samples=nan@1", 3);
    EXPECT_EQ((exec::FaultContext{&no_truncate, 0}).truncated_length(144), 144u);
}

// -------------------------------------------------------------- chaos fleets

trace::Trace chaos_trace(int boxes) {
    trace::TraceGenOptions options;
    options.num_boxes = boxes;
    options.num_days = 6;  // 5 training days + 1 evaluation day
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    options.seed = 20150403;
    return trace::generate_trace(options);
}

core::FleetConfig chaos_config(const std::string& spec, std::uint64_t fault_seed) {
    core::FleetConfig config;
    config.pipeline.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.pipeline.train_days = 5;
    config.jobs = 1;
    config.collect_metrics = true;
    config.faults = exec::FaultPlan::parse(spec, fault_seed);
    return config;
}

bool has_degradation(const core::BoxPipelineResult& result,
                     const std::string& stage, PipelineErrorCode code) {
    for (const core::Degradation& d : result.degradations) {
        if (d.stage == stage && d.code == code) return true;
    }
    return false;
}

TEST(ChaosFleetTest, LightCorruptionDegradesButBoxesSurvive) {
    const trace::Trace t = chaos_trace(6);
    const core::FleetConfig config = chaos_config("samples=nan@0.03", 1);
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);

    ASSERT_EQ(fleet.boxes.size(), 6u);
    EXPECT_EQ(fleet.boxes_failed, 0u);
    EXPECT_TRUE(fleet.failures_by_code.empty());
    std::size_t degraded = 0;
    for (const core::FleetBoxResult& b : fleet.boxes) {
        EXPECT_TRUE(b.error.empty());
        EXPECT_EQ(b.error_code, PipelineErrorCode::kNone);
        EXPECT_TRUE(std::isfinite(b.result.ape_all));
        EXPECT_TRUE(std::isfinite(b.result.ape_peak));
        if (has_degradation(b.result, "sanitize", PipelineErrorCode::kTraceInvalid)) {
            ++degraded;
        }
    }
    EXPECT_GT(degraded, 0u);  // ~3% of samples NaN: sanitize must fire
    EXPECT_GT(fleet.metrics.counter("robust.fault.samples_corrupted"), 0u);
    EXPECT_GT(fleet.metrics.counter("robust.sanitize.bad_samples"), 0u);
    EXPECT_GE(fleet.metrics.counter("robust.fallback.sanitize"), degraded);
}

TEST(ChaosFleetTest, HeavyCorruptionRejectsEveryBox) {
    const trace::Trace t = chaos_trace(4);
    const core::FleetConfig config = chaos_config("samples=nan@0.9", 2);
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);

    ASSERT_EQ(fleet.boxes.size(), 4u);
    EXPECT_EQ(fleet.boxes_failed, 4u);
    EXPECT_EQ(fleet.boxes_evaluated(), 0u);
    for (const core::FleetBoxResult& b : fleet.boxes) {
        EXPECT_FALSE(b.error.empty());
        EXPECT_EQ(b.error_code, PipelineErrorCode::kTraceInvalid);
        EXPECT_EQ(b.error_stage, "sanitize");
        EXPECT_TRUE(b.result.policies.empty());
    }
    ASSERT_EQ(fleet.failures_by_code.size(), 1u);
    EXPECT_EQ(fleet.failures_by_code.at(PipelineErrorCode::kTraceInvalid), 4u);
    EXPECT_EQ(fleet.metrics.counter("robust.error.trace-invalid"), 4u);
    // Failed boxes contribute nothing to the aggregates.
    EXPECT_EQ(fleet.mean_ape_all, 0.0);
    for (const core::FleetPolicyTotals& p : fleet.totals) {
        EXPECT_EQ(p.cpu_before, 0);
        EXPECT_EQ(p.cpu_after, 0);
        EXPECT_EQ(p.ram_before, 0);
        EXPECT_EQ(p.ram_after, 0);
    }
}

TEST(ChaosFleetTest, TruncationExcludesFailedBoxesFromAggregatesExactly) {
    const trace::Trace t = chaos_trace(8);
    const core::FleetConfig config = chaos_config("series=truncate@0.5", 5);

    // The test derives the truncated set from the same plan the fleet
    // uses: entity draws are position-keyed, so this is the ground truth.
    std::set<int> truncated;
    for (int b = 0; b < 8; ++b) {
        const exec::FaultContext ctx{&config.faults, static_cast<std::uint64_t>(b)};
        if (ctx.truncated_length(t.boxes[0].length()) != t.boxes[0].length()) {
            truncated.insert(b);
        }
    }
    ASSERT_GT(truncated.size(), 0u);  // seed chosen so the plan is mixed
    ASSERT_LT(truncated.size(), 8u);

    core::FleetConfig clean = config;
    clean.faults = exec::FaultPlan{};
    const core::FleetResult baseline = core::run_pipeline_on_fleet(t, clean);
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);

    // Truncated boxes lose 1.5 of 6 days and can no longer fit the
    // 5-day training window: they must fail as invalid input.
    ASSERT_EQ(fleet.boxes.size(), 8u);
    EXPECT_EQ(fleet.boxes_failed, truncated.size());
    double ape_sum = 0.0;
    std::vector<core::FleetPolicyTotals> totals(fleet.totals.size());
    for (std::size_t i = 0; i < fleet.boxes.size(); ++i) {
        const core::FleetBoxResult& b = fleet.boxes[i];
        if (truncated.count(b.box_index) != 0) {
            EXPECT_EQ(b.error_code, PipelineErrorCode::kTraceInvalid);
            EXPECT_EQ(b.error_stage, "input");
            continue;
        }
        // Survivors are untouched: bit-identical to the no-fault run.
        const core::FleetBoxResult& base = baseline.boxes[i];
        EXPECT_TRUE(b.error.empty());
        EXPECT_EQ(b.result.ape_all, base.result.ape_all);
        EXPECT_EQ(b.result.ape_peak, base.result.ape_peak);
        ASSERT_EQ(b.result.policies.size(), totals.size());
        for (std::size_t p = 0; p < totals.size(); ++p) {
            EXPECT_EQ(b.result.policies[p].cpu_after, base.result.policies[p].cpu_after);
            totals[p].cpu_before += b.result.policies[p].cpu_before;
            totals[p].cpu_after += b.result.policies[p].cpu_after;
            totals[p].ram_before += b.result.policies[p].ram_before;
            totals[p].ram_after += b.result.policies[p].ram_after;
        }
        ape_sum += b.result.ape_all;
    }
    // Aggregates are exactly the survivor sums — nothing leaks in from
    // the failed boxes.
    const std::size_t survivors = 8u - truncated.size();
    EXPECT_DOUBLE_EQ(fleet.mean_ape_all,
                     ape_sum / static_cast<double>(survivors));
    for (std::size_t p = 0; p < totals.size(); ++p) {
        EXPECT_EQ(fleet.totals[p].cpu_before, totals[p].cpu_before);
        EXPECT_EQ(fleet.totals[p].cpu_after, totals[p].cpu_after);
        EXPECT_EQ(fleet.totals[p].ram_before, totals[p].ram_before);
        EXPECT_EQ(fleet.totals[p].ram_after, totals[p].ram_after);
    }
}

TEST(ChaosFleetTest, BoundaryThrowFailsBoxesWithFaultInjected) {
    const trace::Trace t = chaos_trace(8);
    const core::FleetConfig config = chaos_config("pipeline.forecast=throw@0.4", 3);

    std::set<int> expected;
    for (int b = 0; b < 8; ++b) {
        const exec::FaultContext ctx{&config.faults, static_cast<std::uint64_t>(b)};
        try {
            ctx.check_site("pipeline.forecast");
        } catch (const exec::InjectedFault&) {
            expected.insert(b);
        }
    }
    ASSERT_GT(expected.size(), 0u);  // seed chosen so the plan is mixed
    ASSERT_LT(expected.size(), 8u);

    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
    ASSERT_EQ(fleet.boxes.size(), 8u);
    EXPECT_EQ(fleet.boxes_failed, expected.size());
    for (const core::FleetBoxResult& b : fleet.boxes) {
        if (expected.count(b.box_index) != 0) {
            EXPECT_EQ(b.error_code, PipelineErrorCode::kFaultInjected);
            EXPECT_EQ(b.error_stage, "pipeline.forecast");
        } else {
            EXPECT_TRUE(b.error.empty());
            EXPECT_TRUE(b.result.degradations.empty());
        }
    }
    EXPECT_EQ(fleet.failures_by_code.at(PipelineErrorCode::kFaultInjected),
              expected.size());
    EXPECT_EQ(fleet.metrics.counter("robust.error.fault-injected"),
              expected.size());
}

TEST(ChaosFleetTest, RecoverableSitesEngageFallbacksNotFailures) {
    const trace::Trace t = chaos_trace(4);
    const core::FleetConfig config = chaos_config(
        "spatial.ols=throw@1,forecast.fit=throw@1,resize.mckp=throw@1", 9);
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);

    ASSERT_EQ(fleet.boxes.size(), 4u);
    EXPECT_EQ(fleet.boxes_failed, 0u);  // every rung recovers
    for (const core::FleetBoxResult& b : fleet.boxes) {
        EXPECT_TRUE(b.error.empty());
        EXPECT_TRUE(has_degradation(b.result, "spatial",
                                    PipelineErrorCode::kFaultInjected));
        EXPECT_TRUE(has_degradation(b.result, "forecast",
                                    PipelineErrorCode::kFaultInjected));
        EXPECT_TRUE(has_degradation(b.result, "resize",
                                    PipelineErrorCode::kFaultInjected));
        EXPECT_TRUE(std::isfinite(b.result.ape_all));
        ASSERT_FALSE(b.result.policies.empty());
        for (const core::PolicyTickets& p : b.result.policies) {
            EXPECT_GE(p.cpu_after, 0);
            EXPECT_GE(p.ram_after, 0);
        }
    }
    EXPECT_EQ(fleet.metrics.counter("robust.fallback.spatial"), 4u);
    EXPECT_GE(fleet.metrics.counter("robust.fallback.forecast"), 4u);
    EXPECT_GE(fleet.metrics.counter("robust.fallback.resize"), 4u);
}

void expect_fleet_equal(const core::FleetResult& a, const core::FleetResult& b) {
    ASSERT_EQ(a.boxes.size(), b.boxes.size());
    for (std::size_t i = 0; i < a.boxes.size(); ++i) {
        const core::FleetBoxResult& ra = a.boxes[i];
        const core::FleetBoxResult& rb = b.boxes[i];
        EXPECT_EQ(ra.box_index, rb.box_index);
        EXPECT_EQ(ra.error, rb.error) << "box " << i;
        EXPECT_EQ(ra.error_code, rb.error_code) << "box " << i;
        EXPECT_EQ(ra.error_stage, rb.error_stage) << "box " << i;
        EXPECT_EQ(ra.attempts, rb.attempts) << "box " << i;
        EXPECT_EQ(ra.result.ape_all, rb.result.ape_all) << "box " << i;
        EXPECT_EQ(ra.result.ape_peak, rb.result.ape_peak) << "box " << i;
        EXPECT_EQ(ra.result.search.signatures, rb.result.search.signatures);
        // Bit-identity of the raw predictions, not just the summary APEs.
        EXPECT_EQ(ra.result.predicted_demands, rb.result.predicted_demands)
            << "box " << i;
        ASSERT_EQ(ra.result.degradations.size(), rb.result.degradations.size())
            << "box " << i;
        for (std::size_t d = 0; d < ra.result.degradations.size(); ++d) {
            EXPECT_EQ(ra.result.degradations[d].code, rb.result.degradations[d].code);
            EXPECT_EQ(ra.result.degradations[d].stage,
                      rb.result.degradations[d].stage);
            EXPECT_EQ(ra.result.degradations[d].detail,
                      rb.result.degradations[d].detail);
        }
        ASSERT_EQ(ra.result.policies.size(), rb.result.policies.size());
        for (std::size_t p = 0; p < ra.result.policies.size(); ++p) {
            EXPECT_EQ(ra.result.policies[p].cpu_before, rb.result.policies[p].cpu_before);
            EXPECT_EQ(ra.result.policies[p].cpu_after, rb.result.policies[p].cpu_after);
            EXPECT_EQ(ra.result.policies[p].ram_before, rb.result.policies[p].ram_before);
            EXPECT_EQ(ra.result.policies[p].ram_after, rb.result.policies[p].ram_after);
        }
    }
    EXPECT_EQ(a.boxes_failed, b.boxes_failed);
    EXPECT_EQ(a.failures_by_code, b.failures_by_code);
    EXPECT_EQ(a.mean_ape_all, b.mean_ape_all);
    EXPECT_EQ(a.mean_ape_peak, b.mean_ape_peak);
    ASSERT_EQ(a.totals.size(), b.totals.size());
    for (std::size_t p = 0; p < a.totals.size(); ++p) {
        EXPECT_EQ(a.totals[p].cpu_after, b.totals[p].cpu_after);
        EXPECT_EQ(a.totals[p].ram_after, b.totals[p].ram_after);
    }
    // Counters (including every robust.*) merge in trace order, so the
    // whole map must match; timers are wall-clock and excluded.
    EXPECT_EQ(a.metrics.counters, b.metrics.counters);
}

TEST(ChaosFleetTest, MixedPlanIsBitIdenticalAcrossJobCounts) {
    const trace::Trace t = chaos_trace(8);
    const std::string spec =
        "samples=nan@0.05,series=truncate@0.25,"
        "pipeline.search=throw@0.3,forecast.fit=throw@0.5";

    core::FleetConfig serial = chaos_config(spec, 13);
    serial.jobs = 1;
    const core::FleetResult a = core::run_pipeline_on_fleet(t, serial);

    core::FleetConfig pooled = chaos_config(spec, 13);
    pooled.jobs = 8;
    const core::FleetResult b = core::run_pipeline_on_fleet(t, pooled);

    expect_fleet_equal(a, b);
    // The mixed plan must actually exercise both outcomes.
    EXPECT_GT(a.boxes_failed, 0u);
    EXPECT_LT(a.boxes_failed, a.boxes.size());
}

// --------------------------------------------------------- checkpoint/resume

/// Fresh temp path for a journal (removing any leftover from a prior run).
std::string journal_path(const char* name) {
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

/// Rebuilds a journal at `dst` holding `src`'s header and its first
/// `keep_records` records — the journal an interrupted run would have left
/// behind had it been killed at that point.
void truncate_journal(const std::string& src, const std::string& dst,
                      std::size_t keep_records) {
    const exec::JournalLoad load = exec::load_journal(src);
    ASSERT_TRUE(load.exists);
    ASSERT_FALSE(load.header.empty());
    ASSERT_LE(keep_records, load.records.size());
    exec::JournalWriter writer = exec::JournalWriter::create(dst, load.header);
    for (std::size_t i = 0; i < keep_records; ++i) {
        writer.append(load.records[i]);
    }
}

TEST(CheckpointResumeTest, ResumedRunIsBitIdenticalFromEveryCutPoint) {
    const trace::Trace t = chaos_trace(6);
    // A mixed plan so the journal holds successes, degraded boxes, AND
    // settled failures — all three must replay faithfully.
    const std::string spec = "samples=nan@0.05,pipeline.search=throw@0.3";
    const std::string full = journal_path("atm_resume_full.jsonl");

    core::FleetConfig fresh = chaos_config(spec, 13);
    fresh.checkpoint_path = full;
    const core::FleetResult baseline = core::run_pipeline_on_fleet(t, fresh);
    EXPECT_GT(baseline.boxes_failed, 0u);
    EXPECT_LT(baseline.boxes_failed, baseline.boxes.size());
    EXPECT_EQ(baseline.boxes_replayed, 0u);
    ASSERT_EQ(exec::load_journal(full).records.size(), 6u);

    const std::string cut = journal_path("atm_resume_cut.jsonl");
    for (const std::size_t keep : {0u, 1u, 3u, 5u, 6u}) {
        SCOPED_TRACE("cut at " + std::to_string(keep));
        for (const int jobs : {1, 8}) {
            SCOPED_TRACE("jobs=" + std::to_string(jobs));
            truncate_journal(full, cut, keep);
            core::FleetConfig resume = chaos_config(spec, 13);
            resume.checkpoint_path = cut;
            resume.resume = true;
            resume.jobs = jobs;
            const core::FleetResult resumed =
                core::run_pipeline_on_fleet(t, resume);
            EXPECT_EQ(resumed.boxes_replayed, keep);
            expect_fleet_equal(baseline, resumed);
            // The resumed run re-journals what it recomputed: the cut
            // journal is complete again and a further resume is all-replay.
            EXPECT_EQ(exec::load_journal(cut).records.size(), 6u);
        }
    }
    std::remove(full.c_str());
    std::remove(cut.c_str());
}

TEST(CheckpointResumeTest, TornTailAndCorruptRecordsAreRecovered) {
    const trace::Trace t = chaos_trace(4);
    const std::string full = journal_path("atm_resume_crash.jsonl");
    core::FleetConfig fresh = chaos_config("", 1);
    fresh.checkpoint_path = full;
    const core::FleetResult baseline = core::run_pipeline_on_fleet(t, fresh);

    // Torn tail: a crash mid-append leaves half a frame. The intact prefix
    // replays; the torn box is recomputed.
    const exec::JournalLoad load = exec::load_journal(full);
    ASSERT_EQ(load.records.size(), 4u);
    {
        truncate_journal(full, full, 3u);
        const std::string tail = exec::frame_journal_record(load.records[3]);
        std::ofstream out(full, std::ios::binary | std::ios::app);
        out << tail.substr(0, tail.size() / 2);
    }
    core::FleetConfig resume = chaos_config("", 1);
    resume.checkpoint_path = full;
    resume.resume = true;
    const core::FleetResult after_tear = core::run_pipeline_on_fleet(t, resume);
    EXPECT_EQ(after_tear.boxes_replayed, 3u);
    expect_fleet_equal(baseline, after_tear);

    // Checksum corruption inside a record: that record and everything
    // after it are dropped; the run still converges to the same result.
    {
        truncate_journal(full, full, 2u);
        std::string bad = exec::frame_journal_record(load.records[2]);
        bad[26] = bad[26] == 'x' ? 'y' : 'x';
        std::ofstream out(full, std::ios::binary | std::ios::app);
        out << bad << exec::frame_journal_record(load.records[3]);
    }
    const core::FleetResult after_corruption =
        core::run_pipeline_on_fleet(t, resume);
    EXPECT_EQ(after_corruption.boxes_replayed, 2u);
    expect_fleet_equal(baseline, after_corruption);
    std::remove(full.c_str());
}

TEST(CheckpointResumeTest, HeaderMismatchStartsFreshInsteadOfReplayingLies) {
    const trace::Trace t = chaos_trace(4);
    const std::string path = journal_path("atm_resume_header.jsonl");
    core::FleetConfig first = chaos_config("", 1);
    first.checkpoint_path = path;
    core::run_pipeline_on_fleet(t, first);
    ASSERT_EQ(exec::load_journal(path).records.size(), 4u);

    // Same journal, different pipeline seed: the journaled results answer
    // a different question and must NOT be replayed.
    core::FleetConfig other = chaos_config("", 1);
    other.checkpoint_path = path;
    other.resume = true;
    other.pipeline.seed = 43;
    const core::FleetResult resumed = core::run_pipeline_on_fleet(t, other);
    EXPECT_EQ(resumed.boxes_replayed, 0u);

    core::FleetConfig clean = chaos_config("", 1);
    clean.pipeline.seed = 43;
    expect_fleet_equal(core::run_pipeline_on_fleet(t, clean), resumed);
    std::remove(path.c_str());
}

// ----------------------------------------------------------------- retries

TEST(RetryTest, TransientFaultsAreRetriedWithFreshDraws) {
    const trace::Trace t = chaos_trace(8);
    core::FleetConfig config = chaos_config("pipeline.forecast=throw@0.4", 3);
    config.max_retries = 2;
    const int max_attempts = 1 + config.max_retries;

    // Ground truth from the plan itself: per-attempt draws are keyed on
    // (box, attempt), so the test can predict every box's attempt count.
    std::size_t expect_recovered = 0;
    std::vector<int> expect_attempts(8, 0);
    std::vector<bool> expect_failed(8, false);
    for (int b = 0; b < 8; ++b) {
        int attempts = 0;
        bool failed = true;
        for (int a = 0; a < max_attempts; ++a) {
            ++attempts;
            const exec::FaultContext ctx{&config.faults,
                                         static_cast<std::uint64_t>(b),
                                         static_cast<std::uint64_t>(a)};
            try {
                ctx.check_site("pipeline.forecast");
                failed = false;
                break;
            } catch (const exec::InjectedFault&) {
            }
        }
        expect_attempts[static_cast<std::size_t>(b)] = attempts;
        expect_failed[static_cast<std::size_t>(b)] = failed;
        if (!failed && attempts > 1) ++expect_recovered;
    }
    ASSERT_GT(expect_recovered, 0u);  // seed chosen so retries matter

    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
    ASSERT_EQ(fleet.boxes.size(), 8u);
    std::uint64_t extra_attempts = 0;
    for (const core::FleetBoxResult& b : fleet.boxes) {
        const auto i = static_cast<std::size_t>(b.box_index);
        EXPECT_EQ(b.attempts, expect_attempts[i]) << "box " << i;
        EXPECT_EQ(!b.error.empty(), expect_failed[i]) << "box " << i;
        if (expect_failed[i]) {
            EXPECT_EQ(b.error_code, PipelineErrorCode::kFaultInjected);
            EXPECT_EQ(b.attempts, max_attempts);  // exhausted, not abandoned
        }
        extra_attempts += static_cast<std::uint64_t>(
            b.attempts > 1 ? b.attempts - 1 : 0);
    }
    EXPECT_EQ(fleet.metrics.counter("robust.retry.attempts"), extra_attempts);
    EXPECT_EQ(fleet.metrics.counter("robust.retry.recovered"), expect_recovered);

    // The retry schedule is part of the determinism contract.
    core::FleetConfig pooled = config;
    pooled.jobs = 8;
    expect_fleet_equal(fleet, core::run_pipeline_on_fleet(t, pooled));
}

TEST(RetryTest, NonTransientFailuresAreNotRetried) {
    const trace::Trace t = chaos_trace(4);
    // Heavy data corruption rejects boxes with kTraceInvalid — a verdict
    // about the input, which retrying cannot change.
    core::FleetConfig config = chaos_config("samples=nan@0.9", 2);
    config.max_retries = 3;
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
    EXPECT_EQ(fleet.boxes_failed, 4u);
    for (const core::FleetBoxResult& b : fleet.boxes) {
        EXPECT_EQ(b.error_code, PipelineErrorCode::kTraceInvalid);
        EXPECT_EQ(b.attempts, 1);
    }
    EXPECT_EQ(fleet.metrics.counter("robust.retry.attempts"), 0u);
}

// ---------------------------------------------------------------- deadlines

TEST(DeadlineTest, ImpossibleDeadlineFailsEveryBoxWithoutStalling) {
    const trace::Trace t = chaos_trace(4);
    core::FleetConfig config = chaos_config("", 1);
    config.box_deadline_seconds = 1e-9;
    const std::string path = journal_path("atm_deadline.jsonl");
    config.checkpoint_path = path;

    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
    ASSERT_EQ(fleet.boxes.size(), 4u);
    EXPECT_EQ(fleet.boxes_failed, 4u);
    for (const core::FleetBoxResult& b : fleet.boxes) {
        EXPECT_EQ(b.error_code, PipelineErrorCode::kDeadlineExceeded);
        EXPECT_FALSE(b.error_stage.empty());  // names the cancellation point
        EXPECT_EQ(b.attempts, 1);             // deadline is not transient
    }
    EXPECT_EQ(fleet.failures_by_code.at(PipelineErrorCode::kDeadlineExceeded),
              4u);
    EXPECT_EQ(fleet.metrics.counter("robust.error.deadline-exceeded"), 4u);

    // Deadline outcomes describe THIS run's interruption, not the box:
    // they are never journaled, so a resume without the deadline gets to
    // evaluate every box for real.
    EXPECT_TRUE(exec::load_journal(path).records.empty());
    core::FleetConfig resume = chaos_config("", 1);
    resume.checkpoint_path = path;
    resume.resume = true;
    const core::FleetResult resumed = core::run_pipeline_on_fleet(t, resume);
    EXPECT_EQ(resumed.boxes_replayed, 0u);
    EXPECT_EQ(resumed.boxes_failed, 0u);
    expect_fleet_equal(core::run_pipeline_on_fleet(t, chaos_config("", 1)),
                       resumed);
    std::remove(path.c_str());
}

TEST(DeadlineTest, GenerousDeadlineChangesNothing) {
    const trace::Trace t = chaos_trace(4);
    const core::FleetResult plain =
        core::run_pipeline_on_fleet(t, chaos_config("", 1));
    core::FleetConfig config = chaos_config("", 1);
    config.box_deadline_seconds = 3600.0;
    expect_fleet_equal(plain, core::run_pipeline_on_fleet(t, config));
}

// -------------------------------------------------------------- stop token

TEST(StopTokenTest, PreCancelledStopDrainsEveryBoxAndResumeFinishesTheJob) {
    const trace::Trace t = chaos_trace(4);
    const std::string path = journal_path("atm_drain.jsonl");
    exec::CancellationToken stop;
    stop.cancel(exec::CancelReason::kStop);

    core::FleetConfig config = chaos_config("", 1);
    config.checkpoint_path = path;
    config.stop = &stop;
    const core::FleetResult drained = core::run_pipeline_on_fleet(t, config);
    EXPECT_TRUE(drained.interrupted);
    ASSERT_EQ(drained.boxes.size(), 4u);
    for (const core::FleetBoxResult& b : drained.boxes) {
        EXPECT_EQ(b.error_code, PipelineErrorCode::kCancelled);
        EXPECT_EQ(b.attempts, 0);  // never started
    }
    // Drained boxes are not journaled: nothing false to replay.
    EXPECT_TRUE(exec::load_journal(path).records.empty());

    core::FleetConfig resume = chaos_config("", 1);
    resume.checkpoint_path = path;
    resume.resume = true;
    const core::FleetResult resumed = core::run_pipeline_on_fleet(t, resume);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.boxes_failed, 0u);
    expect_fleet_equal(core::run_pipeline_on_fleet(t, chaos_config("", 1)),
                       resumed);
    std::remove(path.c_str());
}

// ------------------------------------------------------------ config checks

TEST(ResilienceConfigTest, ValidateReportsExactMessages) {
    {
        core::FleetConfig config;
        config.max_retries = -1;
        EXPECT_EQ(config.validate(), "max_retries must be >= 0, got -1");
    }
    {
        core::FleetConfig config;
        config.box_deadline_seconds = -1.0;
        EXPECT_EQ(config.validate(),
                  "box_deadline_seconds must be > 0 (or 0 to disable), got " +
                      std::to_string(-1.0));
    }
    {
        core::FleetConfig config;
        config.resume = true;
        EXPECT_EQ(config.validate(), "resume requires a non-empty checkpoint_path");
        config.checkpoint_path = "journal.jsonl";
        EXPECT_TRUE(config.validate().empty());
    }
}

// -------------------------------------------------- degradation ladder units

TEST(DegradationLadderTest, SpatialRidgeFallbackOnUnderdeterminedFit) {
    // 3 training samples against 3 signatures + intercept: OLS is
    // underdetermined and must hand the dependent series to ridge.
    const std::vector<std::vector<double>> series = {
        {1.0, 2.0, 3.0}, {2.0, 1.0, 4.0}, {0.5, 0.5, 1.0}, {1.5, 2.5, 3.5}};
    core::SpatialModel model;
    model.fit(series, {0, 1, 2});
    EXPECT_TRUE(model.fitted());
    EXPECT_EQ(model.ridge_fallbacks(), 1u);
    const auto rebuilt = model.reconstruct({series[0], series[1], series[2]});
    ASSERT_EQ(rebuilt.size(), 4u);
    for (const double x : rebuilt[3]) EXPECT_TRUE(std::isfinite(x));
}

TEST(DegradationLadderTest, AllBadSeriesIsPinnedToZerosAndReported) {
    trace::TraceGenOptions options;
    options.num_days = 6;
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    trace::BoxTrace box = trace::generate_box(options, 0);
    ASSERT_GE(box.vms.size(), 2u);
    for (double& x : box.vms[0].cpu_demand_ghz.values()) {
        x = std::numeric_limits<double>::quiet_NaN();
    }

    core::PipelineConfig config;
    config.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.train_days = 5;
    const core::BoxPipelineResult result =
        core::run_pipeline_on_box(box, options.windows_per_day, config);
    EXPECT_TRUE(has_degradation(result, "sanitize",
                                PipelineErrorCode::kRepairFailed));
    EXPECT_TRUE(std::isfinite(result.ape_all));
}

TEST(DegradationLadderTest, OverlyCorruptBoxIsRejectedWithTaxonomy) {
    trace::TraceGenOptions options;
    options.num_days = 6;
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    trace::BoxTrace box = trace::generate_box(options, 0);
    box.vms[0].cpu_demand_ghz.values()[0] =
        std::numeric_limits<double>::quiet_NaN();

    core::PipelineConfig config;
    config.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.train_days = 5;
    config.max_bad_sample_fraction = 0.0;  // zero tolerance: one NaN rejects
    try {
        core::run_pipeline_on_box(box, options.windows_per_day, config);
        FAIL() << "expected PipelineError";
    } catch (const core::PipelineError& e) {
        EXPECT_EQ(e.code(), PipelineErrorCode::kTraceInvalid);
        EXPECT_EQ(e.stage(), "sanitize");
    }
}

}  // namespace
}  // namespace atm
