// Tests for the exec subsystem (thread pool, parallel_for_each, seed
// derivation, ArgParser) and the fleet driver's determinism contract:
// identical results at every worker count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/dtw.hpp"
#include "core/fleet.hpp"
#include "exec/arena.hpp"
#include "exec/arg_parser.hpp"
#include "exec/cancel.hpp"
#include "exec/io.hpp"
#include "exec/journal.hpp"
#include "exec/seed.hpp"
#include "exec/shard.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "tracegen/generator.hpp"

namespace atm {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
    exec::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i) {
        pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SingleWorkerExecutesInSubmissionOrder) {
    exec::ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
        pool.submit([&order, i] { order.push_back(i); });
    }
    pool.wait_idle();
    std::vector<int> expected(50);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
    std::atomic<int> count{0};
    {
        exec::ThreadPool pool(2);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&count] { count.fetch_add(1); });
        }
    }  // ~ThreadPool joins after the queue is drained
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
    const exec::ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
}

// --------------------------------------------------------- parallel_for_each

TEST(ParallelForEachTest, CoversEveryIndexExactlyOnce) {
    exec::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    exec::parallel_for_each(&pool, hits.size(),
                            [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelForEachTest, NullPoolRunsSeriallyInOrder) {
    std::vector<std::size_t> seen;
    exec::parallel_for_each(nullptr, 10,
                            [&seen](std::size_t i) { seen.push_back(i); });
    std::vector<std::size_t> expected(10);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(seen, expected);
}

TEST(ParallelForEachTest, PropagatesFirstExceptionAndKeepsPoolUsable) {
    exec::ThreadPool pool(3);
    EXPECT_THROW(
        exec::parallel_for_each(&pool, 64,
                                [](std::size_t i) {
                                    if (i == 7) {
                                        throw std::runtime_error("boom at 7");
                                    }
                                }),
        std::runtime_error);
    // The pool must survive a failed loop and run later work.
    std::atomic<int> count{0};
    exec::parallel_for_each(&pool, 32,
                            [&count](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForEachTest, DeliversLowestIndexExceptionDeterministically) {
    // Several indices throw concurrently; the contract is that the caller
    // always sees the exception from the lowest index, independent of
    // scheduling — chaos tests rely on this to assert exact failures.
    exec::ThreadPool pool(7);
    for (int repeat = 0; repeat < 25; ++repeat) {
        try {
            exec::parallel_for_each(&pool, 128, [](std::size_t i) {
                if (i == 5 || i == 23 || i == 77 || i == 127) {
                    throw std::runtime_error("boom " + std::to_string(i));
                }
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "boom 5") << "repeat " << repeat;
        }
    }
}

TEST(ParallelForEachTest, NestedCallsOnTheSamePoolComplete) {
    // All workers sit inside outer iterations, so inner calls can only
    // finish because the calling task drains its own index space — this
    // deadlocks with a naive fork/join pool.
    exec::ThreadPool pool(2);
    std::atomic<int> count{0};
    exec::parallel_for_each(&pool, 4, [&pool, &count](std::size_t) {
        exec::parallel_for_each(&pool, 8,
                                [&count](std::size_t) { count.fetch_add(1); });
    });
    EXPECT_EQ(count.load(), 32);
}

TEST(ParallelForEachTest, ZeroItemsIsANoOp) {
    exec::ThreadPool pool(2);
    exec::parallel_for_each(&pool, 0, [](std::size_t) { FAIL(); });
}

// ------------------------------------------------------------------- seeding

TEST(SeedTest, DeriveSeedIsDeterministic) {
    EXPECT_EQ(exec::derive_seed(42, 7), exec::derive_seed(42, 7));
}

TEST(SeedTest, DeriveSeedSeparatesIndicesAndBases) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t base : {0ull, 1ull, 42ull}) {
        for (std::uint64_t index = 0; index < 100; ++index) {
            seeds.insert(exec::derive_seed(base, index));
        }
    }
    EXPECT_EQ(seeds.size(), 300u);  // no collisions across bases or indices
}

// ------------------------------------------------------ parallel DTW matrix

std::vector<std::vector<double>> small_series_set() {
    trace::TraceGenOptions options;
    options.num_days = 1;
    options.gappy_box_fraction = 0.0;
    return trace::generate_box(options, 5).demand_matrix();
}

TEST(DtwParallelTest, PooledMatrixMatchesSerial) {
    const auto series = small_series_set();
    const auto serial = cluster::dtw_distance_matrix(series);
    exec::ThreadPool pool(4);
    const auto parallel = cluster::dtw_distance_matrix(series, -1, &pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        for (std::size_t j = 0; j < serial.size(); ++j) {
            EXPECT_EQ(parallel[i][j], serial[i][j]) << i << "," << j;
        }
    }
}

TEST(DtwParallelTest, CacheComputesEachBandOnce) {
    const auto series = small_series_set();
    cluster::DtwMatrixCache cache;
    const auto* first = &cache.matrix(series, -1);
    const auto* again = &cache.matrix(series, -1);
    EXPECT_EQ(first, again);  // memoized, not recomputed
    EXPECT_EQ(cache.size(), 1u);
    cache.matrix(series, 8);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(*first, cluster::dtw_distance_matrix(series));
}

TEST(DtwParallelTest, CacheRejectsDifferentSeriesSet) {
    const auto series = small_series_set();
    cluster::DtwMatrixCache cache;
    cache.matrix(series, -1);
    auto other = series;
    other.pop_back();
    EXPECT_THROW(cache.matrix(other, -1), std::invalid_argument);
    cache.clear();
    EXPECT_NO_THROW(cache.matrix(other, -1));
}

// ------------------------------------------------------------- FleetConfig

TEST(FleetConfigTest, DefaultConfigValidates) {
    const core::FleetConfig config;
    EXPECT_EQ(config.validate(), "");
}

TEST(FleetConfigTest, ReportsEveryOutOfRangeValue) {
    core::FleetConfig config;
    config.pipeline.alpha = 1.5;
    config.pipeline.train_days = 0;
    config.pipeline.epsilon_pct = -1.0;
    config.jobs = -2;
    const std::string problems = config.validate();
    EXPECT_NE(problems.find("alpha"), std::string::npos);
    EXPECT_NE(problems.find("train_days"), std::string::npos);
    EXPECT_NE(problems.find("epsilon_pct"), std::string::npos);
    EXPECT_NE(problems.find("jobs"), std::string::npos);
}

TEST(FleetConfigTest, AcceptsBoundaryAlphaAndRejectsRangeEdges) {
    core::FleetConfig config;
    config.pipeline.alpha = 1.0;  // a 100% threshold is a valid boundary
    EXPECT_EQ(config.validate(), "");
    config.pipeline.epsilon_pct = 100.0;  // rounding to >= a full capacity is not
    EXPECT_NE(config.validate().find("epsilon_pct"), std::string::npos);
    config.pipeline.epsilon_pct = 5.0;
    config.pipeline.max_bad_sample_fraction = 1.5;
    EXPECT_NE(config.validate().find("max_bad_sample_fraction"),
              std::string::npos);
}

TEST(FleetConfigTest, TraceValidationCatchesOverlongTraining) {
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 6;
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    EXPECT_EQ(config.validate(t), "");  // 5 train days + 1 eval day fit in 6
    config.pipeline.train_days = 10;
    EXPECT_EQ(config.validate(), "");  // config alone cannot see the trace
    EXPECT_NE(config.validate(t).find("train_days"), std::string::npos);
    EXPECT_THROW(core::run_pipeline_on_fleet(t, config), std::invalid_argument);
}

TEST(FleetConfigTest, FleetRunRejectsInvalidConfig) {
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 6;
    options.gappy_box_fraction = 0.0;
    const trace::Trace t = trace::generate_trace(options);
    core::FleetConfig config;
    config.pipeline.alpha = 0.0;
    EXPECT_THROW(core::run_pipeline_on_fleet(t, config), std::invalid_argument);
}

// ------------------------------------------------------------- fleet driver

trace::Trace fleet_trace(int boxes) {
    trace::TraceGenOptions options;
    options.num_boxes = boxes;
    options.num_days = 6;  // 5 training days + 1 evaluation day
    options.windows_per_day = 24;  // keep the NN fits fast
    options.gappy_box_fraction = 0.0;
    options.seed = 20150403;
    return trace::generate_trace(options);
}

core::FleetConfig fleet_config() {
    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kDtw;
    // The NN temporal model is the seed-sensitive path; using it makes
    // this test prove the per-box seed derivation is schedule-independent.
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.pipeline.train_days = 5;
    config.policies = {resize::ResizePolicy::kAtmGreedy,
                       resize::ResizePolicy::kStingy};
    return config;
}

TEST(FleetDriverTest, ResultsAreBitIdenticalAcrossJobCounts) {
    const trace::Trace t = fleet_trace(8);

    core::FleetConfig serial = fleet_config();
    serial.jobs = 1;
    const core::FleetResult a = core::run_pipeline_on_fleet(t, serial);

    core::FleetConfig pooled = fleet_config();
    pooled.jobs = 8;
    const core::FleetResult b = core::run_pipeline_on_fleet(t, pooled);

    ASSERT_EQ(a.boxes.size(), 8u);
    ASSERT_EQ(b.boxes.size(), a.boxes.size());
    EXPECT_EQ(a.boxes_failed, 0u);
    EXPECT_EQ(b.boxes_failed, 0u);
    for (std::size_t i = 0; i < a.boxes.size(); ++i) {
        const auto& ra = a.boxes[i];
        const auto& rb = b.boxes[i];
        EXPECT_EQ(ra.box_index, rb.box_index);
        EXPECT_EQ(ra.box_name, rb.box_name);
        EXPECT_EQ(ra.result.ape_all, rb.result.ape_all) << "box " << i;
        EXPECT_EQ(ra.result.ape_peak, rb.result.ape_peak) << "box " << i;
        EXPECT_EQ(ra.result.search.signatures, rb.result.search.signatures);
        ASSERT_EQ(ra.result.policies.size(), rb.result.policies.size());
        for (std::size_t p = 0; p < ra.result.policies.size(); ++p) {
            EXPECT_EQ(ra.result.policies[p].cpu_before,
                      rb.result.policies[p].cpu_before);
            EXPECT_EQ(ra.result.policies[p].cpu_after,
                      rb.result.policies[p].cpu_after);
            EXPECT_EQ(ra.result.policies[p].ram_before,
                      rb.result.policies[p].ram_before);
            EXPECT_EQ(ra.result.policies[p].ram_after,
                      rb.result.policies[p].ram_after);
        }
    }
    ASSERT_EQ(a.totals.size(), 2u);
    for (std::size_t p = 0; p < a.totals.size(); ++p) {
        EXPECT_EQ(a.totals[p].cpu_before, b.totals[p].cpu_before);
        EXPECT_EQ(a.totals[p].cpu_after, b.totals[p].cpu_after);
        EXPECT_EQ(a.totals[p].ram_before, b.totals[p].ram_before);
        EXPECT_EQ(a.totals[p].ram_after, b.totals[p].ram_after);
    }
    EXPECT_EQ(a.mean_ape_all, b.mean_ape_all);
    EXPECT_EQ(a.mean_ape_peak, b.mean_ape_peak);
}

TEST(FleetDriverTest, PerBoxSeedsDifferFromEachOther) {
    // Two identical boxes in a fleet must not get identical forecaster
    // seeds — derive_seed keys on the box index.
    const trace::Trace t = fleet_trace(3);
    core::FleetConfig config = fleet_config();
    config.jobs = 1;
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
    ASSERT_EQ(fleet.boxes.size(), 3u);
    // Results exist and the run is marked with the resolved job count.
    EXPECT_EQ(fleet.jobs, 1);
    EXPECT_EQ(fleet.boxes_evaluated(), 3u);
}

TEST(FleetDriverTest, SelectsByNameAndCapsBoxCount) {
    const trace::Trace t = fleet_trace(6);
    core::FleetConfig config = fleet_config();
    config.pipeline.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.jobs = 2;

    config.box_names = {t.boxes[2].name};
    const core::FleetResult named = core::run_pipeline_on_fleet(t, config);
    ASSERT_EQ(named.boxes.size(), 1u);
    EXPECT_EQ(named.boxes[0].box_index, 2);
    EXPECT_EQ(named.boxes_skipped, 5u);

    config.box_names.clear();
    config.max_boxes = 4;
    const core::FleetResult capped = core::run_pipeline_on_fleet(t, config);
    ASSERT_EQ(capped.boxes.size(), 4u);
    EXPECT_EQ(capped.boxes_skipped, 2u);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(capped.boxes[static_cast<std::size_t>(i)].box_index, i);
}

TEST(FleetDriverTest, ActualsFleetMatchesPerBoxCalls) {
    trace::TraceGenOptions options;
    options.num_boxes = 4;
    options.num_days = 2;
    options.gappy_box_fraction = 0.0;
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.jobs = 4;
    config.skip_gappy_boxes = false;
    const core::FleetResult fleet = core::evaluate_resize_on_fleet(t, 1, config);
    ASSERT_EQ(fleet.boxes.size(), 4u);
    for (const core::FleetBoxResult& b : fleet.boxes) {
        ASSERT_TRUE(b.error.empty());
        const auto direct = core::evaluate_resize_policies_on_actuals(
            t.boxes[static_cast<std::size_t>(b.box_index)], t.windows_per_day,
            1, config.pipeline.alpha, config.pipeline.epsilon_pct,
            config.policies, config.pipeline.use_lower_bounds);
        ASSERT_EQ(b.result.policies.size(), direct.size());
        for (std::size_t p = 0; p < direct.size(); ++p) {
            EXPECT_EQ(b.result.policies[p].cpu_after, direct[p].cpu_after);
            EXPECT_EQ(b.result.policies[p].ram_after, direct[p].ram_after);
        }
    }
}

// ---------------------------------------------------------------- ArgParser

std::vector<char*> argv_of(std::vector<std::string>& args) {
    std::vector<char*> argv;
    argv.reserve(args.size());
    for (std::string& a : args) argv.push_back(a.data());
    return argv;
}

TEST(ArgParserTest, ParsesBothFlagSpellingsAndPositionals) {
    exec::ArgParser parser("tool", "test");
    parser.positional("input", "the input")
        .option("boxes", "50", "box count")
        .option("seed", "1", "seed")
        .flag("verbose", "talk more");
    std::vector<std::string> args{"tool", "trace.csv", "--boxes", "12",
                                  "--seed=99", "--verbose"};
    auto argv = argv_of(args);
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data(), 1));
    EXPECT_EQ(parser.get("input"), "trace.csv");
    EXPECT_EQ(parser.get_int("boxes"), 12);
    EXPECT_EQ(parser.get_u64("seed"), 99u);
    EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(ArgParserTest, DefaultsApplyWhenFlagsAbsent) {
    exec::ArgParser parser("tool", "test");
    parser.option("threshold", "60", "pct").flag("verbose", "");
    std::vector<std::string> args{"tool"};
    auto argv = argv_of(args);
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data(), 1));
    EXPECT_EQ(parser.get_double("threshold"), 60.0);
    EXPECT_FALSE(parser.get_flag("verbose"));
}

TEST(ArgParserTest, ErrorsOnUnknownFlag) {
    exec::ArgParser parser("tool", "test");
    parser.option("boxes", "50", "");
    std::vector<std::string> args{"tool", "--boxen", "7"};
    auto argv = argv_of(args);
    EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data(), 1),
                 exec::ArgParseError);
}

TEST(ArgParserTest, ErrorsOnMissingValueAndMalformedNumbers) {
    exec::ArgParser parser("tool", "test");
    parser.option("boxes", "50", "");
    {
        std::vector<std::string> args{"tool", "--boxes"};
        auto argv = argv_of(args);
        EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data(), 1),
                     exec::ArgParseError);
    }
    {
        std::vector<std::string> args{"tool", "--boxes", "12x"};
        auto argv = argv_of(args);
        ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data(), 1));
        EXPECT_THROW(static_cast<void>(parser.get_int("boxes")),
                     exec::ArgParseError);
    }
}

TEST(ArgParserTest, ErrorsOnMissingPositionalAndExtraPositional) {
    {
        exec::ArgParser parser("tool", "test");
        parser.positional("input", "");
        std::vector<std::string> args{"tool"};
        auto argv = argv_of(args);
        EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data(), 1),
                     exec::ArgParseError);
    }
    {
        exec::ArgParser parser("tool", "test");
        parser.positional("input", "");
        std::vector<std::string> args{"tool", "a.csv", "b.csv"};
        auto argv = argv_of(args);
        EXPECT_THROW(parser.parse(static_cast<int>(argv.size()), argv.data(), 1),
                     exec::ArgParseError);
    }
}

TEST(ArgParserTest, RequireWritableFileRejectsBadPaths) {
    // Unwritable directory component -> hard usage error, not a silent
    // no-op after the fleet run (this is what `--metrics-out` leans on).
    EXPECT_THROW(
        exec::require_writable_file("metrics-out",
                                    "/nonexistent-dir-atm/metrics.json"),
        exec::ArgParseError);
    EXPECT_THROW(exec::require_writable_file("metrics-out", ""),
                 exec::ArgParseError);
}

TEST(ArgParserTest, RequireWritableFileAcceptsAndCleansUpProbe) {
    const std::string path =
        testing::TempDir() + "atm_require_writable_probe.json";
    std::remove(path.c_str());
    EXPECT_NO_THROW(exec::require_writable_file("metrics-out", path));
    // The probe created the file only to test writability; it must not
    // leave an empty report behind.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_EQ(f, nullptr);
    if (f != nullptr) std::fclose(f);

    // An existing file is left untouched (append-mode probe).
    {
        std::FILE* out = std::fopen(path.c_str(), "wb");
        ASSERT_NE(out, nullptr);
        std::fputs("keep me", out);
        std::fclose(out);
    }
    EXPECT_NO_THROW(exec::require_writable_file("metrics-out", path));
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "keep me");
    std::remove(path.c_str());
}

TEST(ArgParserTest, HelpReturnsFalse) {
    exec::ArgParser parser("tool", "test");
    parser.option("boxes", "50", "box count");
    std::vector<std::string> args{"tool", "--help"};
    auto argv = argv_of(args);
    testing::internal::CaptureStdout();
    const bool proceed =
        parser.parse(static_cast<int>(argv.size()), argv.data(), 1);
    const std::string help = testing::internal::GetCapturedStdout();
    EXPECT_FALSE(proceed);
    EXPECT_NE(help.find("usage: tool"), std::string::npos);
    EXPECT_NE(help.find("--boxes"), std::string::npos);
}

// ------------------------------------------------------------- atomic writes

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spill(const std::string& path, const std::string& contents) {
    std::ofstream out(path, std::ios::binary);
    out << contents;
}

TEST(AtomicWriteTest, WritesNewFileAndRemovesTemp) {
    const std::string path = testing::TempDir() + "atm_atomic_new.txt";
    std::remove(path.c_str());
    exec::write_file_atomic(path, "hello\n");
    EXPECT_EQ(slurp(path), "hello\n");
    // The staging file must not survive a successful publish.
    std::ifstream temp(exec::atomic_temp_path(path));
    EXPECT_FALSE(temp.good());
    std::remove(path.c_str());
}

TEST(AtomicWriteTest, ReplacesExistingContentsWhole) {
    const std::string path = testing::TempDir() + "atm_atomic_replace.txt";
    spill(path, "old contents, longer than the replacement");
    exec::write_file_atomic(path, "new");
    // rename() replaces the whole file: no stale tail from the old data.
    EXPECT_EQ(slurp(path), "new");
    std::remove(path.c_str());
}

TEST(AtomicWriteTest, FailureLeavesTargetUntouched) {
    const std::string path = "/nonexistent-dir-atm/out.json";
    EXPECT_THROW(exec::write_file_atomic(path, "x"), std::runtime_error);
}

TEST(ProbeWritablePathTest, ProbesViaTempAndNeverTouchesTarget) {
    const std::string path = testing::TempDir() + "atm_probe_target.json";
    spill(path, "precious");
    std::string error;
    EXPECT_TRUE(exec::probe_writable_path(path, &error)) << error;
    EXPECT_EQ(slurp(path), "precious");  // target never opened
    std::ifstream temp(exec::atomic_temp_path(path));
    EXPECT_FALSE(temp.good());  // probe cleaned up after itself
    std::remove(path.c_str());

    EXPECT_FALSE(exec::probe_writable_path("", &error));
    EXPECT_FALSE(exec::probe_writable_path(testing::TempDir(), &error));
    EXPECT_NE(error.find("directory"), std::string::npos);
    EXPECT_FALSE(exec::probe_writable_path("/nonexistent-dir-atm/x", &error));
}

// ------------------------------------------------------------------- journal

TEST(JournalTest, FrameEmbedsLengthAndChecksum) {
    const std::string frame = exec::frame_journal_record("payload");
    ASSERT_GT(frame.size(), 26u);
    EXPECT_EQ(frame.substr(26, 7), "payload");
    EXPECT_EQ(frame.back(), '\n');
    // Newlines would tear the framing; the writer must reject them.
    EXPECT_THROW(exec::frame_journal_record("two\nlines"), std::invalid_argument);
}

TEST(JournalTest, MissingFileLoadsAsAbsent) {
    const exec::JournalLoad load =
        exec::load_journal(testing::TempDir() + "atm_journal_missing.jsonl");
    EXPECT_FALSE(load.exists);
    EXPECT_TRUE(load.header.empty());
    EXPECT_TRUE(load.records.empty());
    EXPECT_EQ(load.valid_bytes, 0u);
}

TEST(JournalTest, CreateAppendLoadRoundTrips) {
    const std::string path = testing::TempDir() + "atm_journal_roundtrip.jsonl";
    std::remove(path.c_str());
    {
        exec::JournalWriter writer = exec::JournalWriter::create(path, "header");
        writer.append("first");
        writer.append("second");
    }
    const exec::JournalLoad load = exec::load_journal(path);
    EXPECT_TRUE(load.exists);
    EXPECT_FALSE(load.dropped_tail);
    EXPECT_EQ(load.header, "header");
    EXPECT_EQ(load.records, (std::vector<std::string>{"first", "second"}));
    EXPECT_EQ(load.valid_bytes, load.record_ends.back());
    std::remove(path.c_str());
}

TEST(JournalTest, TornTailIsDroppedNotFatal) {
    const std::string path = testing::TempDir() + "atm_journal_torn.jsonl";
    std::remove(path.c_str());
    {
        exec::JournalWriter writer = exec::JournalWriter::create(path, "h");
        writer.append("intact");
    }
    // Simulate a crash mid-write: half a frame, no trailing newline.
    const std::string torn = exec::frame_journal_record("lost");
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << torn.substr(0, torn.size() / 2);
    out.close();

    const exec::JournalLoad load = exec::load_journal(path);
    EXPECT_TRUE(load.dropped_tail);
    EXPECT_EQ(load.header, "h");
    EXPECT_EQ(load.records, std::vector<std::string>{"intact"});
    std::remove(path.c_str());
}

TEST(JournalTest, ChecksumMismatchTruncatesFromTheBadRecord) {
    const std::string path = testing::TempDir() + "atm_journal_corrupt.jsonl";
    std::remove(path.c_str());
    std::string good_tail;
    {
        exec::JournalWriter writer = exec::JournalWriter::create(path, "h");
        writer.append("keep");
    }
    // A record whose payload was flipped after the checksum was computed —
    // and a perfectly framed record after it, which must ALSO be dropped
    // (append order is the recovery contract; no holes).
    std::string bad = exec::frame_journal_record("flipme");
    bad[26] = 'F';
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << bad << exec::frame_journal_record("after-the-hole");
    out.close();

    const exec::JournalLoad load = exec::load_journal(path);
    EXPECT_TRUE(load.dropped_tail);
    EXPECT_EQ(load.records, std::vector<std::string>{"keep"});
    std::remove(path.c_str());
}

TEST(JournalTest, AppendAfterPhysicallyRemovesTheTornTail) {
    const std::string path = testing::TempDir() + "atm_journal_append.jsonl";
    std::remove(path.c_str());
    {
        exec::JournalWriter writer = exec::JournalWriter::create(path, "h");
        writer.append("one");
    }
    std::ofstream(path, std::ios::binary | std::ios::app) << "garbage tail";
    const exec::JournalLoad load = exec::load_journal(path);
    ASSERT_TRUE(load.dropped_tail);
    {
        exec::JournalWriter writer =
            exec::JournalWriter::append_after(path, load.valid_bytes);
        writer.append("two");
    }
    const exec::JournalLoad reloaded = exec::load_journal(path);
    EXPECT_FALSE(reloaded.dropped_tail);
    EXPECT_EQ(reloaded.records, (std::vector<std::string>{"one", "two"}));
    std::remove(path.c_str());
}

TEST(JournalTest, AppendIsThreadSafe) {
    const std::string path = testing::TempDir() + "atm_journal_mt.jsonl";
    std::remove(path.c_str());
    {
        exec::JournalWriter writer = exec::JournalWriter::create(path, "h");
        exec::ThreadPool pool(4);
        exec::parallel_for_each(&pool, 64, [&writer](std::size_t i) {
            writer.append("record-" + std::to_string(i));
        });
    }
    const exec::JournalLoad load = exec::load_journal(path);
    EXPECT_FALSE(load.dropped_tail);  // frames never interleave
    std::set<std::string> seen(load.records.begin(), load.records.end());
    EXPECT_EQ(seen.size(), 64u);
    std::remove(path.c_str());
}

TEST(JournalTest, LoadWithLiveWriterDropsInFlightTailThenSeesItComplete) {
    const std::string path = testing::TempDir() + "atm_journal_live.jsonl";
    std::remove(path.c_str());
    exec::JournalWriter writer = exec::JournalWriter::create(path, "h");
    writer.append("a");

    // Readers may load while the writer still holds the fd (the serve
    // daemon's warm restart races a dying predecessor; monitors poll the
    // file). Each load must see the intact prefix as of that instant.
    exec::JournalLoad load = exec::load_journal(path);
    EXPECT_FALSE(load.dropped_tail);
    EXPECT_EQ(load.records, std::vector<std::string>{"a"});

    writer.append("b");
    load = exec::load_journal(path);
    EXPECT_EQ(load.records, (std::vector<std::string>{"a", "b"}));
    const std::uint64_t intact_bytes = load.valid_bytes;

    // Simulate the writer caught mid-write(2): the first half of its next
    // frame is visible at EOF. A concurrent load drops the torn tail.
    const std::string frame = exec::frame_journal_record("c");
    std::ofstream(path, std::ios::binary | std::ios::app)
        << frame.substr(0, frame.size() / 2);
    load = exec::load_journal(path);
    EXPECT_TRUE(load.dropped_tail);
    EXPECT_EQ(load.records, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(load.valid_bytes, intact_bytes);

    // The writer's fd position is still the end of "b", so its append
    // lands exactly where the in-flight bytes sat — completing the frame
    // the torn tail previewed. Appends continue as if no reader raced it.
    writer.append("c");
    load = exec::load_journal(path);
    EXPECT_FALSE(load.dropped_tail);
    EXPECT_EQ(load.records, (std::vector<std::string>{"a", "b", "c"}));

    writer.append("d");
    load = exec::load_journal(path);
    EXPECT_FALSE(load.dropped_tail);
    EXPECT_EQ(load.records, (std::vector<std::string>{"a", "b", "c", "d"}));
    writer.close();
    std::remove(path.c_str());
}

// -------------------------------------------------------------- cancellation

TEST(CancellationTokenTest, FirstReasonWins) {
    exec::CancellationToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel(exec::CancelReason::kDeadline);
    token.cancel(exec::CancelReason::kStop);  // too late: no-op
    EXPECT_EQ(token.reason(), exec::CancelReason::kDeadline);
    try {
        token.check("unit.test");
        FAIL() << "expected OperationCancelled";
    } catch (const exec::OperationCancelled& e) {
        EXPECT_EQ(e.reason(), exec::CancelReason::kDeadline);
        EXPECT_EQ(e.where(), "unit.test");
    }
}

TEST(CancellationTokenTest, ExpiredDeadlineSelfTrips) {
    exec::CancellationToken token;
    token.arm_deadline_after(1e-9);
    // No watchdog anywhere: the next observation must trip the token.
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), exec::CancelReason::kDeadline);

    exec::CancellationToken patient;
    patient.arm_deadline_after(3600.0);
    EXPECT_FALSE(patient.cancelled());
    patient.arm_deadline_after(0.0);  // disarm
    EXPECT_FALSE(patient.cancelled());
}

TEST(CancellationTokenTest, CheckpointToleratesNullToken) {
    EXPECT_NO_THROW(exec::checkpoint(nullptr, "anywhere"));
    exec::CancellationToken live;
    EXPECT_NO_THROW(exec::checkpoint(&live, "anywhere"));
    live.cancel(exec::CancelReason::kStop);
    EXPECT_THROW(exec::checkpoint(&live, "anywhere"), exec::OperationCancelled);
}

// ---------------------------------------------------------------------------
// Arena (exec/arena.hpp): monotonic bump allocator behind the per-worker
// pipeline workspaces.

TEST(ArenaTest, AllocationsAreAlignedAndCounted) {
    exec::Arena arena(/*slab_bytes=*/256);
    for (const std::size_t align : {1ul, 8ul, 16ul, 64ul}) {
        void* p = arena.allocate(24, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
            << "align " << align;
    }
    const exec::ArenaStats& stats = arena.stats();
    EXPECT_EQ(stats.allocations, 4u);
    EXPECT_GE(stats.bytes_allocated, 4 * 24u);
    EXPECT_GE(stats.bytes_reserved, stats.high_water);
    EXPECT_GE(stats.high_water, stats.bytes_allocated);
    EXPECT_GE(stats.slabs, 1u);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnSlab) {
    exec::Arena arena(/*slab_bytes=*/128);
    // Larger than a whole slab: the arena must grow, not fail.
    void* big = arena.allocate(4096, 64);
    ASSERT_NE(big, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
    std::memset(big, 0xAB, 4096);  // the whole block must be writable
    EXPECT_GE(arena.stats().bytes_reserved, 4096u);
}

TEST(ArenaTest, ArenaVectorUsesTheArenaAndHeapFallsBack) {
    exec::Arena arena;
    exec::ArenaVector<double> vec{exec::ArenaAllocator<double>(&arena)};
    vec.assign(100, 1.5);
    EXPECT_EQ(vec[99], 1.5);
    EXPECT_GE(arena.stats().bytes_allocated, 100 * sizeof(double));
    // Default-constructed allocator (null arena) = plain heap: the type
    // must remain usable as an ordinary vector.
    exec::ArenaVector<double> heap_vec;
    heap_vec.assign(10, 2.5);
    EXPECT_EQ(heap_vec[9], 2.5);
    // Allocators compare equal only when both point at the same arena.
    EXPECT_TRUE(exec::ArenaAllocator<double>(&arena) ==
                exec::ArenaAllocator<double>(&arena));
    EXPECT_FALSE(exec::ArenaAllocator<double>(&arena) ==
                 exec::ArenaAllocator<double>());
}

// ---------------------------------------------------------------------------
// Sharded scheduler (exec/shard.hpp).

TEST(ShardTest, ResolveShardSizeRules) {
    // Explicit request wins, clamped to n.
    EXPECT_EQ(exec::resolve_shard_size(100, 4, 10), 10u);
    EXPECT_EQ(exec::resolve_shard_size(5, 4, 10), 5u);
    // Auto: ~8 shards per worker, floor 1, cap 64.
    EXPECT_EQ(exec::resolve_shard_size(8, 8, 0), 1u);
    EXPECT_EQ(exec::resolve_shard_size(6400, 4, 0), 64u);
    EXPECT_GE(exec::resolve_shard_size(1000, 2, 0), 1u);
    // Degenerate n.
    EXPECT_EQ(exec::resolve_shard_size(0, 4, 0), 1u);
}

TEST(ShardTest, SerialPathCoversEveryIndexInOrder) {
    std::vector<std::size_t> seen;
    exec::run_sharded(nullptr, 10, {}, [&](unsigned worker, std::size_t i) {
        EXPECT_EQ(worker, 0u);
        seen.push_back(i);
    });
    std::vector<std::size_t> want(10);
    std::iota(want.begin(), want.end(), 0u);
    EXPECT_EQ(seen, want);
}

TEST(ShardTest, PooledRunCoversEveryIndexExactlyOnceWithDenseWorkerIds) {
    exec::ThreadPool pool(3);
    exec::ShardOptions options;
    options.workers = 4;
    options.shard_size = 2;
    constexpr std::size_t kN = 103;
    std::vector<std::atomic<int>> hits(kN);
    std::vector<std::atomic<int>> worker_used(4);
    exec::run_sharded(&pool, kN, options, [&](unsigned worker, std::size_t i) {
        ASSERT_LT(worker, 4u);
        worker_used[worker].fetch_add(1);
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
    // The caller is always worker 0 and participates.
    EXPECT_GT(worker_used[0].load(), 0);
}

TEST(ShardTest, LowestIndexExceptionWins) {
    exec::ThreadPool pool(3);
    exec::ShardOptions options;
    options.workers = 4;
    options.shard_size = 1;
    for (int repeat = 0; repeat < 20; ++repeat) {
        try {
            exec::run_sharded(&pool, 64, options,
                              [&](unsigned, std::size_t i) {
                                  if (i == 7 || i == 31 || i == 50) {
                                      throw std::runtime_error(
                                          "fail@" + std::to_string(i));
                                  }
                              });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "fail@7");
        }
    }
}

TEST(ShardTest, SharedPoolGrowsAndNeverShrinks) {
    exec::ThreadPool& a = exec::shared_pool(2);
    EXPECT_GE(a.size(), 2u);
    exec::ThreadPool& b = exec::shared_pool(5);
    EXPECT_EQ(&a, &b);  // one process-wide pool
    EXPECT_GE(b.size(), 5u);
    const unsigned grown = b.size();
    exec::ThreadPool& c = exec::shared_pool(1);  // smaller request: no shrink
    EXPECT_EQ(c.size(), grown);
    // The grown pool still runs work.
    std::atomic<int> ran{0};
    exec::run_sharded(&c, 32, {}, [&](unsigned, std::size_t) { ran++; });
    EXPECT_EQ(ran.load(), 32);
}

// ---------------------------------------------------------------------------
// 64-bit safety audit: counters and cell-count arithmetic that a
// paper-scale fleet (6K boxes / 80K VMs / 10^10+ DTW cells) pushes past
// the 32-bit line.

TEST(SixtyFourBitTest, DtwCellCountSurvivesHugeSeries) {
    // (2^17)^2 = 2^34 cells: silently truncated to 0 by 32-bit math.
    constexpr std::size_t kLen = std::size_t{1} << 17;
    EXPECT_EQ(cluster::dtw_cell_count(kLen, kLen, -1),
              std::uint64_t{1} << 34);
    // Banded count stays within u64 and is monotone in the band.
    const std::uint64_t narrow = cluster::dtw_cell_count(kLen, kLen, 8);
    const std::uint64_t wide = cluster::dtw_cell_count(kLen, kLen, 1024);
    EXPECT_GT(narrow, 0u);
    EXPECT_GT(wide, narrow);
    EXPECT_LT(wide, std::uint64_t{1} << 34);
}

TEST(SixtyFourBitTest, FleetTotalsAreSixtyFourBitWide) {
    static_assert(std::is_same_v<decltype(core::FleetPolicyTotals::cpu_before),
                                 std::int64_t>);
    static_assert(std::is_same_v<decltype(core::FleetPolicyTotals::ram_after),
                                 std::int64_t>);
    static_assert(
        std::is_same_v<decltype(core::FleetExecStats::arena_high_water),
                       std::uint64_t>);
    // Summing per-box int tickets near INT_MAX must not wrap.
    core::FleetPolicyTotals totals;
    for (int i = 0; i < 4; ++i) {
        totals.cpu_before += std::numeric_limits<int>::max();
        totals.cpu_after += std::numeric_limits<int>::max() / 2;
    }
    EXPECT_EQ(totals.cpu_before, 4 * std::int64_t{2147483647});
    EXPECT_GT(totals.cpu_before, totals.cpu_after);
    EXPECT_NEAR(totals.cpu_reduction_pct(), 50.0, 0.1);
}

TEST(SixtyFourBitTest, MetricsCountersAccumulatePastTwoToTheThirtyTwo) {
    obs::MetricsRegistry registry;
    // 5 x 2^30 > 2^32: a u32 counter would wrap to 2^30.
    for (int i = 0; i < 5; ++i) {
        registry.add("audit.samples", std::uint64_t{1} << 30);
    }
    EXPECT_EQ(registry.snapshot().counter("audit.samples"),
              std::uint64_t{5} << 30);
}

TEST(SixtyFourBitTest, ArenaStatsAreSixtyFourBitWide) {
    static_assert(
        std::is_same_v<decltype(exec::ArenaStats::bytes_allocated),
                       std::uint64_t>);
    static_assert(std::is_same_v<decltype(exec::ArenaStats::high_water),
                                 std::uint64_t>);
    static_assert(std::is_same_v<decltype(exec::ArenaStats::allocations),
                                 std::uint64_t>);
}

}  // namespace
}  // namespace atm
