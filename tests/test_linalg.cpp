#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/ols.hpp"

namespace atm::la {
namespace {

TEST(MatrixTest, InitializerListAndAccess) {
    const Matrix m{{1, 2}, {3, 4}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
    EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityMultiplication) {
    const Matrix m{{1, 2}, {3, 4}};
    const Matrix i = Matrix::identity(2);
    EXPECT_DOUBLE_EQ((m * i).max_abs_diff(m), 0.0);
    EXPECT_DOUBLE_EQ((i * m).max_abs_diff(m), 0.0);
}

TEST(MatrixTest, MultiplyKnownResult) {
    const Matrix a{{1, 2, 3}, {4, 5, 6}};
    const Matrix b{{7, 8}, {9, 10}, {11, 12}};
    const Matrix c = a * b;
    const Matrix expected{{58, 64}, {139, 154}};
    EXPECT_LT(c.max_abs_diff(expected), 1e-12);
}

TEST(MatrixTest, MultiplyShapeMismatchThrows) {
    const Matrix a{{1, 2}};
    const Matrix b{{1, 2}};
    EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(MatrixTest, AddSubtract) {
    const Matrix a{{1, 2}, {3, 4}};
    const Matrix b{{4, 3}, {2, 1}};
    const Matrix sum = a + b;
    EXPECT_LT(sum.max_abs_diff(Matrix{{5, 5}, {5, 5}}), 1e-12);
    const Matrix diff = sum - b;
    EXPECT_LT(diff.max_abs_diff(a), 1e-12);
}

TEST(MatrixTest, Transpose) {
    const Matrix a{{1, 2, 3}, {4, 5, 6}};
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_LT(t.transposed().max_abs_diff(a), 1e-12);
}

TEST(SolveTest, Solves3x3System) {
    const Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
    const std::vector<double> b{8, -11, -3};
    const auto x = solve(a, b);
    ASSERT_EQ(x.size(), 3u);
    EXPECT_NEAR(x[0], 2.0, 1e-10);
    EXPECT_NEAR(x[1], 3.0, 1e-10);
    EXPECT_NEAR(x[2], -1.0, 1e-10);
}

TEST(SolveTest, SingularThrows) {
    const Matrix a{{1, 2}, {2, 4}};
    const std::vector<double> b{1, 2};
    EXPECT_THROW(solve(a, b), std::runtime_error);
}

TEST(SolveTest, NeedsPivoting) {
    // Zero on the diagonal forces a row swap.
    const Matrix a{{0, 1}, {1, 0}};
    const std::vector<double> b{3, 7};
    const auto x = solve(a, b);
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(CholeskyTest, FactorsSpdMatrix) {
    const Matrix a{{4, 2}, {2, 3}};
    const Matrix l = cholesky(a);
    const Matrix reconstructed = l * l.transposed();
    EXPECT_LT(reconstructed.max_abs_diff(a), 1e-10);
}

TEST(CholeskyTest, RejectsNonSpd) {
    const Matrix a{{1, 2}, {2, 1}};  // indefinite
    EXPECT_THROW(cholesky(a), std::runtime_error);
}

TEST(CholeskyTest, SolveSpdMatchesGaussian) {
    const Matrix a{{6, 2, 1}, {2, 5, 2}, {1, 2, 4}};
    const std::vector<double> b{1, 2, 3};
    const auto x1 = solve(a, b);
    const auto x2 = solve_spd(a, b);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(QrTest, ReconstructsInput) {
    const Matrix a{{1, 2}, {3, 4}, {5, 6}};
    const QrResult qr = qr_decompose(a);
    EXPECT_LT((qr.q * qr.r).max_abs_diff(a), 1e-10);
}

TEST(QrTest, QHasOrthonormalColumns) {
    const Matrix a{{2, -1}, {1, 3}, {0, 1}, {4, 2}};
    const QrResult qr = qr_decompose(a);
    const Matrix qtq = qr.q.transposed() * qr.q;
    EXPECT_LT(qtq.max_abs_diff(Matrix::identity(2)), 1e-10);
}

TEST(QrTest, RIsUpperTriangular) {
    const Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}, {2, 1, 0}};
    const QrResult qr = qr_decompose(a);
    for (std::size_t i = 1; i < qr.r.rows(); ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            EXPECT_NEAR(qr.r(i, j), 0.0, 1e-12);
        }
    }
}

TEST(LeastSquaresTest, ExactSystemRecovered) {
    // y = 1 + 2 x over exact points.
    Matrix a(4, 2);
    std::vector<double> b(4);
    for (int i = 0; i < 4; ++i) {
        a(static_cast<std::size_t>(i), 0) = 1.0;
        a(static_cast<std::size_t>(i), 1) = i;
        b[static_cast<std::size_t>(i)] = 1.0 + 2.0 * i;
    }
    const auto x = solve_least_squares(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LeastSquaresTest, OverdeterminedMinimizesResidual) {
    // Points off the line; least squares solution is known analytically.
    const Matrix a{{1, 0}, {1, 1}, {1, 2}};
    const std::vector<double> b{0, 1, 3};
    const auto x = solve_least_squares(a, b);
    // Normal equations: slope = 1.5, intercept = -1/6.
    EXPECT_NEAR(x[1], 1.5, 1e-10);
    EXPECT_NEAR(x[0], -1.0 / 6.0, 1e-10);
}

TEST(LeastSquaresTest, RankDeficientGivesZeroCoefficient) {
    // Second column is identical to the first: rank 1 design.
    const Matrix a{{1, 1}, {2, 2}, {3, 3}};
    const std::vector<double> b{2, 4, 6};
    const auto x = solve_least_squares(a, b);
    // Fit must still reproduce b: x[0]*c + x[1]*c = 2c.
    EXPECT_NEAR(x[0] + x[1], 2.0, 1e-9);
}

TEST(OlsTest, RecoversLinearModel) {
    const std::vector<double> x1{1, 2, 3, 4, 5, 6};
    const std::vector<double> x2{2, 1, 4, 3, 6, 5};
    std::vector<double> y(6);
    for (std::size_t i = 0; i < 6; ++i) y[i] = 3.0 + 2.0 * x1[i] - 1.5 * x2[i];
    const OlsFit fit = ols_fit(y, {x1, x2});
    ASSERT_EQ(fit.coefficients.size(), 3u);
    EXPECT_NEAR(fit.coefficients[0], 3.0, 1e-9);
    EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
    EXPECT_NEAR(fit.coefficients[2], -1.5, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(OlsTest, InterceptOnlyFitsMean) {
    const std::vector<double> y{1, 2, 3, 4};
    const OlsFit fit = ols_fit(y, std::vector<std::vector<double>>{});
    EXPECT_NEAR(fit.coefficients[0], 2.5, 1e-12);
    EXPECT_NEAR(fit.r_squared, 0.0, 1e-12);
}

TEST(OlsTest, PredictMatchesFitted) {
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{2.1, 3.9, 6.2, 7.8};
    const OlsFit fit = ols_fit(y, {x});
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(fit.predict(std::vector<double>{x[i]}), fit.fitted[i], 1e-12);
    }
}

TEST(OlsTest, ResidualsSumNearZero) {
    const std::vector<double> x{1, 2, 3, 4, 5};
    const std::vector<double> y{1.2, 1.9, 3.3, 3.8, 5.1};
    const OlsFit fit = ols_fit(y, {x});
    double sum = 0.0;
    for (double r : fit.residuals) sum += r;
    EXPECT_NEAR(sum, 0.0, 1e-9);  // property of OLS with intercept
}

TEST(OlsTest, ShapeMismatchThrows) {
    const std::vector<double> y{1, 2, 3};
    const std::vector<std::vector<double>> bad{{1, 2}};
    EXPECT_THROW(ols_fit(y, bad), std::invalid_argument);
}

TEST(OlsTest, AdjustedR2PenalizesUselessPredictor) {
    std::mt19937 rng(1);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<double> x(50);
    std::vector<double> junk(50);
    std::vector<double> y(50);
    for (std::size_t i = 0; i < 50; ++i) {
        x[i] = static_cast<double>(i);
        junk[i] = noise(rng);
        y[i] = 2.0 * x[i] + noise(rng);
    }
    const OlsFit with = ols_fit(y, {x, junk});
    const OlsFit without = ols_fit(y, {x});
    EXPECT_GE(with.r_squared, without.r_squared);  // R2 can only grow
    EXPECT_LT(with.adjusted_r_squared - without.adjusted_r_squared, 0.01);
}

TEST(VifTest, IndependentPredictorsNearOne) {
    std::mt19937 rng(7);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<std::vector<double>> preds(3, std::vector<double>(200));
    for (auto& p : preds) {
        for (double& v : p) v = noise(rng);
    }
    const auto vifs = variance_inflation_factors(preds);
    for (double v : vifs) EXPECT_LT(v, 1.3);
}

TEST(VifTest, CollinearPredictorHasHugeVif) {
    std::vector<double> a{1, 2, 3, 4, 5, 6};
    std::vector<double> b{6, 5, 4, 3, 2, 1};
    std::vector<double> c(6);
    for (std::size_t i = 0; i < 6; ++i) c[i] = a[i] + b[i];  // exactly dependent
    const auto vifs = variance_inflation_factors({a, b, c});
    EXPECT_GT(*std::max_element(vifs.begin(), vifs.end()), 1e6);
}

TEST(VifTest, SinglePredictorIsOne) {
    const std::vector<std::vector<double>> preds{{1, 2, 3}};
    const auto vifs = variance_inflation_factors(preds);
    ASSERT_EQ(vifs.size(), 1u);
    EXPECT_DOUBLE_EQ(vifs[0], 1.0);
}

TEST(ReduceMulticollinearityTest, DropsLinearCombination) {
    std::mt19937 rng(11);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<double> a(100);
    std::vector<double> b(100);
    std::vector<double> c(100);
    for (std::size_t i = 0; i < 100; ++i) {
        a[i] = noise(rng);
        b[i] = noise(rng);
        c[i] = 2.0 * a[i] - b[i] + 0.01 * noise(rng);  // nearly dependent
    }
    const auto kept = reduce_multicollinearity({a, b, c}, 4.0);
    EXPECT_EQ(kept.size(), 2u);
}

TEST(ReduceMulticollinearityTest, KeepsIndependentSet) {
    std::mt19937 rng(13);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<std::vector<double>> preds(4, std::vector<double>(100));
    for (auto& p : preds) {
        for (double& v : p) v = noise(rng);
    }
    const auto kept = reduce_multicollinearity(preds, 4.0);
    EXPECT_EQ(kept.size(), 4u);
}

TEST(ForwardStepwiseTest, PicksTrulyPredictiveColumns) {
    std::mt19937 rng(17);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<std::vector<double>> candidates(5, std::vector<double>(200));
    for (auto& c : candidates) {
        for (double& v : c) v = noise(rng);
    }
    std::vector<double> y(200);
    for (std::size_t i = 0; i < 200; ++i) {
        y[i] = 3.0 * candidates[1][i] - 2.0 * candidates[3][i] + 0.1 * noise(rng);
    }
    const auto selected = forward_stepwise(y, candidates);
    ASSERT_GE(selected.size(), 2u);
    EXPECT_TRUE(std::find(selected.begin(), selected.end(), 1u) != selected.end());
    EXPECT_TRUE(std::find(selected.begin(), selected.end(), 3u) != selected.end());
}

// Property sweep: OLS through QR equals the normal-equation solution on
// random well-conditioned designs.
class OlsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OlsPropertyTest, QrMatchesNormalEquations) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    std::normal_distribution<double> noise(0.0, 1.0);
    const std::size_t n = 60;
    const std::size_t p = 3;
    std::vector<std::vector<double>> preds(p, std::vector<double>(n));
    std::vector<double> y(n);
    for (auto& col : preds) {
        for (double& v : col) v = noise(rng);
    }
    for (std::size_t i = 0; i < n; ++i) y[i] = noise(rng);

    const OlsFit fit = ols_fit(y, preds);

    // Normal equations via Cholesky on X'X.
    Matrix x(n, p + 1);
    for (std::size_t i = 0; i < n; ++i) {
        x(i, 0) = 1.0;
        for (std::size_t j = 0; j < p; ++j) x(i, j + 1) = preds[j][i];
    }
    const Matrix xtx = x.transposed() * x;
    std::vector<double> xty(p + 1, 0.0);
    for (std::size_t j = 0; j <= p; ++j) {
        for (std::size_t i = 0; i < n; ++i) xty[j] += x(i, j) * y[i];
    }
    const auto beta = solve_spd(xtx, xty);
    for (std::size_t j = 0; j <= p; ++j) {
        EXPECT_NEAR(fit.coefficients[j], beta[j], 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomDesigns, OlsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace atm::la
