#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/matrix.hpp"
#include "linalg/ridge.hpp"

namespace atm::la {
namespace {

TEST(RidgeTest, ZeroLambdaMatchesOls) {
    std::mt19937 rng(1);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<std::vector<double>> preds(2, std::vector<double>(80));
    std::vector<double> y(80);
    for (std::size_t i = 0; i < 80; ++i) {
        preds[0][i] = noise(rng);
        preds[1][i] = noise(rng);
        y[i] = 2.0 + 1.5 * preds[0][i] - 0.5 * preds[1][i] + 0.1 * noise(rng);
    }
    const OlsFit ols = ols_fit(y, preds);
    const OlsFit ridge = ridge_fit(y, preds, 0.0);
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_NEAR(ridge.coefficients[j], ols.coefficients[j], 1e-8);
    }
}

TEST(RidgeTest, ShrinksCoefficients) {
    std::mt19937 rng(2);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<std::vector<double>> preds(2, std::vector<double>(60));
    std::vector<double> y(60);
    for (std::size_t i = 0; i < 60; ++i) {
        preds[0][i] = noise(rng);
        preds[1][i] = noise(rng);
        y[i] = 3.0 * preds[0][i] + 2.0 * preds[1][i] + noise(rng);
    }
    const OlsFit small = ridge_fit(y, preds, 1.0);
    const OlsFit large = ridge_fit(y, preds, 1000.0);
    EXPECT_LT(std::abs(large.coefficients[1]), std::abs(small.coefficients[1]));
    EXPECT_LT(std::abs(large.coefficients[2]), std::abs(small.coefficients[2]));
}

TEST(RidgeTest, HandlesExactCollinearity) {
    // Two identical predictors: OLS by QR zeroes one; ridge splits the
    // weight between them and stays finite.
    std::vector<double> a{1, 2, 3, 4, 5, 6};
    std::vector<double> y{2, 4, 6, 8, 10, 12};
    const OlsFit fit = ridge_fit(y, {a, a}, 0.5);
    EXPECT_TRUE(std::isfinite(fit.coefficients[1]));
    EXPECT_TRUE(std::isfinite(fit.coefficients[2]));
    EXPECT_NEAR(fit.coefficients[1], fit.coefficients[2], 1e-9);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(RidgeTest, InterceptNotPenalized) {
    // Response far from zero: huge lambda must not pull predictions to 0.
    const std::vector<double> x{1, 2, 3, 4};
    const std::vector<double> y{101, 102, 103, 104};
    const OlsFit fit = ridge_fit(y, {x}, 1e9);
    EXPECT_NEAR(fit.coefficients[0], 102.5, 0.5);  // ~mean of y
}

TEST(RidgeTest, ValidationErrors) {
    const std::vector<double> y{1, 2, 3};
    EXPECT_THROW(ridge_fit(y, {{1, 2}}, 1.0), std::invalid_argument);
    EXPECT_THROW(ridge_fit(y, std::vector<std::vector<double>>{}, -1.0), std::invalid_argument);
}

TEST(RidgeSelectTest, PrefersSmallLambdaOnCleanData) {
    std::mt19937 rng(3);
    std::normal_distribution<double> noise(0.0, 0.01);
    std::vector<std::vector<double>> preds(1, std::vector<double>(100));
    std::vector<double> y(100);
    for (std::size_t i = 0; i < 100; ++i) {
        preds[0][i] = static_cast<double>(i) / 100.0;
        y[i] = 5.0 * preds[0][i] + noise(rng);
    }
    const std::vector<double> candidates{0.0, 1.0, 100.0, 10000.0};
    EXPECT_LE(select_ridge_lambda(y, preds, candidates), 1.0);
}

TEST(RidgeSelectTest, TooShortThrows) {
    const std::vector<double> y{1, 2};
    const std::vector<std::vector<double>> preds{{1, 2}};
    const std::vector<double> candidates{1.0};
    EXPECT_THROW(select_ridge_lambda(y, preds, candidates),
                 std::invalid_argument);
}

TEST(InverseTest, RoundTripsWithMultiply) {
    const Matrix a{{4, 7}, {2, 6}};
    const Matrix inv = inverse(a);
    EXPECT_LT((a * inv).max_abs_diff(Matrix::identity(2)), 1e-10);
    EXPECT_LT((inv * a).max_abs_diff(Matrix::identity(2)), 1e-10);
}

TEST(InverseTest, SingularThrows) {
    const Matrix a{{1, 2}, {2, 4}};
    EXPECT_THROW(inverse(a), std::runtime_error);
    const Matrix rect{{1, 2, 3}, {4, 5, 6}};
    EXPECT_THROW(inverse(rect), std::invalid_argument);
}

TEST(DeterminantTest, KnownValues) {
    EXPECT_DOUBLE_EQ(determinant(Matrix::identity(3)), 1.0);
    const Matrix a{{1, 2}, {3, 4}};
    EXPECT_NEAR(determinant(a), -2.0, 1e-12);
    const Matrix singular{{1, 2}, {2, 4}};
    EXPECT_DOUBLE_EQ(determinant(singular), 0.0);
}

TEST(DeterminantTest, RowSwapFlipsSign) {
    const Matrix a{{0, 1}, {1, 0}};  // permutation: det = -1
    EXPECT_NEAR(determinant(a), -1.0, 1e-12);
}

TEST(DeterminantTest, MatchesInverseConsistency) {
    const Matrix a{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}};
    const double det_a = determinant(a);
    const double det_inv = determinant(inverse(a));
    EXPECT_NEAR(det_a * det_inv, 1.0, 1e-9);
}

}  // namespace
}  // namespace atm::la
