#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>
#include <random>

#include "timeseries/analysis.hpp"
#include "timeseries/repair.hpp"
#include "timeseries/stats.hpp"

namespace atm::ts {
namespace {

std::vector<double> sine_series(int n, int period, double noise_sigma,
                                unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> noise(0.0, noise_sigma);
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
        xs[static_cast<std::size_t>(t)] =
            10.0 + 4.0 * std::sin(2.0 * std::numbers::pi * t / period) + noise(rng);
    }
    return xs;
}

TEST(AcfTest, LagZeroIsOne) {
    const auto xs = sine_series(200, 24, 0.5, 1);
    EXPECT_NEAR(autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(AcfTest, PeriodicSeriesPeaksAtPeriod) {
    const auto xs = sine_series(240, 24, 0.3, 2);
    EXPECT_GT(autocorrelation(xs, 24), 0.8);
    EXPECT_LT(autocorrelation(xs, 12), 0.0);  // anti-phase
}

TEST(AcfTest, WhiteNoiseNearZero) {
    std::mt19937 rng(3);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<double> xs(500);
    for (double& v : xs) v = noise(rng);
    for (int lag : {1, 5, 20}) {
        EXPECT_LT(std::abs(autocorrelation(xs, lag)), 0.15) << "lag " << lag;
    }
}

TEST(AcfTest, ConstantSeriesIsZero) {
    const std::vector<double> flat(50, 7.0);
    EXPECT_DOUBLE_EQ(autocorrelation(flat, 1), 0.0);
}

TEST(AcfTest, FunctionHasRightLength) {
    const auto xs = sine_series(100, 10, 0.1, 4);
    const auto acf = autocorrelation_function(xs, 20);
    ASSERT_EQ(acf.size(), 21u);
    EXPECT_NEAR(acf[0], 1.0, 1e-12);
}

TEST(AcfTest, NegativeLagThrows) {
    const std::vector<double> xs{1, 2, 3};
    EXPECT_THROW(autocorrelation(xs, -1), std::invalid_argument);
}

TEST(DetectPeriodTest, FindsDiurnalPeriod) {
    const auto xs = sine_series(96 * 4, 96, 1.0, 5);
    EXPECT_EQ(detect_period(xs, 48, 144), 96);
}

TEST(DetectPeriodTest, NoiseHasNoPeriod) {
    std::mt19937 rng(6);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<double> xs(400);
    for (double& v : xs) v = noise(rng);
    EXPECT_EQ(detect_period(xs, 10, 100, 0.3), 0);
}

TEST(RollingTest, MeanOfConstantIsConstant) {
    const std::vector<double> flat(20, 3.0);
    for (double v : rolling_mean(flat, 5)) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(RollingTest, MeanSmoothsSpike) {
    std::vector<double> xs(11, 0.0);
    xs[5] = 10.0;
    const auto smoothed = rolling_mean(xs, 5);
    EXPECT_NEAR(smoothed[5], 2.0, 1e-12);
    EXPECT_NEAR(smoothed[3], 2.0, 1e-12);  // spike inside the window
    EXPECT_DOUBLE_EQ(smoothed[0], 0.0);
}

TEST(RollingTest, MaxTracksWindow) {
    const std::vector<double> xs{1, 5, 2, 0, 0, 7, 1};
    const auto mx = rolling_max(xs, 3);
    const std::vector<double> expected{1, 5, 5, 5, 2, 7, 7};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_DOUBLE_EQ(mx[i], expected[i]) << i;
    }
}

TEST(RollingTest, BadWindowThrows) {
    const std::vector<double> xs{1, 2};
    EXPECT_THROW(rolling_mean(xs, 0), std::invalid_argument);
    EXPECT_THROW(rolling_max(xs, 0), std::invalid_argument);
}

TEST(DecomposeTest, RecoversComponents) {
    // Linear trend + clean seasonal.
    const int period = 12;
    std::vector<double> xs(period * 6);
    for (std::size_t t = 0; t < xs.size(); ++t) {
        xs[t] = 0.1 * static_cast<double>(t) +
                3.0 * std::sin(2.0 * std::numbers::pi *
                               static_cast<double>(t % 12) / 12.0);
    }
    const Decomposition d = decompose_additive(xs, period);
    // Away from the edges the residual is small.
    double max_resid = 0.0;
    for (std::size_t t = static_cast<std::size_t>(period);
         t + static_cast<std::size_t>(period) < xs.size(); ++t) {
        max_resid = std::max(max_resid, std::abs(d.residual[t]));
    }
    EXPECT_LT(max_resid, 0.8);
    // Seasonal component sums to ~0 over one period.
    double sum = 0.0;
    for (int p = 0; p < period; ++p) sum += d.seasonal[static_cast<std::size_t>(p)];
    EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(DecomposeTest, ReconstructionIsExact) {
    const auto xs = sine_series(96, 24, 0.8, 7);
    const Decomposition d = decompose_additive(xs, 24);
    for (std::size_t t = 0; t < xs.size(); ++t) {
        EXPECT_NEAR(xs[t], d.trend[t] + d.seasonal[t] + d.residual[t], 1e-9);
    }
}

TEST(DecomposeTest, TooShortThrows) {
    const std::vector<double> xs(30, 1.0);
    EXPECT_THROW(decompose_additive(xs, 24), std::invalid_argument);
    EXPECT_THROW(decompose_additive(xs, 1), std::invalid_argument);
}

// ------------------------------------------------------------------- repair

TEST(GapTest, FindsZeroRuns) {
    const std::vector<double> xs{5, 0, 0, 0, 6, 0, 7, 0, 0};
    const auto gaps = find_gaps(xs);
    ASSERT_EQ(gaps.size(), 2u);  // single zero at index 5 ignored (min_run 2)
    EXPECT_EQ(gaps[0].first, 1u);
    EXPECT_EQ(gaps[0].length, 3u);
    EXPECT_EQ(gaps[1].first, 7u);
    EXPECT_EQ(gaps[1].length, 2u);
}

TEST(GapTest, MinRunRespected) {
    const std::vector<double> xs{5, 0, 6, 0, 0, 7};
    EXPECT_EQ(find_gaps(xs, 1e-9, 1).size(), 2u);
    EXPECT_EQ(find_gaps(xs, 1e-9, 2).size(), 1u);
    EXPECT_EQ(find_gaps(xs, 1e-9, 3).size(), 0u);
}

TEST(GapTest, NoGapsInCleanSeries) {
    const std::vector<double> xs{1, 2, 3, 4};
    EXPECT_TRUE(find_gaps(xs).empty());
}

TEST(RepairTest, LinearInterpolation) {
    const std::vector<double> xs{10, 0, 0, 0, 50};
    const auto fixed = repair_gaps(xs, find_gaps(xs), RepairMethod::kLinear);
    EXPECT_DOUBLE_EQ(fixed[1], 20.0);
    EXPECT_DOUBLE_EQ(fixed[2], 30.0);
    EXPECT_DOUBLE_EQ(fixed[3], 40.0);
    EXPECT_DOUBLE_EQ(fixed[0], 10.0);
    EXPECT_DOUBLE_EQ(fixed[4], 50.0);
}

TEST(RepairTest, SeasonalCopiesPriorPeriod) {
    // Period 4; the gap at positions 5-6 copies positions 1-2.
    const std::vector<double> xs{1, 2, 3, 4, 1, 0, 0, 4};
    const auto fixed = repair_gaps(xs, find_gaps(xs), RepairMethod::kSeasonal, 4);
    EXPECT_DOUBLE_EQ(fixed[5], 2.0);
    EXPECT_DOUBLE_EQ(fixed[6], 3.0);
}

TEST(RepairTest, SeasonalFallsBackToLinearInFirstPeriod) {
    const std::vector<double> xs{10, 0, 0, 40, 5, 6, 7, 8};
    const auto fixed = repair_gaps(xs, find_gaps(xs), RepairMethod::kSeasonal, 4);
    EXPECT_DOUBLE_EQ(fixed[1], 20.0);
    EXPECT_DOUBLE_EQ(fixed[2], 30.0);
}

TEST(RepairTest, EdgeGapsUseNearestValue) {
    const std::vector<double> head{0, 0, 9, 9};
    const auto fixed_head =
        repair_gaps(head, find_gaps(head), RepairMethod::kLinear);
    EXPECT_DOUBLE_EQ(fixed_head[0], 9.0);
    EXPECT_DOUBLE_EQ(fixed_head[1], 9.0);

    const std::vector<double> tail{7, 7, 0, 0};
    const auto fixed_tail =
        repair_gaps(tail, find_gaps(tail), RepairMethod::kLinear);
    EXPECT_DOUBLE_EQ(fixed_tail[2], 7.0);
    EXPECT_DOUBLE_EQ(fixed_tail[3], 7.0);
}

TEST(RepairTest, AllGapSeriesIsPinnedToZeros) {
    // A gap spanning the whole series has no valid neighbor in any
    // direction; repair pins it to flat zeros instead of leaving the gap
    // values untouched (the pipeline reports this condition one layer up
    // as PipelineErrorCode::kRepairFailed).
    const std::vector<double> xs(8, std::numeric_limits<double>::quiet_NaN());
    const std::vector<Gap> whole{{0, xs.size()}};
    for (const RepairMethod method :
         {RepairMethod::kLinear, RepairMethod::kSeasonal}) {
        const auto fixed = repair_gaps(xs, whole, method, 4);
        EXPECT_EQ(fixed, std::vector<double>(8, 0.0));
    }
}

TEST(RepairTest, RepairSeriesConvenience) {
    const auto clean = sine_series(96 * 2, 96, 0.0, 8);
    std::vector<double> gappy = clean;
    for (std::size_t t = 120; t < 130; ++t) gappy[t] = 0.0;
    const auto fixed = repair_series(gappy, RepairMethod::kSeasonal, 96);
    double max_err = 0.0;
    for (std::size_t t = 120; t < 130; ++t) {
        max_err = std::max(max_err, std::abs(fixed[t] - clean[t]));
    }
    EXPECT_LT(max_err, 0.5);  // seasonal copy restores the clean pattern
}

TEST(RepairTest, NoGapsIsIdentity) {
    const std::vector<double> xs{1, 2, 3};
    EXPECT_EQ(repair_series(xs), xs);
}

}  // namespace
}  // namespace atm::ts
