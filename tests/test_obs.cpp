// Tests for the obs metrics/tracing subsystem: histogram math, counter
// monotonicity, the sharded registry's thread safety (run under TSan via
// `ctest -L obs` with ATM_SANITIZE=thread), JSON round-trips, and the
// fleet-level determinism contract for deterministic metric categories.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet.hpp"
#include "core/metrics_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "tracegen/generator.hpp"

namespace atm {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketsCountAndPercentilesInterpolate) {
    obs::HistogramSnapshot h;
    h.bounds = {1.0, 2.0, 5.0};
    h.counts.assign(h.bounds.size() + 1, 0);
    // 100 observations uniform on (0, 10]: 10 per 0.1-wide step.
    for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i) / 10.0);
    ASSERT_EQ(h.count, 100u);
    EXPECT_EQ(h.counts[0], 10u);  // (0, 1]
    EXPECT_EQ(h.counts[1], 10u);  // (1, 2]
    EXPECT_EQ(h.counts[2], 30u);  // (2, 5]
    EXPECT_EQ(h.counts[3], 50u);  // (5, inf)
    EXPECT_DOUBLE_EQ(h.min, 0.1);
    EXPECT_DOUBLE_EQ(h.max, 10.0);
    EXPECT_NEAR(h.mean(), 5.05, 1e-12);

    // p10 sits exactly at the first bucket's upper edge; p50 halfway into
    // the open-ended bucket is clamped against the observed max.
    EXPECT_NEAR(h.percentile(0.10), 1.0, 1e-9);
    EXPECT_GE(h.percentile(0.50), 2.0);
    EXPECT_LE(h.percentile(0.50), 5.0);
    EXPECT_LE(h.percentile(0.999), h.max);
    EXPECT_GE(h.percentile(0.0), h.min);
}

TEST(HistogramTest, MergeSumsBucketsAndTracksExtremes) {
    obs::HistogramSnapshot a;
    a.bounds = {1.0, 10.0};
    a.counts.assign(3, 0);
    a.record(0.5);
    a.record(5.0);

    obs::HistogramSnapshot b;
    b.bounds = {1.0, 10.0};
    b.counts.assign(3, 0);
    b.record(50.0);

    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_EQ(a.counts[0], 1u);
    EXPECT_EQ(a.counts[1], 1u);
    EXPECT_EQ(a.counts[2], 1u);
    EXPECT_DOUBLE_EQ(a.min, 0.5);
    EXPECT_DOUBLE_EQ(a.max, 50.0);
    EXPECT_DOUBLE_EQ(a.sum, 55.5);
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
    obs::HistogramSnapshot a;
    a.bounds = {1.0, 2.0};
    a.counts.assign(3, 0);
    obs::HistogramSnapshot b;
    b.bounds = {1.0, 3.0};
    b.counts.assign(3, 0);
    b.record(1.5);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
    obs::HistogramSnapshot h;
    h.bounds = {1.0};
    h.counts.assign(2, 0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

// ----------------------------------------------------------------- Registry

TEST(MetricsRegistryTest, CountersAreMonotonicAndExact) {
    obs::MetricsRegistry registry;
    std::uint64_t previous = 0;
    for (int i = 1; i <= 100; ++i) {
        registry.add("events", 3);
        const std::uint64_t now = registry.snapshot().counter("events");
        EXPECT_EQ(now, static_cast<std::uint64_t>(i) * 3);
        EXPECT_GE(now, previous);  // snapshots never go backwards
        previous = now;
    }
}

TEST(MetricsRegistryTest, GaugesLastWriteWins) {
    obs::MetricsRegistry registry;
    registry.set_gauge("level", 1.0);
    registry.set_gauge("level", 2.5);
    EXPECT_DOUBLE_EQ(registry.snapshot().gauges.at("level"), 2.5);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
    obs::MetricsRegistry registry(/*enabled=*/false);
    registry.add("events");
    registry.set_gauge("level", 1.0);
    registry.observe("dist", 0.5);
    registry.record_ns("span", 100);
    {
        obs::ScopedTimer timer(&registry, "scoped");
    }
    EXPECT_TRUE(registry.snapshot().empty());

    registry.set_enabled(true);
    registry.add("events");
    EXPECT_EQ(registry.snapshot().counter("events"), 1u);
}

TEST(MetricsRegistryTest, NullRegistryScopedTimerIsANoop) {
    obs::ScopedTimer timer(nullptr, "whatever");
    timer.stop();  // must not crash
}

TEST(MetricsRegistryTest, ScopedTimerRecordsElapsedSpans) {
    obs::MetricsRegistry registry;
    for (int i = 0; i < 3; ++i) {
        obs::ScopedTimer timer(&registry, "span");
    }
    {
        obs::ScopedTimer timer(&registry, "stopped");
        timer.stop();
        timer.stop();  // idempotent
    }
    const obs::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.timers.at("span").count, 3u);
    EXPECT_EQ(snap.timers.at("stopped").count, 1u);
    EXPECT_GE(snap.timers.at("span").total_ns,
              snap.timers.at("span").max_ns);
    EXPECT_LE(snap.timers.at("span").min_ns,
              snap.timers.at("span").max_ns);
}

TEST(MetricsRegistryTest, ResetClearsEveryMetric) {
    obs::MetricsRegistry registry;
    registry.add("events", 7);
    registry.observe("dist", 1.0);
    registry.reset();
    EXPECT_TRUE(registry.snapshot().empty());
}

// The TSan target: N writer threads hammer one registry while the main
// thread snapshots mid-flight, then a final quiescent snapshot must be
// exact. Run with ATM_SANITIZE=thread to prove race freedom.
TEST(MetricsRegistryTest, ConcurrentWritersFlushExactly) {
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 10'000;
    obs::MetricsRegistry registry;

    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int w = 0; w < kThreads; ++w) {
        writers.emplace_back([&registry] {
            for (int i = 1; i <= kOpsPerThread; ++i) {
                registry.add("ops");
                if (i % 16 == 0) registry.observe("dist", 0.5);
                if (i % 64 == 0) registry.record_ns("span", 10);
            }
        });
    }
    // Interleaved snapshots: values may be partial but must never exceed
    // the final totals, and must not race with the writers.
    for (int s = 0; s < 50; ++s) {
        const obs::MetricsSnapshot mid = registry.snapshot();
        EXPECT_LE(mid.counter("ops"),
                  static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    }
    for (std::thread& t : writers) t.join();

    const obs::MetricsSnapshot final = registry.snapshot();
    EXPECT_EQ(final.counter("ops"),
              static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
    EXPECT_EQ(final.histograms.at("dist").count,
              static_cast<std::uint64_t>(kThreads) * (kOpsPerThread / 16));
    EXPECT_EQ(final.timers.at("span").count,
              static_cast<std::uint64_t>(kThreads) * (kOpsPerThread / 64));
}

TEST(MetricsSnapshotTest, MergeAddsCountersAndTimers) {
    obs::MetricsRegistry a;
    a.add("shared", 2);
    a.add("only_a", 1);
    a.record_ns("span", 100);
    obs::MetricsRegistry b;
    b.add("shared", 3);
    b.record_ns("span", 50);

    obs::MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counter("shared"), 5u);
    EXPECT_EQ(merged.counter("only_a"), 1u);
    EXPECT_EQ(merged.timers.at("span").count, 2u);
    EXPECT_EQ(merged.timers.at("span").total_ns, 150u);
    EXPECT_EQ(merged.timers.at("span").min_ns, 50u);
    EXPECT_EQ(merged.timers.at("span").max_ns, 100u);
}

// --------------------------------------------------------------------- JSON

TEST(JsonTest, ParsesScalarsArraysAndNestedObjects) {
    const obs::json::Value v = obs::json::parse(
        R"({"a": 1, "b": [true, null, -2.5e1], "c": {"d": "x\nyé"}})");
    EXPECT_EQ(v.at("a").as_int(), 1);
    EXPECT_TRUE(v.at("b").array[0].as_bool());
    EXPECT_EQ(v.at("b").array[1].type, obs::json::Value::Type::kNull);
    EXPECT_DOUBLE_EQ(v.at("b").array[2].as_double(), -25.0);
    EXPECT_EQ(v.at("c").at("d").as_string(), "x\ny\xc3\xa9");
}

TEST(JsonTest, RejectsMalformedDocuments) {
    EXPECT_THROW(obs::json::parse(""), std::runtime_error);
    EXPECT_THROW(obs::json::parse("{"), std::runtime_error);
    EXPECT_THROW(obs::json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(obs::json::parse("{\"a\": 1} trailing"), std::runtime_error);
    EXPECT_THROW(obs::json::parse("\"unterminated"), std::runtime_error);
}

TEST(JsonTest, SerializeParseRoundTripPreservesStructure) {
    obs::json::Value doc = obs::json::Value::make_object();
    doc.set("int", obs::json::Value::of(std::int64_t{-42}));
    doc.set("big", obs::json::Value::of(std::uint64_t{1} << 52));
    doc.set("frac", obs::json::Value::of(0.1));
    doc.set("text", obs::json::Value::of("quote \" slash \\ tab \t"));
    obs::json::Value arr = obs::json::Value::make_array();
    arr.array.push_back(obs::json::Value::of(true));
    arr.array.push_back(obs::json::Value::null());
    doc.set("arr", std::move(arr));

    const obs::json::Value back = obs::json::parse(obs::json::serialize(doc));
    EXPECT_EQ(back.at("int").as_int(), -42);
    EXPECT_EQ(back.at("big").as_u64(), std::uint64_t{1} << 52);
    EXPECT_DOUBLE_EQ(back.at("frac").as_double(), 0.1);
    EXPECT_EQ(back.at("text").as_string(), "quote \" slash \\ tab \t");
    EXPECT_TRUE(back.at("arr").array[0].as_bool());
    // Serialization is stable: same document, same bytes.
    EXPECT_EQ(obs::json::serialize(doc), obs::json::serialize(back));
}

TEST(JsonTest, SnapshotRoundTripsThroughJson) {
    obs::MetricsRegistry registry;
    registry.add("cluster.dtw.cells", 12345);
    registry.add("search.series", 10);
    registry.set_gauge("search.silhouette", 0.625);
    registry.record_ns("stage.search", 1500);
    registry.record_ns("stage.search", 500);
    registry.observe("predict.ape", 0.07);
    registry.observe("predict.ape", 0.30);
    const obs::MetricsSnapshot original = registry.snapshot();

    const std::string text = obs::json::serialize(obs::json::to_json(original));
    const obs::MetricsSnapshot restored =
        obs::json::snapshot_from_json(obs::json::parse(text));

    EXPECT_EQ(restored.counters, original.counters);
    EXPECT_EQ(restored.gauges, original.gauges);
    ASSERT_EQ(restored.timers.size(), original.timers.size());
    EXPECT_EQ(restored.timers.at("stage.search").count, 2u);
    EXPECT_EQ(restored.timers.at("stage.search").total_ns, 2000u);
    ASSERT_EQ(restored.histograms.size(), original.histograms.size());
    EXPECT_EQ(restored.histograms.at("predict.ape").count, 2u);
    EXPECT_EQ(restored.histograms.at("predict.ape").counts,
              original.histograms.at("predict.ape").counts);
    // Byte-identical re-serialization closes the loop.
    EXPECT_EQ(obs::json::serialize(obs::json::to_json(restored)), text);
}

// --------------------------------------------- fleet metrics determinism

/// Serializes only the deterministic categories of a snapshot: counters,
/// gauges, and histograms — timers are wall-clock and excluded from the
/// determinism contract (see DESIGN.md).
std::string deterministic_fingerprint(const obs::MetricsSnapshot& snapshot) {
    obs::MetricsSnapshot stripped = snapshot;
    stripped.timers.clear();
    return obs::json::serialize(obs::json::to_json(stripped));
}

TEST(FleetMetricsTest, DeterministicMetricsIdenticalAcrossJobCounts) {
    trace::TraceGenOptions options;
    options.num_boxes = 4;
    options.num_days = 6;
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    options.seed = 20150403;
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kDtw;
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.pipeline.train_days = 5;
    config.collect_metrics = true;
    config.policies = {resize::ResizePolicy::kAtmGreedy,
                       resize::ResizePolicy::kStingy};

    config.jobs = 1;
    const core::FleetResult serial = core::run_pipeline_on_fleet(t, config);
    config.jobs = 8;
    const core::FleetResult pooled = core::run_pipeline_on_fleet(t, config);

    ASSERT_EQ(serial.boxes.size(), pooled.boxes.size());
    ASSERT_EQ(serial.boxes_failed, 0u);
    ASSERT_EQ(pooled.boxes_failed, 0u);

    // Per-box and fleet-merged deterministic categories are bit-identical
    // between the serial and pooled schedules.
    for (std::size_t b = 0; b < serial.boxes.size(); ++b) {
        EXPECT_EQ(deterministic_fingerprint(serial.boxes[b].result.metrics),
                  deterministic_fingerprint(pooled.boxes[b].result.metrics))
            << "box " << serial.boxes[b].box_name;
    }
    EXPECT_EQ(deterministic_fingerprint(serial.metrics),
              deterministic_fingerprint(pooled.metrics));

    // The instrumentation actually fired: every stage the pipeline runs
    // shows up with non-zero counts.
    const obs::MetricsSnapshot& m = serial.metrics;
    EXPECT_GT(m.counter("cluster.dtw.pairs"), 0u);
    EXPECT_GT(m.counter("cluster.dtw.cells"), 0u);
    EXPECT_GT(m.counter("search.series"), 0u);
    EXPECT_GT(m.counter("search.final_signatures"), 0u);
    EXPECT_GT(m.counter("forecast.mlp.fits"), 0u);
    EXPECT_GT(m.counter("resize.mckp.groups"), 0u);
    EXPECT_GT(m.histograms.at("predict.ape").count, 0u);
    EXPECT_GT(m.timers.at("stage.search").count, 0u);
    EXPECT_GT(m.timers.at("stage.forecast").count, 0u);
    EXPECT_GT(m.timers.at("stage.resize").count, 0u);
}

TEST(FleetMetricsTest, CollectionOffLeavesSnapshotsEmpty) {
    trace::TraceGenOptions options;
    options.num_boxes = 2;
    options.num_days = 6;
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.pipeline.train_days = 5;
    config.jobs = 2;
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);
    EXPECT_TRUE(fleet.metrics.empty());
    for (const core::FleetBoxResult& b : fleet.boxes) {
        EXPECT_TRUE(b.result.metrics.empty());
    }
}

TEST(FleetMetricsTest, ReportCarriesSchemaAndPerBoxSections) {
    trace::TraceGenOptions options;
    options.num_boxes = 2;
    options.num_days = 6;
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    const trace::Trace t = trace::generate_trace(options);

    core::FleetConfig config;
    config.pipeline.train_days = 5;
    config.jobs = 1;
    config.collect_metrics = true;
    const core::FleetResult fleet = core::run_pipeline_on_fleet(t, config);

    obs::MetricsRegistry extra;
    extra.record_ns("trace.load", 1000);
    const obs::json::Value report =
        core::build_metrics_report(fleet, "predict", extra.snapshot());

    EXPECT_EQ(report.at("schema").as_string(), core::kMetricsReportSchema);
    EXPECT_EQ(report.at("command").as_string(), "predict");
    EXPECT_EQ(report.at("boxes_in_trace").as_u64(), 2u);
    EXPECT_TRUE(report.at("fleet").has("counters"));
    // The `extra` snapshot (CLI-side trace load) lands in the fleet merge.
    EXPECT_TRUE(report.at("fleet").at("timers").has("trace.load"));
    ASSERT_EQ(report.at("boxes").array.size(), fleet.boxes.size());
    for (const obs::json::Value& box : report.at("boxes").array) {
        EXPECT_TRUE(box.has("name"));
        EXPECT_TRUE(box.has("metrics"));
        EXPECT_GT(box.at("metrics").at("counters").object.size(), 0u);
    }
    // The report parses back as valid JSON.
    const obs::json::Value reparsed =
        obs::json::parse(obs::json::serialize(report));
    EXPECT_EQ(reparsed.at("schema").as_string(), core::kMetricsReportSchema);
}

}  // namespace
}  // namespace atm
