#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mediawiki/simulator.hpp"
#include "mediawiki/testbed.hpp"

namespace atm::wiki {
namespace {

TEST(TestbedTest, PresetMatchesPaperInventory) {
    const TestbedSpec spec = make_mediawiki_testbed();
    ASSERT_EQ(spec.wikis.size(), 2u);
    ASSERT_EQ(spec.workloads.size(), 2u);
    EXPECT_EQ(spec.nodes.size(), 3u);

    auto count = [&](int wiki, Tier tier) {
        return std::count_if(spec.vms.begin(), spec.vms.end(),
                             [&](const VmSpec& vm) {
                                 return vm.wiki == wiki && vm.tier == tier;
                             });
    };
    // wiki-one: 4 Apache, 2 memcached, 1 MySQL (Section V-B).
    EXPECT_EQ(count(0, Tier::kApache), 4);
    EXPECT_EQ(count(0, Tier::kMemcached), 2);
    EXPECT_EQ(count(0, Tier::kMysql), 1);
    // wiki-two: 2 Apache, 1 memcached, 1 MySQL.
    EXPECT_EQ(count(1, Tier::kApache), 2);
    EXPECT_EQ(count(1, Tier::kMemcached), 1);
    EXPECT_EQ(count(1, Tier::kMysql), 1);

    // Every VM starts with its 2-vCPU allocation on a known node.
    for (const VmSpec& vm : spec.vms) {
        EXPECT_DOUBLE_EQ(vm.cpu_limit_cores, 2.0);
        EXPECT_GE(vm.node, 2);
        EXPECT_LE(vm.node, 4);
    }
}

TEST(SimulatorTest, ShapesAndRanges) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult result = simulate(spec);
    ASSERT_EQ(result.vm_cpu_usage_pct.size(), spec.vms.size());
    ASSERT_EQ(result.wikis.size(), 2u);
    const auto steps = static_cast<std::size_t>(spec.duration_steps());
    for (const auto& series : result.vm_cpu_usage_pct) {
        ASSERT_EQ(series.size(), steps);
        for (double u : series) {
            EXPECT_GE(u, 0.0);
            EXPECT_LE(u, 100.0);
        }
    }
    for (const auto& wiki : result.wikis) {
        EXPECT_EQ(wiki.response_time_s.size(), steps);
        for (double rt : wiki.response_time_s) EXPECT_GT(rt, 0.0);
        for (double tp : wiki.throughput_rps) EXPECT_GE(tp, 0.0);
    }
}

TEST(SimulatorTest, DeterministicGivenSeed) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult a = simulate(spec);
    const SimResult b = simulate(spec);
    EXPECT_EQ(a.total_tickets, b.total_tickets);
    EXPECT_EQ(a.vm_cpu_usage_pct[0].values(), b.vm_cpu_usage_pct[0].values());
}

TEST(SimulatorTest, HighPhaseRaisesLoad) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult result = simulate(spec);
    // Compare first (low) and second (high) hour mean usage of an Apache.
    const auto& apache = result.vm_cpu_usage_pct[0];
    const int steps_per_hour = 3600 / spec.step_seconds;
    double low = 0.0;
    double high = 0.0;
    for (int s = 0; s < steps_per_hour; ++s) {
        low += apache[static_cast<std::size_t>(s)];
        high += apache[static_cast<std::size_t>(s + steps_per_hour)];
    }
    EXPECT_GT(high, low * 1.5);
}

TEST(SimulatorTest, OriginalRunTicketsNearPaper) {
    // Paper Fig. 12: 49 tickets before resizing (we calibrate to ~48).
    const SimResult result = simulate(make_mediawiki_testbed());
    EXPECT_GE(result.total_tickets, 40);
    EXPECT_LE(result.total_tickets, 60);
}

TEST(SimulatorTest, TicketsOnlyOnHotApaches) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult result = simulate(spec);
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        if (spec.vms[i].tier == Tier::kApache) {
            EXPECT_GT(result.vm_tickets[i], 0) << spec.vms[i].name;
        } else {
            EXPECT_EQ(result.vm_tickets[i], 0) << spec.vms[i].name;
        }
    }
}

TEST(SimulatorTest, SaturatedTierCapsThroughput) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult result = simulate(spec);
    // wiki-two's Apaches are saturated at high phase: peak throughput must
    // stay below the offered high rate.
    const double peak = *std::max_element(
        result.wikis[1].throughput_rps.begin(),
        result.wikis[1].throughput_rps.end());
    EXPECT_LT(peak, spec.workloads[1].high_rate_rps * 1.06);
    EXPECT_LT(peak, 30.0);
}

TEST(SimulatorTest, DemandSeriesSteAware) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult result = simulate(spec);
    // Saturated w2 Apaches: runnable demand above the 2-core limit.
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        if (spec.vms[i].wiki == 1 && spec.vms[i].tier == Tier::kApache) {
            const double peak = *std::max_element(
                result.vm_cpu_demand_cores[i].begin(),
                result.vm_cpu_demand_cores[i].end());
            EXPECT_GT(peak, spec.vms[i].cpu_limit_cores);
        }
    }
}

TEST(SimulatorTest, ValidationErrors) {
    TestbedSpec spec = make_mediawiki_testbed();
    spec.workloads.pop_back();
    EXPECT_THROW(simulate(spec), std::invalid_argument);
    TestbedSpec bad_step = make_mediawiki_testbed();
    bad_step.step_seconds = 0;
    EXPECT_THROW(simulate(bad_step), std::invalid_argument);
    TestbedSpec empty;
    EXPECT_THROW(simulate(empty), std::invalid_argument);
}

TEST(ResizeIntegrationTest, Fig12TicketCollapse) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult original = simulate(spec);
    const TestbedSpec resized_spec = resize_with_atm(spec, original);
    const SimResult resized = simulate(resized_spec);
    // Paper: 49 -> 1. Require a collapse to (near) zero.
    EXPECT_LE(resized.total_tickets, 3);
    EXPECT_LT(resized.total_tickets, original.total_tickets / 10);
}

TEST(ResizeIntegrationTest, BudgetsRespectedPerNode) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult original = simulate(spec);
    const TestbedSpec resized = resize_with_atm(spec, original);
    for (const NodeSpec& node : spec.nodes) {
        double total = 0.0;
        for (std::size_t i = 0; i < resized.vms.size(); ++i) {
            if (resized.vms[i].node == node.node) {
                total += resized.vms[i].cpu_limit_cores;
            }
        }
        EXPECT_LE(total, node.total_cores + 1e-9) << node.name;
    }
}

TEST(ResizeIntegrationTest, HotVmsGainIdleVmsShrink) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult original = simulate(spec);
    const TestbedSpec resized = resize_with_atm(spec, original);
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        if (spec.vms[i].tier == Tier::kApache) {
            EXPECT_GT(resized.vms[i].cpu_limit_cores, 2.0) << spec.vms[i].name;
        } else {
            EXPECT_LT(resized.vms[i].cpu_limit_cores, 2.0) << spec.vms[i].name;
        }
    }
}

TEST(ResizeIntegrationTest, Fig13PerformanceShape) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult original = simulate(spec);
    const SimResult resized = simulate(resize_with_atm(spec, original));

    // wiki-one: response time improves, throughput unchanged.
    EXPECT_LT(resized.wikis[0].mean_response_time_s,
              0.9 * original.wikis[0].mean_response_time_s);
    EXPECT_NEAR(resized.wikis[0].mean_throughput_rps,
                original.wikis[0].mean_throughput_rps,
                0.02 * original.wikis[0].mean_throughput_rps);

    // wiki-two: throughput improves (saturation removed).
    EXPECT_GT(resized.wikis[1].mean_throughput_rps,
              1.05 * original.wikis[1].mean_throughput_rps);
}

TEST(ResizeIntegrationTest, MinimumFloorApplied) {
    const TestbedSpec spec = make_mediawiki_testbed();
    const SimResult original = simulate(spec);
    const TestbedSpec resized = resize_with_atm(spec, original);
    for (const VmSpec& vm : resized.vms) {
        EXPECT_GE(vm.cpu_limit_cores, 0.2);
    }
}

TEST(OverloadedTestbedTest, ResizingHelpsButCannotEliminate) {
    const TestbedSpec spec = make_overloaded_testbed();
    const SimResult original = simulate(spec);
    const SimResult resized = simulate(resize_with_atm(spec, original));
    // The hot VMs still ticket through their high phases (the per-window
    // ticket count saturates: a window either violates or not)...
    EXPECT_GE(original.total_tickets, 48);
    // ...resizing still reduces them...
    EXPECT_LT(resized.total_tickets, original.total_tickets);
    // ...but the infeasible regime leaves residual tickets.
    EXPECT_GT(resized.total_tickets, 0);
}

TEST(OverloadedTestbedTest, BudgetsStillRespected) {
    const TestbedSpec spec = make_overloaded_testbed();
    const SimResult original = simulate(spec);
    const TestbedSpec resized = resize_with_atm(spec, original);
    for (const NodeSpec& node : spec.nodes) {
        double total = 0.0;
        for (std::size_t i = 0; i < resized.vms.size(); ++i) {
            if (resized.vms[i].node == node.node) {
                total += resized.vms[i].cpu_limit_cores;
            }
        }
        // The 0.2-core floor for idle VMs may push marginally past the
        // budget; allow that one epsilon.
        EXPECT_LE(total, node.total_cores + 0.4 + 1e-9) << node.name;
    }
}

TEST(TierTest, Names) {
    EXPECT_EQ(to_string(Tier::kApache), "apache");
    EXPECT_EQ(to_string(Tier::kMemcached), "memcached");
    EXPECT_EQ(to_string(Tier::kMysql), "mysql");
}

}  // namespace
}  // namespace atm::wiki
