#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "core/pipeline.hpp"
#include "core/signature_search.hpp"
#include "core/spatial_model.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

namespace atm::core {
namespace {

/// Builds a series family: two independent base patterns plus linear
/// combinations of them (the multicollinearity scenario of Section III-A).
std::vector<std::vector<double>> correlated_family(std::size_t len,
                                                   unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> noise(0.0, 0.3);
    std::vector<double> base_a(len);
    std::vector<double> base_b(len);
    for (std::size_t t = 0; t < len; ++t) {
        base_a[t] = 50.0 + 20.0 * std::sin(0.13 * static_cast<double>(t));
        base_b[t] = 30.0 + 15.0 * std::cos(0.07 * static_cast<double>(t));
    }
    std::vector<std::vector<double>> series(6, std::vector<double>(len));
    for (std::size_t t = 0; t < len; ++t) {
        series[0][t] = base_a[t] + noise(rng);
        series[1][t] = 0.8 * base_a[t] + 5.0 + noise(rng);
        series[2][t] = base_b[t] + noise(rng);
        series[3][t] = 1.2 * base_b[t] - 3.0 + noise(rng);
        series[4][t] = 0.5 * base_a[t] + 0.5 * base_b[t] + noise(rng);
        series[5][t] = noise(rng) * 10.0 + 20.0;  // independent
    }
    return series;
}

TEST(SignatureSearchTest, CbcFindsCompactSignatureSet) {
    const auto series = correlated_family(200, 1);
    SignatureSearchOptions options;
    options.method = ClusteringMethod::kCbc;
    const auto result = find_signatures(series, options);
    // Two base patterns + one independent -> at most 4 signatures after
    // stepwise (series 4 is a linear mix and must be eliminated or folded).
    EXPECT_GE(result.signatures.size(), 2u);
    EXPECT_LE(result.signatures.size(), 4u);
    EXPECT_LT(result.signatures.size(), series.size());
}

TEST(SignatureSearchTest, DtwFindsCompactSignatureSet) {
    const auto series = correlated_family(120, 2);
    SignatureSearchOptions options;
    options.method = ClusteringMethod::kDtw;
    const auto result = find_signatures(series, options);
    EXPECT_GE(result.num_clusters, 2);
    EXPECT_LE(result.signatures.size(), result.initial_signatures.size());
    EXPECT_FALSE(result.signatures.empty());
}

TEST(SignatureSearchTest, StepwiseRemovesMulticollinearSignature) {
    // Force every series into its own cluster, then let step 2 act: series
    // 4 = 0.5*s0 + 0.5*s2 must be detected as multicollinear.
    const auto series = correlated_family(200, 3);
    SignatureSearchOptions no_stepwise;
    no_stepwise.method = ClusteringMethod::kCbc;
    no_stepwise.apply_stepwise = false;
    const auto before = find_signatures(series, no_stepwise);

    SignatureSearchOptions with_stepwise = no_stepwise;
    with_stepwise.apply_stepwise = true;
    const auto after = find_signatures(series, with_stepwise);
    EXPECT_LE(after.signatures.size(), before.signatures.size());
}

TEST(SignatureSearchTest, SignatureRatioDefinition) {
    SignatureSearchResult result;
    result.signatures = {0, 2, 4};
    EXPECT_DOUBLE_EQ(result.signature_ratio(12), 0.25);
    EXPECT_DOUBLE_EQ(result.signature_ratio(0), 0.0);
}

TEST(SignatureSearchTest, SingleSeriesIsItsOwnSignature) {
    const std::vector<std::vector<double>> one{{1, 2, 3, 4}};
    const auto result = find_signatures(one);
    EXPECT_EQ(result.signatures, (std::vector<int>{0}));
    EXPECT_EQ(result.num_clusters, 1);
}

TEST(SignatureSearchTest, ValidationErrors) {
    EXPECT_THROW(find_signatures({}), std::invalid_argument);
    EXPECT_THROW(find_signatures({{1, 2}, {1}}), std::invalid_argument);
    EXPECT_THROW(find_signatures({{}, {}}), std::invalid_argument);
}

TEST(SignatureSearchTest, SignaturesSortedAndUnique) {
    const auto series = correlated_family(150, 5);
    for (auto method : {ClusteringMethod::kDtw, ClusteringMethod::kCbc}) {
        SignatureSearchOptions options;
        options.method = method;
        const auto result = find_signatures(series, options);
        EXPECT_TRUE(std::is_sorted(result.signatures.begin(),
                                   result.signatures.end()));
        EXPECT_TRUE(std::adjacent_find(result.signatures.begin(),
                                       result.signatures.end()) ==
                    result.signatures.end());
        for (int s : result.signatures) {
            EXPECT_GE(s, 0);
            EXPECT_LT(s, static_cast<int>(series.size()));
        }
    }
}

TEST(ScopeIndicesTest, InterSelectsAll) {
    const auto idx = scope_indices(8, ResourceScope::kInter);
    EXPECT_EQ(idx.size(), 8u);
}

TEST(ScopeIndicesTest, IntraSelectsAlternating) {
    const auto cpu = scope_indices(8, ResourceScope::kIntraCpu);
    EXPECT_EQ(cpu, (std::vector<int>{0, 2, 4, 6}));
    const auto ram = scope_indices(8, ResourceScope::kIntraRam);
    EXPECT_EQ(ram, (std::vector<int>{1, 3, 5, 7}));
}

TEST(SpatialModelTest, ReconstructsDependentsFromSignatures) {
    const auto series = correlated_family(200, 7);
    SpatialModel model;
    model.fit(series, {0, 2, 5});
    EXPECT_EQ(model.dependent_indices(), (std::vector<int>{1, 3, 4}));

    // Reconstruct on the training signatures: dependents must fit well.
    std::vector<std::vector<double>> sig_values{series[0], series[2], series[5]};
    const auto rebuilt = model.reconstruct(sig_values);
    ASSERT_EQ(rebuilt.size(), series.size());
    for (int dep : model.dependent_indices()) {
        const double ape = ts::mean_absolute_percentage_error(
            series[static_cast<std::size_t>(dep)],
            rebuilt[static_cast<std::size_t>(dep)]);
        EXPECT_LT(ape, 0.05) << "series " << dep;
    }
    // Signature rows pass through verbatim.
    EXPECT_EQ(rebuilt[0], series[0]);
    EXPECT_EQ(rebuilt[5], series[5]);
}

TEST(SpatialModelTest, DependentFitApeMatchesManualOls) {
    const auto series = correlated_family(150, 9);
    SpatialModel model;
    model.fit(series, {0, 2});
    ASSERT_EQ(model.dependent_fit_ape().size(), 4u);
    for (double ape : model.dependent_fit_ape()) {
        EXPECT_GE(ape, 0.0);
        EXPECT_LT(ape, 0.6);
    }
    // Series 1 is a clean transform of signature 0 -> near-zero APE.
    EXPECT_LT(model.dependent_fit_ape()[0], 0.03);
}

TEST(SpatialModelTest, ReconstructClampsNegativePredictions) {
    // A dependent with a strongly negative relationship extrapolated far
    // beyond training must not produce negative demand.
    std::vector<std::vector<double>> series(2, std::vector<double>(50));
    for (std::size_t t = 0; t < 50; ++t) {
        series[0][t] = static_cast<double>(t);
        series[1][t] = 100.0 - 2.0 * static_cast<double>(t);
    }
    SpatialModel model;
    model.fit(series, {0});
    const std::vector<std::vector<double>> future{{200.0, 300.0}};
    const auto rebuilt = model.reconstruct(future);
    for (double v : rebuilt[1]) EXPECT_GE(v, 0.0);
}

TEST(SpatialModelTest, Validation) {
    SpatialModel model;
    EXPECT_THROW(model.fit({}, {0}), std::invalid_argument);
    EXPECT_THROW(model.fit({{1, 2}}, {}), std::invalid_argument);
    EXPECT_THROW(model.fit({{1, 2}}, {5}), std::invalid_argument);
    EXPECT_THROW(model.reconstruct({}), std::logic_error);
    model.fit({{1, 2, 3}, {2, 4, 6}}, {0});
    EXPECT_THROW(model.reconstruct({{1.0}, {2.0}}), std::invalid_argument);
    EXPECT_THROW(model.reconstruct({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

// ------------------------------------------------------------ pipeline

trace::BoxTrace pipeline_box() {
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 6;
    options.gappy_box_fraction = 0.0;
    options.seed = 99;
    return trace::generate_box(options, 0);
}

PipelineConfig fast_config() {
    PipelineConfig config;
    config.temporal = forecast::TemporalModel::kSeasonalNaive;  // fast tests
    config.train_days = 5;
    return config;
}

TEST(PipelineTest, RunsEndToEndAndPredicts) {
    const auto box = pipeline_box();
    const auto result = run_pipeline_on_box(box, 96, fast_config());
    EXPECT_FALSE(result.search.signatures.empty());
    EXPECT_GT(result.ape_all, 0.0);
    EXPECT_LT(result.ape_all, 1.0);
    ASSERT_EQ(result.predicted_demands.size(), box.vms.size() * 2);
    for (const auto& row : result.predicted_demands) {
        ASSERT_EQ(row.size(), 96u);
        for (double v : row) EXPECT_GE(v, 0.0);
    }
}

TEST(PipelineTest, PoliciesReportBeforeAfterTickets) {
    const auto box = pipeline_box();
    const std::vector<resize::ResizePolicy> policies{
        resize::ResizePolicy::kAtmGreedy, resize::ResizePolicy::kStingy};
    const auto result = run_pipeline_on_box(box, 96, fast_config(), policies);
    ASSERT_EQ(result.policies.size(), 2u);
    // "Before" counts are policy-independent.
    EXPECT_EQ(result.policies[0].cpu_before, result.policies[1].cpu_before);
    EXPECT_EQ(result.policies[0].ram_before, result.policies[1].ram_before);
    for (const auto& p : result.policies) {
        EXPECT_GE(p.cpu_after, 0);
        EXPECT_GE(p.ram_after, 0);
    }
}

TEST(PipelineTest, ReductionPctSigns) {
    PolicyTickets t;
    t.cpu_before = 100;
    t.cpu_after = 40;
    EXPECT_DOUBLE_EQ(t.cpu_reduction_pct(), 60.0);
    t.cpu_after = 130;
    EXPECT_DOUBLE_EQ(t.cpu_reduction_pct(), -30.0);
    t.cpu_before = 0;
    EXPECT_DOUBLE_EQ(t.cpu_reduction_pct(), 0.0);
    t.ram_before = 10;
    t.ram_after = 1;
    EXPECT_DOUBLE_EQ(t.ram_reduction_pct(), 90.0);
}

TEST(PipelineTest, IntraScopeSkipsOtherResource) {
    const auto box = pipeline_box();
    PipelineConfig config = fast_config();
    config.scope = ResourceScope::kIntraCpu;
    const auto result = run_pipeline_on_box(
        box, 96, config, {resize::ResizePolicy::kAtmGreedy});
    // RAM rows are unpredicted, RAM tickets untouched (stay 0/0).
    ASSERT_EQ(result.policies.size(), 1u);
    EXPECT_EQ(result.policies[0].ram_before, 0);
    EXPECT_EQ(result.policies[0].ram_after, 0);
    for (std::size_t i = 0; i < result.predicted_demands.size(); ++i) {
        if (i % 2 == 1) {
            EXPECT_TRUE(result.predicted_demands[i].empty());
        }
    }
}

TEST(PipelineTest, TooShortTraceThrows) {
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 3;
    const auto box = trace::generate_box(options, 0);
    try {
        run_pipeline_on_box(box, 96, fast_config());
        FAIL() << "expected PipelineError";
    } catch (const PipelineError& e) {
        EXPECT_EQ(e.code(), PipelineErrorCode::kTraceInvalid);
        EXPECT_EQ(e.stage(), "input");
    }
}

TEST(PipelineTest, AtmReducesTicketsOnAverage) {
    // Across several boxes, ATM (with prediction) must reduce CPU tickets
    // substantially in aggregate.
    trace::TraceGenOptions options;
    options.num_boxes = 12;
    options.num_days = 6;
    options.gappy_box_fraction = 0.0;
    const auto trace = trace::generate_trace(options);
    int before = 0;
    int after = 0;
    for (const auto& box : trace.boxes) {
        const auto result = run_pipeline_on_box(
            box, 96, fast_config(), {resize::ResizePolicy::kAtmGreedy});
        before += result.policies[0].cpu_before + result.policies[0].ram_before;
        after += result.policies[0].cpu_after + result.policies[0].ram_after;
    }
    ASSERT_GT(before, 0);
    EXPECT_LT(after, before / 2);  // at least 50% aggregate reduction
}

TEST(ResizeOnActualsTest, PerfectKnowledgeNearEliminatesTickets) {
    // Fig. 8 mode: with actual demands and abundant box capacity, ATM
    // should wipe out nearly all tickets.
    trace::TraceGenOptions options;
    options.num_boxes = 10;
    options.num_days = 2;
    options.gappy_box_fraction = 0.0;
    const auto trace = trace::generate_trace(options);
    int before = 0;
    int after = 0;
    for (const auto& box : trace.boxes) {
        const auto results = evaluate_resize_policies_on_actuals(
            box, 96, /*day=*/1, 0.6, 5.0, {resize::ResizePolicy::kAtmGreedy});
        before += results[0].cpu_before + results[0].ram_before;
        after += results[0].cpu_after + results[0].ram_after;
    }
    ASSERT_GT(before, 0);
    // The paper reports ~95% reduction; our population includes capacity-
    // constrained (overcommitted) boxes where zero tickets is infeasible,
    // so require >= 75% aggregate reduction.
    EXPECT_LT(static_cast<double>(after), 0.25 * static_cast<double>(before));
}

TEST(ResizeOnActualsTest, AtmBeatsBaselines) {
    trace::TraceGenOptions options;
    options.num_boxes = 15;
    options.num_days = 2;
    const auto trace = trace::generate_trace(options);
    const std::vector<resize::ResizePolicy> policies{
        resize::ResizePolicy::kAtmGreedy, resize::ResizePolicy::kMaxMinFairness,
        resize::ResizePolicy::kStingy};
    int atm = 0;
    int maxmin = 0;
    int stingy = 0;
    for (const auto& box : trace.boxes) {
        const auto results =
            evaluate_resize_policies_on_actuals(box, 96, 1, 0.6, 5.0, policies);
        atm += results[0].cpu_after + results[0].ram_after;
        maxmin += results[1].cpu_after + results[1].ram_after;
        stingy += results[2].cpu_after + results[2].ram_after;
    }
    EXPECT_LE(atm, maxmin);
    EXPECT_LE(atm, stingy);
}

TEST(ResizeOnActualsTest, DayOutOfRangeThrows) {
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 2;
    const auto box = trace::generate_box(options, 0);
    try {
        evaluate_resize_policies_on_actuals(box, 96, 5, 0.6, 5.0,
                                            {resize::ResizePolicy::kAtmGreedy});
        FAIL() << "expected PipelineError";
    } catch (const PipelineError& e) {
        EXPECT_EQ(e.code(), PipelineErrorCode::kTraceInvalid);
        EXPECT_EQ(e.stage(), "input");
    }
}

// Parameterized: the pipeline runs under every clustering method x
// temporal model combination.
struct PipelineParam {
    ClusteringMethod method;
    forecast::TemporalModel temporal;
};

class PipelineMatrixTest : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(PipelineMatrixTest, RunsAndPredictsReasonably) {
    const auto box = pipeline_box();
    PipelineConfig config;
    config.search.method = GetParam().method;
    config.temporal = GetParam().temporal;
    const auto result = run_pipeline_on_box(box, 96, config,
                                            {resize::ResizePolicy::kAtmGreedy});
    EXPECT_GT(result.ape_all, 0.0);
    EXPECT_LT(result.ape_all, 1.2);
    EXPECT_FALSE(result.search.signatures.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineMatrixTest,
    ::testing::Values(
        PipelineParam{ClusteringMethod::kDtw, forecast::TemporalModel::kSeasonalNaive},
        PipelineParam{ClusteringMethod::kCbc, forecast::TemporalModel::kSeasonalNaive},
        PipelineParam{ClusteringMethod::kDtw, forecast::TemporalModel::kAutoregressive},
        PipelineParam{ClusteringMethod::kCbc, forecast::TemporalModel::kNeuralNetwork}));

}  // namespace
}  // namespace atm::core
