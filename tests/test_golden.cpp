// Golden-run regression suite: runs the full fleet pipeline on a small
// fixed-seed synthetic trace and compares the outcome — signatures, APEs,
// per-policy tickets, and the deterministic metrics counters — against a
// checked-in JSON file. Any behavioral drift in clustering, forecasting,
// reconstruction, or resizing fails this suite even when unit tests of
// each stage still pass.
//
// Regenerating after an *intentional* behavior change:
//
//   ATM_UPDATE_GOLDEN=1 ./build/tests/test_golden
//
// rewrites tests/golden/fleet_seed42.json in the source tree (the path is
// baked in via the ATM_GOLDEN_DIR compile definition); review the diff
// and commit it together with the change that caused it.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "core/fleet.hpp"
#include "exec/io.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/json.hpp"
#include "tracegen/generator.hpp"

#ifndef ATM_GOLDEN_DIR
#error "ATM_GOLDEN_DIR must point at the source-tree golden directory"
#endif

namespace atm {
namespace {

namespace json = obs::json;

constexpr const char* kGoldenFile = ATM_GOLDEN_DIR "/fleet_seed42.json";

/// Pins the SIMD dispatch for a test's scope and restores the ambient
/// path afterwards (exception/skip-safe). The checked-in golden file is
/// a *scalar-path* artifact: byte-identical regeneration is only defined
/// there, since vectorized MLP forwards reassociate FP sums
/// (linalg/simd/simd.hpp tolerance policy).
class ScopedSimdPath {
  public:
    explicit ScopedSimdPath(simd::Path path) : saved_(simd::active_path()) {
        simd::set_path(path);
    }
    ScopedSimdPath(const ScopedSimdPath&) = delete;
    ScopedSimdPath& operator=(const ScopedSimdPath&) = delete;
    ~ScopedSimdPath() { simd::set_path(saved_); }

  private:
    simd::Path saved_;
};

/// The fixed scenario: everything here is part of the golden contract.
trace::Trace golden_trace() {
    trace::TraceGenOptions options;
    options.num_boxes = 5;
    options.num_days = 6;
    options.windows_per_day = 24;
    options.gappy_box_fraction = 0.0;
    options.seed = 42;
    return trace::generate_trace(options);
}

core::FleetConfig golden_config() {
    core::FleetConfig config;
    config.pipeline.search.method = core::ClusteringMethod::kDtw;
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.pipeline.train_days = 5;
    config.pipeline.seed = 42;
    config.jobs = 2;
    config.collect_metrics = true;
    config.policies = {resize::ResizePolicy::kAtmGreedy,
                       resize::ResizePolicy::kMaxMinFairness,
                       resize::ResizePolicy::kStingy};
    return config;
}

// Works for both per-box core::PolicyTickets (int) and the fleet's
// core::FleetPolicyTotals (int64) — the serialized JSON is identical.
template <typename PolicyLike>
json::Value policy_to_json(const PolicyLike& p) {
    json::Value entry = json::Value::make_object();
    entry.set("policy", json::Value::of(resize::to_string(p.policy)));
    entry.set("cpu_before", json::Value::of(std::int64_t{p.cpu_before}));
    entry.set("cpu_after", json::Value::of(std::int64_t{p.cpu_after}));
    entry.set("ram_before", json::Value::of(std::int64_t{p.ram_before}));
    entry.set("ram_after", json::Value::of(std::int64_t{p.ram_after}));
    return entry;
}

/// Projects a fleet run onto the golden schema. Timers are deliberately
/// absent: they are wall-clock measurements, not behavior.
json::Value golden_view(const core::FleetResult& fleet) {
    json::Value doc = json::Value::make_object();
    doc.set("schema", json::Value::of("atm.golden.v1"));

    json::Value summary = json::Value::make_object();
    summary.set("boxes_in_trace", json::Value::of(
                                      static_cast<std::uint64_t>(fleet.boxes_in_trace)));
    summary.set("boxes_skipped",
                json::Value::of(static_cast<std::uint64_t>(fleet.boxes_skipped)));
    summary.set("boxes_failed",
                json::Value::of(static_cast<std::uint64_t>(fleet.boxes_failed)));
    summary.set("mean_ape_all", json::Value::of(fleet.mean_ape_all));
    summary.set("mean_ape_peak", json::Value::of(fleet.mean_ape_peak));
    json::Value totals = json::Value::make_array();
    for (const core::FleetPolicyTotals& p : fleet.totals) {
        totals.array.push_back(policy_to_json(p));
    }
    summary.set("totals", std::move(totals));

    json::Value counters = json::Value::make_object();
    for (const auto& [name, value] : fleet.metrics.counters) {
        counters.set(name, json::Value::of(value));
    }
    summary.set("metrics_counters", std::move(counters));
    doc.set("fleet", std::move(summary));

    json::Value boxes = json::Value::make_array();
    for (const core::FleetBoxResult& b : fleet.boxes) {
        json::Value box = json::Value::make_object();
        box.set("name", json::Value::of(b.box_name));
        box.set("error", json::Value::of(b.error));
        json::Value signatures = json::Value::make_array();
        for (int s : b.result.search.signatures) {
            signatures.array.push_back(json::Value::of(std::int64_t{s}));
        }
        box.set("signatures", std::move(signatures));
        box.set("num_clusters",
                json::Value::of(std::int64_t{b.result.search.num_clusters}));
        box.set("ape_all", json::Value::of(b.result.ape_all));
        box.set("ape_peak", json::Value::of(b.result.ape_peak));
        json::Value policies = json::Value::make_array();
        for (const core::PolicyTickets& p : b.result.policies) {
            policies.array.push_back(policy_to_json(p));
        }
        box.set("policies", std::move(policies));
        boxes.array.push_back(std::move(box));
    }
    doc.set("boxes", std::move(boxes));
    return doc;
}

/// Recursive compare: exact for strings/bools/integers/structure, a tiny
/// relative tolerance for non-integral numbers (doubles cross compiler
/// and libm versions; APEs agree to ~1e-12 but we allow 1e-9).
void expect_json_near(const json::Value& expected, const json::Value& actual,
                      const std::string& path) {
    ASSERT_EQ(expected.type, actual.type) << "at " << path;
    switch (expected.type) {
        case json::Value::Type::kNull:
            break;
        case json::Value::Type::kBool:
            EXPECT_EQ(expected.boolean, actual.boolean) << "at " << path;
            break;
        case json::Value::Type::kNumber: {
            const double e = expected.number;
            const double a = actual.number;
            if (std::nearbyint(e) == e && std::nearbyint(a) == a) {
                EXPECT_EQ(e, a) << "at " << path;
            } else {
                const double scale = std::max({1.0, std::fabs(e), std::fabs(a)});
                EXPECT_NEAR(e, a, 1e-9 * scale) << "at " << path;
            }
            break;
        }
        case json::Value::Type::kString:
            EXPECT_EQ(expected.string, actual.string) << "at " << path;
            break;
        case json::Value::Type::kArray: {
            ASSERT_EQ(expected.array.size(), actual.array.size()) << "at " << path;
            for (std::size_t i = 0; i < expected.array.size(); ++i) {
                expect_json_near(expected.array[i], actual.array[i],
                                 path + "[" + std::to_string(i) + "]");
            }
            break;
        }
        case json::Value::Type::kObject: {
            ASSERT_EQ(expected.object.size(), actual.object.size())
                << "at " << path;
            for (std::size_t i = 0; i < expected.object.size(); ++i) {
                EXPECT_EQ(expected.object[i].first, actual.object[i].first)
                    << "at " << path;
                expect_json_near(expected.object[i].second,
                                 actual.object[i].second,
                                 path + "." + expected.object[i].first);
            }
            break;
        }
    }
}

TEST(GoldenFleetTest, MatchesCheckedInGoldenRun) {
    // Forced to the scalar path: this comparison (and the
    // ATM_UPDATE_GOLDEN regen below) must be independent of the machine's
    // best ISA. Vectorized paths are pinned by the tolerance-checked
    // variant further down.
    const ScopedSimdPath scoped(simd::Path::kScalar);
    const trace::Trace t = golden_trace();
    const core::FleetResult fleet =
        core::run_pipeline_on_fleet(t, golden_config());
    ASSERT_EQ(fleet.boxes_failed, 0u);
    const json::Value actual = golden_view(fleet);

    if (const char* update = std::getenv("ATM_UPDATE_GOLDEN");
        update != nullptr && std::string(update) == "1") {
        // Atomic write: an interrupted regen must not truncate the
        // checked-in golden file.
        exec::write_file_atomic(kGoldenFile, json::serialize(actual, 2) + '\n');
        GTEST_SKIP() << "golden file regenerated at " << kGoldenFile
                     << "; review the diff and re-run without "
                        "ATM_UPDATE_GOLDEN";
    }

    std::ifstream in(kGoldenFile);
    ASSERT_TRUE(in) << "missing " << kGoldenFile
                    << " — run ATM_UPDATE_GOLDEN=1 ./test_golden once";
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const json::Value expected = json::parse(text);
    expect_json_near(expected, actual, "$");
}

/// True for counters legitimately allowed to drift between SIMD paths:
/// the MLP's early-stopping epoch count and everything downstream of the
/// forecast values (MCKP candidate/iteration counts follow the
/// discretized predicted demands). Everything else — ticket counts,
/// signatures, clusters, DTW pair/cell counters — must match exactly.
bool drift_allowlisted(const std::string& path) {
    return path.find("forecast.mlp.epochs") != std::string::npos ||
           path.find("resize.mckp.") != std::string::npos;
}

/// Tolerance-checked golden comparison for vectorized paths: structure,
/// strings, bools, and integer-valued numbers exact (except the drift
/// allowlist); non-integral numbers within simd::kGoldenMaxUlps. This is
/// the documented FP tolerance policy of DESIGN.md §7.13.
void expect_json_within_ulps(const json::Value& expected,
                             const json::Value& actual,
                             const std::string& path) {
    ASSERT_EQ(expected.type, actual.type) << "at " << path;
    switch (expected.type) {
        case json::Value::Type::kNull:
            break;
        case json::Value::Type::kBool:
            EXPECT_EQ(expected.boolean, actual.boolean) << "at " << path;
            break;
        case json::Value::Type::kNumber: {
            const double e = expected.number;
            const double a = actual.number;
            if (drift_allowlisted(path)) break;
            if (std::nearbyint(e) == e && std::nearbyint(a) == a) {
                EXPECT_EQ(e, a) << "at " << path;
            } else {
                EXPECT_LE(simd::ulp_distance(e, a), simd::kGoldenMaxUlps)
                    << "at " << path << ": " << e << " vs " << a;
            }
            break;
        }
        case json::Value::Type::kString:
            EXPECT_EQ(expected.string, actual.string) << "at " << path;
            break;
        case json::Value::Type::kArray: {
            ASSERT_EQ(expected.array.size(), actual.array.size())
                << "at " << path;
            for (std::size_t i = 0; i < expected.array.size(); ++i) {
                expect_json_within_ulps(expected.array[i], actual.array[i],
                                        path + "[" + std::to_string(i) + "]");
            }
            break;
        }
        case json::Value::Type::kObject: {
            ASSERT_EQ(expected.object.size(), actual.object.size())
                << "at " << path;
            for (std::size_t i = 0; i < expected.object.size(); ++i) {
                EXPECT_EQ(expected.object[i].first, actual.object[i].first)
                    << "at " << path;
                expect_json_within_ulps(expected.object[i].second,
                                        actual.object[i].second,
                                        path + "." + expected.object[i].first);
            }
            break;
        }
    }
}

TEST(GoldenFleetTest, ScalarPathRegenerationIsByteIdentical) {
    // The ATM_UPDATE_GOLDEN contract: regenerating on the scalar path is
    // deterministic down to the byte, so a golden diff always means a
    // real behavior change, never FP noise. (Cross-machine the doubles
    // may still vary with libm — that is what expect_json_near's 1e-9
    // absorbs — but one machine must reproduce itself exactly.)
    const ScopedSimdPath scoped(simd::Path::kScalar);
    const trace::Trace t = golden_trace();
    const core::FleetResult first =
        core::run_pipeline_on_fleet(t, golden_config());
    const core::FleetResult second =
        core::run_pipeline_on_fleet(t, golden_config());
    EXPECT_EQ(json::serialize(golden_view(first), 2),
              json::serialize(golden_view(second), 2));
}

TEST(GoldenFleetTest, VectorizedPathsMatchGoldenWithinTolerance) {
    std::vector<simd::Path> vector_paths;
    for (simd::Path p : simd::supported_paths()) {
        if (p != simd::Path::kScalar) vector_paths.push_back(p);
    }
    if (vector_paths.empty()) {
        GTEST_SKIP() << "no vectorized SIMD path available on this machine";
    }
    const trace::Trace t = golden_trace();

    json::Value scalar_view;
    {
        const ScopedSimdPath scoped(simd::Path::kScalar);
        scalar_view =
            golden_view(core::run_pipeline_on_fleet(t, golden_config()));
    }
    for (simd::Path path : vector_paths) {
        const ScopedSimdPath scoped(path);
        const core::FleetResult fleet =
            core::run_pipeline_on_fleet(t, golden_config());
        ASSERT_EQ(fleet.boxes_failed, 0u) << simd::to_string(path);
        EXPECT_EQ(fleet.simd_path, simd::to_string(path));
        expect_json_within_ulps(scalar_view, golden_view(fleet), "$");
    }
}

TEST(GoldenFleetTest, GoldenRunIsScheduleInvariant) {
    // The golden file is generated at jobs=2; this guards the implicit
    // assumption that regenerating on any machine gives the same file.
    const trace::Trace t = golden_trace();
    core::FleetConfig config = golden_config();
    const core::FleetResult at_two = core::run_pipeline_on_fleet(t, config);
    config.jobs = 1;
    const core::FleetResult serial = core::run_pipeline_on_fleet(t, config);
    expect_json_near(golden_view(serial), golden_view(at_two), "$");
}

}  // namespace
}  // namespace atm
