// Cross-cutting property suites: parameterized sweeps over thresholds,
// epsilon values and seeds verifying invariants the algorithms must hold
// for *any* parameter choice, not just the paper's defaults.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "core/pipeline.hpp"
#include "resize/mckp.hpp"
#include "resize/policies.hpp"
#include "resize/reduced_demand.hpp"
#include "tracegen/generator.hpp"

namespace atm {
namespace {

// ------------------------------------------------- reduced demand vs alpha

class AlphaPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaPropertyTest, CandidateInvariants) {
    const double alpha = GetParam();
    std::mt19937 rng(99);
    std::uniform_real_distribution<double> dist(0.0, 20.0);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> demand(24);
        for (double& d : demand) d = dist(rng);
        const auto set = resize::build_reduced_demand_set(demand, alpha, 0.0);
        ASSERT_FALSE(set.candidates.empty());
        // Capacity strictly decreasing, tickets non-decreasing, capacity =
        // level / alpha, and the top candidate has zero tickets.
        EXPECT_EQ(set.candidates.front().tickets, 0);
        for (std::size_t v = 0; v < set.candidates.size(); ++v) {
            const auto& c = set.candidates[v];
            if (c.demand_level > 0.0) {
                EXPECT_NEAR(c.capacity, c.demand_level / alpha, 1e-9);
            }
            if (v > 0) {
                EXPECT_LT(c.capacity, set.candidates[v - 1].capacity);
                EXPECT_GE(c.tickets, set.candidates[v - 1].tickets);
            }
        }
        // The zero candidate tickets every positive-demand window.
        int positive = 0;
        for (double d : demand) {
            if (d > 1e-12) ++positive;
        }
        EXPECT_EQ(set.candidates.back().tickets, positive);
    }
}

TEST_P(AlphaPropertyTest, TicketCountMatchesDirectEvaluation) {
    const double alpha = GetParam();
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(0.0, 50.0);
    std::vector<double> demand(48);
    for (double& d : demand) d = dist(rng);
    const auto set = resize::build_reduced_demand_set(demand, alpha, 0.0);
    for (const auto& c : set.candidates) {
        int direct = 0;
        for (double d : demand) {
            if (d > alpha * c.capacity + 1e-9) ++direct;
        }
        EXPECT_EQ(c.tickets, direct) << "capacity " << c.capacity;
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaPropertyTest,
                         ::testing::Values(0.3, 0.5, 0.6, 0.7, 0.8, 1.0));

// ------------------------------------------------------- epsilon monotone

class EpsilonPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonPropertyTest, DiscretizationShrinksCandidateSets) {
    const double epsilon = GetParam();
    std::mt19937 rng(3);
    std::uniform_real_distribution<double> dist(0.0, 40.0);
    std::vector<double> demand(96);
    for (double& d : demand) d = dist(rng);
    const auto plain = resize::build_reduced_demand_set(demand, 0.6, 0.0);
    const auto disc = resize::build_reduced_demand_set(demand, 0.6, epsilon);
    EXPECT_LE(disc.candidates.size(), plain.candidates.size());
    // Discretized top candidate covers at least the true peak (safety).
    EXPECT_GE(disc.candidates.front().capacity - 1e-9,
              plain.candidates.front().capacity -
                  epsilon / 0.6);  // within one rounding step below...
    EXPECT_GE(disc.candidates.front().demand_level + 1e-9,
              *std::max_element(demand.begin(), demand.end()));
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonPropertyTest,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0, 10.0));

// --------------------------------------------------- greedy MCKP vs seeds

class GreedySeedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedySeedPropertyTest, SolutionDominatesAllMinimalAndAllMaximal) {
    // The greedy's ticket count is never worse than choosing every VM's
    // minimal candidate; its capacity use never exceeds all-maximal.
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31);
    std::uniform_real_distribution<double> dist(0.0, 30.0);
    resize::MckpInstance instance;
    double max_sum = 0.0;
    int min_choice_tickets = 0;
    for (int i = 0; i < 5; ++i) {
        std::vector<double> demand(16);
        for (double& d : demand) d = dist(rng);
        instance.groups.push_back(
            resize::build_reduced_demand_set(demand, 0.6, 0.0));
        max_sum += instance.groups.back().candidates.front().capacity;
        min_choice_tickets += instance.groups.back().candidates.back().tickets;
    }
    instance.total_capacity = max_sum * 0.6;
    const auto sol = resize::solve_mckp_greedy(instance);
    EXPECT_TRUE(sol.feasible);
    EXPECT_LE(sol.total_tickets, min_choice_tickets);
    EXPECT_LE(sol.used_capacity, instance.total_capacity + 1e-9);
}

TEST_P(GreedySeedPropertyTest, ExactSolutionIsOptimalOverBruteForce) {
    // Small instances: enumerate every choice combination and verify the
    // DP truly finds the optimum on its capacity grid.
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 73);
    std::uniform_real_distribution<double> dist(0.0, 10.0);
    resize::MckpInstance instance;
    for (int i = 0; i < 3; ++i) {
        std::vector<double> demand(5);
        for (double& d : demand) d = dist(rng);
        instance.groups.push_back(
            resize::build_reduced_demand_set(demand, 1.0, 0.0));
    }
    instance.total_capacity = 12.0;

    const auto exact = resize::solve_mckp_exact(instance, 1 << 14);

    int best = std::numeric_limits<int>::max();
    const auto& g = instance.groups;
    for (std::size_t a = 0; a < g[0].candidates.size(); ++a) {
        for (std::size_t b = 0; b < g[1].candidates.size(); ++b) {
            for (std::size_t c = 0; c < g[2].candidates.size(); ++c) {
                const double cap = g[0].candidates[a].capacity +
                                   g[1].candidates[b].capacity +
                                   g[2].candidates[c].capacity;
                if (cap > instance.total_capacity + 1e-9) continue;
                best = std::min(best, g[0].candidates[a].tickets +
                                          g[1].candidates[b].tickets +
                                          g[2].candidates[c].tickets);
            }
        }
    }
    EXPECT_EQ(exact.total_tickets, best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySeedPropertyTest, ::testing::Range(1, 11));

// ----------------------------------------------- pipeline threshold sweep

class ThresholdPipelineTest : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdPipelineTest, ResizeNeverWorseThanBaselineCounts) {
    const double alpha = GetParam();
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 2;
    options.gappy_box_fraction = 0.0;
    options.seed = 31;
    const trace::BoxTrace box = trace::generate_box(options, 0);
    const auto results = core::evaluate_resize_policies_on_actuals(
        box, 96, 1, alpha, 5.0, {resize::ResizePolicy::kAtmGreedy});
    // ATM with perfect knowledge and the no-op candidate can always keep
    // the status quo, so it never increases tickets at any threshold.
    EXPECT_LE(results[0].cpu_after, results[0].cpu_before);
    EXPECT_LE(results[0].ram_after, results[0].ram_before);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdPipelineTest,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

// ------------------------------------------------------ generator sweeps

class GeneratorSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorSeedTest, StructuralInvariantsHoldForAnySeed) {
    trace::TraceGenOptions options;
    options.num_boxes = 10;
    options.num_days = 1;
    options.seed = static_cast<std::uint64_t>(GetParam()) * 9973;
    const trace::Trace trace = trace::generate_trace(options);
    for (const trace::BoxTrace& box : trace.boxes) {
        EXPECT_GE(box.vms.size(), 2u);
        for (const trace::VmTrace& vm : box.vms) {
            EXPECT_GT(vm.cpu_capacity_ghz, 0.0);
            EXPECT_GT(vm.ram_capacity_gb, 0.0);
            ASSERT_EQ(vm.cpu_usage_pct.size(), 96u);
            ASSERT_EQ(vm.cpu_demand_ghz.size(), 96u);
            for (std::size_t t = 0; t < 96; ++t) {
                EXPECT_GE(vm.cpu_usage_pct[t], 0.0);
                EXPECT_LE(vm.cpu_usage_pct[t], 100.0);
                EXPECT_GE(vm.cpu_demand_ghz[t], 0.0);
                // Demand >= what the capped usage implies.
                if (!box.has_gaps) {
                    EXPECT_GE(vm.cpu_demand_ghz[t] + 1e-9,
                              vm.cpu_usage_pct[t] / 100.0 * vm.cpu_capacity_ghz);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace atm
