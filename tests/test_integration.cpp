// Cross-module integration tests: full flows through generator ->
// repair/characterization -> signature search -> spatial model ->
// forecasting -> resizing, plus end-to-end determinism and conservation
// properties that only hold when the modules agree on conventions.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/pipeline.hpp"
#include "core/rolling.hpp"
#include "forecast/holt_winters.hpp"
#include "mediawiki/simulator.hpp"
#include "resize/drf.hpp"
#include "ticketing/characterization.hpp"
#include "ticketing/incidents.hpp"
#include "timeseries/analysis.hpp"
#include "timeseries/repair.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

namespace atm {
namespace {

trace::TraceGenOptions base_options() {
    trace::TraceGenOptions options;
    options.num_boxes = 8;
    options.num_days = 6;
    options.gappy_box_fraction = 0.0;
    options.seed = 77;
    return options;
}

TEST(IntegrationTest, EndToEndDeterminism) {
    // The identical pipeline on identical inputs produces identical
    // predictions and allocations — across every stochastic component
    // (generator, MLP init/shuffle).
    const trace::BoxTrace box = trace::generate_box(base_options(), 2);
    core::PipelineConfig config;
    config.temporal = forecast::TemporalModel::kNeuralNetwork;
    const auto a = core::run_pipeline_on_box(box, 96, config,
                                             {resize::ResizePolicy::kAtmGreedy});
    const auto b = core::run_pipeline_on_box(box, 96, config,
                                             {resize::ResizePolicy::kAtmGreedy});
    EXPECT_EQ(a.search.signatures, b.search.signatures);
    EXPECT_DOUBLE_EQ(a.ape_all, b.ape_all);
    EXPECT_EQ(a.policies[0].cpu_after, b.policies[0].cpu_after);
    EXPECT_EQ(a.predicted_demands, b.predicted_demands);
}

TEST(IntegrationTest, GapRepairRestoresCharacterization) {
    // Inject gaps into a clean box, repair, and verify the day-0
    // correlation structure is close to the clean one.
    trace::TraceGenOptions options = base_options();
    options.num_days = 2;
    const trace::BoxTrace clean = trace::generate_box(options, 4);

    trace::BoxTrace gappy = clean;
    for (trace::VmTrace& vm : gappy.vms) {
        // Gap on day 1 so the seasonal repair has a prior period to copy.
        for (std::size_t t = 126; t < 141; ++t) {
            vm.cpu_usage_pct[t] = 0.0;
            vm.ram_usage_pct[t] = 0.0;
        }
    }
    trace::BoxTrace repaired = gappy;
    for (trace::VmTrace& vm : repaired.vms) {
        vm.cpu_usage_pct = ts::Series(
            vm.cpu_usage_pct.name(),
            ts::repair_series(vm.cpu_usage_pct.view(), ts::RepairMethod::kSeasonal, 96));
        vm.ram_usage_pct = ts::Series(
            vm.ram_usage_pct.name(),
            ts::repair_series(vm.ram_usage_pct.view(), ts::RepairMethod::kSeasonal, 96));
    }

    const auto& vm0_clean = clean.vms[0].cpu_usage_pct;
    const auto& vm0_rep = repaired.vms[0].cpu_usage_pct;
    // Repaired series close to the clean one on the gap (day-2 seasonal
    // copy); the gappy one is just zero there.
    double err_rep = 0.0;
    double err_gap = 0.0;
    for (std::size_t t = 126; t < 141; ++t) {
        err_rep += std::abs(vm0_rep[t] - vm0_clean[t]);
        err_gap += std::abs(gappy.vms[0].cpu_usage_pct[t] - vm0_clean[t]);
    }
    EXPECT_LT(err_rep, 0.6 * err_gap);
}

TEST(IntegrationTest, DetectPeriodFindsDiurnalCycleInTrace) {
    const trace::BoxTrace box = trace::generate_box(base_options(), 1);
    // A driver-following VM should show the 96-window daily period. Scan
    // all VMs; at least one must lock onto ~96.
    int found = 0;
    for (const trace::VmTrace& vm : box.vms) {
        const int p = ts::detect_period(vm.cpu_usage_pct.view(), 48, 144, 0.25);
        if (p >= 90 && p <= 102) ++found;
    }
    EXPECT_GE(found, 1);
}

TEST(IntegrationTest, IncidentsConsistentWithTicketCounts) {
    const trace::BoxTrace box = trace::generate_box(base_options(), 0);
    for (const trace::VmTrace& vm : box.vms) {
        const auto stats =
            ticketing::summarize_incidents(vm.cpu_usage_pct.view(), 60.0, 0);
        const int tickets =
            ticketing::count_usage_tickets(vm.cpu_usage_pct.view(), 60.0);
        // With merge_gap 0 the incident windows partition the tickets.
        EXPECT_EQ(stats.total_windows, tickets) << vm.name;
    }
}

TEST(IntegrationTest, PipelineCapacityConservation) {
    // Whatever the policy, allocated capacity never exceeds the box's.
    const trace::BoxTrace box = trace::generate_box(base_options(), 3);
    const auto demands = box.demand_matrix();
    for (auto policy : {resize::ResizePolicy::kAtmGreedy,
                        resize::ResizePolicy::kAtmGreedyNoDiscretization,
                        resize::ResizePolicy::kMaxMinFairness}) {
        resize::ResizeInput input;
        input.alpha = 0.6;
        input.total_capacity = box.cpu_capacity_ghz;
        for (std::size_t i = 0; i < box.vms.size(); ++i) {
            const auto& row = demands[i * 2];
            input.demands.emplace_back(row.end() - 96, row.end());
            input.current_capacities.push_back(box.vms[i].cpu_capacity_ghz);
        }
        const auto result = resize::apply_policy(policy, input);
        const double used = std::accumulate(result.capacities.begin(),
                                            result.capacities.end(), 0.0);
        EXPECT_LE(used, box.cpu_capacity_ghz + 1e-6) << resize::to_string(policy);
    }
}

TEST(IntegrationTest, HoltWintersPluggedIntoPipeline) {
    const trace::BoxTrace box = trace::generate_box(base_options(), 5);
    core::PipelineConfig config;
    config.temporal = forecast::TemporalModel::kHoltWinters;
    const auto result = core::run_pipeline_on_box(
        box, 96, config, {resize::ResizePolicy::kAtmGreedy});
    EXPECT_GT(result.ape_all, 0.0);
    EXPECT_LT(result.ape_all, 1.2);
}

TEST(IntegrationTest, RollingMatchesOneShotOnFinalDay) {
    // The rolling pipeline's last day uses the same training window as a
    // one-shot run on the 6-day suffix: results must agree exactly.
    trace::TraceGenOptions options = base_options();
    options.num_days = 7;
    const trace::BoxTrace box = trace::generate_box(options, 6);

    core::PipelineConfig config;
    config.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.train_days = 5;

    const auto rolling = core::run_rolling_pipeline(box, 96, 7, config);
    ASSERT_EQ(rolling.days.size(), 2u);

    trace::BoxTrace suffix = box;
    const std::size_t first = 96;  // days 1..6
    for (trace::VmTrace& vm : suffix.vms) {
        vm.cpu_usage_pct = vm.cpu_usage_pct.slice(first, 6 * 96);
        vm.ram_usage_pct = vm.ram_usage_pct.slice(first, 6 * 96);
        vm.cpu_demand_ghz = vm.cpu_demand_ghz.slice(first, 6 * 96);
        vm.ram_demand_gb = vm.ram_demand_gb.slice(first, 6 * 96);
    }
    const auto one_shot = core::run_pipeline_on_box(
        suffix, 96, config, {resize::ResizePolicy::kAtmGreedy});
    EXPECT_DOUBLE_EQ(rolling.days[1].ape_all, one_shot.ape_all);
    EXPECT_EQ(rolling.days[1].cpu_after, one_shot.policies[0].cpu_after);
}

TEST(IntegrationTest, DrfNeverBeatsAtmOnTickets) {
    // ATM optimizes tickets directly; DRF optimizes fairness. On any box
    // ATM's combined ticket count is <= DRF's (sanity of both).
    trace::TraceGenOptions options = base_options();
    options.num_days = 2;
    for (int b = 0; b < 6; ++b) {
        const trace::BoxTrace box = trace::generate_box(options, b);
        const auto demands = box.demand_matrix();
        resize::MultiResourceInput multi;
        multi.alpha = 0.6;
        multi.cpu_capacity = box.cpu_capacity_ghz;
        multi.ram_capacity = box.ram_capacity_gb;
        for (std::size_t i = 0; i < box.vms.size(); ++i) {
            const auto& cpu_row = demands[i * 2];
            const auto& ram_row = demands[i * 2 + 1];
            multi.cpu_demands.emplace_back(cpu_row.end() - 96, cpu_row.end());
            multi.ram_demands.emplace_back(ram_row.end() - 96, ram_row.end());
        }
        const auto drf = resize::drf_resize(multi);

        const auto atm_results = core::evaluate_resize_policies_on_actuals(
            box, 96, 1, 0.6, 0.0, {resize::ResizePolicy::kAtmGreedy},
            /*use_lower_bounds=*/false);
        const int atm_total = atm_results[0].cpu_after + atm_results[0].ram_after;
        EXPECT_LE(atm_total, drf.cpu_tickets + drf.ram_tickets + 1) << "box " << b;
    }
}

TEST(IntegrationTest, WikiDemandsDriveGenericResizeLayer) {
    // The MediaWiki simulator's demand output plugs into the generic
    // resize API (not only resize_with_atm).
    const wiki::TestbedSpec spec = wiki::make_mediawiki_testbed();
    const wiki::SimResult sim = wiki::simulate(spec);
    resize::ResizeInput input;
    input.alpha = 0.6;
    input.total_capacity = 8.0;
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        if (spec.vms[i].node == 4) input.demands.push_back(sim.vm_cpu_demand_cores[i]);
    }
    ASSERT_FALSE(input.demands.empty());
    const auto result = resize::atm_resize(input);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.tickets, 0);  // node 4 fits within 8 cores at 60%
}

TEST(IntegrationTest, CharacterizationScalesWithPopulation) {
    // Per-box statistics are population-size invariant (same seed, boxes
    // are generated independently): a 30-box prefix of a 60-box trace
    // gives identical per-box numbers.
    trace::TraceGenOptions options = base_options();
    options.num_days = 1;
    options.gappy_box_fraction = 0.3;
    options.num_boxes = 60;
    const trace::Trace big = trace::generate_trace(options);
    options.num_boxes = 30;
    const trace::Trace small = trace::generate_trace(options);
    const auto big_stats = ticketing::count_box_tickets(big.boxes[12], 60.0);
    const auto small_stats = ticketing::count_box_tickets(small.boxes[12], 60.0);
    EXPECT_EQ(big_stats.cpu_tickets_per_vm, small_stats.cpu_tickets_per_vm);
}

}  // namespace
}  // namespace atm
