#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

#include "cluster/cbc.hpp"
#include "cluster/dtw.hpp"
#include "cluster/hierarchical.hpp"

namespace atm::cluster {
namespace {

TEST(DtwTest, IdenticalSeriesIsZero) {
    const std::vector<double> p{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(dtw_distance(p, p), 0.0);
}

TEST(DtwTest, HandComputedSmallExample) {
    // P = {1, 2}, Q = {1, 3}:
    // lambda(1,1) = 0; lambda(1,2) = (1-3)^2 + 0 = 4;
    // lambda(2,1) = (2-1)^2 + 0 = 1; lambda(2,2) = (2-3)^2 + min(0,4,1) = 1.
    const std::vector<double> p{1, 2};
    const std::vector<double> q{1, 3};
    EXPECT_DOUBLE_EQ(dtw_distance(p, q), 1.0);
}

TEST(DtwTest, SymmetricForEqualLengths) {
    const std::vector<double> p{3, 1, 4, 1, 5};
    const std::vector<double> q{2, 7, 1, 8, 3};
    EXPECT_DOUBLE_EQ(dtw_distance(p, q), dtw_distance(q, p));
}

TEST(DtwTest, TimeShiftCostsLessThanEuclidean) {
    // A shifted copy aligns nearly perfectly under warping.
    std::vector<double> p(20);
    std::vector<double> q(20);
    for (int i = 0; i < 20; ++i) {
        p[static_cast<std::size_t>(i)] = std::sin(0.4 * i);
        q[static_cast<std::size_t>(i)] = std::sin(0.4 * (i - 2));
    }
    double euclid = 0.0;
    for (std::size_t i = 0; i < 20; ++i) euclid += (p[i] - q[i]) * (p[i] - q[i]);
    EXPECT_LT(dtw_distance(p, q), euclid);
}

TEST(DtwTest, EmptySeries) {
    const std::vector<double> p{1, 2};
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(dtw_distance(empty, empty), 0.0);
    EXPECT_TRUE(std::isinf(dtw_distance(p, empty)));
}

TEST(DtwTest, UnequalLengthsSupported) {
    const std::vector<double> p{1, 2, 3};
    const std::vector<double> q{1, 1, 2, 2, 3, 3};
    // Every element of q matches an equal element of p under warping.
    EXPECT_DOUBLE_EQ(dtw_distance(p, q), 0.0);
}

TEST(DtwTest, BandedEqualsFullOnNearDiagonalPath) {
    const std::vector<double> p{1, 2, 3, 4, 5, 6};
    const std::vector<double> q{1, 2, 4, 4, 5, 7};
    EXPECT_DOUBLE_EQ(dtw_distance(p, q, 3), dtw_distance(p, q));
}

TEST(DtwTest, BandNeverBeatsFullDtw) {
    std::mt19937 rng(3);
    std::uniform_real_distribution<double> dist(0.0, 10.0);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> p(30);
        std::vector<double> q(30);
        for (auto& v : p) v = dist(rng);
        for (auto& v : q) v = dist(rng);
        EXPECT_GE(dtw_distance(p, q, 2) + 1e-12, dtw_distance(p, q));
    }
}

TEST(DtwTest, DistanceMatrixSymmetricZeroDiagonal) {
    const std::vector<std::vector<double>> series{
        {1, 2, 3}, {3, 2, 1}, {2, 2, 2}};
    const auto dist = dtw_distance_matrix(series);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(dist[i][i], 0.0);
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_DOUBLE_EQ(dist[i][j], dist[j][i]);
        }
    }
}

std::vector<std::vector<double>> two_blob_distances() {
    // Items 0-2 mutually close, 3-5 mutually close, blobs far apart.
    const std::size_t n = 6;
    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            const bool same_blob = (i < 3) == (j < 3);
            d[i][j] = same_blob ? 1.0 : 10.0;
        }
    }
    return d;
}

TEST(HierarchicalTest, SeparatesTwoBlobs) {
    const auto dist = two_blob_distances();
    const auto labels = hierarchical_cluster(dist, 2);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[1], labels[2]);
    EXPECT_EQ(labels[3], labels[4]);
    EXPECT_EQ(labels[4], labels[5]);
    EXPECT_NE(labels[0], labels[3]);
}

TEST(HierarchicalTest, KEqualsNIsAllSingletons) {
    const auto dist = two_blob_distances();
    const auto labels = hierarchical_cluster(dist, 6);
    std::vector<bool> seen(6, false);
    for (int l : labels) {
        EXPECT_FALSE(seen[static_cast<std::size_t>(l)]);
        seen[static_cast<std::size_t>(l)] = true;
    }
}

TEST(HierarchicalTest, KOneIsSingleCluster) {
    const auto dist = two_blob_distances();
    const auto labels = hierarchical_cluster(dist, 1);
    for (int l : labels) EXPECT_EQ(l, 0);
}

TEST(HierarchicalTest, BadKThrows) {
    const auto dist = two_blob_distances();
    EXPECT_THROW(hierarchical_cluster(dist, 0), std::invalid_argument);
    EXPECT_THROW(hierarchical_cluster(dist, 7), std::invalid_argument);
}

TEST(HierarchicalTest, AllLinkagesAgreeOnWellSeparatedBlobs) {
    const auto dist = two_blob_distances();
    for (Linkage linkage : {Linkage::kSingle, Linkage::kComplete, Linkage::kAverage}) {
        const auto labels = hierarchical_cluster(dist, 2, linkage);
        EXPECT_EQ(labels[0], labels[2]);
        EXPECT_NE(labels[0], labels[5]);
    }
}

TEST(SilhouetteTest, PerfectSeparationNearOne) {
    const auto dist = two_blob_distances();
    const auto labels = hierarchical_cluster(dist, 2);
    EXPECT_GT(mean_silhouette(dist, labels), 0.85);
}

TEST(SilhouetteTest, BadSplitScoresLower) {
    const auto dist = two_blob_distances();
    const std::vector<int> good{0, 0, 0, 1, 1, 1};
    const std::vector<int> bad{0, 1, 0, 1, 0, 1};
    EXPECT_GT(mean_silhouette(dist, good), mean_silhouette(dist, bad));
}

TEST(SilhouetteTest, SingleClusterIsZero) {
    const auto dist = two_blob_distances();
    const std::vector<int> labels(6, 0);
    EXPECT_DOUBLE_EQ(mean_silhouette(dist, labels), 0.0);
}

TEST(SilhouetteTest, SingletonConvention) {
    const auto dist = two_blob_distances();
    const std::vector<int> labels{0, 1, 1, 1, 1, 1};
    const auto values = silhouette_values(dist, labels);
    EXPECT_DOUBLE_EQ(values[0], 0.0);
}

TEST(SilhouetteTest, ValuesWithinMinusOneOne) {
    const auto dist = two_blob_distances();
    const std::vector<int> labels{0, 1, 0, 1, 0, 1};
    for (double s : silhouette_values(dist, labels)) {
        EXPECT_GE(s, -1.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST(BestKTest, FindsTwoBlobs) {
    const auto dist = two_blob_distances();
    const BestClustering best = cluster_best_k(dist, 2, 3);
    EXPECT_EQ(best.num_clusters, 2);
    EXPECT_GT(best.silhouette, 0.85);
}

TEST(BestKTest, ClampsRange) {
    const auto dist = two_blob_distances();
    const BestClustering best = cluster_best_k(dist, -5, 100);
    EXPECT_GE(best.num_clusters, 1);
    EXPECT_LE(best.num_clusters, 6);
}

TEST(MedoidTest, PicksCentralMember) {
    // Cluster 0 = {0,1,2} where item 1 is closest to both others.
    std::vector<std::vector<double>> dist(3, std::vector<double>(3, 0.0));
    dist[0][1] = dist[1][0] = 1.0;
    dist[1][2] = dist[2][1] = 1.0;
    dist[0][2] = dist[2][0] = 3.0;
    const std::vector<int> labels{0, 0, 0};
    const auto medoids = cluster_medoids(dist, labels);
    ASSERT_EQ(medoids.size(), 1u);
    EXPECT_EQ(medoids[0], 1);
}

TEST(MedoidTest, OnePerCluster) {
    const auto dist = two_blob_distances();
    const std::vector<int> labels{0, 0, 0, 1, 1, 1};
    const auto medoids = cluster_medoids(dist, labels);
    ASSERT_EQ(medoids.size(), 2u);
    EXPECT_LT(medoids[0], 3);
    EXPECT_GE(medoids[1], 3);
}

TEST(CorrelationMatrixTest, UnitDiagonalSymmetric) {
    const std::vector<std::vector<double>> series{
        {1, 2, 3, 4}, {2, 4, 6, 8}, {4, 3, 2, 1}};
    const auto rho = correlation_matrix(series);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_DOUBLE_EQ(rho[i][i], 1.0);
        for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(rho[i][j], rho[j][i]);
    }
    EXPECT_NEAR(rho[0][1], 1.0, 1e-12);
    EXPECT_NEAR(rho[0][2], -1.0, 1e-12);
}

TEST(CbcTest, GroupsStronglyCorrelatedSeries) {
    // Series 0,1,2 are linear transforms of one pattern; 3 is independent.
    std::mt19937 rng(5);
    std::normal_distribution<double> noise(0.0, 0.05);
    std::vector<double> base(50);
    for (std::size_t i = 0; i < 50; ++i) base[i] = std::sin(0.3 * static_cast<double>(i));
    std::vector<std::vector<double>> series(4, std::vector<double>(50));
    for (std::size_t i = 0; i < 50; ++i) {
        series[0][i] = base[i] + noise(rng);
        series[1][i] = 2.0 * base[i] + 1.0 + noise(rng);
        series[2][i] = 0.5 * base[i] - 2.0 + noise(rng);
        series[3][i] = noise(rng) * 20.0;
    }
    const auto clusters = cbc_cluster(series);
    ASSERT_EQ(clusters.size(), 2u);
    // First cluster: head among {0,1,2} with the other two as members.
    EXPECT_LT(clusters[0].head, 3);
    EXPECT_EQ(clusters[0].members.size(), 2u);
    // Second cluster: the independent series, alone.
    EXPECT_EQ(clusters[1].head, 3);
    EXPECT_TRUE(clusters[1].members.empty());
}

TEST(CbcTest, NoStrongCorrelationsAllSingletons) {
    std::mt19937 rng(9);
    std::normal_distribution<double> noise(0.0, 1.0);
    std::vector<std::vector<double>> series(5, std::vector<double>(100));
    for (auto& s : series) {
        for (double& v : s) v = noise(rng);
    }
    const auto clusters = cbc_cluster(series);
    EXPECT_EQ(clusters.size(), 5u);
    for (const auto& c : clusters) EXPECT_TRUE(c.members.empty());
}

TEST(CbcTest, EverySeriesAssignedExactlyOnce) {
    std::mt19937 rng(10);
    std::normal_distribution<double> noise(0.0, 0.3);
    std::vector<double> base(60);
    for (std::size_t i = 0; i < 60; ++i) base[i] = std::cos(0.2 * static_cast<double>(i));
    std::vector<std::vector<double>> series(7, std::vector<double>(60));
    for (std::size_t s = 0; s < 7; ++s) {
        for (std::size_t i = 0; i < 60; ++i) {
            series[s][i] = (s % 2 == 0 ? base[i] : -base[i]) + noise(rng);
        }
    }
    const auto clusters = cbc_cluster(series);
    std::vector<int> count(7, 0);
    for (const auto& c : clusters) {
        ++count[static_cast<std::size_t>(c.head)];
        for (int m : c.members) ++count[static_cast<std::size_t>(m)];
    }
    for (int c : count) EXPECT_EQ(c, 1);
}

TEST(CbcTest, AbsoluteModeCapturesAntiCorrelation) {
    std::vector<double> up(40);
    std::vector<double> down(40);
    for (std::size_t i = 0; i < 40; ++i) {
        up[i] = std::sin(0.3 * static_cast<double>(i));
        down[i] = -up[i];
    }
    CbcOptions plain;
    const auto separate = cbc_cluster({up, down}, plain);
    EXPECT_EQ(separate.size(), 2u);

    CbcOptions absolute;
    absolute.use_absolute = true;
    const auto merged = cbc_cluster({up, down}, absolute);
    EXPECT_EQ(merged.size(), 1u);
}

TEST(CbcTest, HeadHasMostStrongCorrelations) {
    // Star topology: series 0 correlates with everything, 1..3 correlate
    // (strongly) only with 0 and weakly with each other.
    std::mt19937 rng(12);
    std::normal_distribution<double> noise(0.0, 0.45);
    std::vector<double> hub(200);
    for (std::size_t i = 0; i < 200; ++i) hub[i] = std::sin(0.1 * static_cast<double>(i));
    std::vector<std::vector<double>> series(4, std::vector<double>(200));
    series[0] = hub;
    for (std::size_t s = 1; s < 4; ++s) {
        for (std::size_t i = 0; i < 200; ++i) series[s][i] = hub[i] + noise(rng);
    }
    CbcOptions options;
    options.rho_threshold = 0.75;
    const auto clusters = cbc_cluster(series, options);
    ASSERT_FALSE(clusters.empty());
    EXPECT_EQ(clusters[0].head, 0);
}

TEST(CbcTest, NonSquareCorrelationThrows) {
    const std::vector<std::vector<double>> bad{{1.0, 0.5}, {0.5}};
    EXPECT_THROW(cbc_cluster_from_correlation(bad), std::invalid_argument);
}

// Property: for any rho threshold, cluster heads are pairwise *not*
// strongly correlated (each head was not absorbed by an earlier one).
class CbcPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(CbcPropertyTest, HeadsPairwiseBelowThreshold) {
    std::mt19937 rng(21);
    std::normal_distribution<double> noise(0.0, 0.5);
    std::vector<double> base(120);
    for (std::size_t i = 0; i < 120; ++i) base[i] = std::sin(0.25 * static_cast<double>(i));
    std::vector<std::vector<double>> series(8, std::vector<double>(120));
    for (std::size_t s = 0; s < 8; ++s) {
        const double w = static_cast<double>(s) / 8.0;
        for (std::size_t i = 0; i < 120; ++i) {
            series[s][i] = w * base[i] + (1.0 - w) * noise(rng);
        }
    }
    CbcOptions options;
    options.rho_threshold = GetParam();
    const auto clusters = cbc_cluster(series, options);
    const auto rho = correlation_matrix(series);
    for (std::size_t a = 0; a < clusters.size(); ++a) {
        for (std::size_t b = a + 1; b < clusters.size(); ++b) {
            EXPECT_LT(rho[static_cast<std::size_t>(clusters[a].head)]
                         [static_cast<std::size_t>(clusters[b].head)],
                      options.rho_threshold);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CbcPropertyTest,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

}  // namespace
}  // namespace atm::cluster
