// Tests for the extension modules: k-medoids and DTW alignment (cluster),
// Holt-Winters and ensembles (forecast), DRF (resize), incident extraction
// (ticketing) and the rolling pipeline (core).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "cluster/dtw.hpp"
#include "cluster/kmedoids.hpp"
#include "core/rolling.hpp"
#include "forecast/holt_winters.hpp"
#include "forecast/seasonal_naive.hpp"
#include "resize/drf.hpp"
#include "ticketing/incidents.hpp"
#include "timeseries/stats.hpp"
#include "tracegen/generator.hpp"

namespace atm {
namespace {

// ------------------------------------------------------------- k-medoids

std::vector<std::vector<double>> two_blob_distances() {
    const std::size_t n = 6;
    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            d[i][j] = (i < 3) == (j < 3) ? 1.0 : 10.0;
        }
    }
    return d;
}

TEST(KMedoidsTest, SeparatesBlobs) {
    const auto result = cluster::k_medoids(two_blob_distances(), 2);
    ASSERT_EQ(result.medoids.size(), 2u);
    EXPECT_NE(result.medoids[0] < 3, result.medoids[1] < 3);
    EXPECT_EQ(result.labels[0], result.labels[1]);
    EXPECT_NE(result.labels[0], result.labels[5]);
    // Each blob: 2 members at distance 1 from the medoid -> cost 4.
    EXPECT_DOUBLE_EQ(result.total_cost, 4.0);
}

TEST(KMedoidsTest, KEqualsNZeroCost) {
    const auto result = cluster::k_medoids(two_blob_distances(), 6);
    EXPECT_DOUBLE_EQ(result.total_cost, 0.0);
}

TEST(KMedoidsTest, KOneMinimizesTotalDistance) {
    // Star: item 0 is the center.
    std::vector<std::vector<double>> d(4, std::vector<double>(4, 2.0));
    for (std::size_t i = 0; i < 4; ++i) d[i][i] = 0.0;
    for (std::size_t i = 1; i < 4; ++i) {
        d[0][i] = 1.0;
        d[i][0] = 1.0;
    }
    const auto result = cluster::k_medoids(d, 1);
    EXPECT_EQ(result.medoids[0], 0);
    EXPECT_DOUBLE_EQ(result.total_cost, 3.0);
}

TEST(KMedoidsTest, Validation) {
    EXPECT_THROW(cluster::k_medoids({}, 1), std::invalid_argument);
    EXPECT_THROW(cluster::k_medoids(two_blob_distances(), 0),
                 std::invalid_argument);
    EXPECT_THROW(cluster::k_medoids(two_blob_distances(), 7),
                 std::invalid_argument);
}

// --------------------------------------------------------- DTW alignment

TEST(DtwAlignTest, DistanceMatchesDtwDistance) {
    const std::vector<double> p{3, 1, 4, 1, 5};
    const std::vector<double> q{2, 7, 1, 8};
    const auto alignment = cluster::dtw_align(p, q);
    EXPECT_DOUBLE_EQ(alignment.distance, cluster::dtw_distance(p, q));
}

TEST(DtwAlignTest, PathIsMonotoneAndComplete) {
    const std::vector<double> p{1, 2, 3, 2, 1};
    const std::vector<double> q{1, 3, 1};
    const auto alignment = cluster::dtw_align(p, q);
    ASSERT_FALSE(alignment.path.empty());
    EXPECT_EQ(alignment.path.front(), (std::pair<std::size_t, std::size_t>{0, 0}));
    EXPECT_EQ(alignment.path.back(),
              (std::pair<std::size_t, std::size_t>{p.size() - 1, q.size() - 1}));
    for (std::size_t s = 1; s < alignment.path.size(); ++s) {
        const auto [pi, pj] = alignment.path[s - 1];
        const auto [ci, cj] = alignment.path[s];
        EXPECT_LE(ci - pi, 1u);
        EXPECT_LE(cj - pj, 1u);
        EXPECT_GE(ci, pi);
        EXPECT_GE(cj, pj);
        EXPECT_TRUE(ci > pi || cj > pj);
    }
}

TEST(DtwAlignTest, PathCostSumsToDistance) {
    const std::vector<double> p{1, 5, 2, 8};
    const std::vector<double> q{2, 4, 4, 7, 1};
    const auto alignment = cluster::dtw_align(p, q);
    double cost = 0.0;
    for (const auto& [i, j] : alignment.path) {
        cost += (p[i] - q[j]) * (p[i] - q[j]);
    }
    EXPECT_NEAR(cost, alignment.distance, 1e-9);
}

TEST(DtwAlignTest, EmptyInputs) {
    const std::vector<double> p{1};
    EXPECT_TRUE(std::isinf(cluster::dtw_align(p, {}).distance));
    EXPECT_DOUBLE_EQ(cluster::dtw_align({}, {}).distance, 0.0);
}

// ----------------------------------------------------------- Holt-Winters

std::vector<double> seasonal_trend_series(int n, int period, unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> noise(0.0, 0.4);
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
        xs[static_cast<std::size_t>(t)] =
            20.0 + 0.01 * t +
            6.0 * std::sin(2.0 * std::numbers::pi * t / period) + noise(rng);
    }
    return xs;
}

TEST(HoltWintersTest, TracksSeasonalSeries) {
    const int period = 48;
    const auto series = seasonal_trend_series(period * 6, period, 1);
    const std::vector<double> history(series.begin(), series.end() - period);
    const std::vector<double> actual(series.end() - period, series.end());
    forecast::HoltWintersForecaster model(period);
    model.fit(history);
    const auto pred = model.forecast(period);
    EXPECT_LT(ts::mean_absolute_percentage_error(actual, pred), 0.08);
}

TEST(HoltWintersTest, ShortHistoryFallsBack) {
    forecast::HoltWintersForecaster model(48);
    const std::vector<double> tiny{5.0, 6.0, 7.0};
    model.fit(tiny);
    for (double v : model.forecast(5)) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(HoltWintersTest, Validation) {
    EXPECT_THROW(forecast::HoltWintersForecaster(1), std::invalid_argument);
    forecast::HoltWintersOptions bad;
    bad.alpha = 1.5;
    EXPECT_THROW(forecast::HoltWintersForecaster(10, bad), std::invalid_argument);
    forecast::HoltWintersForecaster model(10);
    EXPECT_THROW(model.forecast(1), std::logic_error);
}

TEST(HoltWintersTest, SeasonalPhaseAlignment) {
    // Noise-free seasonal square-ish pattern: forecasts must continue the
    // phase, not restart it.
    const int period = 8;
    std::vector<double> xs;
    for (int r = 0; r < 8; ++r) {
        for (int p = 0; p < period; ++p) {
            xs.push_back(p < 4 ? 10.0 : 20.0);
        }
    }
    // Cut mid-period: history ends after 3 samples of the low phase.
    const std::vector<double> history(xs.begin(), xs.begin() + 8 * 6 + 3);
    forecast::HoltWintersForecaster model(period);
    model.fit(history);
    const auto pred = model.forecast(5);
    // Next sample is the 4th low sample, then highs.
    EXPECT_NEAR(pred[0], 10.0, 1.5);
    EXPECT_NEAR(pred[2], 20.0, 1.5);
}

TEST(EnsembleTest, AveragesMembers) {
    std::vector<std::unique_ptr<forecast::Forecaster>> members;
    members.push_back(std::make_unique<forecast::SeasonalNaiveForecaster>(2));
    members.push_back(std::make_unique<forecast::SeasonalNaiveForecaster>(4));
    forecast::EnsembleForecaster ensemble(std::move(members));
    const std::vector<double> history{1, 2, 3, 4};
    ensemble.fit(history);
    const auto pred = ensemble.forecast(1);
    // member(period 2) -> 3; member(period 4) -> 1; mean = 2.
    EXPECT_DOUBLE_EQ(pred[0], 2.0);
}

TEST(EnsembleTest, FactoryModelsWork) {
    const auto model = forecast::make_forecaster(
        forecast::TemporalModel::kEnsemble, 24);
    const auto hw = forecast::make_forecaster(
        forecast::TemporalModel::kHoltWinters, 24);
    const auto series = seasonal_trend_series(24 * 6, 24, 3);
    model->fit(series);
    hw->fit(series);
    EXPECT_EQ(model->forecast(24).size(), 24u);
    EXPECT_EQ(hw->forecast(24).size(), 24u);
    EXPECT_EQ(model->name(), "ensemble");
    EXPECT_EQ(hw->name(), "holt-winters");
}

TEST(EnsembleTest, Validation) {
    EXPECT_THROW(forecast::EnsembleForecaster({}), std::invalid_argument);
}

// -------------------------------------------------------------------- DRF

TEST(DrfTest, AmpleCapacitySatisfiesEveryRequest) {
    resize::MultiResourceInput input;
    input.cpu_demands = {{6.0, 3.0}, {1.0, 2.0}};
    input.ram_demands = {{4.0, 4.0}, {8.0, 2.0}};
    input.alpha = 0.6;
    input.cpu_capacity = 100.0;
    input.ram_capacity = 100.0;
    const auto result = resize::drf_resize(input);
    EXPECT_EQ(result.cpu_tickets, 0);
    EXPECT_EQ(result.ram_tickets, 0);
    EXPECT_NEAR(result.cpu_capacities[0], 10.0, 0.2);
    EXPECT_NEAR(result.ram_capacities[1], 8.0 / 0.6, 0.3);
}

TEST(DrfTest, BudgetsRespected) {
    resize::MultiResourceInput input;
    input.cpu_demands = {{9.0}, {9.0}, {9.0}};
    input.ram_demands = {{9.0}, {9.0}, {9.0}};
    input.alpha = 0.6;
    input.cpu_capacity = 10.0;
    input.ram_capacity = 12.0;
    const auto result = resize::drf_resize(input);
    double cpu = 0.0;
    double ram = 0.0;
    for (double c : result.cpu_capacities) cpu += c;
    for (double r : result.ram_capacities) ram += r;
    EXPECT_LE(cpu, input.cpu_capacity + 1e-6);
    EXPECT_LE(ram, input.ram_capacity + 1e-6);
}

TEST(DrfTest, DominantSharesEqualizedUnderScarcity) {
    // VM0 is CPU-heavy, VM1 RAM-heavy; both want more than available.
    resize::MultiResourceInput input;
    input.cpu_demands = {{18.0}, {2.0}};
    input.ram_demands = {{2.0}, {18.0}};
    input.alpha = 1.0;
    input.cpu_capacity = 10.0;
    input.ram_capacity = 10.0;
    const auto result = resize::drf_resize(input);
    const double dom0 = std::max(result.cpu_capacities[0] / 10.0,
                                 result.ram_capacities[0] / 10.0);
    const double dom1 = std::max(result.cpu_capacities[1] / 10.0,
                                 result.ram_capacities[1] / 10.0);
    EXPECT_NEAR(dom0, dom1, 0.12);
}

TEST(DrfTest, Validation) {
    resize::MultiResourceInput input;
    EXPECT_THROW(resize::drf_resize(input), std::invalid_argument);
    input.cpu_demands = {{1.0}};
    input.ram_demands = {{1.0}, {2.0}};
    EXPECT_THROW(resize::drf_resize(input), std::invalid_argument);
}

// -------------------------------------------------------------- incidents

TEST(IncidentTest, ExtractsRuns) {
    const std::vector<double> usage{50, 70, 75, 50, 50, 90, 50};
    const auto incidents = ticketing::extract_incidents(usage, 60.0, 0);
    ASSERT_EQ(incidents.size(), 2u);
    EXPECT_EQ(incidents[0].first_window, 1u);
    EXPECT_EQ(incidents[0].length, 2u);
    EXPECT_EQ(incidents[1].first_window, 5u);
    EXPECT_EQ(incidents[1].length, 1u);
}

TEST(IncidentTest, MergeGapJoinsNearbyRuns) {
    const std::vector<double> usage{70, 50, 70, 70, 50, 50, 50, 70};
    const auto merged = ticketing::extract_incidents(usage, 60.0, 1);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].first_window, 0u);
    EXPECT_EQ(merged[0].length, 4u);  // windows 0..3 merged over the dip
}

TEST(IncidentTest, SummaryStats) {
    const std::vector<double> usage{70, 70, 50, 70, 70, 70, 50};
    const auto stats = ticketing::summarize_incidents(usage, 60.0, 0);
    EXPECT_EQ(stats.count, 2);
    EXPECT_EQ(stats.total_windows, 5);
    EXPECT_EQ(stats.longest, 3u);
    EXPECT_DOUBLE_EQ(stats.mean_duration, 2.5);
}

TEST(IncidentTest, NoViolationsNoIncidents) {
    const std::vector<double> usage{10, 20, 30};
    EXPECT_TRUE(ticketing::extract_incidents(usage, 60.0).empty());
    EXPECT_EQ(ticketing::summarize_incidents(usage, 60.0).count, 0);
}

// --------------------------------------------------------------- rolling

TEST(RollingPipelineTest, WalksForwardOverTheWeek) {
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 7;
    options.gappy_box_fraction = 0.0;
    options.seed = 11;
    const trace::BoxTrace box = trace::generate_box(options, 0);

    core::PipelineConfig config;
    config.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.train_days = 5;
    const core::RollingResult result =
        core::run_rolling_pipeline(box, 96, 7, config);
    ASSERT_EQ(result.days.size(), 2u);  // days 5 and 6
    EXPECT_EQ(result.days[0].day, 5);
    EXPECT_EQ(result.days[1].day, 6);
    for (const auto& d : result.days) {
        EXPECT_GT(d.num_signatures, 0);
        EXPECT_GE(d.ape_all, 0.0);
    }
    EXPECT_GE(result.total_before(), 0);
}

TEST(RollingPipelineTest, ReducesTicketsInAggregate) {
    trace::TraceGenOptions options;
    options.num_boxes = 6;
    options.num_days = 7;
    options.gappy_box_fraction = 0.0;
    const auto trace = trace::generate_trace(options);
    core::PipelineConfig config;
    config.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.train_days = 5;
    long before = 0;
    long after = 0;
    for (const auto& box : trace.boxes) {
        const auto result = core::run_rolling_pipeline(box, 96, 7, config);
        before += result.total_before();
        after += result.total_after();
    }
    ASSERT_GT(before, 0);
    EXPECT_LT(after, before / 2);
}

TEST(RollingPipelineTest, Validation) {
    trace::TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 3;
    const trace::BoxTrace box = trace::generate_box(options, 0);
    core::PipelineConfig config;
    config.train_days = 5;
    EXPECT_THROW(core::run_rolling_pipeline(box, 96, 7, config),
                 std::invalid_argument);
    config.train_days = 3;
    EXPECT_THROW(core::run_rolling_pipeline(box, 96, 3, config),
                 std::invalid_argument);
}

}  // namespace
}  // namespace atm
