// Differential/property suite for the SIMD kernel layer (ctest -L simd):
// every compiled-and-supported path is compared against the scalar
// reference under the tolerance policy documented in linalg/simd/simd.hpp
// — DTW, MLP backprop sums, and SGD updates bit-identical; MLP forward
// dot products within kMlpForwardMaxUlps. Shapes are chosen to hit every
// tail/remainder case of every lane width (2, 4, 8), and DTW inputs
// include NaN-gap series run through the pipeline's repair step.
//
// The whole binary also runs correctly with ATM_SIMD forced (CI does
// scalar + each runner ISA): differential tests compare explicit paths
// via simd::kernels_for and never depend on the ambient dispatch.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "cluster/dtw.hpp"
#include "forecast/nn.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/metrics.hpp"
#include "timeseries/repair.hpp"

namespace atm::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Restores the ambient dispatch on scope exit, so tests that call
/// set_path cannot leak a forced path into later tests.
class PathGuard {
  public:
    PathGuard() : saved_(active_path()) {}
    PathGuard(const PathGuard&) = delete;
    PathGuard& operator=(const PathGuard&) = delete;
    ~PathGuard() { set_path(saved_); }

  private:
    Path saved_;
};

const KernelTable& scalar_table() { return kernels_for(Path::kScalar); }

std::vector<Path> vector_paths() {
    std::vector<Path> paths;
    for (Path p : supported_paths()) {
        if (p != Path::kScalar) paths.push_back(p);
    }
    return paths;
}

std::vector<double> random_series(std::mt19937& rng, std::size_t len,
                                  double lo = 0.0, double hi = 100.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    std::vector<double> xs(len);
    for (double& x : xs) x = dist(rng);
    return xs;
}

// ---------------------------------------------------------------------
// Dispatch plumbing

TEST(SimdDispatchTest, PathNamesRoundTrip) {
    for (Path p : {Path::kScalar, Path::kAvx2, Path::kAvx512, Path::kNeon}) {
        EXPECT_EQ(parse_path(to_string(p)), p);
    }
    EXPECT_THROW(parse_path("sse2"), std::invalid_argument);
    EXPECT_THROW(parse_path(""), std::invalid_argument);
    EXPECT_THROW(parse_path("AVX2"), std::invalid_argument);
}

TEST(SimdDispatchTest, ScalarIsAlwaysCompiledAndSupported) {
    const std::vector<Path> compiled = compiled_paths();
    ASSERT_FALSE(compiled.empty());
    EXPECT_EQ(compiled.front(), Path::kScalar);
    const std::vector<Path> supported = supported_paths();
    ASSERT_FALSE(supported.empty());
    EXPECT_EQ(supported.front(), Path::kScalar);
    // Supported is a subset of compiled.
    for (Path p : supported) {
        EXPECT_NE(std::find(compiled.begin(), compiled.end(), p),
                  compiled.end());
    }
}

TEST(SimdDispatchTest, ActivePathIsSupportedAndTableMatches) {
    const Path active = active_path();
    const std::vector<Path> supported = supported_paths();
    EXPECT_NE(std::find(supported.begin(), supported.end(), active),
              supported.end());
    EXPECT_EQ(active_kernels().path, active);
    EXPECT_EQ(kernels_for(active).path, active);
}

TEST(SimdDispatchTest, SetPathForcesEveryCompiledSupportedPath) {
    const PathGuard guard;
    for (Path p : supported_paths()) {
        set_path(p);
        EXPECT_EQ(active_path(), p);
        EXPECT_EQ(active_kernels().path, p);
    }
}

TEST(SimdDispatchTest, UncompiledOrUnsupportedPathThrows) {
    // At most one of avx512/neon is available on any one machine, so at
    // least one of them must be rejected.
    const std::vector<Path> supported = supported_paths();
    int rejected = 0;
    for (Path p : {Path::kAvx2, Path::kAvx512, Path::kNeon}) {
        if (std::find(supported.begin(), supported.end(), p) !=
            supported.end()) {
            continue;
        }
        EXPECT_THROW(kernels_for(p), std::invalid_argument);
        EXPECT_THROW(set_path(p), std::invalid_argument);
        ++rejected;
    }
    EXPECT_GE(rejected, 1);
}

TEST(SimdDispatchTest, UlpDistance) {
    EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
    EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
    EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
    EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 0.0)), 1u);
    EXPECT_EQ(ulp_distance(kInf, kInf), 0u);
    EXPECT_EQ(ulp_distance(std::nan(""), 1.0), ~std::uint64_t{0});
    // Sign crossings are huge, never "close".
    EXPECT_GT(ulp_distance(-1.0, 1.0), std::uint64_t{1} << 60);
}

// ---------------------------------------------------------------------
// DTW: every vector path bit-identical to scalar

/// Runs one (p, q, band) case through the scalar kernel and every vector
/// path and requires exact equality (infinity included: narrow bands on
/// skewed lengths legitimately produce +inf).
void expect_dtw_bitwise(const std::vector<double>& p,
                        const std::vector<double>& q, int band) {
    DtwScratch scalar_scratch;
    const double expected = scalar_table().dtw_distance(
        p.data(), p.size(), q.data(), q.size(), band, scalar_scratch);
    for (Path path : vector_paths()) {
        DtwScratch scratch;
        const double actual = kernels_for(path).dtw_distance(
            p.data(), p.size(), q.data(), q.size(), band, scratch);
        // EXPECT_EQ on doubles is bitwise here: values are either finite
        // (never -0.0: sums of squares) or +inf.
        EXPECT_EQ(expected, actual)
            << to_string(path) << " diverged at n=" << p.size()
            << " m=" << q.size() << " band=" << band;
    }
}

TEST(SimdDtwTest, EqualLengthsAllBandsBitwise) {
    std::mt19937 rng(20160621);
    // Lengths straddle every vector width's tail cases (multiples of 2,
    // 4, 8 plus off-by-one on both sides) up to the fleet's 480.
    for (const std::size_t len : {std::size_t{1}, std::size_t{2},
                                  std::size_t{3}, std::size_t{4},
                                  std::size_t{5}, std::size_t{7},
                                  std::size_t{8}, std::size_t{9},
                                  std::size_t{15}, std::size_t{16},
                                  std::size_t{17}, std::size_t{31},
                                  std::size_t{33}, std::size_t{96},
                                  std::size_t{100}, std::size_t{480}}) {
        const std::vector<double> p = random_series(rng, len);
        const std::vector<double> q = random_series(rng, len);
        for (const int band : {-1, 0, 1, 2, 3, 8, 17, 64, 1000}) {
            expect_dtw_bitwise(p, q, band);
        }
    }
}

TEST(SimdDtwTest, UnequalLengthsBitwise) {
    std::mt19937 rng(7);
    std::uniform_int_distribution<std::size_t> len_dist(1, 130);
    std::uniform_int_distribution<int> band_dist(-1, 20);
    for (int it = 0; it < 60; ++it) {
        const std::vector<double> p = random_series(rng, len_dist(rng));
        const std::vector<double> q = random_series(rng, len_dist(rng));
        expect_dtw_bitwise(p, q, band_dist(rng));
    }
}

TEST(SimdDtwTest, ExtremeSlopeEmptyDiagonalsBitwise) {
    // Narrow bands on very skewed lengths produce anti-diagonals with no
    // in-band cell at all — the wavefront's empty-diagonal housekeeping
    // path. Several of these are +inf end to end.
    std::mt19937 rng(99);
    for (const auto& [n, m] : std::vector<std::pair<std::size_t, std::size_t>>{
             {3, 100}, {100, 3}, {1, 5}, {5, 1}, {1, 1}, {2, 97}, {97, 2}}) {
        const std::vector<double> p = random_series(rng, n);
        const std::vector<double> q = random_series(rng, m);
        for (const int band : {0, 1, 2, 5}) {
            expect_dtw_bitwise(p, q, band);
        }
    }
}

TEST(SimdDtwTest, RepairedGapSeriesBitwise) {
    // The pipeline's DTW inputs are repaired monitoring series: inject
    // zero-run gaps (how outages appear in traces), repair them, and
    // check the kernels on the result — values with flat interpolated
    // runs and exact repeats, adjacent to what were NaN-like gaps.
    std::mt19937 rng(4242);
    for (const std::size_t len :
         {std::size_t{96}, std::size_t{97}, std::size_t{192}}) {
        std::vector<double> p = random_series(rng, len, 1.0, 100.0);
        std::vector<double> q = random_series(rng, len, 1.0, 100.0);
        // Gaps at the front, middle, and back; min_run for find_gaps is 2.
        for (std::vector<double>* s : {&p, &q}) {
            (*s)[0] = 0.0;
            (*s)[1] = 0.0;
            const std::size_t mid = len / 2;
            (*s)[mid] = 0.0;
            (*s)[mid + 1] = 0.0;
            (*s)[len - 2] = 0.0;
            (*s)[len - 1] = 0.0;
        }
        const std::vector<double> pr =
            ts::repair_series(p, ts::RepairMethod::kSeasonal, 96);
        const std::vector<double> qr =
            ts::repair_series(q, ts::RepairMethod::kLinear, 96);
        for (const int band : {-1, 8}) {
            expect_dtw_bitwise(pr, qr, band);
        }
    }
}

TEST(SimdDtwTest, WorkspaceReuseAcrossSizesAndPaths) {
    // One scratch reused across wildly varying sizes and bands must give
    // the same answers as a fresh scratch per call, on every path.
    std::mt19937 rng(11);
    std::vector<std::pair<std::vector<double>, std::vector<double>>> cases;
    for (const std::size_t len : {std::size_t{63}, std::size_t{5},
                                  std::size_t{128}, std::size_t{1},
                                  std::size_t{31}}) {
        cases.emplace_back(random_series(rng, len), random_series(rng, len));
    }
    for (Path path : supported_paths()) {
        const KernelTable& kernels = kernels_for(path);
        DtwScratch reused;
        for (const auto& [p, q] : cases) {
            for (const int band : {-1, 3}) {
                DtwScratch fresh;
                const double expected = kernels.dtw_distance(
                    p.data(), p.size(), q.data(), q.size(), band, fresh);
                const double actual = kernels.dtw_distance(
                    p.data(), p.size(), q.data(), q.size(), band, reused);
                EXPECT_EQ(expected, actual) << to_string(path);
            }
        }
    }
}

TEST(SimdDtwTest, BatchKernelMatchesScalarPerPairBitwise) {
    // The lane-batched kernel must reproduce the scalar per-pair result
    // bit-for-bit in every lane, for every occupancy count up to the
    // path's width, on shapes that hit full windows, narrow bands, and
    // the empty-diagonal extremes.
    std::mt19937 rng(31415);
    const std::vector<std::pair<std::size_t, std::size_t>> shapes{
        {1, 1}, {5, 5}, {17, 17}, {96, 96}, {480, 480}, {3, 100}, {97, 2}};
    for (Path path : supported_paths()) {
        const KernelTable& kernels = kernels_for(path);
        ASSERT_GE(kernels.dtw_batch_width, std::size_t{1}) << to_string(path);
        DtwScratch batch_scratch;  // reused across every call below
        for (const auto& [n, m] : shapes) {
            for (std::size_t count = 1; count <= kernels.dtw_batch_width;
                 ++count) {
                std::vector<std::vector<double>> p_data;
                std::vector<std::vector<double>> q_data;
                std::vector<const double*> ps;
                std::vector<const double*> qs;
                for (std::size_t b = 0; b < count; ++b) {
                    p_data.push_back(random_series(rng, n));
                    q_data.push_back(random_series(rng, m));
                    ps.push_back(p_data.back().data());
                    qs.push_back(q_data.back().data());
                }
                for (const int band : {-1, 0, 2, 8}) {
                    std::vector<double> out(count, -1.0);
                    kernels.dtw_distance_batch(ps.data(), qs.data(), count, n,
                                               m, band, batch_scratch,
                                               out.data());
                    for (std::size_t b = 0; b < count; ++b) {
                        DtwScratch fresh;
                        const double expected = scalar_table().dtw_distance(
                            ps[b], n, qs[b], m, band, fresh);
                        EXPECT_EQ(expected, out[b])
                            << to_string(path) << " n=" << n << " m=" << m
                            << " band=" << band << " count=" << count
                            << " lane=" << b;
                    }
                }
            }
        }
    }
}

TEST(SimdDtwTest, DistanceMatrixMixedLengthsAndEmptiesAcrossPaths) {
    // Mixed lengths force the matrix loop to flush partial batches on
    // every shape change, and empty series must bypass the batch kernel
    // with the historical 0 / +inf results — all bit-identical to the
    // scalar path, counters included.
    std::mt19937 rng(777);
    std::vector<std::vector<double>> series;
    series.push_back(random_series(rng, 96));
    series.push_back(random_series(rng, 96));
    series.push_back(random_series(rng, 40));
    series.push_back({});
    series.push_back(random_series(rng, 96));
    series.push_back(random_series(rng, 40));
    series.push_back({});

    const PathGuard guard;
    set_path(Path::kScalar);
    obs::MetricsRegistry scalar_metrics;
    const la::FlatMatrix expected =
        cluster::dtw_distance_matrix(series, 8, nullptr, &scalar_metrics);
    for (Path path : vector_paths()) {
        set_path(path);
        obs::MetricsRegistry metrics;
        const la::FlatMatrix actual =
            cluster::dtw_distance_matrix(series, 8, nullptr, &metrics);
        for (std::size_t i = 0; i < series.size(); ++i) {
            for (std::size_t j = 0; j < series.size(); ++j) {
                EXPECT_EQ(expected(i, j), actual(i, j))
                    << to_string(path) << " (" << i << ", " << j << ")";
            }
        }
        EXPECT_EQ(scalar_metrics.snapshot().counters,
                  metrics.snapshot().counters)
            << to_string(path);
    }
}

TEST(SimdDtwTest, DistanceMatrixAndCellCountersIdenticalAcrossPaths) {
    // End-to-end through cluster::dtw_distance_matrix: forcing each path
    // must leave every matrix entry and the cluster.dtw.* counters
    // bit-identical (the acceptance criterion for cluster.dtw.cells).
    std::mt19937 rng(2016);
    std::vector<std::vector<double>> series;
    for (int s = 0; s < 6; ++s) series.push_back(random_series(rng, 96));

    const PathGuard guard;
    set_path(Path::kScalar);
    obs::MetricsRegistry scalar_metrics;
    const la::FlatMatrix expected =
        cluster::dtw_distance_matrix(series, 8, nullptr, &scalar_metrics);
    const auto scalar_counters = scalar_metrics.snapshot().counters;
    ASSERT_NE(scalar_counters.find("cluster.dtw.cells"),
              scalar_counters.end());

    for (Path path : vector_paths()) {
        set_path(path);
        obs::MetricsRegistry metrics;
        const la::FlatMatrix actual =
            cluster::dtw_distance_matrix(series, 8, nullptr, &metrics);
        for (std::size_t i = 0; i < series.size(); ++i) {
            for (std::size_t j = 0; j < series.size(); ++j) {
                EXPECT_EQ(expected(i, j), actual(i, j)) << to_string(path);
            }
        }
        EXPECT_EQ(scalar_counters, metrics.snapshot().counters)
            << to_string(path);
    }
}

// ---------------------------------------------------------------------
// MLP kernels

/// Shapes covering full vectors, tails, and sub-width layers for every
/// compiled lane width (2, 4, 8).
const std::vector<std::pair<std::size_t, std::size_t>>& mlp_shapes() {
    static const std::vector<std::pair<std::size_t, std::size_t>> shapes{
        {1, 1},  {2, 3},  {3, 2},  {4, 4},  {5, 7},  {7, 5},
        {8, 8},  {8, 12}, {12, 8}, {9, 16}, {16, 9}, {17, 31},
        {31, 17}, {33, 33},
    };
    return shapes;
}

TEST(SimdMlpTest, ForwardLayerWithinUlpBound) {
    std::mt19937 rng(123);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (const auto& [fan_in, fan_out] : mlp_shapes()) {
        std::vector<double> weights(fan_in * fan_out);
        std::vector<double> biases(fan_out);
        std::vector<double> in(fan_in);
        for (double& w : weights) w = dist(rng);
        for (double& b : biases) b = dist(rng);
        for (double& x : in) x = dist(rng);

        std::vector<double> expected(fan_out);
        scalar_table().mlp_forward_layer(
            weights.data(), biases.data(), in.data(), fan_in, fan_out,
            expected.data());
        for (Path path : vector_paths()) {
            std::vector<double> actual(fan_out, -1.0);
            kernels_for(path).mlp_forward_layer(weights.data(), biases.data(),
                                                in.data(), fan_in, fan_out,
                                                actual.data());
            for (std::size_t j = 0; j < fan_out; ++j) {
                EXPECT_LE(ulp_distance(expected[j], actual[j]),
                          kMlpForwardMaxUlps)
                    << to_string(path) << " at j=" << j << " shape ("
                    << fan_in << ", " << fan_out << "): " << expected[j]
                    << " vs " << actual[j];
            }
        }
    }
}

TEST(SimdMlpTest, ForwardLayerTailLanesAreScalarExact) {
    // The remainder loop must evaluate the identical expression as the
    // scalar kernel: with fan_in < every vector width, all paths are
    // forced into the tail and must be bit-identical, not just ULP-close.
    std::mt19937 rng(321);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    const std::size_t fan_in = 1;  // below every lane width
    const std::size_t fan_out = 5;
    std::vector<double> weights(fan_in * fan_out);
    std::vector<double> biases(fan_out);
    std::vector<double> in(fan_in);
    for (double& w : weights) w = dist(rng);
    for (double& b : biases) b = dist(rng);
    for (double& x : in) x = dist(rng);
    std::vector<double> expected(fan_out);
    scalar_table().mlp_forward_layer(weights.data(), biases.data(),
                                            in.data(), fan_in, fan_out,
                                            expected.data());
    for (Path path : vector_paths()) {
        std::vector<double> actual(fan_out);
        kernels_for(path).mlp_forward_layer(weights.data(), biases.data(),
                                            in.data(), fan_in, fan_out,
                                            actual.data());
        for (std::size_t j = 0; j < fan_out; ++j) {
            EXPECT_EQ(expected[j], actual[j]) << to_string(path);
        }
    }
}

TEST(SimdMlpTest, BackpropDeltaBitwise) {
    std::mt19937 rng(456);
    std::uniform_real_distribution<double> dist(-2.0, 2.0);
    for (const auto& [width, next_fan_out] : mlp_shapes()) {
        std::vector<double> next_weights(width * next_fan_out);
        std::vector<double> next_delta(next_fan_out);
        for (double& w : next_weights) w = dist(rng);
        for (double& d : next_delta) d = dist(rng);

        std::vector<double> expected(width);
        scalar_table().mlp_backprop_delta(next_weights.data(),
                                                 next_delta.data(), width,
                                                 next_fan_out,
                                                 expected.data());
        for (Path path : vector_paths()) {
            std::vector<double> actual(width, -1.0);
            kernels_for(path).mlp_backprop_delta(next_weights.data(),
                                                 next_delta.data(), width,
                                                 next_fan_out, actual.data());
            for (std::size_t j = 0; j < width; ++j) {
                EXPECT_EQ(expected[j], actual[j])
                    << to_string(path) << " at j=" << j << " shape ("
                    << width << ", " << next_fan_out << ")";
            }
        }
    }
}

TEST(SimdMlpTest, SgdUpdateBitwise) {
    std::mt19937 rng(789);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (const auto& [fan_in, fan_out] : mlp_shapes()) {
        std::vector<double> weights(fan_in * fan_out);
        std::vector<double> velocity(fan_in * fan_out);
        std::vector<double> in(fan_in);
        std::vector<double> deltas(fan_out);
        for (double& w : weights) w = dist(rng);
        for (double& v : velocity) v = dist(rng);
        for (double& x : in) x = dist(rng);
        for (double& d : deltas) d = dist(rng);

        std::vector<double> ref_weights = weights;
        std::vector<double> ref_velocity = velocity;
        scalar_table().mlp_sgd_layer(
            ref_weights.data(), ref_velocity.data(), in.data(), deltas.data(),
            fan_in, fan_out, 0.01, 0.9, 1e-4);
        for (Path path : vector_paths()) {
            std::vector<double> w = weights;
            std::vector<double> v = velocity;
            kernels_for(path).mlp_sgd_layer(w.data(), v.data(), in.data(),
                                            deltas.data(), fan_in, fan_out,
                                            0.01, 0.9, 1e-4);
            for (std::size_t i = 0; i < w.size(); ++i) {
                EXPECT_EQ(ref_weights[i], w[i]) << to_string(path);
                EXPECT_EQ(ref_velocity[i], v[i]) << to_string(path);
            }
        }
    }
}

TEST(SimdMlpTest, NetworkPredictAndTrainCloseAcrossPaths) {
    // End-to-end through forecast::MlpNetwork: an identical seed trained
    // under each path. Training chaotically amplifies the forward pass's
    // ULP-level reassociation, so only loose relative agreement is
    // required here (the golden suite pins the full-pipeline outcome).
    std::mt19937 rng(31415);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    const std::size_t examples = 24;
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (std::size_t e = 0; e < examples; ++e) {
        std::vector<double> x(8);
        for (double& v : x) v = dist(rng);
        targets.push_back(0.3 * x[0] + 0.5 * x[7] + 0.05 * dist(rng));
        inputs.push_back(std::move(x));
    }
    forecast::MlpTrainOptions options;
    options.epochs = 5;
    options.validation_fraction = 0.0;
    options.seed = 97;

    const PathGuard guard;
    set_path(Path::kScalar);
    forecast::MlpNetwork scalar_net({8, 12, 1},
                                    forecast::Activation::kTanh, 7);
    scalar_net.train(inputs, targets, options);
    const double scalar_pred = scalar_net.predict(inputs[0]);

    for (Path path : vector_paths()) {
        set_path(path);
        forecast::MlpNetwork net({8, 12, 1}, forecast::Activation::kTanh, 7);
        net.train(inputs, targets, options);
        const double pred = net.predict(inputs[0]);
        EXPECT_NEAR(scalar_pred, pred,
                    1e-6 * std::max(1.0, std::fabs(scalar_pred)))
            << to_string(path);
    }
}

}  // namespace
}  // namespace atm::simd
