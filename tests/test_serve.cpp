// Serve suite (ctest -L serve): the streaming daemon of DESIGN.md §7.15.
// The headline assertion is the crash-safety contract: an engine killed at
// an arbitrary window (journal left with a torn tail, as after SIGKILL
// mid-append) and warm-restarted with --resume replays to bit-identical
// recommendations and deterministic metrics versus an uninterrupted run —
// including runs where the original decisions were driven by SLO deadline
// sheds or injected transient faults that would never reproduce live.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fleet_journal.hpp"
#include "exec/fault.hpp"
#include "exec/journal.hpp"
#include "exec/socket.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "serve/serve.hpp"
#include "tracegen/generator.hpp"

namespace atm {
namespace {

using serve::ApplyOutcome;
using serve::ApplyStatus;
using serve::ServeConfig;
using serve::ServeEngine;
using serve::WindowUpdate;

std::string temp_path(const std::string& stem) {
    return testing::TempDir() + stem;
}

/// Two boxes, short days, 12 windows/day: warmup is 2 days = 24 windows,
/// so a 4-day trace exercises warming, search, retrains, and resizes in
/// well under a second with the seasonal-naive model.
trace::Trace tiny_trace(std::uint64_t seed = 11) {
    trace::TraceGenOptions options;
    options.num_boxes = 2;
    options.num_days = 4;
    options.windows_per_day = 12;
    options.gappy_box_fraction = 0.0;
    options.seed = seed;
    return trace::generate_trace(options);
}

ServeConfig fast_config() {
    ServeConfig config;
    config.pipeline.temporal = forecast::TemporalModel::kSeasonalNaive;
    config.pipeline.train_days = 2;
    config.retrain_every = 3;
    return config;
}

WindowUpdate update_at(const trace::Trace& trace, int box_index,
                       std::uint64_t epoch) {
    WindowUpdate update;
    update.box_index = box_index;
    update.epoch = epoch;
    const auto& box = trace.boxes[static_cast<std::size_t>(box_index)];
    for (const auto& vm : box.vms) {
        update.cpu.push_back(vm.cpu_demand_ghz.values()[epoch]);
        update.ram.push_back(vm.ram_demand_gb.values()[epoch]);
    }
    return update;
}

/// Feeds every window of every box epoch-major (the daemon's arrival
/// order) and returns the outcomes keyed by (box, epoch).
std::map<std::pair<int, std::uint64_t>, ApplyOutcome> feed_all(
    ServeEngine& engine, const trace::Trace& trace) {
    std::map<std::pair<int, std::uint64_t>, ApplyOutcome> outcomes;
    const std::uint64_t windows = static_cast<std::uint64_t>(
        trace.num_days * trace.windows_per_day);
    for (std::uint64_t epoch = 0; epoch < windows; ++epoch) {
        for (int box = 0; box < engine.num_boxes(); ++box) {
            outcomes[{box, epoch}] = engine.apply(update_at(trace, box, epoch));
        }
    }
    return outcomes;
}

/// The deterministic part of the resume-equivalence contract: counters,
/// gauges, and histograms (timers are wall-clock and excluded; the serve
/// engine records none).
void expect_metrics_equal(const obs::MetricsSnapshot& a,
                          const obs::MetricsSnapshot& b) {
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.gauges, b.gauges);
    ASSERT_EQ(a.histograms.size(), b.histograms.size());
    for (const auto& [name, hist] : a.histograms) {
        ASSERT_TRUE(b.histograms.count(name)) << name;
        const auto& other = b.histograms.at(name);
        EXPECT_EQ(hist.counts, other.counts) << name;
        EXPECT_EQ(hist.count, other.count) << name;
        EXPECT_DOUBLE_EQ(hist.sum, other.sum) << name;
    }
}

// ------------------------------------------------------------- validate

TEST(ServeConfigTest, AcceptsFastDefaults) {
    EXPECT_EQ(fast_config().validate(), "");
    EXPECT_EQ(ServeConfig{}.validate(), "");
}

TEST(ServeConfigTest, ReportsEveryViolationJoined) {
    ServeConfig config = fast_config();
    config.pipeline.train_days = 1;
    config.queue_depth = 0;
    config.slo_ms = -1.0;
    config.drift_threshold = -0.5;
    config.retrain_every = 0;
    config.max_retries = -1;
    config.backoff_ms = 10.0;
    config.backoff_max_ms = 5.0;
    config.resume = true;  // without a journal path
    const std::string message = config.validate();
    EXPECT_NE(message.find("train_days must be >= 2"), std::string::npos);
    EXPECT_NE(message.find("queue_depth must be in [1, 1048576], got 0"),
              std::string::npos);
    EXPECT_NE(message.find("slo_ms must be >= 0"), std::string::npos);
    EXPECT_NE(message.find("drift_threshold must be >= 0"), std::string::npos);
    EXPECT_NE(message.find("retrain_every must be >= 1"), std::string::npos);
    EXPECT_NE(message.find("max_retries must be >= 0"), std::string::npos);
    EXPECT_NE(message.find("backoff_max_ms must be >= backoff_ms"),
              std::string::npos);
    EXPECT_NE(message.find("resume requires a journal path"),
              std::string::npos);
    // Violations are joined with "; " like FleetConfig::validate.
    EXPECT_NE(message.find("; "), std::string::npos);
}

TEST(ServeConfigTest, EngineCtorThrowsOnInvalidConfig) {
    const trace::Trace trace = tiny_trace();
    ServeConfig config = fast_config();
    config.queue_depth = -3;
    EXPECT_THROW(ServeEngine(trace, config), std::invalid_argument);
}

// ---------------------------------------------------------- epoch record

TEST(ServeJournalTest, EpochRecordRoundTripsBitExact) {
    core::ServeEpochRecord record;
    record.box_index = 3;
    record.epoch = 41;
    record.ladder = 1 | 4;
    record.searched = true;
    record.retrained = 2;
    record.attempts = 3;
    record.cpu = {0.1, 1.0 / 3.0, 2.7182818284590452};
    record.ram = {12.5, 1e-17};
    const core::ServeEpochRecord decoded =
        core::decode_epoch_record(core::encode_epoch_record(record));
    EXPECT_EQ(decoded.box_index, record.box_index);
    EXPECT_EQ(decoded.epoch, record.epoch);
    EXPECT_EQ(decoded.ladder, record.ladder);
    EXPECT_EQ(decoded.searched, record.searched);
    EXPECT_EQ(decoded.retrained, record.retrained);
    EXPECT_EQ(decoded.attempts, record.attempts);
    EXPECT_EQ(decoded.cpu, record.cpu);  // bit-exact doubles
    EXPECT_EQ(decoded.ram, record.ram);
}

TEST(ServeJournalTest, DecodeRejectsLadderOutsideMaskRange) {
    core::ServeEpochRecord record;
    record.ladder = 15;  // every shed bit set: still valid
    EXPECT_NO_THROW(core::decode_epoch_record(core::encode_epoch_record(record)));
    record.ladder = 16;
    EXPECT_THROW(core::decode_epoch_record(core::encode_epoch_record(record)),
                 std::runtime_error);
    record.ladder = -1;
    EXPECT_THROW(core::decode_epoch_record(core::encode_epoch_record(record)),
                 std::runtime_error);
}

// ----------------------------------------------------------- ingest queue

TEST(IngestQueueTest, EnforcesCapacityAndTracksPeak) {
    serve::IngestQueue queue(2);
    EXPECT_TRUE(queue.try_push({}));
    EXPECT_TRUE(queue.try_push({}));
    EXPECT_FALSE(queue.try_push({}));  // backpressure: never exceeds cap
    EXPECT_EQ(queue.depth(), 2u);
    EXPECT_EQ(queue.peak(), 2u);
    EXPECT_TRUE(queue.pop(10).has_value());
    EXPECT_TRUE(queue.try_push({}));  // slot freed
    EXPECT_EQ(queue.peak(), 2u);      // high-water mark sticks
}

TEST(IngestQueueTest, CloseDrainsThenReturnsEmpty) {
    serve::IngestQueue queue(4);
    ASSERT_TRUE(queue.try_push({}));
    queue.close();
    EXPECT_FALSE(queue.try_push({}));            // closed: no new work
    EXPECT_TRUE(queue.pop(10).has_value());      // but queued work drains
    EXPECT_FALSE(queue.pop(10).has_value());     // then empty forever
}

TEST(IngestQueueTest, PopTimesOutWhenIdle) {
    serve::IngestQueue queue(1);
    EXPECT_FALSE(queue.pop(1).has_value());
}

// -------------------------------------------------------- apply statuses

TEST(ServeEngineTest, RejectsBadShapeGapAndStale) {
    const trace::Trace trace = tiny_trace();
    ServeEngine engine(trace, fast_config());
    ASSERT_EQ(engine.num_boxes(), 2);
    EXPECT_EQ(engine.find_box(trace.boxes[1].name), 1);
    EXPECT_EQ(engine.find_box("no-such-box"), -1);

    WindowUpdate update = update_at(trace, 0, 0);
    update.cpu.pop_back();  // one sample short of the VM count
    EXPECT_EQ(engine.apply(update).status, ApplyStatus::kBadShape);

    update = update_at(trace, 0, 5);  // future epoch: ordered stream only
    const ApplyOutcome gap = engine.apply(update);
    EXPECT_EQ(gap.status, ApplyStatus::kGap);
    EXPECT_NE(gap.error.find("expected epoch 0"), std::string::npos);

    EXPECT_EQ(engine.apply(update_at(trace, 0, 0)).status,
              ApplyStatus::kWarming);
    EXPECT_EQ(engine.next_epoch(0), 1u);
    // Re-sending an applied epoch is a stale no-op (client retransmit).
    EXPECT_EQ(engine.apply(update_at(trace, 0, 0)).status, ApplyStatus::kStale);
    EXPECT_EQ(engine.next_epoch(0), 1u);
}

// --------------------------------------------------- kill-restart (headline)

/// Runs `config` uninterrupted as the baseline, then re-runs it journaled
/// but killed after `kill_after` epochs (with a torn half-frame appended,
/// as a SIGKILL mid-append leaves), resumes, and requires bit-identical
/// recommendations and metrics. Shared by the plain / SLO-shed / faulty
/// variants below, which differ only in how nondeterministic the original
/// control decisions were.
void expect_kill_restart_equivalence(ServeConfig config,
                                     const std::string& stem,
                                     std::uint64_t kill_after) {
    const trace::Trace trace = tiny_trace();
    const std::string journal_path = temp_path(stem + ".journal");
    std::remove(journal_path.c_str());

    // Baseline: uninterrupted, journal disabled (journaling must not
    // change results).
    ServeConfig baseline_config = config;
    baseline_config.journal_path.clear();
    ServeEngine baseline(trace, baseline_config);
    const auto expected = feed_all(baseline, trace);
    const obs::MetricsSnapshot expected_metrics = baseline.metrics();

    // Victim: journaled, fed `kill_after` epochs, then destroyed without
    // a clean drain and the journal left with a torn tail.
    config.journal_path = journal_path;
    {
        ServeEngine victim(trace, config);
        EXPECT_FALSE(victim.resumed());
        for (std::uint64_t epoch = 0; epoch < kill_after; ++epoch) {
            for (int box = 0; box < victim.num_boxes(); ++box) {
                const ApplyOutcome out =
                    victim.apply(update_at(trace, box, epoch));
                const ApplyOutcome& want = expected.at({box, epoch});
                EXPECT_EQ(out.status, want.status);
                EXPECT_EQ(out.cpu, want.cpu);
                EXPECT_EQ(out.ram, want.ram);
            }
        }
    }
    {
        // SIGKILL mid-append: a frame prefix with no trailing newline.
        std::ofstream torn(journal_path, std::ios::app | std::ios::binary);
        torn << "0000002a 0123456789abcdef {\"box\":0,\"epo";
    }

    // Resume: clients re-send from epoch 0; journaled windows replay with
    // their recorded decisions forced and must match bit for bit.
    config.resume = true;
    ServeEngine resumed(trace, config);
    EXPECT_TRUE(resumed.resumed());
    EXPECT_GT(resumed.replay_remaining(), 0u);
    const auto actual = feed_all(resumed, trace);
    EXPECT_EQ(resumed.replay_remaining(), 0u);

    ASSERT_EQ(actual.size(), expected.size());
    for (const auto& [key, want] : expected) {
        const ApplyOutcome& got = actual.at(key);
        EXPECT_EQ(got.status, want.status)
            << "box " << key.first << " epoch " << key.second;
        EXPECT_EQ(got.ladder, want.ladder)
            << "box " << key.first << " epoch " << key.second;
        EXPECT_EQ(got.cpu, want.cpu)  // bit-identical recommendations
            << "box " << key.first << " epoch " << key.second;
        EXPECT_EQ(got.ram, want.ram)
            << "box " << key.first << " epoch " << key.second;
    }
    expect_metrics_equal(resumed.metrics(), expected_metrics);
    resumed.close();
    std::remove(journal_path.c_str());
}

TEST(ServeRestartTest, KillAndResumeIsBitIdentical) {
    // Kill right after the warmup boundary so replay covers warming
    // windows, the first search, and post-model windows.
    expect_kill_restart_equivalence(fast_config(), "serve_restart", 30);
}

TEST(ServeRestartTest, KillAndResumeIsBitIdenticalWithMlp) {
    ServeConfig config = fast_config();
    config.pipeline.temporal = forecast::TemporalModel::kNeuralNetwork;
    config.train_epochs = 3;   // keep the suite fast on one core
    config.retrain_epochs = 2;
    expect_kill_restart_equivalence(config, "serve_restart_mlp", 28);
}

TEST(ServeRestartTest, KillAndResumeIsBitIdenticalUnderSloSheds) {
    // A ~0 deadline trips before any model stage: every applied window
    // sheds down the ladder live, and replay must force those journaled
    // sheds rather than re-measuring wall clock.
    ServeConfig config = fast_config();
    config.slo_ms = 1e-6;
    expect_kill_restart_equivalence(config, "serve_restart_slo", 32);
}

TEST(ServeRestartTest, KillAndResumeIsBitIdenticalUnderFaults) {
    // Transient apply faults consume retries live; replay forces the
    // recorded attempt counts instead of re-rolling the draws.
    ServeConfig config = fast_config();
    config.faults = exec::FaultPlan::parse("serve.apply=throw@0.3", 77);
    config.max_retries = 3;
    config.backoff_ms = 0.0;  // no real sleeping in tests
    config.backoff_max_ms = 0.0;
    expect_kill_restart_equivalence(config, "serve_restart_fault", 34);
}

TEST(ServeRestartTest, HeaderMismatchStartsFresh) {
    const trace::Trace trace = tiny_trace();
    const std::string journal_path = temp_path("serve_header.journal");
    std::remove(journal_path.c_str());
    ServeConfig config = fast_config();
    config.journal_path = journal_path;
    {
        ServeEngine engine(trace, config);
        for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
            engine.apply(update_at(trace, 0, epoch));
        }
    }
    // Any result-affecting knob change invalidates the journal: the
    // resume starts fresh instead of replaying under the wrong config.
    config.resume = true;
    config.drift_threshold = 0.5;
    ServeEngine engine(trace, config);
    EXPECT_FALSE(engine.resumed());
    EXPECT_EQ(engine.replay_remaining(), 0u);
    EXPECT_EQ(engine.next_epoch(0), 0u);
    engine.close();
    std::remove(journal_path.c_str());
}

// ----------------------------------------------------------- shed ladder

TEST(ServeEngineTest, SloShedsAccountForEveryAppliedWindow) {
    const trace::Trace trace = tiny_trace();
    ServeConfig config = fast_config();
    config.slo_ms = 1e-6;  // trips before the first model stage
    ServeEngine engine(trace, config);
    std::uint64_t applied = 0;
    const auto outcomes = feed_all(engine, trace);
    for (const auto& [key, out] : outcomes) {
        if (out.status != ApplyStatus::kApplied) continue;
        ++applied;
        EXPECT_NE(out.ladder, 0) << "applied window not accounted as shed";
        // No model ever fits under a ~0 SLO, so every window degrades to
        // ingest-only and emits no recommendation.
        EXPECT_NE(out.ladder & 8, 0);
        EXPECT_TRUE(out.cpu.empty());
    }
    ASSERT_GT(applied, 0u);
    const auto& counters = engine.metrics().counters;
    EXPECT_EQ(counters.at("serve.windows.applied"), applied);
    // Every shed is observable: the skip-search rung and the ingest-only
    // rung each fired once per applied window.
    EXPECT_EQ(counters.at("serve.degraded.skip_search"), applied);
    EXPECT_EQ(counters.at("serve.degraded.ingest_only"), applied);
}

TEST(ServeEngineTest, UnlimitedSloRunsFullLadder) {
    const trace::Trace trace = tiny_trace();
    ServeEngine engine(trace, fast_config());
    const auto outcomes = feed_all(engine, trace);
    for (const auto& [key, out] : outcomes) {
        if (out.status != ApplyStatus::kApplied) continue;
        EXPECT_EQ(out.ladder, 0);
        EXPECT_FALSE(out.cpu.empty());
        EXPECT_FALSE(out.ram.empty());
        for (double v : out.cpu) EXPECT_TRUE(std::isfinite(v));
        for (double v : out.ram) EXPECT_TRUE(std::isfinite(v));
    }
    const auto& counters = engine.metrics().counters;
    EXPECT_GT(counters.at("serve.windows.applied"), 0u);
    EXPECT_GE(counters.at("serve.search.runs"), 2u);  // one per box
    EXPECT_EQ(counters.count("serve.degraded.skip_search"), 0u);
    EXPECT_EQ(counters.count("serve.degraded.ingest_only"), 0u);
}

TEST(ServeEngineTest, DriftThresholdGatesResearch) {
    const trace::Trace trace = tiny_trace();
    ServeConfig lazy = fast_config();
    lazy.drift_threshold = 1e9;  // never re-search after the cold start
    ServeEngine lazy_engine(trace, lazy);
    feed_all(lazy_engine, trace);
    const std::uint64_t lazy_runs =
        lazy_engine.metrics().counters.at("serve.search.runs");
    EXPECT_EQ(lazy_runs, 2u);  // exactly the per-box cold searches

    ServeConfig eager = fast_config();
    eager.drift_threshold = 0.0;  // any drift re-triggers search
    ServeEngine eager_engine(trace, eager);
    feed_all(eager_engine, trace);
    EXPECT_GT(eager_engine.metrics().counters.at("serve.search.runs"),
              lazy_runs);
}

// -------------------------------------------------------------- retries

TEST(ServeEngineTest, RetriesTransientFaultsWithAccounting) {
    const trace::Trace trace = tiny_trace();
    ServeConfig config = fast_config();
    config.faults = exec::FaultPlan::parse("serve.apply=throw@0.5", 9);
    config.max_retries = 2;
    config.backoff_ms = 0.0;
    config.backoff_max_ms = 0.0;
    ServeEngine engine(trace, config);
    std::uint64_t exhausted = 0;
    const auto outcomes = feed_all(engine, trace);
    for (const auto& [key, out] : outcomes) {
        if (out.status != ApplyStatus::kApplied) continue;
        EXPECT_GE(out.attempts, 1);
        EXPECT_LE(out.attempts, config.max_retries + 1);
        if ((out.ladder & 8) != 0) ++exhausted;
    }
    const auto& counters = engine.metrics().counters;
    ASSERT_GT(counters.at("serve.retry.attempts"), 0u);  // rate 0.5 fires
    EXPECT_EQ(counters.at("serve.retry.exhausted"), exhausted);
    EXPECT_GT(counters.at("serve.retry.recovered"), 0u);
    EXPECT_EQ(counters.at("serve.degraded.ingest_only"), exhausted);
}

// ------------------------------------------- journal with a live writer

TEST(ServeJournalTest, LoadTolleratesLiveWriterMidAppend) {
    const std::string path = temp_path("serve_live_writer.journal");
    const std::string snapshot = temp_path("serve_live_writer.snapshot");
    std::remove(path.c_str());
    exec::JournalWriter writer = exec::JournalWriter::create(path, "header");
    writer.append("record-0");
    writer.append("record-1");

    // A reader snapshotting the file mid-append sees the intact prefix
    // plus the partial bytes of the record being written; load_journal
    // must hand back exactly the prefix and flag the dropped tail.
    {
        std::ifstream in(path, std::ios::binary);
        std::ofstream out(snapshot, std::ios::binary);
        out << in.rdbuf();
        out << "00000008 0011";  // torn frame: half a checksum, no payload
    }
    const exec::JournalLoad partial = exec::load_journal(snapshot);
    EXPECT_TRUE(partial.exists);
    EXPECT_TRUE(partial.dropped_tail);
    EXPECT_EQ(partial.header, "header");
    ASSERT_EQ(partial.records.size(), 2u);
    EXPECT_EQ(partial.records[0], "record-0");
    EXPECT_EQ(partial.records[1], "record-1");

    // The writer was never disturbed: appends continue and a later load
    // of the live file sees everything, with no dropped tail.
    writer.append("record-2");
    writer.close();
    const exec::JournalLoad full = exec::load_journal(path);
    EXPECT_FALSE(full.dropped_tail);
    ASSERT_EQ(full.records.size(), 3u);
    EXPECT_EQ(full.records[2], "record-2");
    std::remove(path.c_str());
    std::remove(snapshot.c_str());
}

// ------------------------------------------------------------- protocol

TEST(ServeProtocolTest, RequestRoundTrips) {
    const serve::Request hello = serve::parse_request(serve::encode_hello());
    EXPECT_EQ(hello.type, serve::Request::Type::kHello);
    EXPECT_EQ(hello.proto, serve::kServeProtocol);

    const serve::Request window = serve::parse_request(
        serve::encode_window("box-7", 12, {1.5, 0.25}, {8.0, 16.0}));
    EXPECT_EQ(window.type, serve::Request::Type::kWindow);
    EXPECT_EQ(window.box, "box-7");
    EXPECT_EQ(window.epoch, 12u);
    EXPECT_EQ(window.cpu, (std::vector<double>{1.5, 0.25}));
    EXPECT_EQ(window.ram, (std::vector<double>{8.0, 16.0}));

    EXPECT_EQ(serve::parse_request(serve::encode_stat()).type,
              serve::Request::Type::kStat);
    EXPECT_EQ(serve::parse_request(serve::encode_shutdown()).type,
              serve::Request::Type::kShutdown);
    EXPECT_THROW(serve::parse_request("not json"), std::runtime_error);
    EXPECT_THROW(serve::parse_request("{\"type\":\"mystery\"}"),
                 std::runtime_error);
}

TEST(ServeProtocolTest, ResponseRoundTrips) {
    ApplyOutcome outcome;
    outcome.status = ApplyStatus::kApplied;
    outcome.epoch = 9;
    outcome.ladder = 5;
    outcome.cpu = {2.5};
    outcome.ram = {4.0};
    const serve::Response ack =
        serve::parse_response(serve::encode_ack(outcome));
    EXPECT_EQ(ack.type, "ack");
    EXPECT_EQ(ack.status, "applied");
    EXPECT_EQ(ack.epoch, 9u);
    EXPECT_EQ(ack.ladder, 5);
    EXPECT_EQ(ack.cpu, outcome.cpu);

    const serve::Response busy = serve::parse_response(serve::encode_busy(12.5));
    EXPECT_EQ(busy.type, "busy");
    EXPECT_DOUBLE_EQ(busy.retry_after_ms, 12.5);

    const serve::Response hello =
        serve::parse_response(serve::encode_hello_response(4, true));
    EXPECT_EQ(hello.type, "hello");
    EXPECT_EQ(hello.boxes, 4);
    EXPECT_TRUE(hello.resumed);
}

// ---------------------------------------------------------- daemon (e2e)

TEST(ServeDaemonTest, SocketRoundTripWithStatAndShutdown) {
    const trace::Trace trace = tiny_trace();
    serve::DaemonOptions options;
    options.socket_path = temp_path("atmd_e2e.sock");
    serve::ServeDaemon daemon(trace, fast_config(), options);
    std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });

    serve::ServeClient client =
        serve::ServeClient::connect(options.socket_path);
    EXPECT_EQ(client.hello().boxes, 2);
    EXPECT_FALSE(client.hello().resumed);

    for (int box = 0; box < 2; ++box) {
        const WindowUpdate update = update_at(trace, box, 0);
        const serve::Response ack = client.window(
            trace.boxes[static_cast<std::size_t>(box)].name, 0, update.cpu,
            update.ram);
        EXPECT_EQ(ack.type, "ack");
        EXPECT_EQ(ack.status, "warming");
    }
    const serve::Response unknown = client.window("no-such-box", 0, {1}, {1});
    EXPECT_EQ(unknown.type, "error");
    EXPECT_NE(unknown.message.find("unknown box"), std::string::npos);

    const serve::Response stat = client.stat();
    EXPECT_EQ(stat.type, "stat");
    EXPECT_NE(stat.metrics_json.find("atm.serve-metrics.v1"),
              std::string::npos);
    EXPECT_NE(stat.metrics_json.find("serve.windows.warming"),
              std::string::npos);

    EXPECT_EQ(client.shutdown().type, "ok");
    server.join();
}

TEST(ServeDaemonTest, BackpressureRejectsWithRetryAfterAndRecovers) {
    const trace::Trace trace = tiny_trace();
    ServeConfig config = fast_config();
    config.queue_depth = 1;  // one in flight, everything else rejected
    serve::DaemonOptions options;
    options.socket_path = temp_path("atmd_bp.sock");
    options.retry_after_ms = 5.0;
    options.apply_delay_ms = 100.0;  // worker slow: queue fills for sure
    serve::ServeDaemon daemon(trace, config, options);
    std::thread server([&daemon] { EXPECT_EQ(daemon.run(), 0); });

    // Raw socket (not ServeClient): fire three windows back-to-back
    // without waiting for acks, so the bounded queue overflows.
    exec::UnixSocket socket = exec::unix_connect(options.socket_path, 5000);
    ASSERT_TRUE(socket.write_line(serve::encode_hello()));
    ASSERT_TRUE(socket.read_line(5000).has_value());
    const std::string& box = trace.boxes[0].name;
    const WindowUpdate w0 = update_at(trace, 0, 0);
    // Epoch 0 first, alone: the worker pops it immediately and is then
    // pinned in the 100ms apply delay, so epochs 1 and 2 arrive while
    // the (depth-1) queue holds exactly one job — epoch 1 queues, epoch
    // 2 must bounce.
    ASSERT_TRUE(socket.write_line(serve::encode_window(box, 0, w0.cpu, w0.ram)));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_TRUE(socket.write_line(serve::encode_window(box, 1, w0.cpu, w0.ram)));
    ASSERT_TRUE(socket.write_line(serve::encode_window(box, 2, w0.cpu, w0.ram)));
    int acks = 0;
    int busies = 0;
    const std::uint64_t retry_epoch = 2;
    for (int i = 0; i < 3; ++i) {
        std::optional<std::string> line;
        for (int poll = 0; poll < 100 && !line.has_value(); ++poll) {
            line = socket.read_line(100);
        }
        ASSERT_TRUE(line.has_value());
        const serve::Response response = serve::parse_response(*line);
        if (response.type == "ack") {
            ++acks;
        } else {
            ASSERT_EQ(response.type, "busy");
            EXPECT_DOUBLE_EQ(response.retry_after_ms, 5.0);
            ++busies;
        }
    }
    EXPECT_EQ(acks, 2);
    EXPECT_EQ(busies, 1);

    // The well-behaved reaction: wait out retry_after and re-send. The
    // queue has drained by then, so the retried window is accepted.
    serve::Response retried;
    for (int attempt = 0; attempt < 50; ++attempt) {
        ASSERT_TRUE(socket.write_line(
            serve::encode_window(box, retry_epoch, w0.cpu, w0.ram)));
        std::optional<std::string> line;
        for (int poll = 0; poll < 100 && !line.has_value(); ++poll) {
            line = socket.read_line(100);
        }
        ASSERT_TRUE(line.has_value());
        retried = serve::parse_response(*line);
        if (retried.type != "busy") break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(retried.type, "ack");

    ASSERT_TRUE(socket.write_line(serve::encode_shutdown()));
    server.join();
}

TEST(ServeDaemonTest, RejectsProtocolMismatch) {
    const trace::Trace trace = tiny_trace();
    serve::DaemonOptions options;
    options.socket_path = temp_path("atmd_proto.sock");
    serve::ServeDaemon daemon(trace, fast_config(), options);
    std::thread server([&daemon] { daemon.run(); });

    exec::UnixSocket socket = exec::unix_connect(options.socket_path, 5000);
    ASSERT_TRUE(socket.write_line(
        "{\"type\":\"hello\",\"proto\":\"atm.serve.v999\"}"));
    std::optional<std::string> line;
    for (int poll = 0; poll < 100 && !line.has_value(); ++poll) {
        line = socket.read_line(100);
    }
    ASSERT_TRUE(line.has_value());
    const serve::Response response = serve::parse_response(*line);
    EXPECT_EQ(response.type, "error");
    EXPECT_NE(response.message.find("unsupported protocol"), std::string::npos);

    serve::ServeClient client =
        serve::ServeClient::connect(options.socket_path);
    client.shutdown();
    server.join();
}

}  // namespace
}  // namespace atm
