#include <gtest/gtest.h>

#include "ticketing/characterization.hpp"
#include "ticketing/tickets.hpp"
#include "tracegen/generator.hpp"

namespace atm::ticketing {
namespace {

TEST(TicketCountTest, UsageStrictlyAboveThreshold) {
    const std::vector<double> usage{59.9, 60.0, 60.1, 80.0, 10.0};
    EXPECT_EQ(count_usage_tickets(usage, 60.0), 2);  // 60.0 itself: no ticket
    EXPECT_EQ(count_usage_tickets(usage, 0.0), 5);
    EXPECT_EQ(count_usage_tickets(usage, 100.0), 0);
}

TEST(TicketCountTest, EmptySeriesNoTickets) {
    EXPECT_EQ(count_usage_tickets({}, 60.0), 0);
}

TEST(TicketCountTest, DemandAgainstAlphaCapacity) {
    // capacity 10, alpha 0.6 -> limit 6.
    const std::vector<double> demand{5.9, 6.0, 6.1, 9.0};
    EXPECT_EQ(count_demand_tickets(demand, 10.0, 0.6), 2);
}

TEST(TicketCountTest, IndicatorsMatchCount) {
    const std::vector<double> demand{1, 7, 3, 9, 6};
    const auto ind = ticket_indicators(demand, 10.0, 0.6);
    ASSERT_EQ(ind.size(), 5u);
    EXPECT_EQ(ind, (std::vector<int>{0, 1, 0, 1, 0}));
    int sum = 0;
    for (int i : ind) sum += i;
    EXPECT_EQ(sum, count_demand_tickets(demand, 10.0, 0.6));
}

trace::BoxTrace make_test_box() {
    trace::BoxTrace box;
    box.name = "test";
    box.cpu_capacity_ghz = 20.0;
    box.ram_capacity_gb = 40.0;

    trace::VmTrace hot;
    hot.name = "hot";
    hot.cpu_capacity_ghz = 4.0;
    hot.ram_capacity_gb = 8.0;
    hot.cpu_usage_pct = ts::Series("hot/CPU", {90, 90, 90, 90, 30, 30, 30, 30});
    hot.ram_usage_pct = ts::Series("hot/RAM", {70, 70, 20, 20, 20, 20, 20, 20});
    box.vms.push_back(hot);

    trace::VmTrace cold;
    cold.name = "cold";
    cold.cpu_capacity_ghz = 4.0;
    cold.ram_capacity_gb = 8.0;
    cold.cpu_usage_pct = ts::Series("cold/CPU", {10, 10, 10, 65, 10, 10, 10, 10});
    cold.ram_usage_pct = ts::Series("cold/RAM", {20, 20, 20, 20, 20, 20, 20, 20});
    box.vms.push_back(cold);
    return box;
}

TEST(BoxTicketsTest, CountsPerVmAndTotals) {
    const auto stats = count_box_tickets(make_test_box(), 60.0);
    EXPECT_EQ(stats.cpu_tickets_per_vm, (std::vector<int>{4, 1}));
    EXPECT_EQ(stats.ram_tickets_per_vm, (std::vector<int>{2, 0}));
    EXPECT_EQ(stats.total_cpu, 5);
    EXPECT_EQ(stats.total_ram, 2);
    EXPECT_EQ(stats.total(ts::ResourceKind::kCpu), 5);
    EXPECT_EQ(stats.total(ts::ResourceKind::kRam), 2);
}

TEST(BoxTicketsTest, WindowRangeRestriction) {
    const auto stats = count_box_tickets(make_test_box(), 60.0, 4, 4);
    EXPECT_EQ(stats.total_cpu, 0);  // hot VM is cool in the second half
    const auto first_half = count_box_tickets(make_test_box(), 60.0, 0, 4);
    EXPECT_EQ(first_half.total_cpu, 5);
}

TEST(BoxTicketsTest, RangeClampsBeyondEnd) {
    const auto stats = count_box_tickets(make_test_box(), 60.0, 6, 100);
    EXPECT_EQ(stats.total_cpu, 0);
    const auto past = count_box_tickets(make_test_box(), 60.0, 100, 4);
    EXPECT_EQ(past.total_cpu, 0);
}

TEST(CulpritTest, HotVmIsSingleCulprit) {
    const auto stats = count_box_tickets(make_test_box(), 60.0);
    // CPU: hot has 4 of 5 tickets = 80% -> 1 culprit.
    EXPECT_EQ(culprit_vm_count(stats, ts::ResourceKind::kCpu), 1);
    EXPECT_EQ(culprit_vm_count(stats, ts::ResourceKind::kRam), 1);
}

TEST(CulpritTest, EvenSplitNeedsMoreCulprits) {
    BoxTicketStats stats;
    stats.cpu_tickets_per_vm = {10, 10, 10, 10};
    stats.total_cpu = 40;
    // 80% of 40 = 32 -> needs 4 VMs (3 cover only 30).
    EXPECT_EQ(culprit_vm_count(stats, ts::ResourceKind::kCpu), 4);
}

TEST(CulpritTest, NoTicketsZeroCulprits) {
    BoxTicketStats stats;
    stats.cpu_tickets_per_vm = {0, 0};
    EXPECT_EQ(culprit_vm_count(stats, ts::ResourceKind::kCpu), 0);
}

TEST(CulpritTest, MajorityFractionRespected) {
    BoxTicketStats stats;
    stats.cpu_tickets_per_vm = {60, 30, 10};
    stats.total_cpu = 100;
    EXPECT_EQ(culprit_vm_count(stats, ts::ResourceKind::kCpu, 0.5), 1);
    EXPECT_EQ(culprit_vm_count(stats, ts::ResourceKind::kCpu, 0.8), 2);
    EXPECT_EQ(culprit_vm_count(stats, ts::ResourceKind::kCpu, 0.95), 3);
}

TEST(CharacterizeTest, DayParameterSelectsWindow) {
    // Handcrafted trace: day 0 hot, day 1 idle — the day parameter must
    // select the right window.
    trace::Trace t;
    t.windows_per_day = 4;
    t.num_days = 2;
    trace::BoxTrace box;
    trace::VmTrace vm;
    vm.cpu_capacity_ghz = 4.0;
    vm.ram_capacity_gb = 8.0;
    vm.cpu_usage_pct = ts::Series("cpu", {90, 90, 90, 90, 10, 10, 10, 10});
    vm.ram_usage_pct = ts::Series("ram", {10, 10, 10, 10, 10, 10, 10, 10});
    box.vms.push_back(vm);
    t.boxes.push_back(box);

    const auto day0 = characterize_tickets(t, 60.0, 0);
    const auto day1 = characterize_tickets(t, 60.0, 1);
    EXPECT_DOUBLE_EQ(day0.mean_cpu_tickets_per_box, 4.0);
    EXPECT_DOUBLE_EQ(day1.mean_cpu_tickets_per_box, 0.0);
    EXPECT_DOUBLE_EQ(day0.boxes_with_cpu_tickets, 1.0);
    EXPECT_DOUBLE_EQ(day1.boxes_with_cpu_tickets, 0.0);
}

TEST(CharacterizeTest, EmptyTraceIsZero) {
    trace::Trace empty;
    const auto c = characterize_tickets(empty, 60.0);
    EXPECT_DOUBLE_EQ(c.boxes_with_cpu_tickets, 0.0);
    EXPECT_DOUBLE_EQ(c.mean_cpu_tickets_per_box, 0.0);
    const auto corr = characterize_correlations(empty);
    EXPECT_TRUE(corr.intra_cpu.empty());
}

TEST(CharacterizeTest, CorrelationsWithinBounds) {
    trace::TraceGenOptions options;
    options.num_boxes = 50;
    options.num_days = 1;
    const trace::Trace t = trace::generate_trace(options);
    const auto corr = characterize_correlations(t);
    for (const auto* vec :
         {&corr.intra_cpu, &corr.intra_ram, &corr.inter_all, &corr.inter_pair}) {
        for (double r : *vec) {
            EXPECT_GE(r, -1.0);
            EXPECT_LE(r, 1.0);
        }
    }
}

}  // namespace
}  // namespace atm::ticketing
