#include <gtest/gtest.h>

#include "timeseries/cdf.hpp"
#include "timeseries/features.hpp"
#include "timeseries/resource.hpp"
#include "timeseries/series.hpp"
#include "timeseries/stats.hpp"

namespace atm::ts {
namespace {

TEST(SeriesTest, BasicAccessors) {
    Series s("a", {1.0, 2.0, 3.0});
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(s.name(), "a");
    EXPECT_DOUBLE_EQ(s[1], 2.0);
    s[1] = 5.0;
    EXPECT_DOUBLE_EQ(s[1], 5.0);
}

TEST(SeriesTest, SliceClampsToLength) {
    Series s("a", {1, 2, 3, 4, 5});
    const Series mid = s.slice(1, 3);
    ASSERT_EQ(mid.size(), 3u);
    EXPECT_DOUBLE_EQ(mid[0], 2.0);
    EXPECT_DOUBLE_EQ(mid[2], 4.0);
    const Series over = s.slice(3, 10);
    EXPECT_EQ(over.size(), 2u);
    const Series past = s.slice(10, 2);
    EXPECT_TRUE(past.empty());
}

TEST(SeriesTest, ScaledMultipliesEverySample) {
    Series s("a", {1.0, -2.0, 0.5});
    const Series t = s.scaled(2.0);
    EXPECT_DOUBLE_EQ(t[0], 2.0);
    EXPECT_DOUBLE_EQ(t[1], -4.0);
    EXPECT_DOUBLE_EQ(t[2], 1.0);
}

TEST(SeriesTest, TrainTestSplit) {
    Series s("a", {1, 2, 3, 4, 5});
    const auto split = split_train_test(s, 3);
    EXPECT_EQ(split.train.size(), 3u);
    EXPECT_EQ(split.test.size(), 2u);
    EXPECT_DOUBLE_EQ(split.test[0], 4.0);
    const auto all = split_train_test(s, 99);
    EXPECT_EQ(all.train.size(), 5u);
    EXPECT_TRUE(all.test.empty());
}

TEST(StatsTest, MeanVarianceStddev) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(StatsTest, EmptySpansAreZero) {
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(mean(empty), 0.0);
    EXPECT_DOUBLE_EQ(variance(empty), 0.0);
    EXPECT_DOUBLE_EQ(min_value(empty), 0.0);
    EXPECT_DOUBLE_EQ(max_value(empty), 0.0);
    EXPECT_DOUBLE_EQ(quantile(empty, 0.5), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
    const std::vector<double> xs{1, 2, 3, 4, 5};
    const std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    const std::vector<double> neg{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
    const std::vector<double> xs{1, 2, 3};
    const std::vector<double> flat{5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(StatsTest, PearsonShiftAndScaleInvariant) {
    const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
    std::vector<double> ys(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = 3.0 * xs[i] + 7.0;
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, QuantileInterpolates) {
    const std::vector<double> xs{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(StatsTest, SummaryMatchesComponents) {
    const std::vector<double> xs{5, 1, 3, 2, 4};
    const Summary s = summarize(xs);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 3.0);
    EXPECT_DOUBLE_EQ(s.p25, 2.0);
    EXPECT_DOUBLE_EQ(s.p75, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_EQ(s.count, 5u);
}

TEST(StatsTest, MapeMatchesPaperDefinition) {
    const std::vector<double> actual{100, 50, 200};
    const std::vector<double> fitted{80, 60, 200};
    // |100-80|/100 = .2, |50-60|/50 = .2, 0 -> mean .1333
    EXPECT_NEAR(mean_absolute_percentage_error(actual, fitted), 0.4 / 3.0, 1e-12);
}

TEST(StatsTest, MapeSkipsNearZeroActuals) {
    const std::vector<double> actual{0.0, 100.0};
    const std::vector<double> fitted{42.0, 110.0};
    EXPECT_NEAR(mean_absolute_percentage_error(actual, fitted), 0.1, 1e-12);
}

TEST(CdfTest, EvaluatesFractions) {
    const std::vector<double> xs{1, 2, 3, 4};
    const EmpiricalCdf cdf(xs);
    EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf(99.0), 1.0);
}

TEST(CdfTest, InverseIsQuantile) {
    const std::vector<double> xs{10, 20, 30, 40, 50};
    const EmpiricalCdf cdf(xs);
    EXPECT_DOUBLE_EQ(cdf.inverse(0.2), 10.0);
    EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 30.0);
    EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 50.0);
}

TEST(CdfTest, GridSpansSamples) {
    const std::vector<double> xs{0.0, 1.0};
    const EmpiricalCdf cdf(xs);
    const auto grid = cdf.grid(3);
    ASSERT_EQ(grid.size(), 3u);
    EXPECT_DOUBLE_EQ(grid.front().x, 0.0);
    EXPECT_DOUBLE_EQ(grid.back().x, 1.0);
    EXPECT_DOUBLE_EQ(grid.back().f, 1.0);
}

TEST(CdfTest, EmptyCdf) {
    const EmpiricalCdf cdf;
    EXPECT_TRUE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf(1.0), 0.0);
    EXPECT_TRUE(cdf.grid(5).empty());
}

TEST(ScalerTest, MinMaxRoundTrip) {
    MinMaxScaler scaler;
    const std::vector<double> xs{10, 20, 30};
    scaler.fit(xs);
    EXPECT_DOUBLE_EQ(scaler.transform(10), 0.0);
    EXPECT_DOUBLE_EQ(scaler.transform(30), 1.0);
    EXPECT_DOUBLE_EQ(scaler.inverse(scaler.transform(17.5)), 17.5);
}

TEST(ScalerTest, MinMaxConstantInput) {
    MinMaxScaler scaler;
    const std::vector<double> xs{5, 5, 5};
    scaler.fit(xs);
    EXPECT_DOUBLE_EQ(scaler.transform(5), 0.5);
    EXPECT_DOUBLE_EQ(scaler.inverse(0.7), 5.0);
}

TEST(ScalerTest, StandardRoundTrip) {
    StandardScaler scaler;
    const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
    scaler.fit(xs);
    EXPECT_DOUBLE_EQ(scaler.mean(), 5.0);
    EXPECT_DOUBLE_EQ(scaler.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(scaler.transform(7.0), 1.0);
    EXPECT_DOUBLE_EQ(scaler.inverse(scaler.transform(3.3)), 3.3);
}

TEST(FeaturesTest, LagDatasetShape) {
    const std::vector<double> xs{1, 2, 3, 4, 5, 6};
    const auto ds = make_lag_dataset(xs, 2);
    ASSERT_EQ(ds.size(), 4u);
    EXPECT_EQ(ds[0].lags, (std::vector<double>{1, 2}));
    EXPECT_DOUBLE_EQ(ds[0].target, 3.0);
    EXPECT_EQ(ds[3].lags, (std::vector<double>{4, 5}));
    EXPECT_DOUBLE_EQ(ds[3].target, 6.0);
}

TEST(FeaturesTest, LagDatasetWithSeasonalFeature) {
    const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
    const auto ds = make_lag_dataset(xs, 2, 4);
    ASSERT_EQ(ds.size(), 4u);
    // First example targets index 4 (value 5): lags {3,4}, seasonal x[0]=1.
    EXPECT_EQ(ds[0].lags, (std::vector<double>{3, 4, 1}));
    EXPECT_DOUBLE_EQ(ds[0].target, 5.0);
}

TEST(FeaturesTest, TooShortHistoryYieldsEmptyDataset) {
    const std::vector<double> xs{1, 2};
    EXPECT_TRUE(make_lag_dataset(xs, 5).empty());
    EXPECT_TRUE(make_lag_dataset(xs, 1, 10).empty());
}

TEST(ResourceTest, FlatIndexRoundTrip) {
    for (int vm = 0; vm < 5; ++vm) {
        for (int r = 0; r < kNumResources; ++r) {
            const SeriesId id{vm, static_cast<ResourceKind>(r)};
            const SeriesId back = SeriesId::from_flat(id.flat_index());
            EXPECT_EQ(back, id);
        }
    }
    EXPECT_EQ(to_string(ResourceKind::kCpu), "CPU");
    EXPECT_EQ(to_string(ResourceKind::kRam), "RAM");
}

}  // namespace
}  // namespace atm::ts
