#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "resize/mckp.hpp"
#include "resize/policies.hpp"
#include "resize/reduced_demand.hpp"

namespace atm::resize {
namespace {

// The paper's running example (Section IV-A1):
// D_i = {30,30,40,40,23,25,60,60,60,60} -> D'_i = {60,40,30,25,23,0} with
// P_i = {0,4,6,8,9,10}.
const std::vector<double> kPaperDemands{30, 30, 40, 40, 23, 25, 60, 60, 60, 60};

TEST(ReducedDemandTest, PaperExampleLevelsAndTickets) {
    const auto set = build_reduced_demand_set(kPaperDemands, /*alpha=*/1.0,
                                              /*epsilon=*/0.0);
    ASSERT_EQ(set.candidates.size(), 6u);
    const std::vector<double> levels{60, 40, 30, 25, 23, 0};
    const std::vector<int> tickets{0, 4, 6, 8, 9, 10};
    for (std::size_t v = 0; v < 6; ++v) {
        EXPECT_DOUBLE_EQ(set.candidates[v].demand_level, levels[v]);
        EXPECT_EQ(set.candidates[v].tickets, tickets[v]);
    }
}

TEST(ReducedDemandTest, PaperExampleWithDiscretization) {
    // eps = 10: 23, 25 round up to 30 -> D' = {60,40,30,0}, P = {0,4,6,10}.
    const auto set = build_reduced_demand_set(kPaperDemands, 1.0, 10.0);
    ASSERT_EQ(set.candidates.size(), 4u);
    const std::vector<double> levels{60, 40, 30, 0};
    const std::vector<int> tickets{0, 4, 6, 10};
    for (std::size_t v = 0; v < 4; ++v) {
        EXPECT_DOUBLE_EQ(set.candidates[v].demand_level, levels[v]);
        EXPECT_EQ(set.candidates[v].tickets, tickets[v]);
    }
}

TEST(ReducedDemandTest, AlphaScalesCapacity) {
    const auto set = build_reduced_demand_set(kPaperDemands, 0.6, 0.0);
    // Top candidate covers demand 60 -> capacity 100.
    EXPECT_DOUBLE_EQ(set.candidates.front().demand_level, 60.0);
    EXPECT_DOUBLE_EQ(set.candidates.front().capacity, 100.0);
    EXPECT_EQ(set.candidates.front().tickets, 0);
}

TEST(ReducedDemandTest, TicketsNonDecreasingCapacityDecreasing) {
    const auto set = build_reduced_demand_set(kPaperDemands, 0.6, 5.0);
    for (std::size_t v = 1; v < set.candidates.size(); ++v) {
        EXPECT_LT(set.candidates[v].capacity, set.candidates[v - 1].capacity);
        EXPECT_GE(set.candidates[v].tickets, set.candidates[v - 1].tickets);
    }
}

TEST(ReducedDemandTest, ZeroCandidateTicketsAllWindows) {
    const auto set = build_reduced_demand_set(kPaperDemands, 1.0, 0.0);
    EXPECT_DOUBLE_EQ(set.candidates.back().capacity, 0.0);
    EXPECT_EQ(set.candidates.back().tickets, 10);
}

TEST(ReducedDemandTest, LowerBoundInsertsCandidate) {
    // Lower bound 35 (capacity units, alpha=1): candidates below 35 are
    // dropped; a candidate at exactly 35 appears with its real ticket count.
    const auto set = build_reduced_demand_set(kPaperDemands, 1.0, 0.0, 35.0);
    EXPECT_DOUBLE_EQ(set.candidates.back().capacity, 35.0);
    // demands > 35: 40,40,60x4 = 6 tickets.
    EXPECT_EQ(set.candidates.back().tickets, 6);
    for (const auto& c : set.candidates) EXPECT_GE(c.capacity, 35.0);
}

TEST(ReducedDemandTest, UpperBoundCapsCandidates) {
    const auto set = build_reduced_demand_set(kPaperDemands, 1.0, 0.0, 0.0, 45.0);
    for (const auto& c : set.candidates) EXPECT_LE(c.capacity, 45.0);
    // Best remaining candidate is 40 -> 4 tickets.
    EXPECT_DOUBLE_EQ(set.candidates.front().capacity, 40.0);
    EXPECT_EQ(set.candidates.front().tickets, 4);
}

TEST(ReducedDemandTest, UpperBoundBelowAllLevels) {
    const auto set = build_reduced_demand_set(kPaperDemands, 1.0, 0.0, 0.0, 10.0);
    ASSERT_FALSE(set.candidates.empty());
    // Every level above 10 dropped; 0 remains plus nothing else -> the 0
    // candidate (capacity 0) survives the cap.
    EXPECT_LE(set.candidates.front().capacity, 10.0);
}

TEST(ReducedDemandTest, EmptySeriesSingleZeroCandidate) {
    const auto set = build_reduced_demand_set({}, 0.6, 5.0);
    ASSERT_EQ(set.candidates.size(), 1u);
    EXPECT_DOUBLE_EQ(set.candidates[0].capacity, 0.0);
    EXPECT_EQ(set.candidates[0].tickets, 0);
}

TEST(ReducedDemandTest, InvalidAlphaThrows) {
    EXPECT_THROW(build_reduced_demand_set(kPaperDemands, 0.0, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(build_reduced_demand_set(kPaperDemands, 1.5, 0.0),
                 std::invalid_argument);
}

TEST(ReducedDemandTest, EpsilonRoundsUpNotDown) {
    const std::vector<double> demands{21.0};
    const auto set = build_reduced_demand_set(demands, 1.0, 5.0);
    EXPECT_DOUBLE_EQ(set.candidates.front().demand_level, 25.0);
}

TEST(ReducedDemandTest, ExactMultipleNotRoundedFurther) {
    const std::vector<double> demands{25.0};
    const auto set = build_reduced_demand_set(demands, 1.0, 5.0);
    EXPECT_DOUBLE_EQ(set.candidates.front().demand_level, 25.0);
}

MckpInstance two_vm_instance(double budget) {
    // VM A: hot (demands 60 most of the day); VM B: cold.
    const std::vector<double> hot{60, 60, 60, 60, 30, 30};
    const std::vector<double> cold{10, 10, 12, 12, 10, 10};
    MckpInstance instance;
    instance.groups.push_back(build_reduced_demand_set(hot, 1.0, 0.0));
    instance.groups.push_back(build_reduced_demand_set(cold, 1.0, 0.0));
    instance.total_capacity = budget;
    return instance;
}

TEST(GreedyMckpTest, AmpleBudgetZeroTickets) {
    const auto sol = solve_mckp_greedy(two_vm_instance(100.0));
    EXPECT_TRUE(sol.feasible);
    EXPECT_EQ(sol.total_tickets, 0);
    EXPECT_DOUBLE_EQ(sol.capacities[0], 60.0);
    EXPECT_DOUBLE_EQ(sol.capacities[1], 12.0);
}

TEST(GreedyMckpTest, TightBudgetSheddsCheapestTickets) {
    // Budget 70: both max candidates need 72. Downgrading B 12->10 frees 2
    // for 2 tickets (MTRV 1.0); downgrading A 60->30 frees 30 for 4 tickets
    // (MTRV 0.133). Greedy picks A... but then capacity = 30+12=42 <= 70.
    const auto sol = solve_mckp_greedy(two_vm_instance(70.0));
    EXPECT_TRUE(sol.feasible);
    EXPECT_DOUBLE_EQ(sol.capacities[0], 30.0);
    EXPECT_DOUBLE_EQ(sol.capacities[1], 12.0);
    EXPECT_EQ(sol.total_tickets, 4);
}

TEST(GreedyMckpTest, ZeroBudgetAllZero) {
    const auto sol = solve_mckp_greedy(two_vm_instance(0.0));
    EXPECT_TRUE(sol.feasible);
    EXPECT_DOUBLE_EQ(sol.capacities[0], 0.0);
    EXPECT_DOUBLE_EQ(sol.capacities[1], 0.0);
    EXPECT_EQ(sol.total_tickets, 12);
}

TEST(GreedyMckpTest, UsedCapacityWithinBudget) {
    for (double budget : {0.0, 10.0, 35.0, 50.0, 71.0, 72.0, 200.0}) {
        const auto sol = solve_mckp_greedy(two_vm_instance(budget));
        EXPECT_LE(sol.used_capacity, budget + 1e-9) << "budget " << budget;
    }
}

TEST(GreedyMckpTest, EmptyGroupThrows) {
    MckpInstance instance;
    instance.groups.push_back(ReducedDemandSet{});
    instance.total_capacity = 10.0;
    EXPECT_THROW(solve_mckp_greedy(instance), std::invalid_argument);
}

TEST(ExactMckpTest, MatchesGreedyOnEasyInstance) {
    const auto greedy = solve_mckp_greedy(two_vm_instance(100.0));
    const auto exact = solve_mckp_exact(two_vm_instance(100.0));
    EXPECT_EQ(exact.total_tickets, greedy.total_tickets);
}

TEST(ExactMckpTest, BeatsGreedyWhenGreedyIsMyopic) {
    // Construct an instance where one-step MTRV is misleading: VM A has a
    // long cheap tail after an expensive first step.
    MckpInstance instance;
    ReducedDemandSet a;
    a.candidates = {{100, 100, 0}, {99, 99, 5}, {40, 40, 6}};
    ReducedDemandSet b;
    b.candidates = {{60, 60, 0}, {30, 30, 2}};
    instance.groups = {a, b};
    instance.total_capacity = 100.0;
    const auto greedy = solve_mckp_greedy(instance);
    const auto exact = solve_mckp_exact(instance);
    EXPECT_LE(exact.total_tickets, greedy.total_tickets);
    EXPECT_LE(exact.used_capacity, 100.0 + 1e-9);
}

// Property sweep: on random small instances the greedy solution is feasible
// and within a modest factor of the exact optimum; the exact solution is
// never worse than greedy.
class MckpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MckpPropertyTest, GreedyFeasibleExactNoWorse) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    std::uniform_real_distribution<double> demand_dist(0.0, 50.0);
    std::uniform_int_distribution<int> vm_count(2, 5);
    std::uniform_int_distribution<int> len(4, 12);

    MckpInstance instance;
    const int m = vm_count(rng);
    double total_max = 0.0;
    for (int i = 0; i < m; ++i) {
        std::vector<double> demands(static_cast<std::size_t>(len(rng)));
        for (double& d : demands) d = demand_dist(rng);
        instance.groups.push_back(build_reduced_demand_set(demands, 0.6, 0.0));
        total_max += instance.groups.back().candidates.front().capacity;
    }
    instance.total_capacity = total_max * 0.55;  // force contention

    const auto greedy = solve_mckp_greedy(instance);
    const auto exact = solve_mckp_exact(instance, 8192);
    EXPECT_TRUE(greedy.feasible);
    EXPECT_LE(greedy.used_capacity, instance.total_capacity + 1e-9);
    EXPECT_LE(exact.used_capacity, instance.total_capacity + 1e-9);
    EXPECT_LE(exact.total_tickets, greedy.total_tickets);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MckpPropertyTest,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------- policies

ResizeInput simple_input() {
    ResizeInput input;
    input.demands = {
        {6.0, 6.0, 6.0, 2.0},  // hot VM
        {1.0, 1.0, 1.0, 1.0},  // cold VM
    };
    input.total_capacity = 12.0;
    input.alpha = 0.6;
    return input;
}

TEST(AtmResizeTest, EliminatesTicketsGivenSlack) {
    const auto result = atm_resize(simple_input());
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(result.tickets, 0);
    // Hot VM needs 6/0.6 = 10; cold needs 1/0.6 = 1.67; total 11.67 <= 12.
    EXPECT_NEAR(result.capacities[0], 10.0, 1e-9);
}

TEST(AtmResizeTest, DiscretizationAddsSafetyMargin) {
    ResizeInput input = simple_input();
    input.epsilon = 1.0;  // demands round up to integers (already integral)
    const auto with_eps = atm_resize(input);
    EXPECT_EQ(with_eps.tickets, 0);
    input.epsilon = 4.0;  // 6 -> 8, 1 -> 4: more aggressive allocation
    const auto coarse = atm_resize(input);
    // 8/0.6 = 13.33 > 12 alone: budget forces a downgrade somewhere, but
    // capacities stay within budget.
    double used = 0.0;
    for (double c : coarse.capacities) used += c;
    EXPECT_LE(used, 12.0 + 1e-9);
}

TEST(AtmResizeTest, RespectsLowerBounds) {
    ResizeInput input = simple_input();
    input.lower_bounds = {6.0, 1.0};  // peak demands must stay covered
    const auto result = atm_resize(input);
    EXPECT_GE(result.capacities[0], 6.0 - 1e-9);
    EXPECT_GE(result.capacities[1], 1.0 - 1e-9);
}

TEST(AtmResizeTest, InfeasibleLowerBoundsAreDropped) {
    ResizeInput input = simple_input();
    input.lower_bounds = {10.0, 5.0};  // sum 15 > budget 12
    const auto result = atm_resize(input);  // falls back to no bounds
    double used = 0.0;
    for (double c : result.capacities) used += c;
    EXPECT_LE(used, 12.0 + 1e-9);
}

TEST(AtmResizeTest, PerVmEpsilonOverrides) {
    ResizeInput input = simple_input();
    input.epsilon = 100.0;            // absurd scalar...
    input.epsilons = {0.5, 0.5};      // ...overridden per-VM
    const auto result = atm_resize(input);
    EXPECT_EQ(result.tickets, 0);
}

TEST(AtmExactTest, NoWorseThanGreedy) {
    ResizeInput input = simple_input();
    input.total_capacity = 9.0;  // not enough for zero tickets
    const auto greedy = atm_resize(input);
    const auto exact = atm_resize_exact(input);
    EXPECT_LE(exact.tickets, greedy.tickets);
}

TEST(MaxMinTest, AmpleCapacitySatisfiesAll) {
    const auto result = max_min_fairness_resize(simple_input());
    EXPECT_EQ(result.tickets, 0);
    EXPECT_NEAR(result.capacities[0], 10.0, 1e-9);
    EXPECT_NEAR(result.capacities[1], 1.0 / 0.6, 1e-9);
}

TEST(MaxMinTest, ScarcityPunishesLargeVm) {
    ResizeInput input = simple_input();
    input.total_capacity = 6.0;
    const auto result = max_min_fairness_resize(input);
    // Small VM's request (1.67) is below the fair share -> fully granted;
    // the big VM gets the remainder and keeps ticketing.
    EXPECT_NEAR(result.capacities[1], 1.0 / 0.6, 1e-9);
    EXPECT_NEAR(result.capacities[0], 6.0 - 1.0 / 0.6, 1e-9);
    EXPECT_GT(result.tickets, 0);
}

TEST(MaxMinTest, WaterFillingSplitsEqually) {
    ResizeInput input;
    input.demands = {{6.0}, {6.0}, {6.0}};
    input.total_capacity = 9.0;
    input.alpha = 1.0;
    const auto result = max_min_fairness_resize(input);
    for (double c : result.capacities) EXPECT_NEAR(c, 3.0, 1e-9);
}

TEST(StingyTest, AllocatesPeakIgnoringThreshold) {
    const auto result = stingy_resize(simple_input());
    EXPECT_NEAR(result.capacities[0], 6.0, 1e-12);
    EXPECT_NEAR(result.capacities[1], 1.0, 1e-12);
    // Peak windows run at exactly 100% of allocation > 60% -> tickets.
    EXPECT_GT(result.tickets, 0);
}

TEST(PolicyDispatchTest, AllPoliciesRun) {
    for (ResizePolicy p :
         {ResizePolicy::kAtmGreedy, ResizePolicy::kAtmGreedyNoDiscretization,
          ResizePolicy::kMaxMinFairness, ResizePolicy::kStingy}) {
        const auto result = apply_policy(p, simple_input());
        EXPECT_EQ(result.capacities.size(), 2u) << to_string(p);
        double used = 0.0;
        for (double c : result.capacities) used += c;
        EXPECT_LE(used, 12.0 + 1e-9) << to_string(p);
    }
}

TEST(PolicyDispatchTest, AtmBeatsBaselinesUnderContention) {
    // Representative contention: one hot, three mild VMs; budget below the
    // zero-ticket point.
    ResizeInput input;
    input.demands = {
        {8, 8, 8, 8, 3, 3}, {2, 2, 2, 2, 2, 2}, {1, 2, 1, 2, 1, 2},
        {3, 1, 3, 1, 3, 1}};
    input.total_capacity = 18.0;
    input.alpha = 0.6;
    const int atm = apply_policy(ResizePolicy::kAtmGreedy, input).tickets;
    const int maxmin = apply_policy(ResizePolicy::kMaxMinFairness, input).tickets;
    const int stingy = apply_policy(ResizePolicy::kStingy, input).tickets;
    EXPECT_LE(atm, maxmin);
    EXPECT_LE(atm, stingy);
}

TEST(PolicyValidationTest, BadInputsThrow) {
    ResizeInput input = simple_input();
    input.alpha = 0.0;
    EXPECT_THROW(atm_resize(input), std::invalid_argument);
    input = simple_input();
    input.demands.clear();
    EXPECT_THROW(atm_resize(input), std::invalid_argument);
    input = simple_input();
    input.lower_bounds = {1.0};
    EXPECT_THROW(atm_resize(input), std::invalid_argument);
    input = simple_input();
    input.epsilons = {1.0};
    EXPECT_THROW(atm_resize(input), std::invalid_argument);
}

TEST(TicketsForAllocationTest, CountsStrictViolations) {
    const std::vector<std::vector<double>> demands{{5.9, 6.0, 6.1}};
    EXPECT_EQ(tickets_for_allocation(demands, {10.0}, 0.6), 1);
    EXPECT_THROW(tickets_for_allocation(demands, {1.0, 2.0}, 0.6),
                 std::invalid_argument);
}

// Property: ATM resize never exceeds the budget and never tickets a window
// whose demand was coverable within the per-VM upper bound, when there is
// ample total capacity.
class ResizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ResizePropertyTest, AmpleCapacityMeansZeroTickets) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 7919);
    std::uniform_real_distribution<double> demand_dist(0.0, 8.0);
    std::uniform_int_distribution<int> vm_count(2, 8);
    ResizeInput input;
    const int m = vm_count(rng);
    double peak_sum = 0.0;
    for (int i = 0; i < m; ++i) {
        std::vector<double> d(24);
        for (double& v : d) v = demand_dist(rng);
        peak_sum += *std::max_element(d.begin(), d.end());
        input.demands.push_back(std::move(d));
    }
    input.alpha = 0.6;
    input.total_capacity = peak_sum / input.alpha + 1.0;  // ample
    const auto result = atm_resize(input);
    EXPECT_EQ(result.tickets, 0);
    double used = 0.0;
    for (double c : result.capacities) used += c;
    EXPECT_LE(used, input.total_capacity + 1e-9);
}

TEST_P(ResizePropertyTest, TicketsMonotoneInBudget) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()) * 104729);
    std::uniform_real_distribution<double> demand_dist(0.0, 10.0);
    ResizeInput input;
    for (int i = 0; i < 4; ++i) {
        std::vector<double> d(16);
        for (double& v : d) v = demand_dist(rng);
        input.demands.push_back(std::move(d));
    }
    input.alpha = 0.6;
    int prev = std::numeric_limits<int>::max();
    for (double budget : {10.0, 20.0, 40.0, 80.0}) {
        input.total_capacity = budget;
        const int tickets = atm_resize(input).tickets;
        EXPECT_LE(tickets, prev) << "budget " << budget;
        prev = tickets;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResizePropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace atm::resize
