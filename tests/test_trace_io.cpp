#include <gtest/gtest.h>

#include <sstream>

#include "tracegen/generator.hpp"
#include "tracegen/trace_io.hpp"

namespace atm::trace {
namespace {

Trace small_trace() {
    TraceGenOptions options;
    options.num_boxes = 4;
    options.num_days = 1;
    options.seed = 5;
    return generate_trace(options);
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
    const Trace original = small_trace();
    std::stringstream buffer;
    write_trace_csv(buffer, original);
    const Trace loaded = read_trace_csv(buffer, original.windows_per_day);

    ASSERT_EQ(loaded.boxes.size(), original.boxes.size());
    for (std::size_t b = 0; b < original.boxes.size(); ++b) {
        const BoxTrace& ob = original.boxes[b];
        const BoxTrace& lb = loaded.boxes[b];
        EXPECT_EQ(lb.name, ob.name);
        EXPECT_EQ(lb.has_gaps, ob.has_gaps);
        EXPECT_NEAR(lb.cpu_capacity_ghz, ob.cpu_capacity_ghz, 1e-6);
        ASSERT_EQ(lb.vms.size(), ob.vms.size());
        for (std::size_t v = 0; v < ob.vms.size(); ++v) {
            EXPECT_EQ(lb.vms[v].name, ob.vms[v].name);
            ASSERT_EQ(lb.vms[v].cpu_usage_pct.size(), ob.vms[v].cpu_usage_pct.size());
            for (std::size_t t = 0; t < ob.vms[v].cpu_usage_pct.size(); ++t) {
                EXPECT_NEAR(lb.vms[v].cpu_usage_pct[t], ob.vms[v].cpu_usage_pct[t], 1e-4);
                EXPECT_NEAR(lb.vms[v].ram_demand_gb[t], ob.vms[v].ram_demand_gb[t], 1e-4);
            }
        }
    }
}

TEST(TraceIoTest, BlankDemandColumnsDeriveFromUsage) {
    std::stringstream in(
        "box,vm,window,cpu_capacity_ghz,ram_capacity_gb,cpu_usage_pct,ram_usage_pct,cpu_demand_ghz,ram_demand_gb\n"
        "#box,b0,10,20,0\n"
        "b0,vm0,0,4,8,50,25,,\n"
        "b0,vm0,1,4,8,75,50,,\n");
    const Trace t = read_trace_csv(in);
    ASSERT_EQ(t.boxes.size(), 1u);
    ASSERT_EQ(t.boxes[0].vms.size(), 1u);
    const VmTrace& vm = t.boxes[0].vms[0];
    EXPECT_DOUBLE_EQ(vm.cpu_demand_ghz[0], 2.0);   // 50% of 4 GHz
    EXPECT_DOUBLE_EQ(vm.cpu_demand_ghz[1], 3.0);
    EXPECT_DOUBLE_EQ(vm.ram_demand_gb[1], 4.0);    // 50% of 8 GB
}

TEST(TraceIoTest, MultipleVmsAndBoxes) {
    std::stringstream in(
        "#box,alpha,10,20,0\n"
        "alpha,vm0,0,4,8,50,25,2,2\n"
        "alpha,vm1,0,2,4,10,10,0.2,0.4\n"
        "#box,beta,5,10,1\n"
        "beta,vmX,0,1,2,99,99,1.5,2.5\n");
    const Trace t = read_trace_csv(in);
    ASSERT_EQ(t.boxes.size(), 2u);
    EXPECT_EQ(t.boxes[0].vms.size(), 2u);
    EXPECT_EQ(t.boxes[1].vms.size(), 1u);
    EXPECT_TRUE(t.boxes[1].has_gaps);
    EXPECT_DOUBLE_EQ(t.boxes[1].vms[0].cpu_demand_ghz[0], 1.5);
}

TEST(TraceIoTest, MalformedInputsThrowWithLineNumbers) {
    // Row before any #box directive.
    std::stringstream orphan("b0,vm0,0,4,8,50,25,2,2\n");
    EXPECT_THROW(read_trace_csv(orphan), std::runtime_error);

    // Wrong field count.
    std::stringstream short_row("#box,b0,1,1,0\nb0,vm0,0,4,8\n");
    EXPECT_THROW(read_trace_csv(short_row), std::runtime_error);

    // Out-of-order windows.
    std::stringstream bad_order(
        "#box,b0,1,1,0\n"
        "b0,vm0,0,4,8,50,25,2,2\n"
        "b0,vm0,2,4,8,50,25,2,2\n");
    EXPECT_THROW(read_trace_csv(bad_order), std::runtime_error);

    // Unparseable number.
    std::stringstream bad_number("#box,b0,1,1,0\nb0,vm0,0,four,8,50,25,2,2\n");
    EXPECT_THROW(read_trace_csv(bad_number), std::runtime_error);
}

TEST(TraceIoTest, RejectsNonFiniteAndNegativeSamples) {
    // std::from_chars happily parses "nan", "inf" and negative numbers;
    // none of them are valid monitoring samples and each must be rejected
    // with the offending line number.
    const auto expect_rejected = [](const std::string& csv,
                                    const std::string& line,
                                    const std::string& needle) {
        std::stringstream in(csv);
        try {
            read_trace_csv(in);
            FAIL() << "expected rejection: " << needle;
        } catch (const std::runtime_error& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("line " + line), std::string::npos) << what;
            EXPECT_NE(what.find(needle), std::string::npos) << what;
        }
    };
    expect_rejected("#box,b0,1,1,0\nb0,vm0,0,4,8,nan,25,2,2\n", "2",
                    "non-finite cpu usage");
    expect_rejected("#box,b0,1,1,0\nb0,vm0,0,inf,8,50,25,2,2\n", "2",
                    "non-finite vm cpu capacity");
    expect_rejected("#box,b0,1,1,0\nb0,vm0,0,4,8,50,25,2,-3\n", "2",
                    "negative ram demand");
    expect_rejected("#box,b0,-1,1,0\n", "1", "negative box cpu capacity");
}

TEST(TraceIoTest, MissingFileThrows) {
    EXPECT_THROW(read_trace_csv_file("/nonexistent/trace.csv"),
                 std::runtime_error);
    const Trace t = small_trace();
    EXPECT_THROW(write_trace_csv_file("/nonexistent/dir/trace.csv", t),
                 std::runtime_error);
}

TEST(TraceIoTest, EmptyInputIsEmptyTrace) {
    std::stringstream empty;
    const Trace t = read_trace_csv(empty);
    EXPECT_TRUE(t.boxes.empty());
}

}  // namespace
}  // namespace atm::trace
