#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

#include "forecast/ar.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/mlp_forecaster.hpp"
#include "forecast/nn.hpp"
#include "forecast/seasonal_naive.hpp"
#include "timeseries/stats.hpp"

namespace atm::forecast {
namespace {

std::vector<double> diurnal_series(int days, int period, double noise_sigma,
                                   unsigned seed) {
    std::mt19937 rng(seed);
    std::normal_distribution<double> noise(0.0, noise_sigma);
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(days * period));
    for (int t = 0; t < days * period; ++t) {
        const double tod = static_cast<double>(t % period) / period;
        out.push_back(50.0 + 25.0 * std::sin(2.0 * std::numbers::pi * tod) +
                      noise(rng));
    }
    return out;
}

TEST(SeasonalNaiveTest, RepeatsLastSeason) {
    SeasonalNaiveForecaster model(4);
    const std::vector<double> history{1, 2, 3, 4, 5, 6, 7, 8};
    model.fit(history);
    const auto pred = model.forecast(6);
    ASSERT_EQ(pred.size(), 6u);
    EXPECT_DOUBLE_EQ(pred[0], 5.0);
    EXPECT_DOUBLE_EQ(pred[3], 8.0);
    EXPECT_DOUBLE_EQ(pred[4], 5.0);  // wraps within the last season
}

TEST(SeasonalNaiveTest, ShortHistoryFallsBackToLastValue) {
    SeasonalNaiveForecaster model(10);
    const std::vector<double> history{3, 7};
    model.fit(history);
    const auto pred = model.forecast(3);
    for (double v : pred) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(SeasonalNaiveTest, ErrorsOnMisuse) {
    EXPECT_THROW(SeasonalNaiveForecaster(0), std::invalid_argument);
    SeasonalNaiveForecaster model(4);
    EXPECT_THROW(model.forecast(1), std::logic_error);
    EXPECT_THROW(model.fit(std::vector<double>{}), std::invalid_argument);
}

TEST(SeasonalNaiveTest, PerfectOnExactlyPeriodicData) {
    const auto series = diurnal_series(3, 24, 0.0, 1);
    SeasonalNaiveForecaster model(24);
    const std::vector<double> history(series.begin(), series.end() - 24);
    model.fit(history);
    const auto pred = model.forecast(24);
    for (int t = 0; t < 24; ++t) {
        EXPECT_NEAR(pred[static_cast<std::size_t>(t)],
                    series[series.size() - 24 + static_cast<std::size_t>(t)], 1e-9);
    }
}

TEST(ArTest, RecoversAr1Coefficient) {
    // x_t = 0.8 x_{t-1} + eps
    std::mt19937 rng(2);
    std::normal_distribution<double> noise(0.0, 0.1);
    std::vector<double> xs(500);
    xs[0] = 0.0;
    for (std::size_t t = 1; t < xs.size(); ++t) xs[t] = 0.8 * xs[t - 1] + noise(rng);
    ArForecaster model(1);
    model.fit(xs);
    ASSERT_EQ(model.coefficients().size(), 2u);
    EXPECT_NEAR(model.coefficients()[1], 0.8, 0.08);
}

TEST(ArTest, IteratedForecastDecaysTowardMean) {
    std::mt19937 rng(4);
    std::normal_distribution<double> noise(0.0, 0.05);
    std::vector<double> xs(400);
    xs[0] = 5.0;
    for (std::size_t t = 1; t < xs.size(); ++t) {
        xs[t] = 2.0 + 0.6 * xs[t - 1] + noise(rng);  // mean = 5
    }
    ArForecaster model(1);
    model.fit(xs);
    const auto pred = model.forecast(50);
    EXPECT_NEAR(pred.back(), 5.0, 0.5);
}

TEST(ArTest, DegradesGracefullyOnTinyHistory) {
    ArForecaster model(6);
    const std::vector<double> tiny{42.0, 43.0};
    model.fit(tiny);
    const auto pred = model.forecast(3);
    for (double v : pred) EXPECT_DOUBLE_EQ(v, 43.0);
}

TEST(ArTest, SeasonalTermImprovesDiurnalForecast) {
    const auto series = diurnal_series(5, 48, 1.0, 5);
    const std::vector<double> history(series.begin(), series.end() - 48);
    const std::vector<double> actual(series.end() - 48, series.end());

    ArForecaster plain(3);
    plain.fit(history);
    ArForecaster seasonal(3, 48);
    seasonal.fit(history);

    const double err_plain =
        ts::mean_absolute_percentage_error(actual, plain.forecast(48));
    const double err_seasonal =
        ts::mean_absolute_percentage_error(actual, seasonal.forecast(48));
    EXPECT_LT(err_seasonal, err_plain);
}

TEST(ArTest, ConstructorValidation) {
    EXPECT_THROW(ArForecaster(0), std::invalid_argument);
    EXPECT_THROW(ArForecaster(2, -1), std::invalid_argument);
}

TEST(MlpNetworkTest, LearnsLinearFunction) {
    MlpNetwork net({2, 1}, Activation::kTanh, 3);
    std::mt19937 rng(6);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (int i = 0; i < 300; ++i) {
        const double a = dist(rng);
        const double b = dist(rng);
        inputs.push_back({a, b});
        targets.push_back(0.3 * a + 0.5 * b + 0.1);
    }
    MlpTrainOptions options;
    options.epochs = 200;
    options.validation_fraction = 0.0;
    net.train(inputs, targets, options);
    double max_err = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        max_err = std::max(max_err, std::abs(net.predict(inputs[i]) - targets[i]));
    }
    EXPECT_LT(max_err, 0.05);
}

TEST(MlpNetworkTest, LearnsNonlinearFunction) {
    MlpNetwork net({1, 10, 1}, Activation::kTanh, 7);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (int i = 0; i < 200; ++i) {
        const double x = static_cast<double>(i) / 200.0;
        inputs.push_back({x});
        targets.push_back(std::sin(2.0 * std::numbers::pi * x) * 0.4 + 0.5);
    }
    MlpTrainOptions options;
    options.epochs = 400;
    options.learning_rate = 0.08;
    options.validation_fraction = 0.0;
    net.train(inputs, targets, options);
    double mse = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const double e = net.predict(inputs[i]) - targets[i];
        mse += e * e;
    }
    mse /= static_cast<double>(inputs.size());
    EXPECT_LT(mse, 0.01);
}

TEST(MlpNetworkTest, DeterministicGivenSeed) {
    const std::vector<std::vector<double>> inputs{{0.1}, {0.5}, {0.9}, {0.3}};
    const std::vector<double> targets{0.2, 0.6, 1.0, 0.4};
    MlpTrainOptions options;
    options.epochs = 50;
    options.validation_fraction = 0.0;

    MlpNetwork a({1, 4, 1}, Activation::kTanh, 42);
    MlpNetwork b({1, 4, 1}, Activation::kTanh, 42);
    a.train(inputs, targets, options);
    b.train(inputs, targets, options);
    const std::vector<double> probe{0.7};
    EXPECT_DOUBLE_EQ(a.predict(probe), b.predict(probe));
}

TEST(MlpNetworkTest, ParameterCount) {
    const MlpNetwork net({3, 5, 1}, Activation::kRelu, 1);
    // (3*5 + 5) + (5*1 + 1) = 26
    EXPECT_EQ(net.parameter_count(), 26u);
}

TEST(MlpNetworkTest, Validation) {
    EXPECT_THROW(MlpNetwork({3}, Activation::kTanh, 1), std::invalid_argument);
    EXPECT_THROW(MlpNetwork({3, 2}, Activation::kTanh, 1), std::invalid_argument);
    MlpNetwork net({2, 1}, Activation::kTanh, 1);
    const std::vector<double> short_input{1.0};
    EXPECT_THROW(static_cast<void>(net.predict(short_input)), std::invalid_argument);
    EXPECT_THROW(net.train(std::vector<std::vector<double>>{},
                           std::vector<double>{}, {}),
                 std::invalid_argument);
}

class ActivationTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationTest, AllActivationsLearnIdentityScaled) {
    MlpNetwork net({1, 6, 1}, GetParam(), 11);
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (int i = 0; i < 100; ++i) {
        const double x = static_cast<double>(i) / 100.0;
        inputs.push_back({x});
        targets.push_back(0.8 * x + 0.1);
    }
    MlpTrainOptions options;
    options.epochs = 300;
    options.validation_fraction = 0.0;
    net.train(inputs, targets, options);
    double mse = 0.0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        const double e = net.predict(inputs[i]) - targets[i];
        mse += e * e;
    }
    EXPECT_LT(mse / 100.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationTest,
                         ::testing::Values(Activation::kTanh, Activation::kRelu,
                                           Activation::kSigmoid));

TEST(MlpForecasterTest, TracksDiurnalPattern) {
    const auto series = diurnal_series(5, 48, 1.5, 13);
    const std::vector<double> history(series.begin(), series.end() - 48);
    const std::vector<double> actual(series.end() - 48, series.end());

    MlpForecasterOptions options;
    options.seasonal_period = 48;
    MlpForecaster model(options);
    model.fit(history);
    const auto pred = model.forecast(48);
    const double ape = ts::mean_absolute_percentage_error(actual, pred);
    EXPECT_LT(ape, 0.15);
}

TEST(MlpForecasterTest, ConstantSeriesPredictsConstant) {
    MlpForecaster model;
    const std::vector<double> flat(300, 42.0);
    model.fit(flat);
    for (double v : model.forecast(10)) EXPECT_DOUBLE_EQ(v, 42.0);
}

TEST(MlpForecasterTest, TinyHistoryPredictsLastValue) {
    MlpForecaster model;
    const std::vector<double> tiny{1.0, 2.0, 3.0};
    model.fit(tiny);
    for (double v : model.forecast(5)) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(MlpForecasterTest, ForecastStaysInPlausibleRange) {
    const auto series = diurnal_series(5, 48, 3.0, 17);
    MlpForecaster model;
    model.fit(series);
    for (double v : model.forecast(96)) {
        EXPECT_GT(v, -30.0);
        EXPECT_LT(v, 130.0);
    }
}

TEST(MlpForecasterTest, MisuseThrows) {
    MlpForecaster model;
    EXPECT_THROW(model.forecast(1), std::logic_error);
    EXPECT_THROW(model.fit(std::vector<double>{}), std::invalid_argument);
    MlpForecasterOptions bad;
    bad.num_lags = 0;
    EXPECT_THROW(MlpForecaster{bad}, std::invalid_argument);
}

TEST(FactoryTest, CreatesEveryModel) {
    for (TemporalModel m : {TemporalModel::kSeasonalNaive,
                            TemporalModel::kAutoregressive,
                            TemporalModel::kNeuralNetwork}) {
        const auto f = make_forecaster(m, 48);
        ASSERT_NE(f, nullptr);
        EXPECT_EQ(f->name(), to_string(m));
    }
}

TEST(FactoryTest, ModelsBeatNothingOnSeasonalData) {
    // Sanity: every built-in model forecasts a clean diurnal series with
    // bounded error over one day.
    const auto series = diurnal_series(6, 48, 1.0, 19);
    const std::vector<double> history(series.begin(), series.end() - 48);
    const std::vector<double> actual(series.end() - 48, series.end());
    for (TemporalModel m : {TemporalModel::kSeasonalNaive,
                            TemporalModel::kAutoregressive,
                            TemporalModel::kNeuralNetwork}) {
        const auto f = make_forecaster(m, 48);
        f->fit(history);
        const double ape =
            ts::mean_absolute_percentage_error(actual, f->forecast(48));
        EXPECT_LT(ape, 0.2) << to_string(m);
    }
}

}  // namespace
}  // namespace atm::forecast
