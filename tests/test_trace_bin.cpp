// Binary trace format (atm.trace.bin.v1, src/tracegen/trace_binary.hpp):
// pack -> mmap-load -> unpack round trips bit-identically against the
// CSV loader, and malformed files (truncation, bad magic, wrong
// endianness, corrupted payload) are rejected with the structured
// PipelineError taxonomy instead of producing garbage traces.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/errors.hpp"
#include "exec/fault.hpp"
#include "obs/metrics.hpp"
#include "tracegen/generator.hpp"
#include "tracegen/trace_binary.hpp"
#include "tracegen/trace_io.hpp"

namespace atm::trace {
namespace {

Trace small_trace() {
    TraceGenOptions options;
    options.num_boxes = 4;
    options.num_days = 2;
    options.gappy_box_fraction = 0.25;
    options.seed = 11;
    return generate_trace(options);
}

std::string temp_path(const std::string& name) {
    return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Bitwise equality of two loaded traces — the binary loader's contract
/// is *exact* sample reproduction, so EXPECT_NEAR would be too weak.
void expect_bit_identical(const Trace& a, const Trace& b) {
    EXPECT_EQ(a.windows_per_day, b.windows_per_day);
    ASSERT_EQ(a.boxes.size(), b.boxes.size());
    for (std::size_t i = 0; i < a.boxes.size(); ++i) {
        const BoxTrace& x = a.boxes[i];
        const BoxTrace& y = b.boxes[i];
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.has_gaps, y.has_gaps);
        EXPECT_EQ(x.cpu_capacity_ghz, y.cpu_capacity_ghz);
        EXPECT_EQ(x.ram_capacity_gb, y.ram_capacity_gb);
        ASSERT_EQ(x.vms.size(), y.vms.size());
        for (std::size_t v = 0; v < x.vms.size(); ++v) {
            EXPECT_EQ(x.vms[v].name, y.vms[v].name);
            EXPECT_EQ(x.vms[v].cpu_capacity_ghz, y.vms[v].cpu_capacity_ghz);
            EXPECT_EQ(x.vms[v].ram_capacity_gb, y.vms[v].ram_capacity_gb);
            for (const auto& [xs, ys] :
                 {std::pair{&x.vms[v].cpu_usage_pct, &y.vms[v].cpu_usage_pct},
                  std::pair{&x.vms[v].ram_usage_pct, &y.vms[v].ram_usage_pct},
                  std::pair{&x.vms[v].cpu_demand_ghz, &y.vms[v].cpu_demand_ghz},
                  std::pair{&x.vms[v].ram_demand_gb, &y.vms[v].ram_demand_gb}}) {
                EXPECT_EQ(xs->name(), ys->name());
                ASSERT_EQ(xs->size(), ys->size());
                for (std::size_t t = 0; t < xs->size(); ++t) {
                    // operator== on doubles: bit-identity for finite
                    // non-zero values, which generated traces are.
                    EXPECT_EQ((*xs)[t], (*ys)[t]) << "sample " << t;
                }
            }
        }
    }
}

TEST(TraceBinaryTest, PackLoadRoundTripIsBitIdentical) {
    const Trace original = small_trace();
    const std::string path = temp_path("atm_trace_roundtrip.bin");
    write_trace_binary_file(path, original);
    const Trace loaded = read_trace_binary_file(path);
    expect_bit_identical(original, loaded);
}

TEST(TraceBinaryTest, BinaryLoadMatchesCsvLoadBitForBit) {
    // The full pack/unpack pipeline: the binary loader must reproduce
    // exactly what the CSV round trip reproduces, so a packed trace is a
    // drop-in replacement for its CSV source.
    const Trace original = small_trace();
    const std::string csv_path = temp_path("atm_trace_equiv.csv");
    const std::string bin_path = temp_path("atm_trace_equiv.bin");
    write_trace_csv_file(csv_path.c_str(), original);
    const Trace from_csv =
        read_trace_csv_file(csv_path.c_str(), original.windows_per_day);
    write_trace_binary_file(bin_path, from_csv);
    const Trace from_bin = read_trace_binary_file(bin_path);
    expect_bit_identical(from_csv, from_bin);
}

TEST(TraceBinaryTest, UnpackReproducesTheSourceCsvByteForByte) {
    const Trace original = small_trace();
    const std::string csv_a = temp_path("atm_trace_unpack_a.csv");
    const std::string bin = temp_path("atm_trace_unpack.bin");
    const std::string csv_b = temp_path("atm_trace_unpack_b.csv");
    write_trace_csv_file(csv_a.c_str(), original);
    // CSV -> binary -> CSV: the final CSV must equal the first byte for
    // byte (doubles are serialized at full round-trip precision).
    const Trace loaded =
        read_trace_csv_file(csv_a.c_str(), original.windows_per_day);
    write_trace_binary_file(bin, loaded);
    write_trace_csv_file(csv_b.c_str(), read_trace_binary_file(bin));
    EXPECT_EQ(slurp(csv_a), slurp(csv_b));
}

TEST(TraceBinaryTest, SniffingLoaderAcceptsBothFormats) {
    const Trace original = small_trace();
    const std::string csv_path = temp_path("atm_trace_sniff.csv");
    const std::string bin_path = temp_path("atm_trace_sniff.bin");
    write_trace_csv_file(csv_path.c_str(), original);
    // Pack from the CSV-loaded trace: CSV text serialization may round
    // at the ULP level, and the bit-identity contract is between the
    // two *loaders*, not across the lossy text encoding.
    const Trace via_csv =
        read_trace_any_file(csv_path, original.windows_per_day);
    write_trace_binary_file(bin_path, via_csv);
    EXPECT_FALSE(is_trace_binary_file(csv_path));
    EXPECT_TRUE(is_trace_binary_file(bin_path));
    const Trace via_bin =
        read_trace_any_file(bin_path, original.windows_per_day);
    expect_bit_identical(via_csv, via_bin);
}

TEST(TraceBinaryTest, LoaderRecordsTheCsvReadersCounters) {
    const Trace original = small_trace();
    const std::string path = temp_path("atm_trace_counters.bin");
    write_trace_binary_file(path, original);
    obs::MetricsRegistry metrics;
    const Trace loaded = read_trace_binary_file(path, &metrics);
    const obs::MetricsSnapshot snap = metrics.snapshot();
    EXPECT_EQ(snap.counter("trace.boxes"), loaded.boxes.size());
    EXPECT_EQ(snap.counter("trace.vms"), loaded.total_vms());
    std::uint64_t samples = 0;
    for (const BoxTrace& box : loaded.boxes) {
        for (const VmTrace& vm : box.vms) samples += vm.cpu_usage_pct.size();
    }
    EXPECT_EQ(snap.counter("trace.rows"), samples);
    EXPECT_EQ(snap.timers.count("trace.load"), 1u);
}

/// Expects read_trace_binary_file(path) to throw PipelineError with
/// kTraceInvalid and a message containing `needle`.
void expect_invalid(const std::string& path, const std::string& needle) {
    try {
        (void)read_trace_binary_file(path);
        FAIL() << "expected PipelineError for " << needle;
    } catch (const core::PipelineError& e) {
        EXPECT_EQ(e.code(), core::PipelineErrorCode::kTraceInvalid);
        EXPECT_EQ(e.stage(), std::string("trace"));
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(TraceBinaryTest, RejectsTruncatedFiles) {
    const std::string path = temp_path("atm_trace_truncated.bin");
    write_trace_binary_file(path, small_trace());
    const std::string whole = slurp(path);
    // Header cut short.
    spit(path, whole.substr(0, 40));
    expect_invalid(path, "header");
    // Payload cut short.
    spit(path, whole.substr(0, whole.size() - 16));
    expect_invalid(path, "truncated");
}

TEST(TraceBinaryTest, RejectsBadMagic) {
    const std::string path = temp_path("atm_trace_badmagic.bin");
    write_trace_binary_file(path, small_trace());
    std::string bytes = slurp(path);
    bytes[0] = 'X';
    spit(path, bytes);
    expect_invalid(path, "magic");
}

TEST(TraceBinaryTest, RejectsWrongEndianness) {
    const std::string path = temp_path("atm_trace_endian.bin");
    write_trace_binary_file(path, small_trace());
    std::string bytes = slurp(path);
    // Byte-swap the endianness tag at offset 8: exactly what the file
    // would look like written on an opposite-endian machine.
    std::swap(bytes[8], bytes[11]);
    std::swap(bytes[9], bytes[10]);
    spit(path, bytes);
    expect_invalid(path, "endian");
}

TEST(TraceBinaryTest, RejectsUnknownVersion) {
    const std::string path = temp_path("atm_trace_version.bin");
    write_trace_binary_file(path, small_trace());
    std::string bytes = slurp(path);
    const std::uint32_t version = 99;
    std::memcpy(&bytes[12], &version, sizeof(version));
    spit(path, bytes);
    expect_invalid(path, "version");
}

TEST(TraceBinaryTest, RejectsCorruptedPayload) {
    const std::string path = temp_path("atm_trace_corrupt.bin");
    write_trace_binary_file(path, small_trace());
    std::string bytes = slurp(path);
    // Flip one bit in the last payload byte: the fingerprint must catch
    // it before any sample reaches a pipeline.
    bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x40);
    spit(path, bytes);
    expect_invalid(path, "fingerprint");
}

TEST(TraceBinaryTest, RejectsNonFiniteSamples) {
    // A payload that fingerprints correctly but carries a NaN (e.g. a
    // buggy producer): per-sample validation still rejects it, same as
    // the CSV reader.
    Trace bad = small_trace();
    bad.boxes[0].vms[0].cpu_usage_pct.values()[3] =
        std::numeric_limits<double>::quiet_NaN();
    const std::string path = temp_path("atm_trace_nan.bin");
    write_trace_binary_file(path, bad);
    expect_invalid(path, "sample");
}

TEST(TraceBinaryTest, MissingFileThrowsPipelineError) {
    expect_invalid(temp_path("atm_trace_does_not_exist.bin"), "open");
}

TEST(TraceBinaryTest, FaultInjectionArmsPerBoxSite) {
    // The loader exposes the same "trace.box" chaos site as the CSV
    // reader, keyed by box position, so fault plans behave identically
    // on both formats.
    const Trace original = small_trace();
    const std::string path = temp_path("atm_trace_fault.bin");
    write_trace_binary_file(path, original);
    const exec::FaultPlan plan = exec::FaultPlan::parse("trace.box=throw@1", 3);
    EXPECT_THROW(
        { (void)read_trace_binary_file(path, nullptr, &plan); },
        exec::InjectedFault);
    // A null plan is inert.
    EXPECT_NO_THROW({ (void)read_trace_binary_file(path, nullptr, nullptr); });
}

TEST(TraceBinaryTest, HeaderMetadataWinsOverCallerWindowsPerDay) {
    // read_trace_any_file's windows_per_day parameter is for CSV files
    // only; a binary file carries its own.
    TraceGenOptions options;
    options.num_boxes = 1;
    options.num_days = 1;
    options.windows_per_day = 48;
    options.seed = 7;
    const Trace original = generate_trace(options);
    const std::string path = temp_path("atm_trace_wpd.bin");
    write_trace_binary_file(path, original);
    const Trace loaded = read_trace_any_file(path, /*windows_per_day=*/96);
    EXPECT_EQ(loaded.windows_per_day, 48);
}

}  // namespace
}  // namespace atm::trace
