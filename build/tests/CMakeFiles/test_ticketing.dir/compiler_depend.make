# Empty compiler generated dependencies file for test_ticketing.
# This may be replaced when dependencies are built.
