# Empty dependencies file for test_tracegen.
# This may be replaced when dependencies are built.
