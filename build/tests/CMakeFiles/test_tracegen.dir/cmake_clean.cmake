file(REMOVE_RECURSE
  "CMakeFiles/test_tracegen.dir/test_tracegen.cpp.o"
  "CMakeFiles/test_tracegen.dir/test_tracegen.cpp.o.d"
  "test_tracegen"
  "test_tracegen.pdb"
  "test_tracegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
