# Empty compiler generated dependencies file for test_nn_gradients.
# This may be replaced when dependencies are built.
