file(REMOVE_RECURSE
  "CMakeFiles/test_nn_gradients.dir/test_nn_gradients.cpp.o"
  "CMakeFiles/test_nn_gradients.dir/test_nn_gradients.cpp.o.d"
  "test_nn_gradients"
  "test_nn_gradients.pdb"
  "test_nn_gradients[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
