file(REMOVE_RECURSE
  "CMakeFiles/test_mediawiki.dir/test_mediawiki.cpp.o"
  "CMakeFiles/test_mediawiki.dir/test_mediawiki.cpp.o.d"
  "test_mediawiki"
  "test_mediawiki.pdb"
  "test_mediawiki[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mediawiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
