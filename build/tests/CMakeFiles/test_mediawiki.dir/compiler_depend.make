# Empty compiler generated dependencies file for test_mediawiki.
# This may be replaced when dependencies are built.
