# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_forecast[1]_include.cmake")
include("/root/repo/build/tests/test_tracegen[1]_include.cmake")
include("/root/repo/build/tests/test_ticketing[1]_include.cmake")
include("/root/repo/build/tests/test_resize[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mediawiki[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_ridge[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_backtest[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_nn_gradients[1]_include.cmake")
