file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_atm_tickets.dir/bench_fig10_atm_tickets.cpp.o"
  "CMakeFiles/bench_fig10_atm_tickets.dir/bench_fig10_atm_tickets.cpp.o.d"
  "bench_fig10_atm_tickets"
  "bench_fig10_atm_tickets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_atm_tickets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
