# Empty compiler generated dependencies file for bench_fig10_atm_tickets.
# This may be replaced when dependencies are built.
