# Empty dependencies file for bench_ablation_dtw_band.
# This may be replaced when dependencies are built.
