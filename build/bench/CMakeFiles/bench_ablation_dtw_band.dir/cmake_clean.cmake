file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dtw_band.dir/bench_ablation_dtw_band.cpp.o"
  "CMakeFiles/bench_ablation_dtw_band.dir/bench_ablation_dtw_band.cpp.o.d"
  "bench_ablation_dtw_band"
  "bench_ablation_dtw_band.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dtw_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
