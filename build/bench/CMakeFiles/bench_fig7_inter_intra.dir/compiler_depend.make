# Empty compiler generated dependencies file for bench_fig7_inter_intra.
# This may be replaced when dependencies are built.
