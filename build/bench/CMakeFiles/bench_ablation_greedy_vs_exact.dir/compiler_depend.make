# Empty compiler generated dependencies file for bench_ablation_greedy_vs_exact.
# This may be replaced when dependencies are built.
