file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_tickets.dir/bench_fig2_tickets.cpp.o"
  "CMakeFiles/bench_fig2_tickets.dir/bench_fig2_tickets.cpp.o.d"
  "bench_fig2_tickets"
  "bench_fig2_tickets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tickets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
