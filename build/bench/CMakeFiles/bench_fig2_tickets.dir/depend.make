# Empty dependencies file for bench_fig2_tickets.
# This may be replaced when dependencies are built.
