# Empty compiler generated dependencies file for bench_fig6_twostep.
# This may be replaced when dependencies are built.
