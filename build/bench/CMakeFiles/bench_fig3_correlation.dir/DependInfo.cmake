
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_correlation.cpp" "bench/CMakeFiles/bench_fig3_correlation.dir/bench_fig3_correlation.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_correlation.dir/bench_fig3_correlation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mediawiki/CMakeFiles/atm_mediawiki.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/atm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/atm_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/atm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/ticketing/CMakeFiles/atm_ticketing.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/atm_tracegen.dir/DependInfo.cmake"
  "/root/repo/build/src/timeseries/CMakeFiles/atm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/resize/CMakeFiles/atm_resize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
