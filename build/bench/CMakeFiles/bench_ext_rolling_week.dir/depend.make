# Empty dependencies file for bench_ext_rolling_week.
# This may be replaced when dependencies are built.
