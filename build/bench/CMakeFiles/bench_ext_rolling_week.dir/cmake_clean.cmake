file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_rolling_week.dir/bench_ext_rolling_week.cpp.o"
  "CMakeFiles/bench_ext_rolling_week.dir/bench_ext_rolling_week.cpp.o.d"
  "bench_ext_rolling_week"
  "bench_ext_rolling_week.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rolling_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
