# Empty compiler generated dependencies file for bench_ablation_sigratio.
# This may be replaced when dependencies are built.
