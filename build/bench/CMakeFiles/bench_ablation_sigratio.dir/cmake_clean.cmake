file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sigratio.dir/bench_ablation_sigratio.cpp.o"
  "CMakeFiles/bench_ablation_sigratio.dir/bench_ablation_sigratio.cpp.o.d"
  "bench_ablation_sigratio"
  "bench_ablation_sigratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sigratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
