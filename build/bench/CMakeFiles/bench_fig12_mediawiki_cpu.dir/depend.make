# Empty dependencies file for bench_fig12_mediawiki_cpu.
# This may be replaced when dependencies are built.
