# Empty dependencies file for bench_fig13_mediawiki_perf.
# This may be replaced when dependencies are built.
