file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_drf.dir/bench_ext_drf.cpp.o"
  "CMakeFiles/bench_ext_drf.dir/bench_ext_drf.cpp.o.d"
  "bench_ext_drf"
  "bench_ext_drf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_drf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
