# Empty compiler generated dependencies file for bench_ext_drf.
# This may be replaced when dependencies are built.
