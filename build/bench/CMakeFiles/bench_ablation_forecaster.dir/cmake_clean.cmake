file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_forecaster.dir/bench_ablation_forecaster.cpp.o"
  "CMakeFiles/bench_ablation_forecaster.dir/bench_ablation_forecaster.cpp.o.d"
  "bench_ablation_forecaster"
  "bench_ablation_forecaster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forecaster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
