# Empty dependencies file for bench_ablation_forecaster.
# This may be replaced when dependencies are built.
