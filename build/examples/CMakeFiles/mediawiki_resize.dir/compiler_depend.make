# Empty compiler generated dependencies file for mediawiki_resize.
# This may be replaced when dependencies are built.
