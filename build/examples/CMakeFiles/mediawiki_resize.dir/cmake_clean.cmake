file(REMOVE_RECURSE
  "CMakeFiles/mediawiki_resize.dir/mediawiki_resize.cpp.o"
  "CMakeFiles/mediawiki_resize.dir/mediawiki_resize.cpp.o.d"
  "mediawiki_resize"
  "mediawiki_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediawiki_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
