file(REMOVE_RECURSE
  "CMakeFiles/calibrate_wiki.dir/calibrate_wiki.cpp.o"
  "CMakeFiles/calibrate_wiki.dir/calibrate_wiki.cpp.o.d"
  "calibrate_wiki"
  "calibrate_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
