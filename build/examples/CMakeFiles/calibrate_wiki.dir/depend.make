# Empty dependencies file for calibrate_wiki.
# This may be replaced when dependencies are built.
