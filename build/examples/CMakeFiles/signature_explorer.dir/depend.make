# Empty dependencies file for signature_explorer.
# This may be replaced when dependencies are built.
