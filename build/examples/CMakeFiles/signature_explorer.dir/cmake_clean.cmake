file(REMOVE_RECURSE
  "CMakeFiles/signature_explorer.dir/signature_explorer.cpp.o"
  "CMakeFiles/signature_explorer.dir/signature_explorer.cpp.o.d"
  "signature_explorer"
  "signature_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
