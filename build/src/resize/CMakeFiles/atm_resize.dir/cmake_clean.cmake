file(REMOVE_RECURSE
  "CMakeFiles/atm_resize.dir/drf.cpp.o"
  "CMakeFiles/atm_resize.dir/drf.cpp.o.d"
  "CMakeFiles/atm_resize.dir/mckp.cpp.o"
  "CMakeFiles/atm_resize.dir/mckp.cpp.o.d"
  "CMakeFiles/atm_resize.dir/policies.cpp.o"
  "CMakeFiles/atm_resize.dir/policies.cpp.o.d"
  "CMakeFiles/atm_resize.dir/reduced_demand.cpp.o"
  "CMakeFiles/atm_resize.dir/reduced_demand.cpp.o.d"
  "libatm_resize.a"
  "libatm_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
