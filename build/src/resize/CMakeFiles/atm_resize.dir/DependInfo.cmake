
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resize/drf.cpp" "src/resize/CMakeFiles/atm_resize.dir/drf.cpp.o" "gcc" "src/resize/CMakeFiles/atm_resize.dir/drf.cpp.o.d"
  "/root/repo/src/resize/mckp.cpp" "src/resize/CMakeFiles/atm_resize.dir/mckp.cpp.o" "gcc" "src/resize/CMakeFiles/atm_resize.dir/mckp.cpp.o.d"
  "/root/repo/src/resize/policies.cpp" "src/resize/CMakeFiles/atm_resize.dir/policies.cpp.o" "gcc" "src/resize/CMakeFiles/atm_resize.dir/policies.cpp.o.d"
  "/root/repo/src/resize/reduced_demand.cpp" "src/resize/CMakeFiles/atm_resize.dir/reduced_demand.cpp.o" "gcc" "src/resize/CMakeFiles/atm_resize.dir/reduced_demand.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
