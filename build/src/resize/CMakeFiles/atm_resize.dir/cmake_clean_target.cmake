file(REMOVE_RECURSE
  "libatm_resize.a"
)
