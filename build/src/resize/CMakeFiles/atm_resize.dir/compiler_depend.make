# Empty compiler generated dependencies file for atm_resize.
# This may be replaced when dependencies are built.
