file(REMOVE_RECURSE
  "libatm_tracegen.a"
)
