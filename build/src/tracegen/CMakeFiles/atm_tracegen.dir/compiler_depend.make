# Empty compiler generated dependencies file for atm_tracegen.
# This may be replaced when dependencies are built.
