file(REMOVE_RECURSE
  "CMakeFiles/atm_tracegen.dir/generator.cpp.o"
  "CMakeFiles/atm_tracegen.dir/generator.cpp.o.d"
  "CMakeFiles/atm_tracegen.dir/trace.cpp.o"
  "CMakeFiles/atm_tracegen.dir/trace.cpp.o.d"
  "CMakeFiles/atm_tracegen.dir/trace_io.cpp.o"
  "CMakeFiles/atm_tracegen.dir/trace_io.cpp.o.d"
  "libatm_tracegen.a"
  "libatm_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
