
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tracegen/generator.cpp" "src/tracegen/CMakeFiles/atm_tracegen.dir/generator.cpp.o" "gcc" "src/tracegen/CMakeFiles/atm_tracegen.dir/generator.cpp.o.d"
  "/root/repo/src/tracegen/trace.cpp" "src/tracegen/CMakeFiles/atm_tracegen.dir/trace.cpp.o" "gcc" "src/tracegen/CMakeFiles/atm_tracegen.dir/trace.cpp.o.d"
  "/root/repo/src/tracegen/trace_io.cpp" "src/tracegen/CMakeFiles/atm_tracegen.dir/trace_io.cpp.o" "gcc" "src/tracegen/CMakeFiles/atm_tracegen.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/atm_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
