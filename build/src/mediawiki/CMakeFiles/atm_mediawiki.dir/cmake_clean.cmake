file(REMOVE_RECURSE
  "CMakeFiles/atm_mediawiki.dir/simulator.cpp.o"
  "CMakeFiles/atm_mediawiki.dir/simulator.cpp.o.d"
  "CMakeFiles/atm_mediawiki.dir/testbed.cpp.o"
  "CMakeFiles/atm_mediawiki.dir/testbed.cpp.o.d"
  "libatm_mediawiki.a"
  "libatm_mediawiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_mediawiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
