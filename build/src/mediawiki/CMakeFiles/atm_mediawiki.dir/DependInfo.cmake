
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mediawiki/simulator.cpp" "src/mediawiki/CMakeFiles/atm_mediawiki.dir/simulator.cpp.o" "gcc" "src/mediawiki/CMakeFiles/atm_mediawiki.dir/simulator.cpp.o.d"
  "/root/repo/src/mediawiki/testbed.cpp" "src/mediawiki/CMakeFiles/atm_mediawiki.dir/testbed.cpp.o" "gcc" "src/mediawiki/CMakeFiles/atm_mediawiki.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/atm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/resize/CMakeFiles/atm_resize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
