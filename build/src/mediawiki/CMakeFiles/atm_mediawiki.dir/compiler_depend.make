# Empty compiler generated dependencies file for atm_mediawiki.
# This may be replaced when dependencies are built.
