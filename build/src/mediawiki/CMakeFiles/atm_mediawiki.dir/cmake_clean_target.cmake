file(REMOVE_RECURSE
  "libatm_mediawiki.a"
)
