file(REMOVE_RECURSE
  "CMakeFiles/atm_linalg.dir/matrix.cpp.o"
  "CMakeFiles/atm_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/atm_linalg.dir/ols.cpp.o"
  "CMakeFiles/atm_linalg.dir/ols.cpp.o.d"
  "CMakeFiles/atm_linalg.dir/ridge.cpp.o"
  "CMakeFiles/atm_linalg.dir/ridge.cpp.o.d"
  "libatm_linalg.a"
  "libatm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
