file(REMOVE_RECURSE
  "libatm_linalg.a"
)
