# Empty dependencies file for atm_linalg.
# This may be replaced when dependencies are built.
