file(REMOVE_RECURSE
  "CMakeFiles/atm_core.dir/pipeline.cpp.o"
  "CMakeFiles/atm_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/atm_core.dir/rolling.cpp.o"
  "CMakeFiles/atm_core.dir/rolling.cpp.o.d"
  "CMakeFiles/atm_core.dir/signature_search.cpp.o"
  "CMakeFiles/atm_core.dir/signature_search.cpp.o.d"
  "CMakeFiles/atm_core.dir/spatial_model.cpp.o"
  "CMakeFiles/atm_core.dir/spatial_model.cpp.o.d"
  "libatm_core.a"
  "libatm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
