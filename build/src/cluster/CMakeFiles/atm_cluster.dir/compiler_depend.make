# Empty compiler generated dependencies file for atm_cluster.
# This may be replaced when dependencies are built.
