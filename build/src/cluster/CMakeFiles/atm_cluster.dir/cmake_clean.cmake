file(REMOVE_RECURSE
  "CMakeFiles/atm_cluster.dir/cbc.cpp.o"
  "CMakeFiles/atm_cluster.dir/cbc.cpp.o.d"
  "CMakeFiles/atm_cluster.dir/dtw.cpp.o"
  "CMakeFiles/atm_cluster.dir/dtw.cpp.o.d"
  "CMakeFiles/atm_cluster.dir/hierarchical.cpp.o"
  "CMakeFiles/atm_cluster.dir/hierarchical.cpp.o.d"
  "CMakeFiles/atm_cluster.dir/kmedoids.cpp.o"
  "CMakeFiles/atm_cluster.dir/kmedoids.cpp.o.d"
  "libatm_cluster.a"
  "libatm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
