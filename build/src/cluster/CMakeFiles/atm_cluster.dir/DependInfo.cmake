
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cbc.cpp" "src/cluster/CMakeFiles/atm_cluster.dir/cbc.cpp.o" "gcc" "src/cluster/CMakeFiles/atm_cluster.dir/cbc.cpp.o.d"
  "/root/repo/src/cluster/dtw.cpp" "src/cluster/CMakeFiles/atm_cluster.dir/dtw.cpp.o" "gcc" "src/cluster/CMakeFiles/atm_cluster.dir/dtw.cpp.o.d"
  "/root/repo/src/cluster/hierarchical.cpp" "src/cluster/CMakeFiles/atm_cluster.dir/hierarchical.cpp.o" "gcc" "src/cluster/CMakeFiles/atm_cluster.dir/hierarchical.cpp.o.d"
  "/root/repo/src/cluster/kmedoids.cpp" "src/cluster/CMakeFiles/atm_cluster.dir/kmedoids.cpp.o" "gcc" "src/cluster/CMakeFiles/atm_cluster.dir/kmedoids.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/atm_timeseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
