file(REMOVE_RECURSE
  "libatm_cluster.a"
)
