file(REMOVE_RECURSE
  "libatm_ticketing.a"
)
