# Empty compiler generated dependencies file for atm_ticketing.
# This may be replaced when dependencies are built.
