
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ticketing/characterization.cpp" "src/ticketing/CMakeFiles/atm_ticketing.dir/characterization.cpp.o" "gcc" "src/ticketing/CMakeFiles/atm_ticketing.dir/characterization.cpp.o.d"
  "/root/repo/src/ticketing/incidents.cpp" "src/ticketing/CMakeFiles/atm_ticketing.dir/incidents.cpp.o" "gcc" "src/ticketing/CMakeFiles/atm_ticketing.dir/incidents.cpp.o.d"
  "/root/repo/src/ticketing/tickets.cpp" "src/ticketing/CMakeFiles/atm_ticketing.dir/tickets.cpp.o" "gcc" "src/ticketing/CMakeFiles/atm_ticketing.dir/tickets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/atm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/tracegen/CMakeFiles/atm_tracegen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
