file(REMOVE_RECURSE
  "CMakeFiles/atm_ticketing.dir/characterization.cpp.o"
  "CMakeFiles/atm_ticketing.dir/characterization.cpp.o.d"
  "CMakeFiles/atm_ticketing.dir/incidents.cpp.o"
  "CMakeFiles/atm_ticketing.dir/incidents.cpp.o.d"
  "CMakeFiles/atm_ticketing.dir/tickets.cpp.o"
  "CMakeFiles/atm_ticketing.dir/tickets.cpp.o.d"
  "libatm_ticketing.a"
  "libatm_ticketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_ticketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
