file(REMOVE_RECURSE
  "CMakeFiles/atm_forecast.dir/ar.cpp.o"
  "CMakeFiles/atm_forecast.dir/ar.cpp.o.d"
  "CMakeFiles/atm_forecast.dir/backtest.cpp.o"
  "CMakeFiles/atm_forecast.dir/backtest.cpp.o.d"
  "CMakeFiles/atm_forecast.dir/forecaster.cpp.o"
  "CMakeFiles/atm_forecast.dir/forecaster.cpp.o.d"
  "CMakeFiles/atm_forecast.dir/holt_winters.cpp.o"
  "CMakeFiles/atm_forecast.dir/holt_winters.cpp.o.d"
  "CMakeFiles/atm_forecast.dir/mlp_forecaster.cpp.o"
  "CMakeFiles/atm_forecast.dir/mlp_forecaster.cpp.o.d"
  "CMakeFiles/atm_forecast.dir/nn.cpp.o"
  "CMakeFiles/atm_forecast.dir/nn.cpp.o.d"
  "CMakeFiles/atm_forecast.dir/seasonal_naive.cpp.o"
  "CMakeFiles/atm_forecast.dir/seasonal_naive.cpp.o.d"
  "libatm_forecast.a"
  "libatm_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
