
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/ar.cpp" "src/forecast/CMakeFiles/atm_forecast.dir/ar.cpp.o" "gcc" "src/forecast/CMakeFiles/atm_forecast.dir/ar.cpp.o.d"
  "/root/repo/src/forecast/backtest.cpp" "src/forecast/CMakeFiles/atm_forecast.dir/backtest.cpp.o" "gcc" "src/forecast/CMakeFiles/atm_forecast.dir/backtest.cpp.o.d"
  "/root/repo/src/forecast/forecaster.cpp" "src/forecast/CMakeFiles/atm_forecast.dir/forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/atm_forecast.dir/forecaster.cpp.o.d"
  "/root/repo/src/forecast/holt_winters.cpp" "src/forecast/CMakeFiles/atm_forecast.dir/holt_winters.cpp.o" "gcc" "src/forecast/CMakeFiles/atm_forecast.dir/holt_winters.cpp.o.d"
  "/root/repo/src/forecast/mlp_forecaster.cpp" "src/forecast/CMakeFiles/atm_forecast.dir/mlp_forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/atm_forecast.dir/mlp_forecaster.cpp.o.d"
  "/root/repo/src/forecast/nn.cpp" "src/forecast/CMakeFiles/atm_forecast.dir/nn.cpp.o" "gcc" "src/forecast/CMakeFiles/atm_forecast.dir/nn.cpp.o.d"
  "/root/repo/src/forecast/seasonal_naive.cpp" "src/forecast/CMakeFiles/atm_forecast.dir/seasonal_naive.cpp.o" "gcc" "src/forecast/CMakeFiles/atm_forecast.dir/seasonal_naive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/timeseries/CMakeFiles/atm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/atm_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
