# Empty compiler generated dependencies file for atm_forecast.
# This may be replaced when dependencies are built.
