file(REMOVE_RECURSE
  "libatm_forecast.a"
)
