file(REMOVE_RECURSE
  "CMakeFiles/atm_timeseries.dir/analysis.cpp.o"
  "CMakeFiles/atm_timeseries.dir/analysis.cpp.o.d"
  "CMakeFiles/atm_timeseries.dir/cdf.cpp.o"
  "CMakeFiles/atm_timeseries.dir/cdf.cpp.o.d"
  "CMakeFiles/atm_timeseries.dir/features.cpp.o"
  "CMakeFiles/atm_timeseries.dir/features.cpp.o.d"
  "CMakeFiles/atm_timeseries.dir/repair.cpp.o"
  "CMakeFiles/atm_timeseries.dir/repair.cpp.o.d"
  "CMakeFiles/atm_timeseries.dir/resource.cpp.o"
  "CMakeFiles/atm_timeseries.dir/resource.cpp.o.d"
  "CMakeFiles/atm_timeseries.dir/series.cpp.o"
  "CMakeFiles/atm_timeseries.dir/series.cpp.o.d"
  "CMakeFiles/atm_timeseries.dir/stats.cpp.o"
  "CMakeFiles/atm_timeseries.dir/stats.cpp.o.d"
  "libatm_timeseries.a"
  "libatm_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
