# Empty dependencies file for atm_timeseries.
# This may be replaced when dependencies are built.
