file(REMOVE_RECURSE
  "libatm_timeseries.a"
)
