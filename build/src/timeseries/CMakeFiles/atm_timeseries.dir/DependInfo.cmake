
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timeseries/analysis.cpp" "src/timeseries/CMakeFiles/atm_timeseries.dir/analysis.cpp.o" "gcc" "src/timeseries/CMakeFiles/atm_timeseries.dir/analysis.cpp.o.d"
  "/root/repo/src/timeseries/cdf.cpp" "src/timeseries/CMakeFiles/atm_timeseries.dir/cdf.cpp.o" "gcc" "src/timeseries/CMakeFiles/atm_timeseries.dir/cdf.cpp.o.d"
  "/root/repo/src/timeseries/features.cpp" "src/timeseries/CMakeFiles/atm_timeseries.dir/features.cpp.o" "gcc" "src/timeseries/CMakeFiles/atm_timeseries.dir/features.cpp.o.d"
  "/root/repo/src/timeseries/repair.cpp" "src/timeseries/CMakeFiles/atm_timeseries.dir/repair.cpp.o" "gcc" "src/timeseries/CMakeFiles/atm_timeseries.dir/repair.cpp.o.d"
  "/root/repo/src/timeseries/resource.cpp" "src/timeseries/CMakeFiles/atm_timeseries.dir/resource.cpp.o" "gcc" "src/timeseries/CMakeFiles/atm_timeseries.dir/resource.cpp.o.d"
  "/root/repo/src/timeseries/series.cpp" "src/timeseries/CMakeFiles/atm_timeseries.dir/series.cpp.o" "gcc" "src/timeseries/CMakeFiles/atm_timeseries.dir/series.cpp.o.d"
  "/root/repo/src/timeseries/stats.cpp" "src/timeseries/CMakeFiles/atm_timeseries.dir/stats.cpp.o" "gcc" "src/timeseries/CMakeFiles/atm_timeseries.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
