file(REMOVE_RECURSE
  "CMakeFiles/atm.dir/atm_cli.cpp.o"
  "CMakeFiles/atm.dir/atm_cli.cpp.o.d"
  "atm"
  "atm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
