# Empty compiler generated dependencies file for atm.
# This may be replaced when dependencies are built.
