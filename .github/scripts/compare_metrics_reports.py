#!/usr/bin/env python3
"""Compare two atm.metrics.v1 reports for semantic equality.

Used by the resume-smoke CI job: a run that was killed partway and then
resumed from its checkpoint must produce the same report as one that was
never interrupted. Wall-clock fields can never match between two runs, so
they are stripped before comparing:

  * top-level `jobs` and `wall_seconds`
  * the top-level `scheduler` section (worker/shard geometry and arena
    counters — execution shape, which legitimately differs across jobs)
  * every `timers` object inside a metrics snapshot (fleet and per-box)
  * the top-level `transport` section of atm.serve-metrics.v1 reports
    (connection/rejection counts and queue high-water marks depend on
    client scheduling; the serve-chaos job compares the `engine` section,
    which is deterministic by contract)

Everything else — counters (including robust.retry.*), gauges, the
predict.ape histogram, per-box errors, and box ordering — must be equal.

Usage: compare_metrics_reports.py baseline.json candidate.json
"""

import json
import sys


def strip_volatile(doc):
    if isinstance(doc, dict):
        return {
            key: strip_volatile(value)
            for key, value in doc.items()
            if key not in ("jobs", "wall_seconds", "timers", "scheduler",
                           "transport")
        }
    if isinstance(doc, list):
        return [strip_volatile(item) for item in doc]
    return doc


def diff(path, a, b, out):
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
    elif isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{path}.{key}: only in candidate")
            elif key not in b:
                out.append(f"{path}.{key}: only in baseline")
            else:
                diff(f"{path}.{key}", a[key], b[key], out)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff(f"{path}[{i}]", x, y, out)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        baseline = strip_volatile(json.load(f))
    with open(sys.argv[2]) as f:
        candidate = strip_volatile(json.load(f))
    problems = []
    diff("$", baseline, candidate, problems)
    if problems:
        print(f"reports differ ({len(problems)} fields):")
        for p in problems[:50]:
            print(f"  {p}")
        sys.exit(1)
    print("reports are equivalent")


if __name__ == "__main__":
    main()
