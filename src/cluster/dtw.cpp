#include "cluster/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/metrics.hpp"

namespace atm::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double dtw_distance(std::span<const double> p, std::span<const double> q,
                    int band, DtwWorkspace& workspace) {
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 && m == 0) return 0.0;
    if (n == 0 || m == 0) return kInf;

    // The recurrence itself lives in the SIMD kernel layer: scalar row DP
    // or a vectorized anti-diagonal wavefront, selected once at dispatch
    // time. All paths are bit-identical for finite inputs (simd.hpp).
    return simd::active_kernels().dtw_distance(p.data(), n, q.data(), m, band,
                                               workspace.scratch);
}

double dtw_distance(std::span<const double> p, std::span<const double> q, int band) {
    DtwWorkspace workspace;
    return dtw_distance(p, q, band, workspace);
}

DtwAlignment dtw_align(std::span<const double> p, std::span<const double> q) {
    DtwAlignment out;
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 || m == 0) {
        out.distance = (n == 0 && m == 0) ? 0.0 : kInf;
        return out;
    }
    // Full table as one contiguous (n+1) x (m+1) block with a virtual
    // row/column of infinities; table(0, 0) = 0.
    la::FlatMatrix table(n + 1, m + 1, kInf);
    table(0, 0) = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            table(i, j) = diff * diff + std::min({table(i - 1, j - 1),
                                                  table(i - 1, j),
                                                  table(i, j - 1)});
        }
    }
    out.distance = table(n, m);

    // Backtrack greedily along the minimal predecessor.
    std::size_t i = n;
    std::size_t j = m;
    while (i >= 1 && j >= 1) {
        out.path.emplace_back(i - 1, j - 1);
        const double diag = table(i - 1, j - 1);
        const double up = table(i - 1, j);
        const double left = table(i, j - 1);
        if (diag <= up && diag <= left) {
            --i;
            --j;
        } else if (up <= left) {
            --i;
        } else {
            --j;
        }
    }
    std::reverse(out.path.begin(), out.path.end());
    return out;
}

std::uint64_t dtw_cell_count(std::size_t n, std::size_t m, int band) {
    if (n == 0 || m == 0) return 0;
    if (band < 0) return static_cast<std::uint64_t>(n) * m;
    const double slope =
        n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;
    std::uint64_t total = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        const double center = slope * static_cast<double>(i);
        const auto lo = static_cast<long long>(std::floor(center)) - band;
        const auto hi = static_cast<long long>(std::ceil(center)) + band;
        const auto j_lo = std::max(1LL, lo);
        const auto j_hi = std::min(static_cast<long long>(m), hi);
        if (j_hi >= j_lo) total += static_cast<std::uint64_t>(j_hi - j_lo + 1);
    }
    return total;
}

la::FlatMatrix dtw_distance_matrix(
    const std::vector<std::vector<double>>& series, int band,
    exec::ThreadPool* pool, obs::MetricsRegistry* metrics,
    const exec::CancellationToken* cancel, DtwWorkspace* caller_workspace) {
    const std::size_t n = series.size();
    la::FlatMatrix dist(n, n, 0.0);
    if (n < 2) return dist;

    // Balanced split of the upper triangle: the old one-task-per-row split
    // gave row i exactly n−i−1 pairs, so the first tasks carried most of
    // the load. Chunking the linearized pair index instead gives every
    // task within one pair of the same amount of work. Each pair writes
    // only its own cells (i, j) / (j, i), which no other chunk touches, so
    // the parallel and serial fills are bit-identical for any worker count
    // and chunk size. Metric writes from chunk tasks are integer counters
    // whose totals are chunking-invariant, so their merge is exact too.
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    const std::size_t participants = pool != nullptr ? pool->size() + 1 : 1;
    const auto chunks = static_cast<std::size_t>(
        std::min<std::uint64_t>(pairs, std::max<std::size_t>(1, 4 * participants)));
    const std::uint64_t per_chunk = (pairs + chunks - 1) / chunks;

    exec::parallel_for_each(pool, chunks, [&](std::size_t c) {
        const std::uint64_t begin = static_cast<std::uint64_t>(c) * per_chunk;
        const std::uint64_t end = std::min(pairs, begin + per_chunk);
        if (begin >= end) return;
        // Locate (i, j) of linear pair index `begin`: row i owns the
        // n−i−1 pair indices starting at offset(i).
        std::size_t i = 0;
        std::uint64_t offset = 0;
        while (offset + (n - i - 1) <= begin) {
            offset += n - i - 1;
            ++i;
        }
        std::size_t j = i + 1 + static_cast<std::size_t>(begin - offset);

        // Reused across the chunk's pairs. Serial runs (no pool) borrow
        // the caller's workspace when offered — the per-worker
        // arena-backed scratch of the sharded fleet scheduler — so
        // repeated matrices stop re-growing DP rows. Pooled chunks run
        // on different threads and keep private workspaces.
        DtwWorkspace local_workspace;
        DtwWorkspace& workspace =
            (pool == nullptr && caller_workspace != nullptr) ? *caller_workspace
                                                             : local_workspace;
        // Cell counting is only observable through the registry, and
        // dtw_cell_count walks every row — skip it entirely without a
        // registry and memoize per shape with one (consecutive pairs
        // nearly always share lengths).
        std::uint64_t cells = 0;
        std::size_t cc_n = std::numeric_limits<std::size_t>::max();
        std::size_t cc_m = std::numeric_limits<std::size_t>::max();
        std::uint64_t cc = 0;

        // Consecutive pairs with the same lengths flush through the
        // lane-batched kernel (one pair per SIMD lane, scalar-bitwise
        // per lane — simd.hpp), so results and counters are identical
        // to the per-pair loop for any grouping, worker count, or path.
        const simd::KernelTable& kernels = simd::active_kernels();
        constexpr std::size_t kMaxBatch = 16;
        const std::size_t width = std::min(kernels.dtw_batch_width, kMaxBatch);
        const double* batch_p[kMaxBatch];
        const double* batch_q[kMaxBatch];
        std::size_t batch_i[kMaxBatch];
        std::size_t batch_j[kMaxBatch];
        std::size_t pending = 0;
        std::size_t batch_n = 0;
        std::size_t batch_m = 0;
        const auto flush = [&] {
            if (pending == 0) return;
            double out[kMaxBatch];
            kernels.dtw_distance_batch(batch_p, batch_q, pending, batch_n,
                                       batch_m, band, workspace.scratch, out);
            for (std::size_t b = 0; b < pending; ++b) {
                dist(batch_i[b], batch_j[b]) = out[b];
                dist(batch_j[b], batch_i[b]) = out[b];
            }
            pending = 0;
        };

        for (std::uint64_t k = begin; k < end; ++k) {
            // Cancellation point: one atomic load per O(len²) pair. The
            // exception is delivered by parallel_for_each after in-flight
            // chunks finish their current pair (a pending batch of other
            // pairs is abandoned uncomputed with the rest of the matrix).
            exec::checkpoint(cancel, "search.dtw");
            const std::size_t pn = series[i].size();
            const std::size_t qm = series[j].size();
            if (metrics != nullptr) {
                if (pn != cc_n || qm != cc_m) {
                    cc = dtw_cell_count(pn, qm, band);
                    cc_n = pn;
                    cc_m = qm;
                }
                cells += cc;
            }
            if (pn == 0 || qm == 0) {
                const double d = (pn == 0 && qm == 0) ? 0.0 : kInf;
                dist(i, j) = d;
                dist(j, i) = d;
            } else {
                if (pending == width ||
                    (pending > 0 && (pn != batch_n || qm != batch_m))) {
                    flush();
                }
                batch_n = pn;
                batch_m = qm;
                batch_p[pending] = series[i].data();
                batch_q[pending] = series[j].data();
                batch_i[pending] = i;
                batch_j[pending] = j;
                ++pending;
            }
            if (++j == n) {
                ++i;
                j = i + 1;
            }
        }
        flush();
        if (metrics != nullptr) {
            metrics->add("cluster.dtw.pairs", end - begin);
            metrics->add("cluster.dtw.cells", cells);
        }
    });
    return dist;
}

const la::FlatMatrix& DtwMatrixCache::matrix(
    const std::vector<std::vector<double>>& series, int band,
    exec::ThreadPool* pool, obs::MetricsRegistry* metrics,
    const exec::CancellationToken* cancel, DtwWorkspace* workspace) {
    if (series_count_ == 0) {
        series_count_ = series.size();
    } else if (series_count_ != series.size()) {
        throw std::invalid_argument(
            "DtwMatrixCache: series-set size changed; one cache serves one "
            "series set (call clear() between boxes)");
    }
    const auto it = by_band_.find(band);
    if (it != by_band_.end()) {
        if (metrics != nullptr) metrics->add("cluster.dtw.cache_hits");
        return it->second;
    }
    if (metrics != nullptr) metrics->add("cluster.dtw.cache_misses");
    return by_band_
        .emplace(band, dtw_distance_matrix(series, band, pool, metrics, cancel,
                                           workspace))
        .first->second;
}

void DtwMatrixCache::clear() {
    series_count_ = 0;
    by_band_.clear();
}

}  // namespace atm::cluster
