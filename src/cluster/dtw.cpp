#include "cluster/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace atm::cluster {

double dtw_distance(std::span<const double> p, std::span<const double> q, int band) {
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 && m == 0) return 0.0;
    if (n == 0 || m == 0) return std::numeric_limits<double>::infinity();

    constexpr double kInf = std::numeric_limits<double>::infinity();
    // Two-row rolling DP over λ(i, j); index 0 is the virtual λ(0, ·) row.
    std::vector<double> prev(m + 1, kInf);
    std::vector<double> curr(m + 1, kInf);
    prev[0] = 0.0;

    // Effective band half-width scaled for unequal lengths.
    const double slope = n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;

    for (std::size_t i = 1; i <= n; ++i) {
        std::fill(curr.begin(), curr.end(), kInf);
        std::size_t j_lo = 1;
        std::size_t j_hi = m;
        if (band >= 0) {
            const double center = slope * static_cast<double>(i);
            const auto lo = static_cast<long long>(std::floor(center)) - band;
            const auto hi = static_cast<long long>(std::ceil(center)) + band;
            j_lo = static_cast<std::size_t>(std::max(1LL, lo));
            j_hi = static_cast<std::size_t>(std::min(static_cast<long long>(m), hi));
        }
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            const double d = diff * diff;
            const double best =
                std::min({prev[j - 1], prev[j], curr[j - 1]});
            curr[j] = best == kInf ? kInf : d + best;
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

DtwAlignment dtw_align(std::span<const double> p, std::span<const double> q) {
    DtwAlignment out;
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 || m == 0) {
        out.distance = (n == 0 && m == 0)
                           ? 0.0
                           : std::numeric_limits<double>::infinity();
        return out;
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    // Full table with a virtual row/column of infinities; table[0][0] = 0.
    std::vector<std::vector<double>> table(n + 1, std::vector<double>(m + 1, kInf));
    table[0][0] = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            table[i][j] = diff * diff + std::min({table[i - 1][j - 1],
                                                  table[i - 1][j],
                                                  table[i][j - 1]});
        }
    }
    out.distance = table[n][m];

    // Backtrack greedily along the minimal predecessor.
    std::size_t i = n;
    std::size_t j = m;
    while (i >= 1 && j >= 1) {
        out.path.emplace_back(i - 1, j - 1);
        const double diag = table[i - 1][j - 1];
        const double up = table[i - 1][j];
        const double left = table[i][j - 1];
        if (diag <= up && diag <= left) {
            --i;
            --j;
        } else if (up <= left) {
            --i;
        } else {
            --j;
        }
    }
    std::reverse(out.path.begin(), out.path.end());
    return out;
}

std::uint64_t dtw_cell_count(std::size_t n, std::size_t m, int band) {
    if (n == 0 || m == 0) return 0;
    if (band < 0) return static_cast<std::uint64_t>(n) * m;
    const double slope =
        n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;
    std::uint64_t total = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        const double center = slope * static_cast<double>(i);
        const auto lo = static_cast<long long>(std::floor(center)) - band;
        const auto hi = static_cast<long long>(std::ceil(center)) + band;
        const auto j_lo = std::max(1LL, lo);
        const auto j_hi = std::min(static_cast<long long>(m), hi);
        if (j_hi >= j_lo) total += static_cast<std::uint64_t>(j_hi - j_lo + 1);
    }
    return total;
}

std::vector<std::vector<double>> dtw_distance_matrix(
    const std::vector<std::vector<double>>& series, int band,
    exec::ThreadPool* pool, obs::MetricsRegistry* metrics) {
    const std::size_t n = series.size();
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
    // One task per upper-triangle row; each writes only cells (i, j>i) and
    // their mirror (j, i), which no other row touches, so the parallel and
    // serial fills are bit-identical. Metric writes from row tasks are
    // integer counters only: their merge is exact regardless of which
    // worker thread (and thus registry shard) a row lands on.
    exec::parallel_for_each(pool, n, [&](std::size_t i) {
        std::uint64_t cells = 0;
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d = dtw_distance(series[i], series[j], band);
            dist[i][j] = d;
            dist[j][i] = d;
            cells += dtw_cell_count(series[i].size(), series[j].size(), band);
        }
        if (metrics != nullptr && i + 1 < n) {
            metrics->add("cluster.dtw.pairs", n - i - 1);
            metrics->add("cluster.dtw.cells", cells);
        }
    });
    return dist;
}

const std::vector<std::vector<double>>& DtwMatrixCache::matrix(
    const std::vector<std::vector<double>>& series, int band,
    exec::ThreadPool* pool, obs::MetricsRegistry* metrics) {
    if (series_count_ == 0) {
        series_count_ = series.size();
    } else if (series_count_ != series.size()) {
        throw std::invalid_argument(
            "DtwMatrixCache: series-set size changed; one cache serves one "
            "series set (call clear() between boxes)");
    }
    const auto it = by_band_.find(band);
    if (it != by_band_.end()) {
        if (metrics != nullptr) metrics->add("cluster.dtw.cache_hits");
        return it->second;
    }
    if (metrics != nullptr) metrics->add("cluster.dtw.cache_misses");
    return by_band_
        .emplace(band, dtw_distance_matrix(series, band, pool, metrics))
        .first->second;
}

void DtwMatrixCache::clear() {
    series_count_ = 0;
    by_band_.clear();
}

}  // namespace atm::cluster
