#include "cluster/dtw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/cancel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace atm::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Grows `row` to at least `size` elements and fills the used prefix with
/// +inf. Capacity is never released, so a reused workspace stops
/// allocating once it has seen its largest series.
void reset_row(std::vector<double>& row, std::size_t size) {
    if (row.size() < size) row.resize(size);
    std::fill(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(size), kInf);
}

}  // namespace

double dtw_distance(std::span<const double> p, std::span<const double> q,
                    int band, DtwWorkspace& workspace) {
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 && m == 0) return 0.0;
    if (n == 0 || m == 0) return kInf;

    // Two-row rolling DP over λ(i, j); index 0 is the virtual λ(0, ·) row.
    // Both rows start all-infinite; per DP row only the band window
    // [j_lo − 1, j_hi] is re-reset. That is sound because the window is
    // monotone in i (its center slope·i only moves right), so any cell a
    // later row reads outside an earlier row's window still holds the
    // +inf written here, never a stale value from two rows back.
    reset_row(workspace.prev, m + 1);
    reset_row(workspace.curr, m + 1);
    workspace.prev[0] = 0.0;

    // Effective band half-width scaled for unequal lengths.
    const double slope = n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;

    for (std::size_t i = 1; i <= n; ++i) {
        std::size_t j_lo = 1;
        std::size_t j_hi = m;
        if (band >= 0) {
            const double center = slope * static_cast<double>(i);
            const auto lo = static_cast<long long>(std::floor(center)) - band;
            const auto hi = static_cast<long long>(std::ceil(center)) + band;
            j_lo = static_cast<std::size_t>(std::max(1LL, lo));
            j_hi = static_cast<std::size_t>(std::min(static_cast<long long>(m), hi));
        }
        double* prev = workspace.prev.data();
        double* curr = workspace.curr.data();
        std::fill(curr + (j_lo - 1), curr + j_hi + 1, kInf);
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            const double d = diff * diff;
            const double best =
                std::min({prev[j - 1], prev[j], curr[j - 1]});
            curr[j] = best == kInf ? kInf : d + best;
        }
        std::swap(workspace.prev, workspace.curr);
    }
    return workspace.prev[m];
}

double dtw_distance(std::span<const double> p, std::span<const double> q, int band) {
    DtwWorkspace workspace;
    return dtw_distance(p, q, band, workspace);
}

DtwAlignment dtw_align(std::span<const double> p, std::span<const double> q) {
    DtwAlignment out;
    const std::size_t n = p.size();
    const std::size_t m = q.size();
    if (n == 0 || m == 0) {
        out.distance = (n == 0 && m == 0) ? 0.0 : kInf;
        return out;
    }
    // Full table as one contiguous (n+1) x (m+1) block with a virtual
    // row/column of infinities; table(0, 0) = 0.
    la::FlatMatrix table(n + 1, m + 1, kInf);
    table(0, 0) = 0.0;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            const double diff = p[i - 1] - q[j - 1];
            table(i, j) = diff * diff + std::min({table(i - 1, j - 1),
                                                  table(i - 1, j),
                                                  table(i, j - 1)});
        }
    }
    out.distance = table(n, m);

    // Backtrack greedily along the minimal predecessor.
    std::size_t i = n;
    std::size_t j = m;
    while (i >= 1 && j >= 1) {
        out.path.emplace_back(i - 1, j - 1);
        const double diag = table(i - 1, j - 1);
        const double up = table(i - 1, j);
        const double left = table(i, j - 1);
        if (diag <= up && diag <= left) {
            --i;
            --j;
        } else if (up <= left) {
            --i;
        } else {
            --j;
        }
    }
    std::reverse(out.path.begin(), out.path.end());
    return out;
}

std::uint64_t dtw_cell_count(std::size_t n, std::size_t m, int band) {
    if (n == 0 || m == 0) return 0;
    if (band < 0) return static_cast<std::uint64_t>(n) * m;
    const double slope =
        n > 1 ? static_cast<double>(m) / static_cast<double>(n) : 1.0;
    std::uint64_t total = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        const double center = slope * static_cast<double>(i);
        const auto lo = static_cast<long long>(std::floor(center)) - band;
        const auto hi = static_cast<long long>(std::ceil(center)) + band;
        const auto j_lo = std::max(1LL, lo);
        const auto j_hi = std::min(static_cast<long long>(m), hi);
        if (j_hi >= j_lo) total += static_cast<std::uint64_t>(j_hi - j_lo + 1);
    }
    return total;
}

la::FlatMatrix dtw_distance_matrix(
    const std::vector<std::vector<double>>& series, int band,
    exec::ThreadPool* pool, obs::MetricsRegistry* metrics,
    const exec::CancellationToken* cancel) {
    const std::size_t n = series.size();
    la::FlatMatrix dist(n, n, 0.0);
    if (n < 2) return dist;

    // Balanced split of the upper triangle: the old one-task-per-row split
    // gave row i exactly n−i−1 pairs, so the first tasks carried most of
    // the load. Chunking the linearized pair index instead gives every
    // task within one pair of the same amount of work. Each pair writes
    // only its own cells (i, j) / (j, i), which no other chunk touches, so
    // the parallel and serial fills are bit-identical for any worker count
    // and chunk size. Metric writes from chunk tasks are integer counters
    // whose totals are chunking-invariant, so their merge is exact too.
    const std::uint64_t pairs =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    const std::size_t participants = pool != nullptr ? pool->size() + 1 : 1;
    const auto chunks = static_cast<std::size_t>(
        std::min<std::uint64_t>(pairs, std::max<std::size_t>(1, 4 * participants)));
    const std::uint64_t per_chunk = (pairs + chunks - 1) / chunks;

    exec::parallel_for_each(pool, chunks, [&](std::size_t c) {
        const std::uint64_t begin = static_cast<std::uint64_t>(c) * per_chunk;
        const std::uint64_t end = std::min(pairs, begin + per_chunk);
        if (begin >= end) return;
        // Locate (i, j) of linear pair index `begin`: row i owns the
        // n−i−1 pair indices starting at offset(i).
        std::size_t i = 0;
        std::uint64_t offset = 0;
        while (offset + (n - i - 1) <= begin) {
            offset += n - i - 1;
            ++i;
        }
        std::size_t j = i + 1 + static_cast<std::size_t>(begin - offset);

        DtwWorkspace workspace;  // reused across the chunk's pairs
        std::uint64_t cells = 0;
        for (std::uint64_t k = begin; k < end; ++k) {
            // Cancellation point: one atomic load per O(len²) pair. The
            // exception is delivered by parallel_for_each after in-flight
            // chunks finish their current pair.
            exec::checkpoint(cancel, "search.dtw");
            const double d = dtw_distance(series[i], series[j], band, workspace);
            dist(i, j) = d;
            dist(j, i) = d;
            cells += dtw_cell_count(series[i].size(), series[j].size(), band);
            if (++j == n) {
                ++i;
                j = i + 1;
            }
        }
        if (metrics != nullptr) {
            metrics->add("cluster.dtw.pairs", end - begin);
            metrics->add("cluster.dtw.cells", cells);
        }
    });
    return dist;
}

const la::FlatMatrix& DtwMatrixCache::matrix(
    const std::vector<std::vector<double>>& series, int band,
    exec::ThreadPool* pool, obs::MetricsRegistry* metrics,
    const exec::CancellationToken* cancel) {
    if (series_count_ == 0) {
        series_count_ = series.size();
    } else if (series_count_ != series.size()) {
        throw std::invalid_argument(
            "DtwMatrixCache: series-set size changed; one cache serves one "
            "series set (call clear() between boxes)");
    }
    const auto it = by_band_.find(band);
    if (it != by_band_.end()) {
        if (metrics != nullptr) metrics->add("cluster.dtw.cache_hits");
        return it->second;
    }
    if (metrics != nullptr) metrics->add("cluster.dtw.cache_misses");
    return by_band_
        .emplace(band, dtw_distance_matrix(series, band, pool, metrics, cancel))
        .first->second;
}

void DtwMatrixCache::clear() {
    series_count_ = 0;
    by_band_.clear();
}

}  // namespace atm::cluster
