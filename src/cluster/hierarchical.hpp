#pragma once

#include <vector>

#include "linalg/flat_matrix.hpp"

namespace atm::cluster {

/// Linkage criterion for agglomerative clustering.
enum class Linkage {
    kSingle,    ///< min pairwise distance between clusters
    kComplete,  ///< max pairwise distance
    kAverage,   ///< mean pairwise distance (the default used by ATM)
};

/// Agglomerative hierarchical clustering over a precomputed symmetric
/// distance matrix, cut at exactly `k` clusters.
///
/// Returns one cluster label (0..k-1, dense) per item. Throws
/// std::invalid_argument if the matrix is empty/non-square or k is not in
/// [1, n]. O(n³) merge loop — adequate for per-box series counts.
std::vector<int> hierarchical_cluster(
    const la::FlatMatrix& dist, int k,
    Linkage linkage = Linkage::kAverage);

/// Mean silhouette value over all items for a given clustering
/// (Section III-A, Eq. 3): s(i) = (b(i) − a(i)) / max{a(i), b(i)} with
/// a(i) the mean within-cluster distance and b(i) the lowest mean distance
/// to another cluster. Items in singleton clusters contribute s(i) = 0
/// (standard convention). Returns 0 for k == 1 or n < 2.
double mean_silhouette(const la::FlatMatrix& dist,
                       const std::vector<int>& labels);

/// Per-item silhouette values (same definition as mean_silhouette).
std::vector<double> silhouette_values(
    const la::FlatMatrix& dist,
    const std::vector<int>& labels);

/// Sweeps k over [k_min, k_max], clusters at each k, and returns the
/// labeling with maximal mean silhouette — the paper's model-selection
/// rule for DTW clustering (k ranges 2..(M·N)/2). Bounds are clamped to
/// [1, n]; if the clamped range collapses to one k, that k is used.
struct BestClustering {
    std::vector<int> labels;
    int num_clusters = 0;
    double silhouette = 0.0;
};
BestClustering cluster_best_k(const la::FlatMatrix& dist,
                              int k_min, int k_max,
                              Linkage linkage = Linkage::kAverage);

/// Index of the medoid of each cluster: the member with the lowest mean
/// distance to its co-members (the paper's signature pick: "the series with
/// the lowest average dissimilarity in each cluster"). Returned in cluster-
/// label order (entry c is the medoid of cluster c).
std::vector<int> cluster_medoids(const la::FlatMatrix& dist,
                                 const std::vector<int>& labels);

}  // namespace atm::cluster
