#include "cluster/hierarchical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace atm::cluster {
namespace {

void validate_square(const la::FlatMatrix& dist) {
    if (dist.empty()) throw std::invalid_argument("clustering: empty distance matrix");
    if (dist.cols() != dist.rows()) {
        throw std::invalid_argument("clustering: non-square distance matrix");
    }
}

double linkage_distance(const la::FlatMatrix& dist,
                        const std::vector<int>& a, const std::vector<int>& b,
                        Linkage linkage) {
    double best = linkage == Linkage::kSingle
                      ? std::numeric_limits<double>::infinity()
                      : 0.0;
    double sum = 0.0;
    for (int i : a) {
        for (int j : b) {
            const double d = dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            switch (linkage) {
                case Linkage::kSingle: best = std::min(best, d); break;
                case Linkage::kComplete: best = std::max(best, d); break;
                case Linkage::kAverage: sum += d; break;
            }
        }
    }
    if (linkage == Linkage::kAverage) {
        return sum / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
    }
    return best;
}

}  // namespace

std::vector<int> hierarchical_cluster(
    const la::FlatMatrix& dist, int k, Linkage linkage) {
    validate_square(dist);
    const int n = static_cast<int>(dist.size());
    if (k < 1 || k > n) throw std::invalid_argument("hierarchical_cluster: bad k");

    // Active clusters as member lists; merge the closest pair until k remain.
    std::vector<std::vector<int>> clusters(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) clusters[static_cast<std::size_t>(i)] = {i};

    while (static_cast<int>(clusters.size()) > k) {
        std::size_t best_a = 0;
        std::size_t best_b = 1;
        double best_d = std::numeric_limits<double>::infinity();
        for (std::size_t a = 0; a < clusters.size(); ++a) {
            for (std::size_t b = a + 1; b < clusters.size(); ++b) {
                const double d = linkage_distance(dist, clusters[a], clusters[b], linkage);
                if (d < best_d) {
                    best_d = d;
                    best_a = a;
                    best_b = b;
                }
            }
        }
        auto& target = clusters[best_a];
        target.insert(target.end(), clusters[best_b].begin(), clusters[best_b].end());
        clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_b));
    }

    std::vector<int> labels(static_cast<std::size_t>(n), 0);
    for (std::size_t c = 0; c < clusters.size(); ++c) {
        for (int i : clusters[c]) labels[static_cast<std::size_t>(i)] = static_cast<int>(c);
    }
    return labels;
}

std::vector<double> silhouette_values(
    const la::FlatMatrix& dist,
    const std::vector<int>& labels) {
    validate_square(dist);
    const std::size_t n = dist.size();
    if (labels.size() != n) {
        throw std::invalid_argument("silhouette: label count mismatch");
    }
    const int k = labels.empty() ? 0 : *std::max_element(labels.begin(), labels.end()) + 1;

    std::vector<std::vector<int>> members(static_cast<std::size_t>(std::max(k, 1)));
    for (std::size_t i = 0; i < n; ++i) {
        members[static_cast<std::size_t>(labels[i])].push_back(static_cast<int>(i));
    }

    std::vector<double> s(n, 0.0);
    if (k < 2 || n < 2) return s;

    for (std::size_t i = 0; i < n; ++i) {
        const int own = labels[i];
        const auto& own_members = members[static_cast<std::size_t>(own)];
        if (own_members.size() < 2) {
            s[i] = 0.0;  // singleton convention
            continue;
        }
        double a = 0.0;
        for (int j : own_members) {
            if (static_cast<std::size_t>(j) == i) continue;
            a += dist[i][static_cast<std::size_t>(j)];
        }
        a /= static_cast<double>(own_members.size() - 1);

        double b = std::numeric_limits<double>::infinity();
        for (int c = 0; c < k; ++c) {
            if (c == own || members[static_cast<std::size_t>(c)].empty()) continue;
            double avg = 0.0;
            for (int j : members[static_cast<std::size_t>(c)]) {
                avg += dist[i][static_cast<std::size_t>(j)];
            }
            avg /= static_cast<double>(members[static_cast<std::size_t>(c)].size());
            b = std::min(b, avg);
        }
        const double denom = std::max(a, b);
        s[i] = denom > 0.0 ? (b - a) / denom : 0.0;
    }
    return s;
}

double mean_silhouette(const la::FlatMatrix& dist,
                       const std::vector<int>& labels) {
    const std::vector<double> s = silhouette_values(dist, labels);
    if (s.empty()) return 0.0;
    return std::accumulate(s.begin(), s.end(), 0.0) / static_cast<double>(s.size());
}

BestClustering cluster_best_k(const la::FlatMatrix& dist,
                              int k_min, int k_max, Linkage linkage) {
    validate_square(dist);
    const int n = static_cast<int>(dist.size());
    k_min = std::clamp(k_min, 1, n);
    k_max = std::clamp(k_max, k_min, n);

    BestClustering best;
    best.silhouette = -std::numeric_limits<double>::infinity();
    for (int k = k_min; k <= k_max; ++k) {
        std::vector<int> labels = hierarchical_cluster(dist, k, linkage);
        const double sil = mean_silhouette(dist, labels);
        if (sil > best.silhouette) {
            best.silhouette = sil;
            best.labels = std::move(labels);
            best.num_clusters = k;
        }
    }
    return best;
}

std::vector<int> cluster_medoids(const la::FlatMatrix& dist,
                                 const std::vector<int>& labels) {
    validate_square(dist);
    const int k = labels.empty() ? 0 : *std::max_element(labels.begin(), labels.end()) + 1;
    std::vector<std::vector<int>> members(static_cast<std::size_t>(std::max(k, 1)));
    for (std::size_t i = 0; i < labels.size(); ++i) {
        members[static_cast<std::size_t>(labels[i])].push_back(static_cast<int>(i));
    }
    std::vector<int> medoids;
    medoids.reserve(static_cast<std::size_t>(k));
    for (int c = 0; c < k; ++c) {
        const auto& ms = members[static_cast<std::size_t>(c)];
        int best = ms.empty() ? -1 : ms.front();
        double best_avg = std::numeric_limits<double>::infinity();
        for (int i : ms) {
            double avg = 0.0;
            for (int j : ms) {
                avg += dist[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            }
            avg /= static_cast<double>(std::max<std::size_t>(ms.size(), 1));
            if (avg < best_avg) {
                best_avg = avg;
                best = i;
            }
        }
        medoids.push_back(best);
    }
    return medoids;
}

}  // namespace atm::cluster
