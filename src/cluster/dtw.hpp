#pragma once

#include <span>
#include <vector>

namespace atm::cluster {

/// Dynamic-time-warping dissimilarity between two series (Section III-A).
///
/// Implements the paper's recurrence exactly:
///   λ(i,j) = d(p_i, q_j) + min{λ(i−1,j−1), λ(i−1,j), λ(i,j−1)}
/// with squared pointwise distance d(p_i, q_j) = (p_i − q_j)².
/// Returns λ(n, m), the cumulative cost of the optimal warping path.
/// An empty series yields +infinity against a non-empty one and 0 against
/// another empty one.
///
/// `band` restricts the warp to a Sakoe–Chiba band of half-width `band`
/// around the diagonal (after length normalization); band < 0 (default)
/// means unconstrained. Banding is an optimization the paper does not
/// discuss; with band < 0 the result is the textbook DTW value.
double dtw_distance(std::span<const double> p, std::span<const double> q,
                    int band = -1);

/// Pairwise DTW distance matrix over a set of series. Symmetric with a
/// zero diagonal. O(n² · len²) — fine for per-box series counts (~20).
std::vector<std::vector<double>> dtw_distance_matrix(
    const std::vector<std::vector<double>>& series, int band = -1);

/// Full DTW alignment: the optimal warping path as (i, j) index pairs
/// (0-based, monotone, from (0, 0) to (n-1, m-1)) plus the cumulative
/// cost λ(n, m). Uses O(n·m) memory for backtracking — intended for
/// inspection/diagnostics, not the inner clustering loop. An empty input
/// series yields an empty path with infinite (or zero, if both empty)
/// distance.
struct DtwAlignment {
    std::vector<std::pair<std::size_t, std::size_t>> path;
    double distance = 0.0;
};
DtwAlignment dtw_align(std::span<const double> p, std::span<const double> q);

}  // namespace atm::cluster
