#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace atm::exec {
class ThreadPool;
}
namespace atm::obs {
class MetricsRegistry;
}

namespace atm::cluster {

/// Dynamic-time-warping dissimilarity between two series (Section III-A).
///
/// Implements the paper's recurrence exactly:
///   λ(i,j) = d(p_i, q_j) + min{λ(i−1,j−1), λ(i−1,j), λ(i,j−1)}
/// with squared pointwise distance d(p_i, q_j) = (p_i − q_j)².
/// Returns λ(n, m), the cumulative cost of the optimal warping path.
/// An empty series yields +infinity against a non-empty one and 0 against
/// another empty one.
///
/// `band` restricts the warp to a Sakoe–Chiba band of half-width `band`
/// around the diagonal (after length normalization); band < 0 (default)
/// means unconstrained. Banding is an optimization the paper does not
/// discuss; with band < 0 the result is the textbook DTW value.
double dtw_distance(std::span<const double> p, std::span<const double> q,
                    int band = -1);

/// Number of DP cells `dtw_distance` evaluates for series lengths (n, m)
/// at the given band — the unit of DTW work the metrics report counts.
/// Mirrors the banded loop bounds exactly, so instrumented cell counters
/// are exact, deterministic, and O(n) to compute (vs O(n·m) to run).
std::uint64_t dtw_cell_count(std::size_t n, std::size_t m, int band = -1);

/// Pairwise DTW distance matrix over a set of series. Symmetric with a
/// zero diagonal; only the upper triangle is computed. O(n² · len²) — the
/// dominant cost of the DTW signature search. When `pool` is non-null the
/// triangle's rows are computed on the pool (each (i, j) cell is
/// independent, so the result is identical for any worker count). When
/// `metrics` is non-null each row task records `cluster.dtw.pairs` and
/// `cluster.dtw.cells` counters (from its worker thread — counters only,
/// per the obs determinism convention).
std::vector<std::vector<double>> dtw_distance_matrix(
    const std::vector<std::vector<double>>& series, int band = -1,
    exec::ThreadPool* pool = nullptr, obs::MetricsRegistry* metrics = nullptr);

/// Memoizes DTW distance matrices per (series set, band).
///
/// One cache serves one fixed series set — a box's training window — and
/// hands out the matrix for any band, computing it at most once per band.
/// Callers that probe the same box repeatedly (step-1-only vs two-step
/// searches, band ablations, repeated cluster/silhouette sweeps) stop
/// paying the O(n² · len²) recompute. The cache verifies the series-set
/// cardinality as a cheap guard against accidental reuse across boxes;
/// it is NOT thread-safe — use one instance per box task.
class DtwMatrixCache {
public:
    /// Returns the (possibly cached) matrix for `series` at `band`.
    /// Throws std::invalid_argument if `series` has a different cardinality
    /// than the set the cache was first used with. When `metrics` is
    /// non-null, records a `cluster.dtw.cache_hits` / `cache_misses`
    /// counter (and forwards `metrics` into the matrix computation).
    const std::vector<std::vector<double>>& matrix(
        const std::vector<std::vector<double>>& series, int band = -1,
        exec::ThreadPool* pool = nullptr, obs::MetricsRegistry* metrics = nullptr);

    /// True when the matrix for `band` is already memoized.
    [[nodiscard]] bool has(int band) const {
        return by_band_.find(band) != by_band_.end();
    }

    /// Drops all memoized matrices (e.g. when moving to the next box).
    void clear();

    /// Number of distinct bands currently memoized.
    [[nodiscard]] std::size_t size() const { return by_band_.size(); }

private:
    std::size_t series_count_ = 0;
    std::map<int, std::vector<std::vector<double>>> by_band_;
};

/// Full DTW alignment: the optimal warping path as (i, j) index pairs
/// (0-based, monotone, from (0, 0) to (n-1, m-1)) plus the cumulative
/// cost λ(n, m). Uses O(n·m) memory for backtracking — intended for
/// inspection/diagnostics, not the inner clustering loop. An empty input
/// series yields an empty path with infinite (or zero, if both empty)
/// distance.
struct DtwAlignment {
    std::vector<std::pair<std::size_t, std::size_t>> path;
    double distance = 0.0;
};
DtwAlignment dtw_align(std::span<const double> p, std::span<const double> q);

}  // namespace atm::cluster
