#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "linalg/flat_matrix.hpp"
#include "linalg/simd/simd.hpp"

namespace atm::exec {
class ThreadPool;
class CancellationToken;
}
namespace atm::obs {
class MetricsRegistry;
}

namespace atm::cluster {

/// Reusable scratch for the DTW kernels: the rolling DP rows/diagonals of
/// `dtw_distance` (owned by the SIMD kernel layer — the scalar path uses
/// two rolling rows, the vector paths rolling anti-diagonals) and the
/// full table of `dtw_align`, grown on demand and never shrunk. One
/// workspace serves any sequence of calls of any sizes (each call
/// re-initializes the cells it uses), so the steady state of a pair loop
/// — same-length series, one workspace — performs zero heap allocations
/// per call. Not thread-safe: one workspace per thread/task.
struct DtwWorkspace {
    DtwWorkspace() = default;
    /// Arena-backed scratch (per-worker workspaces, exec/arena.hpp's
    /// lifetime rules apply: the arena must outlive the workspace).
    explicit DtwWorkspace(exec::Arena* arena) : scratch(arena) {}

    simd::DtwScratch scratch;
    la::FlatMatrix table;  ///< dtw_align's (n+1) x (m+1) DP table
};

/// Dynamic-time-warping dissimilarity between two series (Section III-A).
///
/// Implements the paper's recurrence exactly:
///   λ(i,j) = d(p_i, q_j) + min{λ(i−1,j−1), λ(i−1,j), λ(i,j−1)}
/// with squared pointwise distance d(p_i, q_j) = (p_i − q_j)².
/// Returns λ(n, m), the cumulative cost of the optimal warping path.
/// An empty series yields +infinity against a non-empty one and 0 against
/// another empty one.
///
/// `band` restricts the warp to a Sakoe–Chiba band of half-width `band`
/// around the diagonal (after length normalization); band < 0 (default)
/// means unconstrained. Banding is an optimization the paper does not
/// discuss; with band < 0 the result is the textbook DTW value.
///
/// The workspace overload reuses `workspace`'s DP state instead of
/// allocating fresh storage; the banded kernel touches only the band
/// window, so it is O(band) per row instead of O(m). Both overloads
/// return bit-identical values. The recurrence runs on the active
/// simd::KernelTable path (scalar row DP or vectorized anti-diagonal
/// wavefront); all paths are bit-identical for finite inputs
/// (simd.hpp's tolerance policy), so the choice is pure performance.
double dtw_distance(std::span<const double> p, std::span<const double> q,
                    int band, DtwWorkspace& workspace);
double dtw_distance(std::span<const double> p, std::span<const double> q,
                    int band = -1);

/// Number of DP cells `dtw_distance` evaluates for series lengths (n, m)
/// at the given band — the unit of DTW work the metrics report counts.
/// Mirrors the banded loop bounds exactly, so instrumented cell counters
/// are exact, deterministic, and O(n) to compute (vs O(n·m) to run).
std::uint64_t dtw_cell_count(std::size_t n, std::size_t m, int band = -1);

/// Pairwise DTW distance matrix over a set of series, as one contiguous
/// n x n block. Symmetric with a zero diagonal; only the upper triangle
/// is computed. O(n² · len²) — the dominant cost of the DTW signature
/// search. When `pool` is non-null the upper triangle's pairs are split
/// into balanced contiguous chunks computed on the pool (each (i, j) cell
/// is written by exactly one chunk, so the result is bit-identical for
/// any worker count); each chunk reuses one DtwWorkspace across its
/// pairs, keeping the pair loop allocation-free. When `metrics` is
/// non-null each chunk records `cluster.dtw.pairs` and
/// `cluster.dtw.cells` counters (from its worker thread — counters only,
/// per the obs determinism convention; totals are chunking-invariant).
/// When `cancel` is non-null it is checked once per pair ("search.dtw")
/// so a cancelled box abandons the O(n² · len²) loop promptly.
/// When `pool` is null and `workspace` is non-null, the serial pair loop
/// runs on the caller's workspace instead of a fresh one — the sharded
/// fleet scheduler passes each worker's arena-backed workspace here so
/// box after box reuses the same high-water scratch (bit-identity is
/// unaffected; the workspace is pure scratch).
la::FlatMatrix dtw_distance_matrix(
    const std::vector<std::vector<double>>& series, int band = -1,
    exec::ThreadPool* pool = nullptr, obs::MetricsRegistry* metrics = nullptr,
    const exec::CancellationToken* cancel = nullptr,
    DtwWorkspace* workspace = nullptr);

/// Memoizes DTW distance matrices per (series set, band).
///
/// One cache serves one fixed series set — a box's training window — and
/// hands out the matrix for any band, computing it at most once per band.
/// Callers that probe the same box repeatedly (step-1-only vs two-step
/// searches, band ablations, repeated cluster/silhouette sweeps) stop
/// paying the O(n² · len²) recompute. The cache verifies the series-set
/// cardinality as a cheap guard against accidental reuse across boxes;
/// it is NOT thread-safe — use one instance per box task.
class DtwMatrixCache {
public:
    /// Returns the (possibly cached) matrix for `series` at `band`.
    /// Throws std::invalid_argument if `series` has a different cardinality
    /// than the set the cache was first used with. When `metrics` is
    /// non-null, records a `cluster.dtw.cache_hits` / `cache_misses`
    /// counter (and forwards `metrics` into the matrix computation).
    const la::FlatMatrix& matrix(
        const std::vector<std::vector<double>>& series, int band = -1,
        exec::ThreadPool* pool = nullptr, obs::MetricsRegistry* metrics = nullptr,
        const exec::CancellationToken* cancel = nullptr,
        DtwWorkspace* workspace = nullptr);

    /// True when the matrix for `band` is already memoized.
    [[nodiscard]] bool has(int band) const {
        return by_band_.find(band) != by_band_.end();
    }

    /// Drops all memoized matrices (e.g. when moving to the next box).
    void clear();

    /// Number of distinct bands currently memoized.
    [[nodiscard]] std::size_t size() const { return by_band_.size(); }

private:
    std::size_t series_count_ = 0;
    std::map<int, la::FlatMatrix> by_band_;
};

/// Full DTW alignment: the optimal warping path as (i, j) index pairs
/// (0-based, monotone, from (0, 0) to (n-1, m-1)) plus the cumulative
/// cost λ(n, m). Uses O(n·m) memory — one contiguous DP block — for
/// backtracking; intended for inspection/diagnostics, not the inner
/// clustering loop. An empty input series yields an empty path with
/// infinite (or zero, if both empty) distance.
struct DtwAlignment {
    std::vector<std::pair<std::size_t, std::size_t>> path;
    double distance = 0.0;
};
DtwAlignment dtw_align(std::span<const double> p, std::span<const double> q);

}  // namespace atm::cluster
