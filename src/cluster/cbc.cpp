#include "cluster/cbc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "timeseries/stats.hpp"

namespace atm::cluster {

std::vector<std::vector<double>> correlation_matrix(
    const std::vector<std::vector<double>>& series) {
    const std::size_t n = series.size();
    for (const auto& s : series) {
        if (s.size() != series.front().size()) {
            throw std::invalid_argument("correlation_matrix: unequal series lengths");
        }
    }
    std::vector<std::vector<double>> rho(n, std::vector<double>(n, 1.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double r = ts::pearson(series[i], series[j]);
            rho[i][j] = r;
            rho[j][i] = r;
        }
    }
    return rho;
}

std::vector<CbcCluster> cbc_cluster_from_correlation(
    const std::vector<std::vector<double>>& rho, const CbcOptions& options) {
    const std::size_t n = rho.size();
    for (const auto& row : rho) {
        if (row.size() != n) {
            throw std::invalid_argument("cbc: non-square correlation matrix");
        }
    }

    auto effective = [&](double r) { return options.use_absolute ? std::abs(r) : r; };

    // Rank key per series: (#strong correlations, mean strong correlation).
    struct Rank {
        int strong_count = 0;
        double strong_mean = 0.0;
    };
    std::vector<Rank> ranks(n);
    for (std::size_t i = 0; i < n; ++i) {
        int count = 0;
        double sum = 0.0;
        for (std::size_t l = 0; l < n; ++l) {
            if (l == i) continue;
            const double r = effective(rho[i][l]);
            if (r >= options.rho_threshold) {
                ++count;
                sum += r;
            }
        }
        ranks[i] = Rank{count, count > 0 ? sum / count : 0.0};
    }

    std::vector<bool> clustered(n, false);
    std::vector<CbcCluster> clusters;
    for (;;) {
        // Topmost still-unclustered series by (count, mean); index breaks ties
        // deterministically.
        std::size_t top = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (clustered[i]) continue;
            if (top == n || ranks[i].strong_count > ranks[top].strong_count ||
                (ranks[i].strong_count == ranks[top].strong_count &&
                 ranks[i].strong_mean > ranks[top].strong_mean)) {
                top = i;
            }
        }
        if (top == n) break;

        CbcCluster cluster;
        cluster.head = static_cast<int>(top);
        clustered[top] = true;
        for (std::size_t l = 0; l < n; ++l) {
            if (clustered[l]) continue;
            if (effective(rho[top][l]) >= options.rho_threshold) {
                cluster.members.push_back(static_cast<int>(l));
                clustered[l] = true;
            }
        }
        clusters.push_back(std::move(cluster));
    }
    return clusters;
}

std::vector<CbcCluster> cbc_cluster(
    const std::vector<std::vector<double>>& series, const CbcOptions& options) {
    return cbc_cluster_from_correlation(correlation_matrix(series), options);
}

}  // namespace atm::cluster
