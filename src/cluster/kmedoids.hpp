#pragma once

#include <vector>

#include "linalg/flat_matrix.hpp"

namespace atm::cluster {

/// K-medoids clustering (Partitioning Around Medoids, build + swap) over a
/// precomputed symmetric distance matrix — an alternative step-1 grouping
/// for the signature search. Unlike hierarchical clustering it directly
/// optimizes the total item-to-medoid distance, and the medoids *are* the
/// natural signature representatives.
struct KMedoidsResult {
    std::vector<int> medoids;  ///< item index of each cluster's medoid
    std::vector<int> labels;   ///< cluster label per item (0..k-1)
    double total_cost = 0.0;   ///< sum of item-to-own-medoid distances
};

/// Runs PAM: greedy BUILD initialization followed by SWAP iterations until
/// no single medoid/non-medoid exchange improves the cost (or `max_iter`
/// sweeps). Deterministic. Throws std::invalid_argument for an empty or
/// non-square matrix or k outside [1, n].
KMedoidsResult k_medoids(const la::FlatMatrix& dist, int k,
                         int max_iter = 50);

}  // namespace atm::cluster
