#pragma once

#include <vector>

namespace atm::cluster {

/// One correlation-based cluster: `head` is the rank-selected signature
/// series and `members` its absorbed, strongly-correlated followers
/// (member indices exclude the head; all indices refer to the input set).
struct CbcCluster {
    int head = -1;
    std::vector<int> members;
};

/// Options for correlation-based clustering (CBC, Section III-A).
struct CbcOptions {
    /// Correlation threshold ρ_Th; the paper uses 0.7 ("a common threshold
    /// value used to determine strong correlation").
    double rho_threshold = 0.7;
    /// When true, |ρ| is compared against the threshold so strongly
    /// anti-correlated series also cluster (they fit linearly just as
    /// well). The paper's description uses raw ρ; default follows it.
    bool use_absolute = false;
};

/// The paper's proposed correlation-based clustering.
///
/// Procedure: (1) compute all pairwise Pearson correlations; (2) rank each
/// series first by the number of correlations above ρ_Th, then by the mean
/// of those above-threshold correlations; (3) repeatedly pop the topmost
/// still-unclustered series as a new cluster head and absorb every
/// remaining series correlated with it above ρ_Th; (4) stop when the ranked
/// list is empty. Series with no strong correlations end as singleton
/// clusters (their own signature).
std::vector<CbcCluster> cbc_cluster(
    const std::vector<std::vector<double>>& series,
    const CbcOptions& options = {});

/// Same algorithm over a precomputed correlation matrix (symmetric, unit
/// diagonal). Useful when correlations are reused across analyses.
std::vector<CbcCluster> cbc_cluster_from_correlation(
    const std::vector<std::vector<double>>& rho,
    const CbcOptions& options = {});

/// Pairwise Pearson correlation matrix over a set of equal-length series.
std::vector<std::vector<double>> correlation_matrix(
    const std::vector<std::vector<double>>& series);

}  // namespace atm::cluster
