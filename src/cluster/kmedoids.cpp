#include "cluster/kmedoids.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace atm::cluster {
namespace {

void validate(const la::FlatMatrix& dist, int k) {
    if (dist.empty()) throw std::invalid_argument("k_medoids: empty distance matrix");
    if (dist.cols() != dist.rows()) {
        throw std::invalid_argument("k_medoids: non-square distance matrix");
    }
    if (k < 1 || static_cast<std::size_t>(k) > dist.size()) {
        throw std::invalid_argument("k_medoids: bad k");
    }
}

/// Total cost of assigning every item to its closest medoid.
double assignment_cost(const la::FlatMatrix& dist,
                       const std::vector<int>& medoids,
                       std::vector<int>* labels_out = nullptr) {
    double total = 0.0;
    if (labels_out != nullptr) labels_out->assign(dist.size(), 0);
    for (std::size_t i = 0; i < dist.size(); ++i) {
        double best = std::numeric_limits<double>::infinity();
        int best_c = 0;
        for (std::size_t c = 0; c < medoids.size(); ++c) {
            const double d = dist[i][static_cast<std::size_t>(medoids[c])];
            if (d < best) {
                best = d;
                best_c = static_cast<int>(c);
            }
        }
        total += best;
        if (labels_out != nullptr) (*labels_out)[i] = best_c;
    }
    return total;
}

}  // namespace

KMedoidsResult k_medoids(const la::FlatMatrix& dist, int k,
                         int max_iter) {
    validate(dist, k);
    const std::size_t n = dist.size();

    // BUILD: first medoid minimizes total distance; each next medoid
    // maximizes the cost decrease.
    std::vector<int> medoids;
    std::vector<bool> is_medoid(n, false);
    {
        std::size_t best = 0;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < n; ++i) {
            double cost = 0.0;
            for (std::size_t j = 0; j < n; ++j) cost += dist[j][i];
            if (cost < best_cost) {
                best_cost = cost;
                best = i;
            }
        }
        medoids.push_back(static_cast<int>(best));
        is_medoid[best] = true;
    }
    while (static_cast<int>(medoids.size()) < k) {
        std::size_t best = n;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t cand = 0; cand < n; ++cand) {
            if (is_medoid[cand]) continue;
            std::vector<int> trial = medoids;
            trial.push_back(static_cast<int>(cand));
            const double cost = assignment_cost(dist, trial);
            if (cost < best_cost) {
                best_cost = cost;
                best = cand;
            }
        }
        medoids.push_back(static_cast<int>(best));
        is_medoid[best] = true;
    }

    // SWAP: steepest-descent single exchanges.
    double current = assignment_cost(dist, medoids);
    for (int iter = 0; iter < max_iter; ++iter) {
        double best_cost = current;
        std::size_t best_m = 0;
        std::size_t best_i = n;
        for (std::size_t m = 0; m < medoids.size(); ++m) {
            for (std::size_t i = 0; i < n; ++i) {
                if (is_medoid[i]) continue;
                std::vector<int> trial = medoids;
                trial[m] = static_cast<int>(i);
                const double cost = assignment_cost(dist, trial);
                if (cost < best_cost - 1e-12) {
                    best_cost = cost;
                    best_m = m;
                    best_i = i;
                }
            }
        }
        if (best_i == n) break;  // local optimum
        is_medoid[static_cast<std::size_t>(medoids[best_m])] = false;
        medoids[best_m] = static_cast<int>(best_i);
        is_medoid[best_i] = true;
        current = best_cost;
    }

    KMedoidsResult result;
    result.medoids = medoids;
    result.total_cost = assignment_cost(dist, medoids, &result.labels);
    return result;
}

}  // namespace atm::cluster
