#include "tracegen/trace.hpp"

namespace atm::trace {

std::vector<std::vector<double>> BoxTrace::usage_matrix() const {
    std::vector<std::vector<double>> out;
    out.reserve(vms.size() * ts::kNumResources);
    for (const VmTrace& vm : vms) {
        out.push_back(vm.cpu_usage_pct.values());
        out.push_back(vm.ram_usage_pct.values());
    }
    return out;
}

std::vector<std::vector<double>> BoxTrace::demand_matrix() const {
    std::vector<std::vector<double>> out;
    out.reserve(vms.size() * ts::kNumResources);
    for (const VmTrace& vm : vms) {
        out.push_back(vm.cpu_demand_ghz.values());
        out.push_back(vm.ram_demand_gb.values());
    }
    return out;
}

std::size_t Trace::total_vms() const {
    std::size_t count = 0;
    for (const BoxTrace& box : boxes) count += box.vms.size();
    return count;
}

std::size_t Trace::total_series() const {
    return total_vms() * ts::kNumResources;
}

}  // namespace atm::trace
