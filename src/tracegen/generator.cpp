#include "tracegen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>
#include <string>

namespace atm::trace {
namespace {

/// SplitMix64 step; used to derive independent per-box seeds so box b of a
/// seeded trace is identical no matter how many boxes are generated.
std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// First-order autoregressive noise source: x_t = phi x_{t-1} + N(0, sigma).
class Ar1 {
  public:
    Ar1(double phi, double sigma, std::mt19937_64& rng)
        : phi_(phi), noise_(0.0, sigma), rng_(&rng) {}

    double next() {
        state_ = phi_ * state_ + noise_(*rng_);
        return state_;
    }

  private:
    double phi_;
    double state_ = 0.0;
    std::normal_distribution<double> noise_;
    std::mt19937_64* rng_;
};

double uniform(std::mt19937_64& rng, double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
}

bool bernoulli(std::mt19937_64& rng, double p) {
    return std::bernoulli_distribution(p)(rng);
}

}  // namespace

BoxTrace generate_box(const TraceGenOptions& options, int index) {
    if (options.windows_per_day < 1 || options.num_days < 1) {
        throw std::invalid_argument("generate_box: bad time grid");
    }
    std::mt19937_64 rng(splitmix64(options.seed) ^ splitmix64(static_cast<std::uint64_t>(index) + 0x51ED270B));
    const int wpd = options.windows_per_day;
    const std::size_t total = static_cast<std::size_t>(wpd) * static_cast<std::size_t>(options.num_days);

    // --- consolidation level -------------------------------------------------
    const double sigma_ln = 0.35;
    const double mu_ln = std::log(options.mean_vms_per_box) - 0.5 * sigma_ln * sigma_ln;
    std::lognormal_distribution<double> vm_count_dist(mu_ln, sigma_ln);
    const int num_vms = std::clamp(static_cast<int>(std::lround(vm_count_dist(rng))),
                                   options.min_vms_per_box, options.max_vms_per_box);

    // --- box-shared load driver (diurnal + weekday modulation + AR noise) ----
    // Day-to-day amplitude is stable per box with small jitter: production
    // weekday patterns repeat (that regularity is what makes the paper's
    // one-day-ahead prediction viable at 20-30% APE).
    const double box_phase = uniform(rng, 0.0, 1.0);
    const double box_day_factor = uniform(rng, 0.78, 1.0);
    std::vector<double> weekday_factor(static_cast<std::size_t>(options.num_days));
    for (double& f : weekday_factor) f = box_day_factor * uniform(rng, 0.95, 1.05);
    Ar1 driver_noise(0.85, 0.04, rng);
    std::vector<double> driver(total);
    for (std::size_t t = 0; t < total; ++t) {
        const int day = static_cast<int>(t) / wpd;
        const double tod = static_cast<double>(static_cast<int>(t) % wpd) / wpd;
        const double diurnal =
            0.5 + 0.45 * std::sin(2.0 * std::numbers::pi * (tod - box_phase));
        driver[t] = std::clamp(
            diurnal * weekday_factor[static_cast<std::size_t>(day)] + driver_noise.next(),
            0.0, 1.0);
    }

    // --- hot-VM layout ---------------------------------------------------------
    const bool hot_box = bernoulli(rng, options.hot_box_fraction);
    int num_hot = 0;
    if (hot_box) {
        num_hot = bernoulli(rng, options.second_hot_vm_probability) ? 2 : 1;
        num_hot = std::min(num_hot, num_vms);
    }

    BoxTrace box;
    box.name = "box" + std::to_string(index);
    box.vms.reserve(static_cast<std::size_t>(num_vms));

    double cpu_alloc_sum = 0.0;
    double ram_alloc_sum = 0.0;

    // RAM-pressure layout (Fig. 2 RAM columns): a small set of boxes hosts a
    // chronically RAM-starved VM (deep violations at every threshold), a
    // larger set a VM in the 60-80% band (tickets only at low thresholds).
    enum class RamPressure { kNone, kBand, kDeep };
    RamPressure ram_pressure = RamPressure::kNone;
    {
        const double roll = uniform(rng, 0.0, 1.0);
        if (roll < 0.10) {
            ram_pressure = RamPressure::kDeep;
        } else if (roll < 0.38) {
            ram_pressure = RamPressure::kBand;
        }
    }
    const int ram_hot_vm = ram_pressure == RamPressure::kNone
                               ? -1
                               : std::uniform_int_distribution<int>(0, num_vms - 1)(rng);

    for (int vm_idx = 0; vm_idx < num_vms; ++vm_idx) {
        const bool is_hot = vm_idx < num_hot;
        // Hot VMs split into chronically under-provisioned "deep" violators
        // (above even the 80% threshold most of the day — these keep the
        // per-box ticket count nearly flat across thresholds, as in
        // Fig. 2b) and "moderate" ones that cross 60% on load peaks only.
        const bool is_deep = is_hot && bernoulli(rng, 0.6);
        const bool follows_driver = bernoulli(
            rng, is_deep ? 0.3 : is_hot ? 0.6 : options.driver_follow_probability);

        // --- CPU usage model -------------------------------------------------
        // The model produces a *latent* demand level in percent of the
        // current allocation; monitoring usage saturates at 100% while the
        // demand series keeps the excess (VMware demand-metric semantics).
        // Deep violators are chronically under-provisioned: their latent
        // peaks run past 100%, so only a genuinely larger allocation — not
        // shuffling within the current one — can clear their tickets.
        double base_cpu = 0.0;
        double amp_cpu = 0.0;
        double bursts_per_day = 0.0;
        double burst_amp_lo = 0.0;
        double burst_amp_hi = 0.0;
        if (is_deep) {
            // Transient culprits: low trough, very large diurnal swing with
            // a latent peak far above the current allocation. Matches the
            // paper's narrative (tickets from "transient load dynamics" on
            // under-provisioned VMs) and its near-flat tickets-per-box
            // profile across the 60/70/80%% thresholds.
            base_cpu = uniform(rng, 22.0, 40.0);
            amp_cpu = uniform(rng, 100.0, 150.0);
            bursts_per_day = 0.8;
            burst_amp_lo = 5.0;
            burst_amp_hi = 15.0;
        } else if (is_hot) {
            base_cpu = uniform(rng, 42.0, 58.0);
            amp_cpu = uniform(rng, 12.0, 26.0);
            bursts_per_day = 1.5;
            burst_amp_lo = 8.0;
            burst_amp_hi = 25.0;
        } else {
            // Cold VMs: modest diurnal band plus cron-style daily spikes.
            // The spikes stay below the 60% ticket threshold (no tickets of
            // their own) but define the VM's demand *peak* at ~1.7-3x its
            // typical level. Two production realities follow: (i) sizing a
            // VM to 60% of its peak (stingy) clears its diurnal band, and
            // (ii) the box-level sum of ticket-free requirements
            // (peak/0.6) approaches the box capacity, so allocation-policy
            // quality matters.
            base_cpu = uniform(rng, 5.0, 22.0);
            amp_cpu = uniform(rng, 3.0, std::min(9.0, 27.0 - base_cpu));
            bursts_per_day = 0.0;  // cold VMs use scheduled spikes instead
        }
        // Spike target level for cold VMs: ~1.8x above anything the diurnal
        // band (plus noise) reaches, capped safely below the 60% threshold.
        // Spikes *floor* the level at this target (not additive), so the
        // daily demand peak is a stable absolute level regardless of when
        // in the day the spike fires.
        const double cold_band_max = base_cpu + amp_cpu;
        const double cold_spike_target = std::clamp(
            uniform(rng, 1.7, 2.1) * (cold_band_max + 4.0), 18.0, 56.0);
        // Scheduled maintenance spikes for cold VMs: 1-2 short (1-2 window)
        // spikes per day at VM-specific times. Guaranteed-daily spikes make
        // the daily demand peak a stable, rare, narrow event — the shape
        // that justifies peak-based sizing heuristics in practice.
        std::vector<bool> scheduled_spike(total, false);
        if (!is_hot) {
            for (int day = 0; day < options.num_days; ++day) {
                const int spikes_today = bernoulli(rng, 0.15) ? 2 : 1;
                for (int s = 0; s < spikes_today; ++s) {
                    const int start = std::uniform_int_distribution<int>(0, wpd - 1)(rng);
                    const int duration = 1;
                    for (int d = 0; d < duration; ++d) {
                        const std::size_t t =
                            static_cast<std::size_t>(day) * static_cast<std::size_t>(wpd) +
                            static_cast<std::size_t>((start + d) % wpd);
                        scheduled_spike[t] = true;
                    }
                }
            }
        }
        const double share = follows_driver ? uniform(rng, 0.55, 0.95) : uniform(rng, 0.0, 0.15);
        Ar1 cpu_noise(0.7, uniform(rng, 1.0, 3.0), rng);

        // VM-private diurnal component with its own phase.
        const double vm_phase = uniform(rng, 0.0, 1.0);
        Ar1 private_noise(0.85, 0.05, rng);

        // Burst process: Poisson window arrivals, geometric durations.
        const double burst_start_prob = bursts_per_day / wpd;
        std::geometric_distribution<int> burst_len_dist(0.25);  // mean 4 windows

        std::vector<double> cpu_latent(total);
        std::vector<bool> burst_active(total, false);
        int burst_remaining = 0;
        double burst_amp = 0.0;
        for (std::size_t t = 0; t < total; ++t) {
            const double tod = static_cast<double>(static_cast<int>(t) % wpd) / wpd;
            const double private_diurnal = std::clamp(
                0.5 + 0.45 * std::sin(2.0 * std::numbers::pi * (tod - vm_phase)) +
                    private_noise.next(),
                0.0, 1.0);
            if (burst_start_prob > 0.0 && burst_remaining == 0 &&
                bernoulli(rng, burst_start_prob)) {
                burst_remaining = 1 + burst_len_dist(rng);
                burst_amp = uniform(rng, burst_amp_lo, burst_amp_hi);
            }
            double burst = 0.0;
            if (burst_remaining > 0) {
                burst = burst_amp;
                burst_active[t] = true;
                --burst_remaining;
            }
            const double load = share * driver[t] + (1.0 - share) * private_diurnal;
            // Heteroscedastic noise: measurement/load noise scales with the
            // level (a 10%-utilized VM does not jitter by 5 points).
            const double level_det = base_cpu + amp_cpu * load + burst;
            const double noise_scale = 0.25 + 0.75 * std::min(level_det, 100.0) / 60.0;
            double level = level_det + cpu_noise.next() * noise_scale;
            if (scheduled_spike[t]) {
                level = std::max(level, cold_spike_target + uniform(rng, -2.0, 2.0));
                burst_active[t] = true;
            }
            cpu_latent[t] = std::clamp(level, 0.5, 180.0);
        }

        // --- RAM usage model ---------------------------------------------------
        // RAM tracks a smoothed copy of the VM's own CPU (inter-pair target
        // rho ~0.62) on top of a slowly drifting resident-set baseline.
        // RAM-pressured VMs sit near-constant high instead (their RAM is a
        // full cache/heap, weakly load-coupled).
        double ram_base = 0.0;
        double kappa = 0.0;
        double ram_amp = 0.0;  // explicit diurnal term for band-pressure VMs
        double drift_sigma = 0.55;
        if (vm_idx == ram_hot_vm && ram_pressure == RamPressure::kDeep) {
            // Chronic RAM pressure: the working set exceeds the allocation
            // (latent demand above 100% shows up as paging in reality).
            ram_base = uniform(rng, 88.0, 112.0);
            kappa = uniform(rng, 0.05, 0.2);
            drift_sigma = 0.3;
        } else if (vm_idx == ram_hot_vm && ram_pressure == RamPressure::kBand) {
            // Transient RAM pressure: oscillates into the 60-80% band at
            // load peaks only (cache growth under load), so higher
            // thresholds see far fewer of its tickets.
            ram_base = uniform(rng, 30.0, 42.0);
            kappa = uniform(rng, 0.15, 0.4);
            ram_amp = uniform(rng, 30.0, 45.0);
            drift_sigma = 0.4;
        } else {
            ram_base = uniform(rng, 5.0, 21.0);
            kappa = uniform(rng, options.ram_coupling_min, options.ram_coupling_max);
            drift_sigma = 0.4;
        }
        // RAM has its own maintenance-spike schedule (page-cache fills,
        // log rotation) at VM-specific times, giving RAM series the same
        // rare-narrow-peak shape as CPU without inflating the same-VM
        // CPU-RAM correlation.
        const bool ram_spikes = ram_hot_vm != vm_idx;
        std::vector<bool> ram_spike_at(total, false);
        if (ram_spikes) {
            for (int day = 0; day < options.num_days; ++day) {
                const int start = std::uniform_int_distribution<int>(0, wpd - 1)(rng);
                const int duration = bernoulli(rng, 0.3) ? 2 : 1;
                for (int d = 0; d < duration; ++d) {
                    const std::size_t t =
                        static_cast<std::size_t>(day) * static_cast<std::size_t>(wpd) +
                        static_cast<std::size_t>((start + d) % wpd);
                    ram_spike_at[t] = true;
                }
            }
        }
        const double ram_spike_peak =
            std::min(uniform(rng, 1.45, 1.85) * (ram_base + 6.0), 48.0);
        Ar1 ram_drift(0.995, drift_sigma, rng);
        Ar1 ram_noise(0.5, uniform(rng, 1.0, 2.5), rng);
        const double cpu_mean_est = base_cpu + amp_cpu * 0.5;

        std::vector<double> ram_latent(total);
        double ewma = cpu_latent.front();
        for (std::size_t t = 0; t < total; ++t) {
            ewma = 0.65 * ewma + 0.35 * std::min(cpu_latent[t], 100.0);
            const double ram_det = ram_base + ram_amp * driver[t] +
                                   kappa * (ewma - cpu_mean_est);
            const double ram_noise_scale =
                0.3 + 0.7 * std::clamp(ram_det, 0.0, 100.0) / 60.0;
            double level = ram_det + (ram_drift.next() + ram_noise.next()) *
                                         ram_noise_scale;
            if (ram_spike_at[t]) {
                level = std::max(level, std::min(ram_spike_peak + ram_noise.next(), 58.0));
            }
            ram_latent[t] = std::clamp(level, 1.0, 180.0);
        }

        // --- capacities, usage (saturates at 100%) and demand (latent) ----------
        VmTrace vm;
        vm.name = box.name + "/vm" + std::to_string(vm_idx);
        vm.cpu_capacity_ghz = std::round(uniform(rng, 2.0, 8.0) * 2.0) / 2.0;
        vm.ram_capacity_gb = std::round(uniform(rng, 4.0, 32.0));
        std::vector<double> cpu_usage(total);
        std::vector<double> ram_usage(total);
        std::vector<double> cpu_demand(total);
        std::vector<double> ram_demand(total);
        for (std::size_t t = 0; t < total; ++t) {
            cpu_usage[t] = std::min(cpu_latent[t], 100.0);
            ram_usage[t] = std::min(ram_latent[t], 100.0);
            cpu_demand[t] = cpu_latent[t] / 100.0 * vm.cpu_capacity_ghz;
            ram_demand[t] = ram_latent[t] / 100.0 * vm.ram_capacity_gb;
        }
        vm.cpu_usage_pct = ts::Series(vm.name + "/CPU", std::move(cpu_usage));
        vm.ram_usage_pct = ts::Series(vm.name + "/RAM", std::move(ram_usage));
        vm.cpu_demand_ghz = ts::Series(vm.name + "/CPU-demand", std::move(cpu_demand));
        vm.ram_demand_gb = ts::Series(vm.name + "/RAM-demand", std::move(ram_demand));
        cpu_alloc_sum += vm.cpu_capacity_ghz;
        ram_alloc_sum += vm.ram_capacity_gb;
        box.vms.push_back(std::move(vm));
    }

    box.cpu_capacity_ghz =
        cpu_alloc_sum * uniform(rng, options.capacity_headroom_min, options.capacity_headroom_max);
    box.ram_capacity_gb =
        ram_alloc_sum * uniform(rng, options.capacity_headroom_min, options.capacity_headroom_max);

    // --- monitoring gaps --------------------------------------------------------
    if (bernoulli(rng, options.gappy_box_fraction)) {
        box.has_gaps = true;
        const int num_gaps = std::uniform_int_distribution<int>(1, 3)(rng);
        for (int g = 0; g < num_gaps; ++g) {
            const auto start = static_cast<std::size_t>(
                std::uniform_int_distribution<long>(0, static_cast<long>(total) - 1)(rng));
            const auto len = static_cast<std::size_t>(
                std::uniform_int_distribution<int>(2, 20)(rng));
            const std::size_t end = std::min(total, start + len);
            for (VmTrace& vm : box.vms) {
                for (std::size_t t = start; t < end; ++t) {
                    vm.cpu_usage_pct[t] = 0.0;
                    vm.ram_usage_pct[t] = 0.0;
                    vm.cpu_demand_ghz[t] = 0.0;
                    vm.ram_demand_gb[t] = 0.0;
                }
            }
        }
    }
    return box;
}

Trace generate_trace(const TraceGenOptions& options) {
    Trace trace;
    trace.windows_per_day = options.windows_per_day;
    trace.num_days = options.num_days;
    trace.boxes.reserve(static_cast<std::size_t>(options.num_boxes));
    for (int b = 0; b < options.num_boxes; ++b) {
        trace.boxes.push_back(generate_box(options, b));
    }
    return trace;
}

}  // namespace atm::trace
