#pragma once

#include <iosfwd>
#include <string>

#include "tracegen/trace.hpp"

namespace atm::obs {
class MetricsRegistry;
}

namespace atm::exec {
struct FaultPlan;
}

namespace atm::trace {

/// CSV schema for monitoring traces, one row per (box, VM, window):
///
///   box,vm,window,cpu_capacity_ghz,ram_capacity_gb,cpu_usage_pct,
///   ram_usage_pct,cpu_demand_ghz,ram_demand_gb
///
/// plus one `#box` directive line per box carrying box-level data:
///
///   #box,<name>,<cpu_capacity_ghz>,<ram_capacity_gb>,<has_gaps 0|1>
///
/// The demand columns are optional on import: when blank they are derived
/// as usage/100 x capacity (no latent demand). Rows must be grouped by
/// box and VM and ordered by window; the reader validates this and throws
/// std::runtime_error with a line number on malformed input. This is the
/// bridge for running ATM on real monitoring exports.

/// Writes a trace in the CSV schema above.
void write_trace_csv(std::ostream& out, const Trace& trace);

/// Convenience: writes to a file path; throws std::runtime_error if the
/// file cannot be opened.
void write_trace_csv_file(const std::string& path, const Trace& trace);

/// Reads a trace from the CSV schema. `windows_per_day` is metadata the
/// CSV does not carry (defaults to the paper's 96).
///
/// Usage, demand and capacity values must be finite and non-negative;
/// anything else (NaN/Inf/negative — which `std::from_chars` would parse
/// silently) is rejected with the same line-numbered std::runtime_error as
/// structural errors, so corrupt exports fail at the door instead of
/// poisoning downstream math.
///
/// When `metrics` is non-null, records `trace.rows`, `trace.boxes` and
/// `trace.vms` counters plus a `trace.load` timer span.
///
/// `faults` arms the chaos-testing site "trace.box" (entity = box
/// ordinal): a firing rule makes the read throw exec::InjectedFault at
/// that box's directive line. Null means no injection.
Trace read_trace_csv(std::istream& in, int windows_per_day = 96,
                     obs::MetricsRegistry* metrics = nullptr,
                     const exec::FaultPlan* faults = nullptr);

/// Convenience: reads from a file path.
Trace read_trace_csv_file(const std::string& path, int windows_per_day = 96,
                          obs::MetricsRegistry* metrics = nullptr,
                          const exec::FaultPlan* faults = nullptr);

}  // namespace atm::trace
