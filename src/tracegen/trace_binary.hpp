#pragma once

#include <string>

#include "tracegen/trace.hpp"

namespace atm::obs {
class MetricsRegistry;
}

namespace atm::exec {
struct FaultPlan;
}

namespace atm::trace {

/// Compact binary columnar trace format `atm.trace.bin.v1`
/// (DESIGN.md §7.14). Replaces per-line CSV parsing on the fleet hot
/// path: loading is one mmap, header/index validation, a fingerprint
/// sweep and a single bulk copy per series — no text parsing, no
/// per-row allocation.
///
/// Layout (all integers little-or-native endian; the endian tag below
/// rejects files written on a different-endian host):
///
///   header (72 bytes):
///     [0]  magic            8 bytes  "ATMTRB1\n"
///     [8]  endian tag       u32      0x01020304 (reads as 0x04030201
///                                    on a wrong-endian host)
///     [12] version          u32      1
///     [16] windows_per_day  u32
///     [20] num_days         u32
///     [24] box_count        u64
///     [32] vm_count         u64
///     [40] sample_count     u64      total (vm, window) samples
///     [48] payload_offset   u64      from file start, 8-byte aligned
///     [56] payload_bytes    u64
///     [64] payload_fp       u64      word-wise FNV-1a of the payload
///
///   index (runs [72, payload_offset)), per box in trace order:
///     u16 name_len + name bytes, u8 has_gaps, f64 cpu_capacity_ghz,
///     f64 ram_capacity_gb, u32 vm_count; then per VM: u16 name_len +
///     name bytes, f64 cpu_capacity_ghz, f64 ram_capacity_gb,
///     u64 series_len.
///
///   payload: per VM in index order, four contiguous blocks of
///     series_len doubles — cpu_usage_pct, ram_usage_pct,
///     cpu_demand_ghz, ram_demand_gb.
///
/// Validation: bad magic, wrong endianness, unknown version, any
/// offset/length outside the file (truncation), fingerprint mismatch,
/// and non-finite/negative samples are all rejected with
/// core::PipelineError{kTraceInvalid, "trace"} — the same taxonomy the
/// fleet driver already reports per run.
inline constexpr char kTraceBinarySchema[] = "atm.trace.bin.v1";
inline constexpr char kTraceBinaryMagic[9] = "ATMTRB1\n";

/// True when `path` exists and starts with the binary magic. A missing
/// or short file is simply "not binary" (the CSV path then reports its
/// own open error).
[[nodiscard]] bool is_trace_binary_file(const std::string& path);

/// Packs a trace into the binary format and publishes it atomically
/// (temp + fsync + rename, like the CSV writer). Throws
/// core::PipelineError{kTraceInvalid} if a VM's four series disagree in
/// length (the format stores one length per VM).
void write_trace_binary_file(const std::string& path, const Trace& trace);

/// Loads a binary trace. The file is mmap'd read-only when possible
/// (falling back to a buffered read), fully validated (see layout
/// comment), and decoded with one bulk copy per series. Counters and
/// the fault site match the CSV reader: `trace.rows` / `trace.boxes` /
/// `trace.vms`, timer `trace.load`, and site "trace.box" keyed by box
/// ordinal — a fault plan produces the same injection on either format.
[[nodiscard]] Trace read_trace_binary_file(
    const std::string& path, obs::MetricsRegistry* metrics = nullptr,
    const exec::FaultPlan* faults = nullptr);

/// Format-sniffing loader: binary when the magic matches (header
/// metadata wins over `windows_per_day`), CSV otherwise. Every CLI
/// trace input goes through this, so `.bin` and `.csv` traces are
/// interchangeable everywhere.
[[nodiscard]] Trace read_trace_any_file(const std::string& path,
                                        int windows_per_day = 96,
                                        obs::MetricsRegistry* metrics = nullptr,
                                        const exec::FaultPlan* faults = nullptr);

}  // namespace atm::trace
