#pragma once

#include <string>
#include <vector>

#include "timeseries/resource.hpp"
#include "timeseries/series.hpp"

namespace atm::trace {

/// One virtual machine's week of monitoring data.
///
/// Usage series are utilization percentages in [0, 100] sampled once per
/// ticketing window (15 minutes in the paper). Demand series (paper
/// footnote 2: usage x allocated capacity) are in GHz (CPU) / GB (RAM) and
/// follow VMware's *demand* semantics: for a starved VM the demand metric
/// reports the resources the VM would consume, which can exceed its
/// current allocation, while the usage metric saturates at 100%. This
/// latent-demand headroom is what makes resizing able to *help* the
/// under-provisioned culprit VMs (Section II intro: "persistent
/// insufficient provisioning").
struct VmTrace {
    std::string name;
    double cpu_capacity_ghz = 0.0;
    double ram_capacity_gb = 0.0;
    ts::Series cpu_usage_pct;
    ts::Series ram_usage_pct;
    /// Demand series; equals usage/100 x capacity while the VM is below
    /// saturation, exceeds the capacity while it is starved.
    ts::Series cpu_demand_ghz;
    ts::Series ram_demand_gb;

    /// Usage series for a resource kind.
    [[nodiscard]] const ts::Series& usage(ts::ResourceKind kind) const {
        return kind == ts::ResourceKind::kCpu ? cpu_usage_pct : ram_usage_pct;
    }

    /// Allocated virtual capacity for a resource kind.
    [[nodiscard]] double capacity(ts::ResourceKind kind) const {
        return kind == ts::ResourceKind::kCpu ? cpu_capacity_ghz : ram_capacity_gb;
    }

    /// Demand series for a resource kind.
    [[nodiscard]] const ts::Series& demand(ts::ResourceKind kind) const {
        return kind == ts::ResourceKind::kCpu ? cpu_demand_ghz : ram_demand_gb;
    }
};

/// One physical box and its co-located VMs.
struct BoxTrace {
    std::string name;
    /// Total virtual capacity available at the box ("C" in Section IV);
    /// the resizing constraint is sum of VM allocations <= this.
    double cpu_capacity_ghz = 0.0;
    double ram_capacity_gb = 0.0;
    /// True if the monitoring data contains gaps (runs of missing samples,
    /// stored as zeros). The paper's Section V evaluation keeps only the
    /// 400 gap-free boxes; filters use this flag.
    bool has_gaps = false;
    std::vector<VmTrace> vms;

    [[nodiscard]] double capacity(ts::ResourceKind kind) const {
        return kind == ts::ResourceKind::kCpu ? cpu_capacity_ghz : ram_capacity_gb;
    }

    /// Number of samples per series (all series in a box are equal length).
    [[nodiscard]] std::size_t length() const {
        return vms.empty() ? 0 : vms.front().cpu_usage_pct.size();
    }

    /// All M x N usage series flattened in SeriesId order (VM-major:
    /// vm0/CPU, vm0/RAM, vm1/CPU, ...), as plain vectors for the
    /// clustering/regression layers.
    [[nodiscard]] std::vector<std::vector<double>> usage_matrix() const;

    /// Same flattening for demand series (what the prediction pipeline
    /// models and the resizing algorithm consumes).
    [[nodiscard]] std::vector<std::vector<double>> demand_matrix() const;
};

/// A whole data-center monitoring trace.
struct Trace {
    std::vector<BoxTrace> boxes;
    /// Ticketing windows per day (96 = 15-minute windows).
    int windows_per_day = 96;
    int num_days = 7;

    [[nodiscard]] std::size_t total_vms() const;
    [[nodiscard]] std::size_t total_series() const;
};

}  // namespace atm::trace
