#pragma once

#include <cstdint>

#include "tracegen/trace.hpp"

namespace atm::trace {

/// Knobs of the synthetic data-center trace generator.
///
/// The generator replaces the paper's proprietary IBM trace (6K boxes, 80K+
/// VMs, 15-minute CPU/RAM utilization over 7 days). Defaults are calibrated
/// so the generated population reproduces the paper's Section II
/// characterization: ticket distribution across thresholds (Fig. 2) and the
/// four spatial-correlation CDFs (Fig. 3, medians ~0.26 / 0.24 / 0.30 /
/// 0.62 for intra-CPU / intra-RAM / inter-all / inter-pair).
///
/// Generation is deterministic: box b of a trace with seed s depends only
/// on (s, b), so sub-populations are reproducible regardless of box count.
struct TraceGenOptions {
    int num_boxes = 400;
    int num_days = 7;
    int windows_per_day = 96;
    std::uint64_t seed = 20150403;  // April 3 2015, the trace start date

    // --- consolidation -----------------------------------------------------
    /// Mean co-located VMs per box (paper: "on average 10").
    double mean_vms_per_box = 10.0;
    int min_vms_per_box = 2;
    int max_vms_per_box = 32;

    // --- hot (culprit) VMs --------------------------------------------------
    /// Fraction of boxes hosting at least one hot VM; hot VMs produce the
    /// ticket mass and make 1-2 VMs per box the "culprits" (Fig. 2c).
    double hot_box_fraction = 0.60;
    /// Probability that a hot box has a second hot VM.
    double second_hot_vm_probability = 0.4;

    // --- spatial correlation -----------------------------------------------
    /// Probability a VM's load tracks the box-shared diurnal driver; the
    /// driver-following subset creates the strongly-correlated groups that
    /// clustering discovers, while the rest keep the population median low.
    double driver_follow_probability = 0.36;
    /// CPU->RAM coupling strength kappa (inter-pair correlation target .62).
    double ram_coupling_min = 0.5;
    double ram_coupling_max = 0.9;

    // --- gaps ----------------------------------------------------------------
    /// Fraction of boxes whose series contain monitoring gaps (the paper
    /// keeps only gap-free boxes for the Section V post-hoc study).
    double gappy_box_fraction = 0.3;

    // --- capacities ----------------------------------------------------------
    /// Headroom of box virtual capacity over the sum of VM allocations;
    /// sampled uniformly in [min, max]. Abundant headroom mirrors the
    /// paper's observation that production boxes are lowly utilized.
    double capacity_headroom_min = 0.95;
    double capacity_headroom_max = 1.05;
};

/// Generates a synthetic data-center monitoring trace.
Trace generate_trace(const TraceGenOptions& options);

/// Generates a single box (box `index` of the trace with the given
/// options); used by tests and by incremental/streaming consumers.
BoxTrace generate_box(const TraceGenOptions& options, int index);

}  // namespace atm::trace
