#include "tracegen/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "exec/fault.hpp"
#include "exec/io.hpp"
#include "obs/metrics.hpp"

namespace atm::trace {
namespace {

/// Splits a CSV line on commas (no quoting — the schema has no free text
/// beyond names, which must not contain commas).
std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> fields;
    std::string field;
    std::istringstream stream(line);
    while (std::getline(stream, field, ',')) fields.push_back(field);
    if (!line.empty() && line.back() == ',') fields.emplace_back();
    return fields;
}

double parse_double(const std::string& s, int line_no, const char* what) {
    if (s.empty()) {
        throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                 ": empty " + what);
    }
    double value = 0.0;
    const auto* begin = s.data();
    const auto* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                 ": bad " + what + " '" + s + "'");
    }
    return value;
}

/// Monitoring values (usage, demand, capacity) must be finite and
/// non-negative. std::from_chars happily parses "nan", "inf" and negative
/// numbers; let none of them into the trace.
double parse_sample(const std::string& s, int line_no, const char* what) {
    const double value = parse_double(s, line_no, what);
    if (!std::isfinite(value)) {
        throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                 ": non-finite " + what + " '" + s + "'");
    }
    if (value < 0.0) {
        throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                 ": negative " + what + " '" + s + "'");
    }
    return value;
}

long parse_long(const std::string& s, int line_no, const char* what) {
    long value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
        throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                 ": bad " + what + " '" + s + "'");
    }
    return value;
}

}  // namespace

void write_trace_csv(std::ostream& out, const Trace& trace) {
    // Enough digits for a lossless double round trip of monitoring values.
    out.precision(12);
    out << "box,vm,window,cpu_capacity_ghz,ram_capacity_gb,cpu_usage_pct,"
           "ram_usage_pct,cpu_demand_ghz,ram_demand_gb\n";
    for (const BoxTrace& box : trace.boxes) {
        out << "#box," << box.name << ',' << box.cpu_capacity_ghz << ','
            << box.ram_capacity_gb << ',' << (box.has_gaps ? 1 : 0) << '\n';
        for (const VmTrace& vm : box.vms) {
            for (std::size_t t = 0; t < vm.cpu_usage_pct.size(); ++t) {
                out << box.name << ',' << vm.name << ',' << t << ','
                    << vm.cpu_capacity_ghz << ',' << vm.ram_capacity_gb << ','
                    << vm.cpu_usage_pct[t] << ',' << vm.ram_usage_pct[t] << ','
                    << vm.cpu_demand_ghz[t] << ',' << vm.ram_demand_gb[t]
                    << '\n';
            }
        }
    }
}

void write_trace_csv_file(const std::string& path, const Trace& trace) {
    // Serialize to memory, then publish atomically (temp + rename): an
    // interrupted `atm generate` never leaves a half-written trace that a
    // later run would silently load as a shorter fleet.
    std::ostringstream out;
    write_trace_csv(out, trace);
    exec::write_file_atomic(path, out.str());
}

Trace read_trace_csv(std::istream& in, int windows_per_day,
                     obs::MetricsRegistry* metrics,
                     const exec::FaultPlan* faults) {
    obs::ScopedTimer load_timer(metrics, "trace.load");
    Trace trace;
    trace.windows_per_day = windows_per_day;

    std::string line;
    int line_no = 0;
    std::uint64_t rows = 0;
    BoxTrace* box = nullptr;
    VmTrace* vm = nullptr;

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        if (line.rfind("box,vm,window", 0) == 0) continue;  // header
        const std::vector<std::string> f = split_csv(line);
        if (!f.empty() && f[0] == "#box") {
            if (f.size() != 5) {
                throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                         ": #box needs 5 fields");
            }
            const exec::FaultContext fault{faults, trace.boxes.size()};
            ATM_FAULT_SITE(fault, "trace.box");
            trace.boxes.emplace_back();
            box = &trace.boxes.back();
            box->name = f[1];
            box->cpu_capacity_ghz = parse_sample(f[2], line_no, "box cpu capacity");
            box->ram_capacity_gb = parse_sample(f[3], line_no, "box ram capacity");
            box->has_gaps = parse_long(f[4], line_no, "has_gaps") != 0;
            vm = nullptr;
            continue;
        }
        if (f.size() != 9) {
            throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                     ": expected 9 fields, got " +
                                     std::to_string(f.size()));
        }
        if (box == nullptr || f[0] != box->name) {
            throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                     ": row for unknown box '" + f[0] + "'");
        }
        if (vm == nullptr || vm->name != f[1]) {
            box->vms.emplace_back();
            vm = &box->vms.back();
            vm->name = f[1];
            vm->cpu_capacity_ghz = parse_sample(f[3], line_no, "vm cpu capacity");
            vm->ram_capacity_gb = parse_sample(f[4], line_no, "vm ram capacity");
            vm->cpu_usage_pct.set_name(vm->name + "/CPU");
            vm->ram_usage_pct.set_name(vm->name + "/RAM");
            vm->cpu_demand_ghz.set_name(vm->name + "/CPU-demand");
            vm->ram_demand_gb.set_name(vm->name + "/RAM-demand");
        }
        const long window = parse_long(f[2], line_no, "window");
        if (static_cast<std::size_t>(window) != vm->cpu_usage_pct.size()) {
            throw std::runtime_error("trace csv line " + std::to_string(line_no) +
                                     ": windows out of order for " + vm->name);
        }
        const double cpu_usage = parse_sample(f[5], line_no, "cpu usage");
        const double ram_usage = parse_sample(f[6], line_no, "ram usage");
        vm->cpu_usage_pct.push_back(cpu_usage);
        vm->ram_usage_pct.push_back(ram_usage);
        // Demand columns optional: derive from usage when blank.
        vm->cpu_demand_ghz.push_back(
            f[7].empty() ? cpu_usage / 100.0 * vm->cpu_capacity_ghz
                         : parse_sample(f[7], line_no, "cpu demand"));
        vm->ram_demand_gb.push_back(
            f[8].empty() ? ram_usage / 100.0 * vm->ram_capacity_gb
                         : parse_sample(f[8], line_no, "ram demand"));
        ++rows;
    }
    if (metrics != nullptr) {
        metrics->add("trace.rows", rows);
        metrics->add("trace.boxes", trace.boxes.size());
        std::uint64_t vms = 0;
        for (const BoxTrace& b : trace.boxes) vms += b.vms.size();
        metrics->add("trace.vms", vms);
    }
    return trace;
}

Trace read_trace_csv_file(const std::string& path, int windows_per_day,
                          obs::MetricsRegistry* metrics,
                          const exec::FaultPlan* faults) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("read_trace_csv_file: cannot open " + path);
    return read_trace_csv(in, windows_per_day, metrics, faults);
}

}  // namespace atm::trace
