#include "tracegen/trace_binary.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/errors.hpp"
#include "exec/fault.hpp"
#include "exec/io.hpp"
#include "obs/metrics.hpp"
#include "tracegen/trace_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ATM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ATM_HAVE_MMAP 0
#endif

namespace atm::trace {
namespace {

constexpr std::uint32_t kEndianTag = 0x01020304u;
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 72;
constexpr std::size_t kMagicBytes = 8;

[[noreturn]] void fail(const std::string& message) {
    throw core::PipelineError(core::PipelineErrorCode::kTraceInvalid, "trace",
                              "binary trace: " + message);
}

/// FNV-1a folded 8 bytes at a time. Byte-wise FNV is the bottleneck at
/// paper scale (~1.7 GB payload); word folding keeps the full-payload
/// integrity sweep under half a second. Word loads are native-endian,
/// which is fine: the endian tag already pins the file to this host
/// order before the fingerprint is checked.
std::uint64_t fingerprint_payload(const unsigned char* data,
                                  std::size_t bytes) {
    constexpr std::uint64_t kPrime = 1099511628211ull;
    std::uint64_t hash = 1469598103934665603ull;
    std::size_t i = 0;
    for (; i + 8 <= bytes; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, data + i, 8);
        hash = (hash ^ word) * kPrime;
    }
    for (; i < bytes; ++i) {
        hash = (hash ^ data[i]) * kPrime;
    }
    return hash;
}

void append_raw(std::string& out, const void* data, std::size_t bytes) {
    out.append(static_cast<const char*>(data), bytes);
}

template <typename T>
void append_value(std::string& out, T value) {
    append_raw(out, &value, sizeof(T));
}

template <typename T>
void put_value(std::string& out, std::size_t offset, T value) {
    std::memcpy(out.data() + offset, &value, sizeof(T));
}

void append_name(std::string& out, const std::string& name,
                 const char* what) {
    if (name.size() > 0xFFFF) {
        fail(std::string(what) + " name longer than 65535 bytes");
    }
    append_value(out, static_cast<std::uint16_t>(name.size()));
    out.append(name);
}

/// Bounds-checked reader over the mapped bytes. Every overrun is a
/// truncation (or a lying index) and fails with the field name.
struct Cursor {
    const unsigned char* data;
    std::size_t size;
    std::size_t pos = 0;

    template <typename T>
    T read(const char* what) {
        if (sizeof(T) > size - pos) {
            fail(std::string("truncated reading ") + what);
        }
        T value;
        std::memcpy(&value, data + pos, sizeof(T));
        pos += sizeof(T);
        return value;
    }

    std::string read_name(const char* what) {
        const auto len = read<std::uint16_t>(what);
        if (len > size - pos) {
            fail(std::string("truncated reading ") + what);
        }
        std::string name(reinterpret_cast<const char*>(data + pos), len);
        pos += len;
        return name;
    }
};

/// Read-only view of a whole file: mmap when available (the loader's
/// normal mode — pages fault in as the index/payload are walked), plain
/// buffered read otherwise. The view lives until destruction.
struct MappedFile {
    const unsigned char* data = nullptr;
    std::size_t size = 0;

    explicit MappedFile(const std::string& path) {
#if ATM_HAVE_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0) fail("cannot open " + path);
        struct stat st {};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            fail("cannot stat " + path);
        }
        size = static_cast<std::size_t>(st.st_size);
        if (size > 0) {
            void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
            if (map != MAP_FAILED) {
                map_ = map;
                data = static_cast<const unsigned char*>(map);
            }
        }
        ::close(fd);
        if (data != nullptr || size == 0) return;
#endif
        std::ifstream in(path, std::ios::binary);
        if (!in) fail("cannot open " + path);
        buffer_.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
        data = reinterpret_cast<const unsigned char*>(buffer_.data());
        size = buffer_.size();
    }

    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    ~MappedFile() {
#if ATM_HAVE_MMAP
        if (map_ != nullptr) ::munmap(map_, size);
#endif
    }

  private:
#if ATM_HAVE_MMAP
    void* map_ = nullptr;
#endif
    std::string buffer_;
};

double checked_sample(double value, const std::string& series_name) {
    if (!std::isfinite(value)) {
        fail("non-finite sample in series " + series_name);
    }
    if (value < 0.0) {
        fail("negative sample in series " + series_name);
    }
    return value;
}

}  // namespace

bool is_trace_binary_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    char magic[kMagicBytes];
    in.read(magic, kMagicBytes);
    return in.gcount() == static_cast<std::streamsize>(kMagicBytes) &&
           std::memcmp(magic, kTraceBinaryMagic, kMagicBytes) == 0;
}

void write_trace_binary_file(const std::string& path, const Trace& trace) {
    std::string out;
    // Header first, payload geometry patched in once the index is built.
    out.append(kTraceBinaryMagic, kMagicBytes);
    append_value(out, kEndianTag);
    append_value(out, kVersion);
    append_value(out, static_cast<std::uint32_t>(trace.windows_per_day));
    append_value(out, static_cast<std::uint32_t>(trace.num_days));
    append_value(out, static_cast<std::uint64_t>(trace.boxes.size()));
    const std::size_t vm_count_at = out.size();
    append_value(out, std::uint64_t{0});  // vm_count
    const std::size_t sample_count_at = out.size();
    append_value(out, std::uint64_t{0});  // sample_count
    const std::size_t payload_offset_at = out.size();
    append_value(out, std::uint64_t{0});  // payload_offset
    const std::size_t payload_bytes_at = out.size();
    append_value(out, std::uint64_t{0});  // payload_bytes
    const std::size_t fingerprint_at = out.size();
    append_value(out, std::uint64_t{0});  // payload fingerprint

    std::uint64_t vms = 0;
    std::uint64_t samples = 0;
    for (const BoxTrace& box : trace.boxes) {
        append_name(out, box.name, "box");
        append_value(out, static_cast<std::uint8_t>(box.has_gaps ? 1 : 0));
        append_value(out, box.cpu_capacity_ghz);
        append_value(out, box.ram_capacity_gb);
        append_value(out, static_cast<std::uint32_t>(box.vms.size()));
        for (const VmTrace& vm : box.vms) {
            const std::size_t len = vm.cpu_usage_pct.size();
            if (vm.ram_usage_pct.size() != len ||
                vm.cpu_demand_ghz.size() != len ||
                vm.ram_demand_gb.size() != len) {
                fail("series length mismatch in VM " + vm.name);
            }
            append_name(out, vm.name, "vm");
            append_value(out, vm.cpu_capacity_ghz);
            append_value(out, vm.ram_capacity_gb);
            append_value(out, static_cast<std::uint64_t>(len));
            ++vms;
            samples += len;
        }
    }

    // 8-align the payload so its doubles sit on natural boundaries in
    // the mapping (mmap bases are page-aligned, so file offset
    // alignment is mapping alignment).
    while (out.size() % 8 != 0) out.push_back('\0');
    const std::uint64_t payload_offset = out.size();
    for (const BoxTrace& box : trace.boxes) {
        for (const VmTrace& vm : box.vms) {
            for (const ts::Series* series :
                 {&vm.cpu_usage_pct, &vm.ram_usage_pct, &vm.cpu_demand_ghz,
                  &vm.ram_demand_gb}) {
                append_raw(out, series->values().data(),
                           series->size() * sizeof(double));
            }
        }
    }
    const std::uint64_t payload_bytes = out.size() - payload_offset;

    put_value(out, vm_count_at, vms);
    put_value(out, sample_count_at, samples);
    put_value(out, payload_offset_at, payload_offset);
    put_value(out, payload_bytes_at, payload_bytes);
    put_value(out, fingerprint_at,
              fingerprint_payload(
                  reinterpret_cast<const unsigned char*>(out.data()) +
                      payload_offset,
                  payload_bytes));

    exec::write_file_atomic(path, out);
}

Trace read_trace_binary_file(const std::string& path,
                             obs::MetricsRegistry* metrics,
                             const exec::FaultPlan* faults) {
    obs::ScopedTimer load_timer(metrics, "trace.load");
    const MappedFile file(path);
    if (file.size < kHeaderBytes) fail("truncated header in " + path);
    if (std::memcmp(file.data, kTraceBinaryMagic, kMagicBytes) != 0) {
        fail("bad magic in " + path);
    }

    Cursor cursor{file.data, file.size, kMagicBytes};
    const auto endian = cursor.read<std::uint32_t>("endian tag");
    if (endian != kEndianTag) {
        fail(endian == 0x04030201u
                 ? "wrong endianness (file written on a different-endian host)"
                 : "bad endian tag");
    }
    const auto version = cursor.read<std::uint32_t>("version");
    if (version != kVersion) {
        fail("unsupported version " + std::to_string(version));
    }
    const auto windows_per_day = cursor.read<std::uint32_t>("windows_per_day");
    const auto num_days = cursor.read<std::uint32_t>("num_days");
    const auto box_count = cursor.read<std::uint64_t>("box_count");
    const auto vm_count = cursor.read<std::uint64_t>("vm_count");
    const auto sample_count = cursor.read<std::uint64_t>("sample_count");
    const auto payload_offset = cursor.read<std::uint64_t>("payload_offset");
    const auto payload_bytes = cursor.read<std::uint64_t>("payload_bytes");
    const auto fingerprint = cursor.read<std::uint64_t>("payload fingerprint");

    if (payload_offset < kHeaderBytes || payload_offset > file.size ||
        payload_bytes > file.size - payload_offset) {
        fail("truncated payload (index claims more bytes than the file has)");
    }
    if (payload_offset % 8 != 0) fail("misaligned payload offset");
    if (payload_bytes != sample_count * 4 * sizeof(double)) {
        fail("payload size disagrees with sample count");
    }
    if (fingerprint_payload(file.data + payload_offset, payload_bytes) !=
        fingerprint) {
        fail("payload fingerprint mismatch (corrupt or tampered file)");
    }

    Trace trace;
    trace.windows_per_day = static_cast<int>(windows_per_day);
    trace.num_days = static_cast<int>(num_days);
    trace.boxes.reserve(box_count);

    // The index Cursor must stay inside [header, payload): a corrupt
    // index that wanders into the payload would otherwise "parse".
    Cursor index{file.data, static_cast<std::size_t>(payload_offset),
                 kHeaderBytes};
    // Decode via memcpy, not a reinterpret_cast<const double*>: the
    // read() fallback buffer carries no alignment guarantee.
    const unsigned char* payload = file.data + payload_offset;
    std::uint64_t samples_seen = 0;
    std::uint64_t vms_seen = 0;

    for (std::uint64_t b = 0; b < box_count; ++b) {
        const exec::FaultContext fault{faults, trace.boxes.size()};
        ATM_FAULT_SITE(fault, "trace.box");
        trace.boxes.emplace_back();
        BoxTrace& box = trace.boxes.back();
        box.name = index.read_name("box name");
        box.has_gaps = index.read<std::uint8_t>("has_gaps") != 0;
        box.cpu_capacity_ghz = index.read<double>("box cpu capacity");
        box.ram_capacity_gb = index.read<double>("box ram capacity");
        const auto box_vms = index.read<std::uint32_t>("box vm count");
        box.vms.reserve(box_vms);
        for (std::uint32_t v = 0; v < box_vms; ++v) {
            box.vms.emplace_back();
            VmTrace& vm = box.vms.back();
            vm.name = index.read_name("vm name");
            vm.cpu_capacity_ghz = index.read<double>("vm cpu capacity");
            vm.ram_capacity_gb = index.read<double>("vm ram capacity");
            const auto len = index.read<std::uint64_t>("series length");
            if (len > sample_count - samples_seen) {
                fail("index series lengths exceed sample count");
            }
            const unsigned char* block =
                payload + samples_seen * 4 * sizeof(double);
            ts::Series* const series[4] = {&vm.cpu_usage_pct,
                                           &vm.ram_usage_pct,
                                           &vm.cpu_demand_ghz,
                                           &vm.ram_demand_gb};
            const char* const suffix[4] = {"/CPU", "/RAM", "/CPU-demand",
                                           "/RAM-demand"};
            for (int s = 0; s < 4; ++s) {
                series[s]->set_name(vm.name + suffix[s]);
                std::vector<double>& values = series[s]->values();
                values.resize(len);
                std::memcpy(values.data(), block, len * sizeof(double));
                for (const double value : values) {
                    checked_sample(value, series[s]->name());
                }
                block += len * sizeof(double);
            }
            samples_seen += len;
            ++vms_seen;
        }
    }
    if (samples_seen != sample_count) {
        fail("index series lengths disagree with sample count");
    }
    if (vms_seen != vm_count) {
        fail("index vm entries disagree with vm count");
    }

    if (metrics != nullptr) {
        metrics->add("trace.rows", samples_seen);
        metrics->add("trace.boxes", trace.boxes.size());
        metrics->add("trace.vms", vms_seen);
    }
    return trace;
}

Trace read_trace_any_file(const std::string& path, int windows_per_day,
                          obs::MetricsRegistry* metrics,
                          const exec::FaultPlan* faults) {
    if (is_trace_binary_file(path)) {
        return read_trace_binary_file(path, metrics, faults);
    }
    return read_trace_csv_file(path, windows_per_day, metrics, faults);
}

}  // namespace atm::trace
