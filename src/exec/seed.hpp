#pragma once

#include <cstdint>

namespace atm::exec {

/// One step of the splitmix64 output function (Steele et al., "Fast
/// splittable pseudorandom number generators"): a bijective avalanche mix
/// of the 64-bit state. Used to derive statistically independent child
/// seeds from a base seed, so a fleet run can hand every box its own seed
/// deterministically — independent of scheduling order or worker count.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Deterministic per-task seed: child `index` of `base`. Distinct indices
/// give uncorrelated streams; the same (base, index) always gives the same
/// seed, which is what makes parallel fleet runs bit-reproducible.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
    return splitmix64(splitmix64(base) ^ splitmix64(index + 0x632BE59BD9B4E019ull));
}

}  // namespace atm::exec
