#pragma once

#include <optional>
#include <string>

namespace atm::exec {

/// One accepted (or connected) Unix-domain stream socket with buffered,
/// poll-timed line IO. The daemon protocol is newline-delimited JSON, so
/// lines are the only read granularity exposed. Movable, not copyable;
/// the destructor closes the fd.
class UnixSocket {
  public:
    UnixSocket() = default;
    explicit UnixSocket(int fd) : fd_(fd) {}
    UnixSocket(UnixSocket&& other) noexcept;
    UnixSocket& operator=(UnixSocket&& other) noexcept;
    UnixSocket(const UnixSocket&) = delete;
    UnixSocket& operator=(const UnixSocket&) = delete;
    ~UnixSocket();

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int fd() const { return fd_; }

    /// Reads up to the next '\n' (stripped from the result, along with a
    /// preceding '\r'). Blocks at most `timeout_ms` per poll round while
    /// no bytes arrive; returns nullopt on timeout or orderly peer close
    /// (`*eof` distinguishes the two when non-null). Throws
    /// std::runtime_error on socket errors. A line longer than 1 MiB is
    /// treated as a protocol error and throws.
    std::optional<std::string> read_line(int timeout_ms, bool* eof = nullptr);

    /// Writes `line` plus a trailing '\n', retrying short writes. Returns
    /// false when the peer has closed (EPIPE/ECONNRESET — SIGPIPE is
    /// suppressed via MSG_NOSIGNAL); throws std::runtime_error on other
    /// socket errors.
    bool write_line(const std::string& line);

    void close();

  private:
    int fd_ = -1;
    std::string buffer_;  ///< bytes read past the last returned line
};

/// A bound, listening Unix-domain socket. Binding unlinks any stale file
/// at `path` first (daemon restart after SIGKILL leaves one behind); the
/// destructor closes the fd and unlinks the path.
class UnixListener {
  public:
    UnixListener() = default;
    UnixListener(UnixListener&& other) noexcept;
    UnixListener& operator=(UnixListener&& other) noexcept;
    UnixListener(const UnixListener&) = delete;
    UnixListener& operator=(const UnixListener&) = delete;
    ~UnixListener();

    /// Binds and listens at `path`. Throws std::runtime_error (with errno
    /// text) on failure — including a path longer than sockaddr_un allows.
    static UnixListener bind(const std::string& path);

    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] const std::string& path() const { return path_; }

    /// Waits up to `timeout_ms` for a pending connection; returns an
    /// invalid socket on timeout so callers can re-check a stop token
    /// between polls. Throws std::runtime_error on listener errors.
    UnixSocket accept(int timeout_ms);

    void close();

  private:
    UnixListener(int fd, std::string path);

    int fd_ = -1;
    std::string path_;
};

/// Connects to a listening Unix-domain socket at `path`, waiting up to
/// `timeout_ms` for the connect to complete. Throws std::runtime_error on
/// failure (no listener, timeout, path too long).
UnixSocket unix_connect(const std::string& path, int timeout_ms);

}  // namespace atm::exec
