#include "exec/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace atm::exec {
namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Frame layout: 8 hex chars (payload length), space, 16 hex chars
/// (payload checksum), space, payload, newline.
constexpr std::size_t kLenHexChars = 8;
constexpr std::size_t kHashHexChars = 16;
constexpr std::size_t kPrefixChars = kLenHexChars + 1 + kHashHexChars + 1;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw std::runtime_error("journal: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

/// Parses exactly `n` lowercase-hex chars; returns false on any other
/// character (uppercase included — the writer only emits lowercase).
bool parse_hex(std::string_view text, std::size_t n, std::uint64_t* out) {
    if (text.size() < n) return false;
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const char c = text[i];
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9') {
            digit = static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        } else {
            return false;
        }
        value = (value << 4) | digit;
    }
    *out = value;
    return true;
}

void append_hex(std::string& out, std::uint64_t value, std::size_t n) {
    static const char* kDigits = "0123456789abcdef";
    for (std::size_t i = n; i-- > 0;) {
        out += kDigits[(value >> (4 * i)) & 0xf];
    }
}

}  // namespace

std::uint64_t fnv1a64_mix(std::uint64_t hash, std::string_view text) {
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t fnv1a64(std::string_view text) {
    return fnv1a64_mix(kFnv1a64Offset, text);
}

std::string frame_journal_record(const std::string& payload) {
    if (payload.find('\n') != std::string::npos) {
        throw std::invalid_argument(
            "journal: record payload must be a single line");
    }
    std::string line;
    line.reserve(kPrefixChars + payload.size() + 1);
    append_hex(line, payload.size(), kLenHexChars);
    line += ' ';
    append_hex(line, fnv1a64(payload), kHashHexChars);
    line += ' ';
    line += payload;
    line += '\n';
    return line;
}

JournalLoad load_journal(const std::string& path) {
    JournalLoad load;
    FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return load;
    load.exists = true;
    std::string contents;
    char buffer[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        contents.append(buffer, n);
    }
    const bool read_error = std::ferror(file) != 0;
    std::fclose(file);
    if (read_error) fail("read failed for", path);

    std::size_t pos = 0;
    while (pos < contents.size()) {
        const std::size_t newline = contents.find('\n', pos);
        if (newline == std::string::npos) {
            // Torn tail: the record's trailing newline never hit the disk.
            load.dropped_tail = true;
            break;
        }
        const std::string_view line(contents.data() + pos, newline - pos);
        std::uint64_t length = 0;
        std::uint64_t checksum = 0;
        const bool frame_ok =
            line.size() >= kPrefixChars && line[kLenHexChars] == ' ' &&
            line[kLenHexChars + 1 + kHashHexChars] == ' ' &&
            parse_hex(line, kLenHexChars, &length) &&
            parse_hex(line.substr(kLenHexChars + 1), kHashHexChars, &checksum);
        if (!frame_ok) {
            load.dropped_tail = true;
            break;
        }
        const std::string_view payload = line.substr(kPrefixChars);
        if (payload.size() != length || fnv1a64(payload) != checksum) {
            load.dropped_tail = true;
            break;
        }
        const std::uint64_t end = newline + 1;
        if (load.header_end == 0) {
            load.header.assign(payload);
            load.header_end = end;
        } else {
            load.records.emplace_back(payload);
            load.record_ends.push_back(end);
        }
        load.valid_bytes = end;
        pos = newline + 1;
    }
    return load;
}

JournalWriter::JournalWriter(int fd, std::string path)
    : fd_(fd), path_(std::move(path)), mutex_(std::make_unique<std::mutex>()) {}

JournalWriter::~JournalWriter() { close(); }

JournalWriter JournalWriter::create(const std::string& path,
                                    const std::string& header) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("cannot create", path);
    JournalWriter writer(fd, path);
    writer.append(header);
    return writer;
}

JournalWriter JournalWriter::append_after(const std::string& path,
                                          std::uint64_t valid_bytes) {
    const int fd = ::open(path.c_str(), O_WRONLY, 0644);
    if (fd < 0) fail("cannot reopen", path);
    // Physically drop any torn tail so every byte in the file is again a
    // valid frame, then position at the end of the intact prefix.
    if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
        ::close(fd);
        fail("cannot truncate torn tail of", path);
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
        ::close(fd);
        fail("cannot seek in", path);
    }
    return JournalWriter(fd, path);
}

void JournalWriter::append(const std::string& payload) {
    const std::string line = frame_journal_record(payload);
    const std::lock_guard<std::mutex> lock(*mutex_);
    if (fd_ < 0) {
        throw std::runtime_error("journal: append to closed writer for '" +
                                 path_ + "'");
    }
    std::size_t written = 0;
    while (written < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + written, line.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail("append failed for", path_);
        }
        written += static_cast<std::size_t>(n);
    }
    // One fsync per record: a box's outcome is durable before its slot is
    // considered checkpointed. Fleet boxes take seconds, so the sync cost
    // is noise next to the compute it makes resumable.
    if (::fsync(fd_) != 0) fail("fsync failed for", path_);
}

void JournalWriter::close() {
    if (mutex_ == nullptr) return;  // moved-from
    const std::lock_guard<std::mutex> lock(*mutex_);
    if (fd_ >= 0) {
        ::fsync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace atm::exec
