#include "exec/arg_parser.hpp"

#include <cstring>
#include <utility>

#include "exec/io.hpp"

namespace atm::exec {
namespace {

/// "value is not a valid <kind> for --name" diagnostic.
[[noreturn]] void bad_value(const std::string& name, const std::string& value,
                            const char* kind) {
    throw ArgParseError("invalid " + std::string(kind) + " '" + value +
                        "' for --" + name);
}

}  // namespace

ArgParser::ArgParser(std::string command, std::string summary)
    : command_(std::move(command)), summary_(std::move(summary)) {}

ArgParser& ArgParser::positional(const std::string& name, const std::string& help) {
    positionals_.push_back({name, help, "", false, false});
    return *this;
}

ArgParser& ArgParser::option(const std::string& name, const std::string& fallback,
                             const std::string& help) {
    options_.push_back({name, help, fallback, false, false});
    return *this;
}

ArgParser& ArgParser::flag(const std::string& name, const std::string& help) {
    options_.push_back({name, help, "false", true, false});
    return *this;
}

ArgParser::Spec* ArgParser::find(const std::string& name) {
    for (Spec& s : options_) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

const ArgParser::Spec& ArgParser::require(const std::string& name) const {
    for (const Spec& s : positionals_) {
        if (s.name == name) return s;
    }
    for (const Spec& s : options_) {
        if (s.name == name) return s;
    }
    throw ArgParseError(command_ + ": undeclared argument '" + name + "'");
}

bool ArgParser::parse(int argc, char** argv, int first) {
    std::size_t next_positional = 0;
    for (int i = first; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("--", 0) != 0) {
            if (next_positional >= positionals_.size()) {
                throw ArgParseError(command_ + ": unexpected argument '" + token +
                                    "'");
            }
            positionals_[next_positional].value = token;
            positionals_[next_positional].seen = true;
            ++next_positional;
            continue;
        }
        std::string name = token.substr(2);
        std::string inline_value;
        bool has_inline_value = false;
        if (const std::size_t eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_inline_value = true;
        }
        if (name == "help") {
            print_help(stdout);
            return false;
        }
        Spec* spec = find(name);
        if (spec == nullptr) {
            throw ArgParseError(command_ + ": unknown flag '--" + name +
                                "' (see --help)");
        }
        if (spec->is_flag) {
            if (has_inline_value) {
                if (inline_value != "true" && inline_value != "false") {
                    bad_value(name, inline_value, "boolean");
                }
                spec->value = inline_value;
            } else {
                spec->value = "true";
            }
        } else if (has_inline_value) {
            spec->value = inline_value;
        } else {
            if (i + 1 >= argc) {
                throw ArgParseError(command_ + ": flag '--" + name +
                                    "' expects a value");
            }
            spec->value = argv[++i];
        }
        spec->seen = true;
    }
    if (next_positional < positionals_.size()) {
        throw ArgParseError(command_ + ": missing required argument <" +
                            positionals_[next_positional].name + ">");
    }
    return true;
}

const std::string& ArgParser::get(const std::string& name) const {
    return require(name).value;
}

bool ArgParser::get_flag(const std::string& name) const {
    return require(name).value == "true";
}

int ArgParser::get_int(const std::string& name) const {
    const std::string& v = require(name).value;
    try {
        std::size_t consumed = 0;
        const int parsed = std::stoi(v, &consumed);
        if (consumed != v.size()) bad_value(name, v, "integer");
        return parsed;
    } catch (const ArgParseError&) {
        throw;
    } catch (const std::exception&) {
        bad_value(name, v, "integer");
    }
}

double ArgParser::get_double(const std::string& name) const {
    const std::string& v = require(name).value;
    try {
        std::size_t consumed = 0;
        const double parsed = std::stod(v, &consumed);
        if (consumed != v.size()) bad_value(name, v, "number");
        return parsed;
    } catch (const ArgParseError&) {
        throw;
    } catch (const std::exception&) {
        bad_value(name, v, "number");
    }
}

std::uint64_t ArgParser::get_u64(const std::string& name) const {
    const std::string& v = require(name).value;
    try {
        std::size_t consumed = 0;
        const unsigned long long parsed = std::stoull(v, &consumed);
        if (consumed != v.size() || v.front() == '-') {
            bad_value(name, v, "unsigned integer");
        }
        return parsed;
    } catch (const ArgParseError&) {
        throw;
    } catch (const std::exception&) {
        bad_value(name, v, "unsigned integer");
    }
}

void require_writable_file(const std::string& flag, const std::string& path) {
    if (path.empty()) {
        throw ArgParseError("--" + flag + ": empty path");
    }
    // Probe via the atomic-write temp file the eventual writer stages
    // through: the target itself is never opened, so a run that passes the
    // probe but later fails cannot have clobbered an existing report.
    std::string reason;
    if (!probe_writable_path(path, &reason)) {
        throw ArgParseError("--" + flag + ": cannot write '" + path +
                            "': " + reason);
    }
}

void ArgParser::print_help(std::FILE* out) const {
    std::fprintf(out, "usage: %s", command_.c_str());
    for (const Spec& p : positionals_) std::fprintf(out, " <%s>", p.name.c_str());
    if (!options_.empty()) std::fprintf(out, " [options]");
    std::fprintf(out, "\n\n%s\n", summary_.c_str());
    if (!positionals_.empty()) {
        std::fprintf(out, "\narguments:\n");
        for (const Spec& p : positionals_) {
            std::fprintf(out, "  %-22s %s\n", ("<" + p.name + ">").c_str(),
                         p.help.c_str());
        }
    }
    std::fprintf(out, "\noptions:\n");
    for (const Spec& o : options_) {
        std::string left = "--" + o.name;
        if (!o.is_flag) left += " <value>";
        if (o.is_flag) {
            std::fprintf(out, "  %-22s %s\n", left.c_str(), o.help.c_str());
        } else {
            std::fprintf(out, "  %-22s %s (default: %s)\n", left.c_str(),
                         o.help.c_str(), o.value.c_str());
        }
    }
    std::fprintf(out, "  %-22s %s\n", "--help", "show this message");
}

}  // namespace atm::exec
