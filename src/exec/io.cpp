#include "exec/io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace atm::exec {
namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw std::runtime_error("write_file_atomic: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

/// Directory portion of `path` ("." when there is none), for the
/// post-rename directory fsync.
std::string parent_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) return ".";
    if (slash == 0) return "/";
    return path.substr(0, slash);
}

/// fsync the containing directory so the rename is on disk. Best-effort:
/// some filesystems refuse O_RDONLY on directories, and losing only the
/// rename (not the data) still leaves a consistent old-or-new state.
void fsync_dir(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return;
    ::fsync(fd);
    ::close(fd);
}

}  // namespace

std::string atomic_temp_path(const std::string& path) { return path + ".tmp"; }

void write_file_atomic(const std::string& path, std::string_view contents) {
    const std::string temp = atomic_temp_path(path);
    const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("cannot create temp file", temp);

    std::size_t written = 0;
    while (written < contents.size()) {
        const ssize_t n = ::write(fd, contents.data() + written,
                                  contents.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(temp.c_str());
            fail("write failed for", temp);
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(temp.c_str());
        fail("fsync failed for", temp);
    }
    if (::close(fd) != 0) {
        ::unlink(temp.c_str());
        fail("close failed for", temp);
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
        ::unlink(temp.c_str());
        fail("cannot rename temp file over", path);
    }
    fsync_dir(parent_dir(path));
}

bool probe_writable_path(const std::string& path, std::string* error) {
    if (path.empty()) {
        if (error != nullptr) *error = "empty path";
        return false;
    }
    // fopen(dir, "ab") "succeeds" on some platforms; reject directories
    // explicitly so the error names the real problem.
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
        if (error != nullptr) *error = "is a directory";
        return false;
    }
    const std::string temp = atomic_temp_path(path);
    const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error != nullptr) *error = std::strerror(errno);
        return false;
    }
    ::close(fd);
    ::unlink(temp.c_str());
    return true;
}

}  // namespace atm::exec
