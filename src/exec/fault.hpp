#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace atm::exec {

/// What an injected fault does when its rule fires.
enum class FaultAction {
    kNan,      ///< overwrite a sample with quiet NaN        (site "samples")
    kInf,      ///< overwrite a sample with +infinity        (site "samples")
    kNegative, ///< overwrite a sample with a negative value (site "samples")
    kZeroRun,  ///< zero a short run of samples              (site "samples")
    kTruncate, ///< drop the trailing quarter of every series (site "series")
    kThrow,    ///< throw InjectedFault at a named code site
};

const char* to_string(FaultAction action);

/// One rule of a fault plan: `site=action[@rate]`. Data rules target the
/// pseudo-sites "samples" (per-sample corruption) and "series" (per-box
/// truncation); throw rules name an ATM_FAULT_SITE instrumentation point
/// ("fleet.box", "pipeline.search", "forecast.fit", ...).
struct FaultRule {
    std::string site;
    FaultAction action = FaultAction::kThrow;
    double rate = 1.0;  ///< firing probability in (0, 1]
};

/// Exception thrown by a firing kThrow rule. Deliberately NOT a
/// core::PipelineError (exec cannot depend on core); the fleet driver maps
/// it to PipelineErrorCode::kFaultInjected and records the site as stage.
class InjectedFault : public std::runtime_error {
  public:
    explicit InjectedFault(std::string site)
        : std::runtime_error("injected fault at site '" + site + "'"),
          site_(std::move(site)) {}

    [[nodiscard]] const std::string& site() const { return site_; }

  private:
    std::string site_;
};

/// A reproducible chaos-testing plan: a seed plus a list of rules. All
/// randomness is derived with splitmix64 chains from
/// (seed, entity, site/stream, index) — never from shared RNG state — so a
/// fleet run under faults is bit-identical for jobs=1 vs jobs=N and across
/// repeat runs.
///
/// Spec grammar (see DESIGN.md §7.11):
///   spec  := rule (',' rule)*
///   rule  := site '=' action ('@' rate)?
///   action:= nan | inf | negative | zero-run | truncate | throw
///   rate  := decimal in (0, 1], default 1
/// Sample-corruption actions require site "samples"; truncate requires
/// site "series"; throw requires any other (code) site name.
struct FaultPlan {
    std::uint64_t seed = 0;
    std::vector<FaultRule> rules;

    [[nodiscard]] bool empty() const { return rules.empty(); }
    /// True when any rule corrupts or truncates data (as opposed to
    /// throwing at a code site) — the fleet driver only copies a box's
    /// trace when this is set.
    [[nodiscard]] bool has_data_faults() const;

    /// Parses the spec grammar above; throws std::invalid_argument with a
    /// pointer to the offending rule on malformed input.
    static FaultPlan parse(const std::string& spec, std::uint64_t seed);
};

/// Per-entity view of a plan, carried through the pipeline by value. A
/// default-constructed context (null plan) is inert: ATM_FAULT_SITE
/// reduces to a single pointer test.
struct FaultContext {
    const FaultPlan* plan = nullptr;
    std::uint64_t entity = 0;  ///< box index within the trace
    /// Retry attempt (0 = first try). Mixed into every draw key *only*
    /// when non-zero, so attempt-0 draws are bit-identical to a context
    /// without the field — and a retried box re-rolls all of its fault
    /// draws, letting `max_retries` recover boxes whose per-attempt
    /// Bernoullis clear. Deterministic in (seed, entity, attempt, site).
    std::uint64_t attempt = 0;
    /// Streaming window number for daemon sites ("serve.ingest",
    /// "serve.apply"). Mixed into draw keys only when non-zero — batch
    /// contexts (which never set it) keep their historical key chains —
    /// so each (seed, epoch, box) gets an independent Bernoulli and a
    /// chaos plan fires on different windows for different boxes.
    std::uint64_t epoch = 0;

    /// Throws InjectedFault if a kThrow rule for `site` fires for this
    /// entity. Deterministic in (plan->seed, entity, site).
    void check_site(const char* site) const;

    /// Applies every "samples" rule to `xs`, drawing an independent
    /// Bernoulli per (entity, stream, index, rule). Returns the number of
    /// samples overwritten. `stream` distinguishes series within a box.
    std::uint64_t corrupt_samples(std::span<double> xs,
                                  std::uint64_t stream) const;

    /// Resolves the post-truncation length for a series of `length`
    /// samples: length - length/4 when a "series" truncate rule fires for
    /// this entity, unchanged otherwise.
    [[nodiscard]] std::size_t truncated_length(std::size_t length) const;
};

/// Stage-boundary instrumentation point. Zero-cost when no plan is armed
/// (one pointer test); named sites are listed in DESIGN.md §7.11.
#define ATM_FAULT_SITE(ctx, site)                          \
    do {                                                   \
        if ((ctx).plan != nullptr) (ctx).check_site(site); \
    } while (0)

}  // namespace atm::exec
