#pragma once

#include <cstddef>
#include <functional>

namespace atm::exec {

class ThreadPool;

/// Process-wide persistent thread pool for fleet runs. Constructed on
/// first use and grown (never shrunk) to satisfy the largest
/// `min_helpers` seen, so repeated fleet runs — benches sweeping --jobs,
/// resumed checkpoints, CLI invocations in one process — reuse warm
/// threads instead of paying a spawn/join cycle per run.
ThreadPool& shared_pool(unsigned min_helpers);

/// Knobs for run_sharded. Both default to "pick for me".
struct ShardOptions {
    /// Total workers including the calling thread (0 = pool size + 1).
    unsigned workers = 0;
    /// Indices per contiguous shard (0 = auto: enough shards to balance,
    /// few enough that claiming stays off the hot path).
    std::size_t shard_size = 0;
};

/// The shard size run_sharded will use for `n` indices on `workers`
/// workers when `requested` is 0 (returns `requested` clamped to [1, n]
/// otherwise). Exposed so the fleet driver can report it.
std::size_t resolve_shard_size(std::size_t n, unsigned workers,
                               std::size_t requested);

/// Runs `fn(worker, 0) .. fn(worker, n-1)`, partitioning the index space
/// into contiguous shards claimed from a single atomic cursor. Each
/// claimant drains its whole shard before claiming another, so a worker
/// touches long contiguous runs of indices (cache-friendly when indices
/// map to adjacent trace boxes) and the claim rate is 1/shard_size of
/// per-index claiming.
///
/// `worker` is a dense id in [0, workers): the calling thread is always
/// worker 0 and participates fully (the call completes even if the pool
/// is saturated or null); pool helpers get ids 1..workers-1. The id is
/// intended to key per-worker workspaces; results must not depend on
/// which worker ran an index — determinism comes from the index, the
/// worker id only selects equivalent scratch space.
///
/// Exception safety mirrors parallel_for_each: the lowest-index
/// exception is rethrown on the caller after all in-flight work
/// finishes; indices above a thrown one may be skipped.
void run_sharded(ThreadPool* pool, std::size_t n, const ShardOptions& options,
                 const std::function<void(unsigned, std::size_t)>& fn);

}  // namespace atm::exec
