#include "exec/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace atm::exec {

namespace {

constexpr std::size_t kMaxLineBytes = 1 << 20;

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Fills a sockaddr_un for `path`, rejecting paths that do not fit.
sockaddr_un make_addr(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path '" + path +
                                 "' is empty or too long for sockaddr_un");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/// Polls `fd` for `events`; returns false on timeout. EINTR retries so a
/// handled signal (SIGTERM drain) does not surface as a socket error.
bool poll_one(int fd, short events, int timeout_ms) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0) return true;
        if (rc == 0) return false;
        if (errno != EINTR) throw_errno("poll");
    }
}

}  // namespace

UnixSocket::UnixSocket(UnixSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

UnixSocket::~UnixSocket() { close(); }

void UnixSocket::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

std::optional<std::string> UnixSocket::read_line(int timeout_ms, bool* eof) {
    if (eof != nullptr) *eof = false;
    if (fd_ < 0) {
        if (eof != nullptr) *eof = true;
        return std::nullopt;
    }
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r') line.pop_back();
            return line;
        }
        if (buffer_.size() > kMaxLineBytes) {
            throw std::runtime_error("socket line exceeds " +
                                     std::to_string(kMaxLineBytes) + " bytes");
        }
        if (!poll_one(fd_, POLLIN, timeout_ms)) return std::nullopt;
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            if (eof != nullptr) *eof = true;
            return std::nullopt;
        }
        if (errno == EINTR) continue;
        throw_errno("recv");
    }
}

bool UnixSocket::write_line(const std::string& line) {
    if (fd_ < 0) return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                                 MSG_NOSIGNAL);
        if (n >= 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) return false;
        throw_errno("send");
    }
    return true;
}

UnixListener::UnixListener(int fd, std::string path)
    : fd_(fd), path_(std::move(path)) {}

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {
    other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        path_ = std::move(other.path_);
        other.path_.clear();
    }
    return *this;
}

UnixListener::~UnixListener() { close(); }

void UnixListener::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        ::unlink(path_.c_str());
    }
    path_.clear();
}

UnixListener UnixListener::bind(const std::string& path) {
    const sockaddr_un addr = make_addr(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    // A SIGKILL'd daemon leaves its socket file behind; a fresh bind must
    // not fail on that stale inode.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("bind '" + path + "'");
    }
    if (::listen(fd, 64) != 0) {
        const int saved = errno;
        ::close(fd);
        ::unlink(path.c_str());
        errno = saved;
        throw_errno("listen '" + path + "'");
    }
    return UnixListener(fd, path);
}

UnixSocket UnixListener::accept(int timeout_ms) {
    if (fd_ < 0) return UnixSocket{};
    if (!poll_one(fd_, POLLIN, timeout_ms)) return UnixSocket{};
    for (;;) {
        const int conn = ::accept(fd_, nullptr, nullptr);
        if (conn >= 0) return UnixSocket(conn);
        if (errno == EINTR) continue;
        // The peer can vanish between poll and accept; treat it like a
        // timeout and let the caller poll again.
        if (errno == ECONNABORTED || errno == EAGAIN ||
            errno == EWOULDBLOCK) {
            return UnixSocket{};
        }
        throw_errno("accept");
    }
}

UnixSocket unix_connect(const std::string& path, int timeout_ms) {
    const sockaddr_un addr = make_addr(path);
    // A not-yet-listening daemon shows up as ENOENT (no socket file) or
    // ECONNREFUSED (stale file); retry those until the deadline so tests
    // and `atm play` can start the client before the daemon is ready.
    constexpr int kRetrySleepMs = 20;
    int waited_ms = 0;
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("socket");
        for (;;) {
            if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0) {
                return UnixSocket(fd);
            }
            if (errno == EINTR) continue;
            break;
        }
        const int saved = errno;
        ::close(fd);
        const bool retryable = saved == ENOENT || saved == ECONNREFUSED;
        if (!retryable || waited_ms >= timeout_ms) {
            errno = saved;
            throw_errno("connect '" + path + "'");
        }
        timespec sleep_for{0, kRetrySleepMs * 1000000};
        ::nanosleep(&sleep_for, nullptr);
        waited_ms += kRetrySleepMs;
    }
}

}  // namespace atm::exec
