#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace atm::exec {

/// Thrown on malformed command lines: unknown flags, missing values,
/// missing positionals, or values that fail numeric conversion. The `what`
/// string is a full, user-ready diagnostic.
class ArgParseError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Declarative command-line parser for one (sub)command.
///
/// Declare positionals, valued options, and boolean flags up front; then
/// `parse()` accepts `--key value` and `--key=value` spellings, handles
/// `--help` (prints generated usage, returns false), and *errors* on
/// anything undeclared or malformed instead of skipping it silently.
/// Typed getters (`get_int`, ...) validate the whole token, so
/// `--boxes 12x` is a diagnostic, not a silent 12.
class ArgParser {
public:
    /// `command` is the full invocation prefix shown in usage lines
    /// (e.g. "atm generate"); `summary` is the one-line description.
    ArgParser(std::string command, std::string summary);

    /// Declares a required positional argument (filled in declaration
    /// order by the non-flag tokens).
    ArgParser& positional(const std::string& name, const std::string& help);
    /// Declares a valued option with a default.
    ArgParser& option(const std::string& name, const std::string& fallback,
                      const std::string& help);
    /// Declares a boolean flag (false unless present; `--name=false` also
    /// accepted).
    ArgParser& flag(const std::string& name, const std::string& help);

    /// Parses argv[first..argc). Returns false when --help was handled
    /// (usage printed to stdout; the caller should exit 0). Throws
    /// ArgParseError on any malformed or undeclared input.
    bool parse(int argc, char** argv, int first);

    /// Value of a positional or option (post-parse; default if absent).
    [[nodiscard]] const std::string& get(const std::string& name) const;
    [[nodiscard]] bool get_flag(const std::string& name) const;
    [[nodiscard]] int get_int(const std::string& name) const;
    [[nodiscard]] double get_double(const std::string& name) const;
    [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;

    void print_help(std::FILE* out) const;

private:
    struct Spec {
        std::string name;
        std::string help;
        std::string value;  // default, overwritten by parse
        bool is_flag = false;
        bool seen = false;
    };

    Spec* find(const std::string& name);
    [[nodiscard]] const Spec& require(const std::string& name) const;

    std::string command_;
    std::string summary_;
    std::vector<Spec> positionals_;
    std::vector<Spec> options_;
};

/// Validates that `path` can be written *now*, so output-path typos fail
/// fast as a usage error instead of silently losing a report after
/// minutes of compute. Probes by creating (then removing) the
/// exec::atomic_temp_path sibling that write_file_atomic will stage
/// through — the target itself is never opened, so an existing file's
/// contents cannot be touched even if the run later dies. Rejects
/// directories. Throws ArgParseError naming `flag` when the path cannot
/// be written.
void require_writable_file(const std::string& flag, const std::string& path);

}  // namespace atm::exec
