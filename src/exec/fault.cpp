#include "exec/fault.hpp"

#include <charconv>
#include <cmath>
#include <limits>

#include "exec/seed.hpp"

namespace atm::exec {

namespace {

/// FNV-1a so a site name folds into the seed chain deterministically
/// (independent of pointer identity or locale).
std::uint64_t hash_site(const std::string& site) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : site) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

/// Uniform draw in [0, 1) from a fully-mixed 64-bit key: top 53 bits
/// scaled by 2^-53 (the standard double mantissa construction).
double uniform01(std::uint64_t key) {
    return static_cast<double>(splitmix64(key) >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kTruncateStream = 0x7472756E63617465ull;  // "truncate"
constexpr std::size_t kZeroRunLength = 8;

bool is_sample_action(FaultAction action) {
    return action == FaultAction::kNan || action == FaultAction::kInf ||
           action == FaultAction::kNegative || action == FaultAction::kZeroRun;
}

FaultAction parse_action(const std::string& text, const std::string& rule) {
    if (text == "nan") return FaultAction::kNan;
    if (text == "inf") return FaultAction::kInf;
    if (text == "negative") return FaultAction::kNegative;
    if (text == "zero-run") return FaultAction::kZeroRun;
    if (text == "truncate") return FaultAction::kTruncate;
    if (text == "throw") return FaultAction::kThrow;
    throw std::invalid_argument("fault spec: unknown action '" + text +
                                "' in rule '" + rule + "'");
}

FaultRule parse_rule(const std::string& rule) {
    const std::size_t eq = rule.find('=');
    if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument(
            "fault spec: expected 'site=action[@rate]', got '" + rule + "'");
    }
    FaultRule out;
    out.site = rule.substr(0, eq);
    std::string action_text = rule.substr(eq + 1);
    const std::size_t at = action_text.find('@');
    if (at != std::string::npos) {
        const std::string rate_text = action_text.substr(at + 1);
        action_text.resize(at);
        const char* begin = rate_text.data();
        const char* end = begin + rate_text.size();
        const auto [ptr, ec] = std::from_chars(begin, end, out.rate);
        if (ec != std::errc{} || ptr != end) {
            throw std::invalid_argument("fault spec: bad rate '" + rate_text +
                                        "' in rule '" + rule + "'");
        }
    }
    out.action = parse_action(action_text, rule);
    if (!(out.rate > 0.0) || out.rate > 1.0) {
        throw std::invalid_argument("fault spec: rate must be in (0, 1] in rule '" +
                                    rule + "'");
    }
    const bool sample_site = out.site == "samples";
    const bool series_site = out.site == "series";
    if (is_sample_action(out.action) && !sample_site) {
        throw std::invalid_argument("fault spec: action '" +
                                    std::string(to_string(out.action)) +
                                    "' requires site 'samples' in rule '" + rule +
                                    "'");
    }
    if (out.action == FaultAction::kTruncate && !series_site) {
        throw std::invalid_argument(
            "fault spec: action 'truncate' requires site 'series' in rule '" +
            rule + "'");
    }
    if (out.action == FaultAction::kThrow && (sample_site || series_site)) {
        throw std::invalid_argument(
            "fault spec: action 'throw' needs a code site, not '" + out.site +
            "' in rule '" + rule + "'");
    }
    return out;
}

}  // namespace

const char* to_string(FaultAction action) {
    switch (action) {
        case FaultAction::kNan: return "nan";
        case FaultAction::kInf: return "inf";
        case FaultAction::kNegative: return "negative";
        case FaultAction::kZeroRun: return "zero-run";
        case FaultAction::kTruncate: return "truncate";
        case FaultAction::kThrow: return "throw";
    }
    return "unknown";
}

bool FaultPlan::has_data_faults() const {
    for (const FaultRule& rule : rules) {
        if (is_sample_action(rule.action) || rule.action == FaultAction::kTruncate) {
            return true;
        }
    }
    return false;
}

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos) comma = spec.size();
        const std::string rule = spec.substr(start, comma - start);
        if (!rule.empty()) plan.rules.push_back(parse_rule(rule));
        start = comma + 1;
    }
    if (plan.rules.empty() && !spec.empty()) {
        throw std::invalid_argument("fault spec: no rules in '" + spec + "'");
    }
    return plan;
}

void FaultContext::check_site(const char* site) const {
    if (plan == nullptr) return;
    const std::string name(site);
    for (const FaultRule& rule : plan->rules) {
        if (rule.action != FaultAction::kThrow || rule.site != name) continue;
        std::uint64_t key =
            derive_seed(derive_seed(plan->seed, entity), hash_site(name));
        // Epoch 0 / attempt 0 keep the historical key chain so existing
        // plans (and the golden chaos runs) are unchanged; each streaming
        // window and each retry re-rolls independently.
        if (epoch != 0) key = derive_seed(key, epoch);
        if (attempt != 0) key = derive_seed(key, attempt);
        if (uniform01(key) < rule.rate) throw InjectedFault(name);
    }
}

std::uint64_t FaultContext::corrupt_samples(std::span<double> xs,
                                            std::uint64_t stream) const {
    if (plan == nullptr || xs.empty()) return 0;
    std::uint64_t corrupted = 0;
    std::size_t rule_index = 0;
    for (const FaultRule& rule : plan->rules) {
        ++rule_index;
        if (!is_sample_action(rule.action) || rule.site != "samples") continue;
        // Key chain: seed -> entity -> (stream, rule) -> sample index. Each
        // sample decision is independent of evaluation order, so the same
        // plan corrupts the same samples regardless of --jobs.
        std::uint64_t base = derive_seed(
            derive_seed(plan->seed, entity),
            derive_seed(stream, rule_index + hash_site(rule.site)));
        if (epoch != 0) base = derive_seed(base, epoch);
        if (attempt != 0) base = derive_seed(base, attempt);
        for (std::size_t t = 0; t < xs.size(); ++t) {
            if (uniform01(derive_seed(base, t)) >= rule.rate) continue;
            switch (rule.action) {
                case FaultAction::kNan:
                    xs[t] = std::numeric_limits<double>::quiet_NaN();
                    ++corrupted;
                    break;
                case FaultAction::kInf:
                    xs[t] = std::numeric_limits<double>::infinity();
                    ++corrupted;
                    break;
                case FaultAction::kNegative:
                    xs[t] = -(std::fabs(xs[t]) + 1.0);
                    ++corrupted;
                    break;
                case FaultAction::kZeroRun: {
                    const std::size_t stop =
                        std::min(xs.size(), t + kZeroRunLength);
                    for (std::size_t u = t; u < stop; ++u) xs[u] = 0.0;
                    corrupted += stop - t;
                    t = stop - 1;  // loop increment moves past the run
                    break;
                }
                default:
                    break;
            }
        }
    }
    return corrupted;
}

std::size_t FaultContext::truncated_length(std::size_t length) const {
    if (plan == nullptr || length == 0) return length;
    for (const FaultRule& rule : plan->rules) {
        if (rule.action != FaultAction::kTruncate || rule.site != "series") {
            continue;
        }
        std::uint64_t key =
            derive_seed(derive_seed(plan->seed, entity), kTruncateStream);
        if (epoch != 0) key = derive_seed(key, epoch);
        if (attempt != 0) key = derive_seed(key, attempt);
        if (uniform01(key) < rule.rate) return length - length / 4;
    }
    return length;
}

}  // namespace atm::exec
