#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace atm::exec {

/// FNV-1a 64-bit hash, the journal's record checksum. Exposed for tests
/// (and reused by core's trace/config digests).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// Seed-chained FNV-1a for streaming digests: feed successive fields into
/// the running hash. `fnv1a64(x) == fnv1a64_mix(kFnv1a64Offset, x)`.
inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ull;
[[nodiscard]] std::uint64_t fnv1a64_mix(std::uint64_t hash,
                                        std::string_view text);

/// What load_journal recovered from a checkpoint file. The journal is an
/// append-only sequence of framed records:
///
///   <8 hex payload bytes> <16 hex fnv1a64(payload)> <payload>\n
///
/// where each payload is a single line (no embedded newline). The first
/// record is the header (binding the journal to a run); the rest are
/// opaque payloads for the caller to decode. Loading stops at the first
/// frame that is torn (no trailing newline), malformed, or fails its
/// length/checksum — everything after it is dropped, and `valid_bytes` /
/// `record_ends` tell the writer where the intact prefix ends.
struct JournalLoad {
    /// False when the file does not exist (records/header empty).
    bool exists = false;
    /// True when bytes past the valid prefix were detected and dropped
    /// (torn tail after a crash, or corruption).
    bool dropped_tail = false;
    /// Header payload; empty when the file had no valid header record.
    std::string header;
    /// Record payloads after the header, in append order (valid prefix).
    std::vector<std::string> records;
    /// File offset just past the header record (0 when no valid header).
    std::uint64_t header_end = 0;
    /// File offset just past records[i]; parallel to `records`.
    std::vector<std::uint64_t> record_ends;
    /// Total intact bytes: record_ends.back(), or header_end, or 0.
    std::uint64_t valid_bytes = 0;
};

/// Reads and frame-validates a journal. Never throws on corrupt data —
/// corruption truncates the result (see JournalLoad); only I/O errors on
/// an existing file throw std::runtime_error.
[[nodiscard]] JournalLoad load_journal(const std::string& path);

/// Append-only crash-safe journal writer. Every append is one write(2) of
/// a framed record followed by fsync, so after a crash the file is a valid
/// journal plus at most one torn tail record (which load_journal drops).
/// `append` is thread-safe: fleet workers journal boxes as they finish.
class JournalWriter {
  public:
    /// Starts a fresh journal at `path` (truncating any previous file) and
    /// writes the header record. Throws std::runtime_error on I/O errors.
    static JournalWriter create(const std::string& path,
                                const std::string& header);

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_bytes` (the intact prefix reported by load_journal) so a
    /// torn tail is physically removed before new records follow it.
    static JournalWriter append_after(const std::string& path,
                                      std::uint64_t valid_bytes);

    JournalWriter(JournalWriter&&) noexcept = default;
    JournalWriter& operator=(JournalWriter&&) noexcept = default;
    ~JournalWriter();

    /// Appends one framed, fsync'd record. `payload` must be a single line
    /// (no '\n'); throws std::invalid_argument otherwise, and
    /// std::runtime_error on I/O errors.
    void append(const std::string& payload);

    /// Flushes and closes the file descriptor early (the destructor also
    /// does this). Idempotent.
    void close();

  private:
    JournalWriter(int fd, std::string path);

    int fd_ = -1;
    std::string path_;
    /// Heap-allocated so the writer stays movable.
    std::unique_ptr<std::mutex> mutex_;
};

/// Builds the framed line for `payload` (without writing it). Exposed so
/// tests can construct valid and deliberately corrupted journals.
[[nodiscard]] std::string frame_journal_record(const std::string& payload);

}  // namespace atm::exec
