#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atm::exec {

/// Fixed-size thread pool with a FIFO work queue.
///
/// Built for the fleet driver's batch shape — many independent per-box
/// tasks — rather than general task graphs: tasks must not block waiting
/// for other pool tasks (use `parallel_for_each`, whose caller participates
/// in the work, for nested parallelism). Submission order is the order
/// tasks are *started* in; with one worker this is strict FIFO execution.
///
/// The destructor drains the queue: all submitted tasks run before the
/// workers join (shutdown never drops work).
class ThreadPool {
public:
    /// `threads == 0` uses std::thread::hardware_concurrency() (at least 1).
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads. Safe to call concurrently with grow().
    [[nodiscard]] unsigned size() const {
        return size_.load(std::memory_order_acquire);
    }

    /// Adds workers until the pool has at least `threads` of them. Never
    /// shrinks — a persistent pool (see `shared_pool`) only ratchets up to
    /// the largest --jobs seen. Safe to call while tasks are running.
    void grow(unsigned threads);

    /// Enqueues a task. The task must not throw (wrap work that can throw —
    /// `parallel_for_each` does, capturing the first exception).
    void submit(std::function<void()> task);

    /// Blocks until the queue is empty and no task is executing.
    void wait_idle();

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;  // guarded by mutex_
    std::atomic<unsigned> size_{0};
    std::size_t running_ = 0;
    bool stopping_ = false;
};

/// Runs `fn(0) .. fn(n-1)` with dynamic (work-stealing-style) scheduling:
/// indices are drawn from a shared atomic counter by the pool's workers
/// *and by the calling thread*, so the call always completes even when the
/// pool is saturated or `pool` is null (serial fallback) — safe to nest
/// from inside another pool task. Blocks until every index has run.
///
/// Exception safety: the first exception thrown by any `fn` invocation is
/// captured and rethrown on the calling thread after all in-flight
/// invocations finish; remaining unclaimed indices are skipped.
///
/// Any writes `fn` makes must be to disjoint, index-owned locations (the
/// per-box result slot pattern); `fn` sees indices in nondeterministic
/// order, so determinism must come from index-derived state, never from
/// shared mutable state.
void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace atm::exec
