#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

/// Per-worker bump-allocation arenas for the fleet scheduler's hot loop
/// (DESIGN.md §7.14).
///
/// The box pipeline's inner kernels (DTW rolling rows, MLP activations,
/// lag features) reuse workspace buffers, but at fleet scale every box
/// task historically started from empty vectors: thousands of boxes x
/// dozens of grow-reallocations each, all hitting the global allocator
/// from every worker at once. An Arena gives each scheduler worker one
/// private slab chain; workspace containers draw from it and the steady
/// state — every buffer at its high-water size — performs no allocation
/// at all, arena or otherwise.
///
/// Lifetime rules (normative):
///   * An Arena is monotonic: allocate() never frees, deallocation is a
///     no-op, and memory is returned only by the Arena's destructor.
///     Only buffers that live as long as the arena itself — per-worker
///     workspaces reused across boxes — may draw from it. Per-box
///     temporaries must stay on the heap, or a long run would leak
///     arena space linearly in boxes processed.
///   * Not thread-safe: one Arena per worker, owned by that worker's
///     workspace, never shared.
///   * ArenaAllocator with a null arena falls back to the global heap
///     (operator new/delete), so arena-aware containers default-construct
///     to exactly the historical behavior.
namespace atm::exec {

/// Allocation counters for the paper-scale bench and the scheduler
/// section of metrics reports. All monotone over the arena's lifetime.
struct ArenaStats {
    /// Bytes handed out by allocate() (sum of rounded request sizes).
    std::uint64_t bytes_allocated = 0;
    /// Bytes reserved from the OS across all slabs.
    std::uint64_t bytes_reserved = 0;
    /// High-water mark of bytes_allocated (== bytes_allocated while the
    /// arena is monotonic; kept separate so the report stays meaningful
    /// if a scoped-reset mode is ever added).
    std::uint64_t high_water = 0;
    /// Number of allocate() calls served.
    std::uint64_t allocations = 0;
    /// Slabs owned (including oversize dedicated slabs).
    std::uint64_t slabs = 0;
};

/// Monotonic slab bump allocator. Grows by `slab_bytes` chunks; a request
/// larger than a slab gets its own dedicated slab, so arbitrarily large
/// buffers still work. Alignment up to alignof(std::max_align_t).
class Arena {
  public:
    static constexpr std::size_t kDefaultSlabBytes = std::size_t{1} << 20;

    explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
        : slab_bytes_(slab_bytes < 64 ? 64 : slab_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    void* allocate(std::size_t bytes, std::size_t align) {
        if (bytes == 0) bytes = 1;
        if (align < alignof(void*)) align = alignof(void*);
        std::byte* ptr = aligned_cursor(align);
        if (ptr == nullptr || ptr + bytes > current_ + current_size_) {
            // `bytes + align` guarantees room for the aligned pointer even
            // in a dedicated oversize slab.
            const std::size_t need = bytes + align;
            const std::size_t size = need > slab_bytes_ ? need : slab_bytes_;
            slabs_.push_back(std::make_unique<std::byte[]>(size));
            current_ = slabs_.back().get();
            current_size_ = size;
            cursor_ = 0;
            stats_.bytes_reserved += size;
            ++stats_.slabs;
            ptr = aligned_cursor(align);
        }
        cursor_ = static_cast<std::size_t>(ptr - current_) + bytes;
        stats_.bytes_allocated += bytes;
        if (stats_.bytes_allocated > stats_.high_water) {
            stats_.high_water = stats_.bytes_allocated;
        }
        ++stats_.allocations;
        return ptr;
    }

    [[nodiscard]] const ArenaStats& stats() const { return stats_; }

  private:
    /// First pointer at or after the bump cursor with the requested
    /// alignment, or null when no slab exists yet.
    [[nodiscard]] std::byte* aligned_cursor(std::size_t align) const {
        if (current_ == nullptr) return nullptr;
        const auto raw = reinterpret_cast<std::uintptr_t>(current_) + cursor_;
        const auto aligned =
            (raw + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
        return current_ + cursor_ + static_cast<std::size_t>(aligned - raw);
    }

    std::size_t slab_bytes_;
    std::vector<std::unique_ptr<std::byte[]>> slabs_;
    std::byte* current_ = nullptr;
    std::size_t current_size_ = 0;
    std::size_t cursor_ = 0;
    ArenaStats stats_;
};

/// std-compatible allocator over an Arena. A null arena (the default)
/// uses the global heap, so containers declared with this allocator but
/// constructed without an arena behave exactly like their std
/// counterparts. Deallocation into an arena is a no-op (monotonic).
template <typename T>
class ArenaAllocator {
  public:
    using value_type = T;

    ArenaAllocator() noexcept = default;
    explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
    template <typename U>
    ArenaAllocator(const ArenaAllocator<U>& other) noexcept
        : arena_(other.arena()) {}

    T* allocate(std::size_t n) {
        const std::size_t bytes = n * sizeof(T);
        if (arena_ != nullptr) {
            return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
        }
        return static_cast<T*>(::operator new(bytes));
    }

    void deallocate(T* ptr, std::size_t) noexcept {
        if (arena_ == nullptr) ::operator delete(ptr);
    }

    [[nodiscard]] Arena* arena() const noexcept { return arena_; }

    template <typename U>
    bool operator==(const ArenaAllocator<U>& other) const noexcept {
        return arena_ == other.arena();
    }
    template <typename U>
    bool operator!=(const ArenaAllocator<U>& other) const noexcept {
        return arena_ != other.arena();
    }

  private:
    Arena* arena_ = nullptr;
};

/// Vector whose storage draws from an Arena (or the heap when constructed
/// without one). The workspace structs use this for their grown-on-demand
/// scratch buffers.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace atm::exec
