#include "exec/shard.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>

#include "exec/thread_pool.hpp"

namespace atm::exec {

ThreadPool& shared_pool(unsigned min_helpers) {
    if (min_helpers == 0) min_helpers = 1;
    static ThreadPool pool(min_helpers);
    if (pool.size() < min_helpers) pool.grow(min_helpers);
    return pool;
}

std::size_t resolve_shard_size(std::size_t n, unsigned workers,
                               std::size_t requested) {
    if (n == 0) return 1;
    if (requested != 0) return std::min(requested, n);
    if (workers == 0) workers = 1;
    // ~8 shards per worker balances stragglers (a worker stuck on a slow
    // box strands at most 1/8 of its share) while keeping claims rare;
    // capped so tiny fleets still produce one shard per worker.
    const std::size_t target = n / (std::size_t{8} * workers);
    return std::clamp<std::size_t>(target, 1, 64);
}

namespace {

/// Shared state of one run_sharded call — the ForEachState pattern
/// (thread_pool.cpp) with two changes: the claim unit is a shard of
/// contiguous indices, and each drainer carries a dense worker id.
/// Heap-allocated and owned jointly by caller and helpers so a helper
/// scheduled after the caller already drained everything finds the
/// state alive and exits as a no-op.
struct ShardedState {
    std::function<void(unsigned, std::size_t)> fn;
    std::size_t n = 0;
    std::size_t shard = 1;
    std::size_t num_shards = 0;
    std::atomic<std::size_t> next_shard{0};
    std::atomic<std::size_t> completed{0};
    /// Lowest index that has thrown (SIZE_MAX while none has); same
    /// lowest-wins protocol as ForEachState, so the delivered exception
    /// is a pure function of fn, independent of sharding and scheduling.
    std::atomic<std::size_t> error_index{SIZE_MAX};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;

    void drain(unsigned worker) {
        for (;;) {
            const std::size_t s = next_shard.fetch_add(1);
            if (s >= num_shards) return;
            const std::size_t begin = s * shard;
            const std::size_t end = std::min(n, begin + shard);
            for (std::size_t i = begin; i < end; ++i) {
                if (i < error_index.load(std::memory_order_acquire)) {
                    try {
                        fn(worker, i);
                    } catch (...) {
                        const std::lock_guard<std::mutex> lock(error_mutex);
                        if (i < error_index.load(std::memory_order_relaxed)) {
                            error_index.store(i, std::memory_order_release);
                            error = std::current_exception();
                        }
                    }
                }
            }
            // Whole shards complete at once; completed == n still means
            // no fn invocation is in flight (skipped indices count too).
            const std::size_t done = end - begin;
            if (completed.fetch_add(done) + done == n) {
                const std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        }
    }
};

}  // namespace

void run_sharded(ThreadPool* pool, std::size_t n, const ShardOptions& options,
                 const std::function<void(unsigned, std::size_t)>& fn) {
    if (n == 0) return;
    unsigned workers = options.workers;
    if (workers == 0) workers = (pool == nullptr ? 0 : pool->size()) + 1;
    if (workers < 1) workers = 1;

    if (pool == nullptr || workers == 1 || n == 1) {
        // Serial: ascending order means the first exception is already the
        // lowest-index one; let it propagate directly.
        for (std::size_t i = 0; i < n; ++i) fn(0, i);
        return;
    }

    auto state = std::make_shared<ShardedState>();
    state->fn = fn;
    state->n = n;
    state->shard = resolve_shard_size(n, workers, options.shard_size);
    state->num_shards = (n + state->shard - 1) / state->shard;

    // Worker ids are handed out here, not claimed from a counter inside
    // the task: id h+1 belongs to helper h even if it never runs, so ids
    // stay dense in [0, workers) and each maps to one workspace slot.
    const std::size_t helpers =
        std::min<std::size_t>(workers - 1, state->num_shards - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
        const unsigned worker = static_cast<unsigned>(h + 1);
        pool->submit([state, worker] { state->drain(worker); });
    }

    state->drain(0);
    {
        std::unique_lock<std::mutex> lock(state->done_mutex);
        state->done_cv.wait(
            lock, [&state] { return state->completed.load() == state->n; });
    }
    if (state->error_index.load() != SIZE_MAX) {
        std::rethrow_exception(state->error);
    }
}

}  // namespace atm::exec
