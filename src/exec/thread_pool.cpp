#include "exec/thread_pool.hpp"

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <utility>

namespace atm::exec {

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
    size_.store(threads, std::memory_order_release);
}

void ThreadPool::grow(unsigned threads) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    while (workers_.size() < threads) {
        workers_.emplace_back([this] { worker_loop(); });
    }
    size_.store(static_cast<unsigned>(workers_.size()),
                std::memory_order_release);
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(lock,
                                 [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        task();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0) idle_.notify_all();
        }
    }
}

namespace {

/// Shared state of one parallel_for_each call. Heap-allocated and owned
/// jointly by the caller and every helper task: a helper that only gets
/// scheduled after the caller has already drained the index space (the
/// nested-call scenario — all workers busy with outer tasks) must still
/// find the state alive, see the counter exhausted, and exit as a no-op.
struct ForEachState {
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    /// Lowest index that has thrown so far (SIZE_MAX while none has). The
    /// caller must see the *first trace-order* exception regardless of
    /// scheduling, so later throwers are demoted, not first-come-first-kept.
    std::atomic<std::size_t> error_index{SIZE_MAX};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;

    /// Claims indices until the space is exhausted. Every claimed index
    /// bumps `completed` exactly once — even when skipped after a failure —
    /// so `completed == n` means no fn invocation is still in flight.
    ///
    /// Determinism: fn(i) is skipped only when some index below i has
    /// already thrown. Hence every index below the minimal throwing index
    /// always runs (nothing below it can be in error_index), that minimal
    /// thrower itself always runs, and its exception — having the lowest
    /// index — is the one retained. The delivered exception is therefore a
    /// pure function of fn, independent of worker count and scheduling.
    void drain() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n) return;
            if (i < error_index.load(std::memory_order_acquire)) {
                try {
                    fn(i);
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (i < error_index.load(std::memory_order_relaxed)) {
                        error_index.store(i, std::memory_order_release);
                        error = std::current_exception();
                    }
                }
            }
            if (completed.fetch_add(1) + 1 == n) {
                const std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        }
    }
};

}  // namespace

void parallel_for_each(ThreadPool* pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const unsigned workers = pool == nullptr ? 0 : pool->size();
    if (workers == 0 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    auto state = std::make_shared<ForEachState>();
    state->fn = fn;
    state->n = n;

    // The caller drains too, so one helper per remaining index suffices and
    // the call completes even if no helper is ever scheduled.
    const std::size_t helpers = std::min<std::size_t>(workers, n - 1);
    for (std::size_t h = 0; h < helpers; ++h) {
        pool->submit([state] { state->drain(); });
    }

    state->drain();
    {
        std::unique_lock<std::mutex> lock(state->done_mutex);
        state->done_cv.wait(lock,
                            [&state] { return state->completed.load() == state->n; });
    }
    if (state->error_index.load() != SIZE_MAX) {
        std::rethrow_exception(state->error);
    }
}

}  // namespace atm::exec
