#pragma once

#include <string>
#include <string_view>

namespace atm::exec {

/// The sibling temp path `write_file_atomic` stages through: "<path>.tmp",
/// in the same directory so the final rename never crosses a filesystem.
/// Exposed so `require_writable_file` can probe exactly the path a later
/// write will use.
[[nodiscard]] std::string atomic_temp_path(const std::string& path);

/// Crash-safe whole-file write: stage `contents` into atomic_temp_path(),
/// fsync it, then rename over `path` (and best-effort fsync the directory
/// so the rename itself is durable). Readers never observe a truncated
/// file — they see either the old contents or the new ones, even across
/// SIGKILL or power loss mid-write. Throws std::runtime_error (with errno
/// text) on failure, after unlinking the temp file.
void write_file_atomic(const std::string& path, std::string_view contents);

/// Probes that `path` will be writable by creating (then removing) the
/// atomic-write temp file next to it. The target itself is never opened,
/// so a failed probe — or a run that later dies — cannot clobber an
/// existing file at `path`. Returns false with a reason in `*error` when
/// the path is empty, is a directory, or the temp file cannot be created.
bool probe_writable_path(const std::string& path, std::string* error);

}  // namespace atm::exec
