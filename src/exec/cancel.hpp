#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace atm::exec {

/// Why a CancellationToken tripped. The first cause wins: once a token is
/// cancelled its reason never changes, so a box that hit its deadline is
/// reported as deadline-exceeded even if an operator stop follows.
enum class CancelReason : int {
    kNone = 0,
    kStop = 1,      ///< operator-requested drain (SIGINT in the CLI)
    kDeadline = 2,  ///< per-box wall-clock deadline expired
};

inline const char* to_string(CancelReason reason) {
    switch (reason) {
        case CancelReason::kNone: return "none";
        case CancelReason::kStop: return "stop";
        case CancelReason::kDeadline: return "deadline";
    }
    return "unknown";
}

/// Thrown by CancellationToken::check at a cooperative cancellation point.
/// Deliberately NOT a core::PipelineError (exec cannot depend on core); the
/// fleet driver maps kDeadline to PipelineErrorCode::kDeadlineExceeded and
/// kStop to kCancelled, recording `where` as the stage.
class OperationCancelled : public std::runtime_error {
  public:
    OperationCancelled(CancelReason reason, std::string where)
        : std::runtime_error(std::string("cancelled (") + to_string(reason) +
                             ") at " + where),
          reason_(reason),
          where_(std::move(where)) {}

    [[nodiscard]] CancelReason reason() const { return reason_; }
    /// The cancellation point that observed the trip ("forecast.mlp.epoch",
    /// "search.dtw", ...).
    [[nodiscard]] const std::string& where() const { return where_; }

  private:
    CancelReason reason_;
    std::string where_;
};

/// Cooperative cancellation: long-running stages poll `check()` at loop
/// boundaries; anyone holding the token can `cancel()` it. Lock-free —
/// `cancel()` is a single atomic CAS, safe from other threads, a watchdog,
/// or a signal handler (std::atomic<int> is lock-free on every platform we
/// target). A token can also carry a wall-clock deadline: once armed,
/// `check()` trips itself when steady_clock passes the deadline, so
/// cancellation does not depend on a watchdog getting scheduled in time.
class CancellationToken {
  public:
    CancellationToken() = default;
    CancellationToken(const CancellationToken&) = delete;
    CancellationToken& operator=(const CancellationToken&) = delete;

    /// Trips the token. First reason wins; later calls are no-ops.
    void cancel(CancelReason reason) noexcept {
        int expected = 0;
        state_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
    }

    /// Arms (or re-arms) a deadline `seconds` from now; <= 0 disarms.
    void arm_deadline_after(double seconds) noexcept {
        if (seconds <= 0.0) {
            deadline_ns_.store(0, std::memory_order_release);
            return;
        }
        deadline_ns_.store(now_ns() + static_cast<std::int64_t>(seconds * 1e9),
                           std::memory_order_release);
    }

    /// Current reason; kNone while the token is live. Reading the reason of
    /// an armed token past its deadline trips it (so the trip is observed
    /// even without a watchdog).
    [[nodiscard]] CancelReason reason() const noexcept {
        int state = state_.load(std::memory_order_acquire);
        if (state == 0) {
            const std::int64_t deadline =
                deadline_ns_.load(std::memory_order_acquire);
            if (deadline != 0 && now_ns() >= deadline) {
                int expected = 0;
                state_.compare_exchange_strong(
                    expected, static_cast<int>(CancelReason::kDeadline),
                    std::memory_order_acq_rel, std::memory_order_acquire);
                state = state_.load(std::memory_order_acquire);
            }
        }
        return static_cast<CancelReason>(state);
    }

    [[nodiscard]] bool cancelled() const noexcept {
        return reason() != CancelReason::kNone;
    }

    /// Cancellation point: throws OperationCancelled when tripped. `where`
    /// names the point for the error stage; keep it a string literal.
    void check(const char* where) const {
        const CancelReason r = reason();
        if (r != CancelReason::kNone) throw OperationCancelled(r, where);
    }

  private:
    static std::int64_t now_ns() noexcept {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /// 0 while live, else the CancelReason. Mutable: observing an expired
    /// deadline latches the trip even through const access.
    mutable std::atomic<int> state_{0};
    /// steady_clock deadline in ns since its epoch; 0 = no deadline.
    std::atomic<std::int64_t> deadline_ns_{0};
};

/// Null-tolerant cancellation point: the pipeline threads an optional
/// `const CancellationToken*` through its stages, and a null token makes
/// this a single pointer test (the clean path stays at zero overhead).
inline void checkpoint(const CancellationToken* token, const char* where) {
    if (token != nullptr) token->check(where);
}

}  // namespace atm::exec
