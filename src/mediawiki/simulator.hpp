#pragma once

#include <vector>

#include "mediawiki/testbed.hpp"
#include "timeseries/series.hpp"

namespace atm::wiki {

/// Per-wiki performance metrics of one simulation run.
struct WikiMetrics {
    /// Per-step mean response time (seconds) and throughput (req/s).
    std::vector<double> response_time_s;
    std::vector<double> throughput_rps;
    double mean_response_time_s = 0.0;
    double mean_throughput_rps = 0.0;
};

/// Result of one simulation run.
struct SimResult {
    /// Per-VM CPU utilization in percent of the VM's cgroup limit, one
    /// sample per simulation step (same order as TestbedSpec::vms).
    std::vector<ts::Series> vm_cpu_usage_pct;
    /// Per-VM *runnable* CPU demand in cores per ticketing window (mean
    /// over the window), steal-aware: it exceeds the cgroup limit while a
    /// VM is saturated. This is the input the resizing algorithm consumes.
    std::vector<std::vector<double>> vm_cpu_demand_cores;
    /// Per-VM ticket counts over the run at the 60% threshold on
    /// window-averaged usage.
    std::vector<int> vm_tickets;
    int total_tickets = 0;
    std::vector<WikiMetrics> wikis;
};

/// Fluid queueing simulation of the testbed (Section V-B substitute).
///
/// Each VM is a processor-sharing station with capacity = its cgroup CPU
/// limit. Per step, each wiki's offered rate is split across its tier
/// replicas; a station's utilization is offered CPU demand / limit;
/// response time per tier follows the M/G/1-PS approximation
/// S / (1 − u) (u clamped below 1), plus a saturation penalty when the
/// offered load exceeds capacity; throughput is capped by the most
/// saturated tier on the request path. Window-averaged per-VM usage feeds
/// ticket counting at `threshold_pct`.
SimResult simulate(const TestbedSpec& spec, double threshold_pct = 60.0);

/// Applies the ATM resizing algorithm to a finished run: for every node,
/// the per-window CPU demands observed in `result` become the demand
/// series of the co-located VMs and the node's total cores the budget;
/// returns a copy of `spec` with re-assigned cgroup limits. `alpha` is
/// the ticket threshold fraction; `epsilon_cores` the discretization step
/// in cores (0 disables).
TestbedSpec resize_with_atm(const TestbedSpec& spec, const SimResult& result,
                            double alpha = 0.6, double epsilon_cores = 0.3);

}  // namespace atm::wiki
