#include "mediawiki/testbed.hpp"

namespace atm::wiki {

std::string to_string(Tier tier) {
    switch (tier) {
        case Tier::kApache: return "apache";
        case Tier::kMemcached: return "memcached";
        case Tier::kMysql: return "mysql";
    }
    return "unknown";
}

TestbedSpec make_mediawiki_testbed() {
    TestbedSpec spec;

    // Three VM-hosting servers (node 2..4), 4-core i7 with SMT -> 8
    // schedulable logical cores each.
    for (int n = 2; n <= 4; ++n) {
        spec.nodes.push_back(NodeSpec{"node" + std::to_string(n), n, 8.0});
    }

    // wiki-one: 4 Apache, 2 memcached, 1 MySQL; wiki-two: 2 Apache,
    // 1 memcached, 1 MySQL. Every VM starts with its 2-vCPU allocation.
    // Placement keeps each node's peak ticket-free requirement (peak
    // demand / 0.6, epsilon-rounded) near but within the 8-core budget, so
    // ATM resizing can eliminate (almost) all tickets by shuffling cores
    // from the idle storage tiers to the hot Apache tiers.
    auto vm = [](std::string name, int node, int wiki, Tier tier) {
        return VmSpec{std::move(name), node, wiki, tier, 2.0};
    };
    spec.vms = {
        // node2
        vm("w1-apache1", 2, 0, Tier::kApache),
        vm("w1-apache2", 2, 0, Tier::kApache),
        vm("w1-memcached1", 2, 0, Tier::kMemcached),
        vm("w2-memcached1", 2, 1, Tier::kMemcached),
        vm("w2-mysql", 2, 1, Tier::kMysql),
        // node3
        vm("w1-apache3", 3, 0, Tier::kApache),
        vm("w1-apache4", 3, 0, Tier::kApache),
        vm("w1-memcached2", 3, 0, Tier::kMemcached),
        vm("w1-mysql", 3, 0, Tier::kMysql),
        // node4
        vm("w2-apache1", 4, 1, Tier::kApache),
        vm("w2-apache2", 4, 1, Tier::kApache),
    };

    // Service demands calibrated so the original run shows: wiki-one
    // Apaches hot (~75% of their limit) during high phases, wiki-two
    // Apaches saturated (offered ~1.2x their limit, shedding requests),
    // storage tiers mostly idle.
    WikiSpec wiki_one;
    wiki_one.name = "wiki-one";
    wiki_one.apache_demand_s = 0.080;    // 18.75 rps/Apache high -> 1.5 cores
    wiki_one.memcached_demand_s = 0.006;
    wiki_one.mysql_demand_s = 0.060;
    wiki_one.cache_hit_ratio = 0.85;
    wiki_one.base_latency_s = 0.06;
    spec.wikis.push_back(wiki_one);

    WikiSpec wiki_two;
    wiki_two.name = "wiki-two";
    wiki_two.apache_demand_s = 0.150;    // 15 rps/Apache high -> 2.25 cores
    wiki_two.memcached_demand_s = 0.010;
    wiki_two.mysql_demand_s = 0.040;
    wiki_two.cache_hit_ratio = 0.6;
    wiki_two.base_latency_s = 0.05;
    spec.wikis.push_back(wiki_two);

    WorkloadSpec load_one;
    load_one.low_rate_rps = 22.5;
    load_one.high_rate_rps = 75.0;
    spec.workloads.push_back(load_one);

    WorkloadSpec load_two;
    load_two.low_rate_rps = 7.5;
    load_two.high_rate_rps = 30.0;
    spec.workloads.push_back(load_two);

    return spec;
}

TestbedSpec make_overloaded_testbed() {
    TestbedSpec spec = make_mediawiki_testbed();
    for (WorkloadSpec& load : spec.workloads) {
        load.low_rate_rps *= 1.7;
        load.high_rate_rps *= 1.7;
    }
    return spec;
}

}  // namespace atm::wiki
