#pragma once

#include <string>
#include <vector>

namespace atm::wiki {

/// Application tier a VM belongs to (Fig. 11: Apache frontends, memcached
/// key-value store, MySQL database; the load balancer runs outside the
/// measured nodes on the orchestrator).
enum class Tier {
    kApache,
    kMemcached,
    kMysql,
};
std::string to_string(Tier tier);

/// One VM of the testbed.
struct VmSpec {
    std::string name;
    int node = 0;         ///< physical server index (2..4 in the paper)
    int wiki = 0;         ///< 0 = wiki-one, 1 = wiki-two
    Tier tier = Tier::kApache;
    /// cgroup CPU limit in cores (the actuated virtual capacity).
    double cpu_limit_cores = 2.0;
};

/// One physical server hosting VMs.
struct NodeSpec {
    std::string name;
    int node = 0;
    /// Total schedulable CPU (logical cores); the resizing budget C.
    double total_cores = 8.0;
};

/// One wiki application: request mix and per-tier service demands.
struct WikiSpec {
    std::string name;
    /// CPU service demand per request per tier, in core-seconds.
    double apache_demand_s = 0.0;
    double memcached_demand_s = 0.0;
    double mysql_demand_s = 0.0;
    /// Fraction of requests served from memcached (the rest hit MySQL).
    double cache_hit_ratio = 0.8;
    /// Fixed network + load-balancer latency per request (seconds).
    double base_latency_s = 0.05;
};

/// Offered load: alternating intensity phases, each `phase_seconds` long
/// (the paper alternates low/high hours).
struct WorkloadSpec {
    double low_rate_rps = 0.0;
    double high_rate_rps = 0.0;
    int phase_seconds = 3600;
    /// Experiment length in seconds (paper plots ~5 hours).
    int duration_seconds = 5 * 3600;
};

/// Complete testbed description.
struct TestbedSpec {
    std::vector<NodeSpec> nodes;
    std::vector<VmSpec> vms;
    std::vector<WikiSpec> wikis;
    std::vector<WorkloadSpec> workloads;  ///< one per wiki
    /// Simulation time step (fluid model granularity), seconds.
    int step_seconds = 60;
    /// Ticketing window, seconds (paper: 15 minutes).
    int ticket_window_seconds = 900;
    unsigned seed = 7;

    /// Number of simulation steps (experiment length of the first
    /// workload divided by the step size).
    [[nodiscard]] int duration_steps() const {
        return workloads.empty() ? 0
                                 : workloads.front().duration_seconds / step_seconds;
    }
};

/// The two-wiki deployment of Section V-B, calibrated so the original run
/// reproduces the paper's shape: wiki-one Apache VMs run hot (>60% CPU)
/// during high phases and wiki-two's two Apaches saturate, while memcached
/// and MySQL VMs idle — leaving capacity for ATM to shuffle.
TestbedSpec make_mediawiki_testbed();

/// Stress variant: the same deployment under ~1.7x the load, where the
/// per-node ticket-free requirements exceed the node capacities — the
/// regime the paper's testbed never enters. Resizing still reduces
/// tickets (the MTRV greedy sheds where violations are cheapest) but can
/// no longer eliminate them; used by tests and capacity-planning
/// examples to exercise the infeasible path end to end.
TestbedSpec make_overloaded_testbed();

}  // namespace atm::wiki
