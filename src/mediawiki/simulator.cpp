#include "mediawiki/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "resize/policies.hpp"
#include "timeseries/stats.hpp"

namespace atm::wiki {
namespace {

/// Utilization clamp for the PS response-time approximation; above this
/// the tier is treated as saturated (admission control sheds the excess).
constexpr double kSaturationClamp = 0.88;

struct TierLoad {
    double offered_cpu = 0.0;  ///< cores of demand offered to this VM
    double rate_rps = 0.0;     ///< requests/s reaching this VM
};

void validate(const TestbedSpec& spec) {
    if (spec.vms.empty() || spec.wikis.empty()) {
        throw std::invalid_argument("simulate: empty testbed");
    }
    if (spec.wikis.size() != spec.workloads.size()) {
        throw std::invalid_argument("simulate: one workload per wiki required");
    }
    if (spec.step_seconds < 1 || spec.ticket_window_seconds < spec.step_seconds) {
        throw std::invalid_argument("simulate: bad time granularity");
    }
}

/// Indices of a wiki's VMs in a given tier.
std::vector<std::size_t> tier_vms(const TestbedSpec& spec, int wiki, Tier tier) {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        if (spec.vms[i].wiki == wiki && spec.vms[i].tier == tier) out.push_back(i);
    }
    return out;
}

double tier_service_demand(const WikiSpec& wiki, Tier tier) {
    switch (tier) {
        case Tier::kApache: return wiki.apache_demand_s;
        case Tier::kMemcached: return wiki.memcached_demand_s;
        case Tier::kMysql: return wiki.mysql_demand_s;
    }
    return 0.0;
}

}  // namespace

SimResult simulate(const TestbedSpec& spec, double threshold_pct) {
    validate(spec);
    const int num_steps = spec.duration_steps();
    const int steps_per_window = spec.ticket_window_seconds / spec.step_seconds;

    SimResult result;
    result.vm_cpu_usage_pct.resize(spec.vms.size());
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        result.vm_cpu_usage_pct[i].set_name(spec.vms[i].name + "/CPU");
    }
    result.wikis.resize(spec.wikis.size());

    std::mt19937_64 rng(spec.seed);
    std::normal_distribution<double> usage_noise(0.0, 1.2);

    // Per-VM per-step CPU demand in cores (min(offered, limit): what the
    // monitoring stack can observe).
    std::vector<std::vector<double>> step_demand(
        spec.vms.size(), std::vector<double>(static_cast<std::size_t>(num_steps), 0.0));

    for (int step = 0; step < num_steps; ++step) {
        const int now_s = step * spec.step_seconds;
        std::vector<TierLoad> load(spec.vms.size());

        for (std::size_t w = 0; w < spec.wikis.size(); ++w) {
            const WikiSpec& wiki = spec.wikis[w];
            const WorkloadSpec& workload = spec.workloads[w];
            const bool high = (now_s / workload.phase_seconds) % 2 == 1;
            // Within-phase ramp (+-6%) keeps window demands continuous, so
            // the resizing MCKP has fine-grained candidates instead of a
            // two-level staircase.
            const double phase_pos =
                static_cast<double>(now_s % workload.phase_seconds) /
                workload.phase_seconds;
            const double ramp =
                1.0 + 0.06 * std::sin(2.0 * 3.14159265358979 * phase_pos);
            const double lambda =
                (high ? workload.high_rate_rps : workload.low_rate_rps) * ramp;

            // --- Apache tier -------------------------------------------------
            const auto apaches = tier_vms(spec, static_cast<int>(w), Tier::kApache);
            double apache_survivors = 0.0;
            double apache_rt = 0.0;
            for (std::size_t vm_i : apaches) {
                const double rate = lambda / static_cast<double>(apaches.size());
                const double offered = rate * wiki.apache_demand_s;
                load[vm_i].offered_cpu += offered;
                load[vm_i].rate_rps += rate;
            }
            // Served fraction per Apache = capacity / offered when saturated.
            for (std::size_t vm_i : apaches) {
                const double limit = spec.vms[vm_i].cpu_limit_cores;
                const double u = limit > 0.0 ? load[vm_i].offered_cpu / limit : 1e9;
                const double f = u > 1.0 ? 1.0 / u : 1.0;
                apache_survivors += load[vm_i].rate_rps * f;
                const double u_eff = std::min(u, kSaturationClamp);
                apache_rt += wiki.apache_demand_s / (1.0 - u_eff);
            }
            apache_rt /= static_cast<double>(apaches.size());

            // --- storage tiers (memcached / MySQL) ---------------------------
            auto serve_tier = [&](Tier tier, double tier_rate,
                                  double& tier_rt) -> double {
                const auto vms = tier_vms(spec, static_cast<int>(w), tier);
                if (vms.empty() || tier_rate <= 0.0) {
                    tier_rt = 0.0;
                    return tier_rate;
                }
                const double service = tier_service_demand(wiki, tier);
                double served = 0.0;
                double rt = 0.0;
                for (std::size_t vm_i : vms) {
                    const double rate = tier_rate / static_cast<double>(vms.size());
                    const double offered = rate * service;
                    load[vm_i].offered_cpu += offered;
                    load[vm_i].rate_rps += rate;
                    const double limit = spec.vms[vm_i].cpu_limit_cores;
                    const double u = limit > 0.0 ? offered / limit : 1e9;
                    served += rate * (u > 1.0 ? 1.0 / u : 1.0);
                    rt += service / (1.0 - std::min(u, kSaturationClamp));
                }
                tier_rt = rt / static_cast<double>(vms.size());
                return served;
            };

            double mc_rt = 0.0;
            double db_rt = 0.0;
            const double mc_served = serve_tier(
                Tier::kMemcached, apache_survivors * wiki.cache_hit_ratio, mc_rt);
            const double db_served = serve_tier(
                Tier::kMysql, apache_survivors * (1.0 - wiki.cache_hit_ratio), db_rt);

            const double throughput = mc_served + db_served;
            const double rt = wiki.base_latency_s + apache_rt +
                              wiki.cache_hit_ratio * mc_rt +
                              (1.0 - wiki.cache_hit_ratio) * db_rt;
            result.wikis[w].response_time_s.push_back(rt);
            result.wikis[w].throughput_rps.push_back(throughput);
        }

        // --- per-VM usage samples for this step -----------------------------
        for (std::size_t i = 0; i < spec.vms.size(); ++i) {
            const double limit = spec.vms[i].cpu_limit_cores;
            const double used = std::min(load[i].offered_cpu, limit);
            // Demand is the *runnable* (steal-aware) CPU time the hypervisor
            // observes — it exceeds the cgroup limit when the VM is
            // saturated, which is exactly what the resizing algorithm must
            // see to allocate a saturated VM out of its bottleneck.
            step_demand[i][static_cast<std::size_t>(step)] = load[i].offered_cpu;
            const double base_pct = limit > 0.0 ? 100.0 * used / limit : 100.0;
            const double pct = std::clamp(base_pct + usage_noise(rng), 0.0, 100.0);
            result.vm_cpu_usage_pct[i].push_back(pct);
        }
    }

    // --- window aggregation + tickets ----------------------------------------
    const int num_windows = num_steps / steps_per_window;
    result.vm_cpu_demand_cores.assign(spec.vms.size(), {});
    result.vm_tickets.assign(spec.vms.size(), 0);
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
        for (int wdw = 0; wdw < num_windows; ++wdw) {
            const auto first = static_cast<std::size_t>(wdw * steps_per_window);
            double demand_sum = 0.0;
            double usage_sum = 0.0;
            for (int s = 0; s < steps_per_window; ++s) {
                demand_sum += step_demand[i][first + static_cast<std::size_t>(s)];
                usage_sum += result.vm_cpu_usage_pct[i][first + static_cast<std::size_t>(s)];
            }
            result.vm_cpu_demand_cores[i].push_back(
                demand_sum / steps_per_window);
            if (usage_sum / steps_per_window > threshold_pct) {
                ++result.vm_tickets[i];
                ++result.total_tickets;
            }
        }
    }

    // --- run means -------------------------------------------------------------
    for (std::size_t w = 0; w < result.wikis.size(); ++w) {
        WikiMetrics& m = result.wikis[w];
        // Request-weighted mean response time (what served users saw).
        double weighted_rt = 0.0;
        double total_tput = 0.0;
        for (std::size_t t = 0; t < m.response_time_s.size(); ++t) {
            weighted_rt += m.response_time_s[t] * m.throughput_rps[t];
            total_tput += m.throughput_rps[t];
        }
        m.mean_response_time_s = total_tput > 0.0 ? weighted_rt / total_tput : 0.0;
        m.mean_throughput_rps = ts::mean(m.throughput_rps);
    }
    return result;
}

TestbedSpec resize_with_atm(const TestbedSpec& spec, const SimResult& result,
                            double alpha, double epsilon_cores) {
    TestbedSpec resized = spec;
    for (const NodeSpec& node : spec.nodes) {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < spec.vms.size(); ++i) {
            if (spec.vms[i].node == node.node) members.push_back(i);
        }
        if (members.empty()) continue;

        resize::ResizeInput input;
        input.total_capacity = node.total_cores;
        input.alpha = alpha;
        input.epsilon = epsilon_cores;
        for (std::size_t i : members) {
            input.demands.push_back(result.vm_cpu_demand_cores[i]);
            input.current_capacities.push_back(spec.vms[i].cpu_limit_cores);
        }
        const resize::ResizeResult allocation = resize::atm_resize(input);
        for (std::size_t k = 0; k < members.size(); ++k) {
            // Keep a minimal floor so idle VMs stay schedulable.
            resized.vms[members[k]].cpu_limit_cores =
                std::max(allocation.capacities[k], 0.2);
        }
    }
    return resized;
}

}  // namespace atm::wiki
