#pragma once

#include <span>
#include <vector>

namespace atm::ts {

/// Empirical cumulative distribution function over a sample set.
///
/// Used to regenerate the paper's CDF figures (Fig. 3 correlation CDFs and
/// Fig. 9 prediction-error CDFs). Construction sorts a copy of the samples;
/// evaluation is O(log n).
class EmpiricalCdf {
  public:
    EmpiricalCdf() = default;

    /// Builds the ECDF from samples (order irrelevant, duplicates allowed).
    explicit EmpiricalCdf(std::span<const double> samples);

    /// Fraction of samples <= x, in [0, 1]. Returns 0 for an empty CDF.
    [[nodiscard]] double operator()(double x) const;

    /// Inverse CDF: smallest sample value v such that F(v) >= p.
    /// p is clamped to (0, 1]; returns 0 for an empty CDF.
    [[nodiscard]] double inverse(double p) const;

    [[nodiscard]] std::size_t sample_count() const { return sorted_.size(); }
    [[nodiscard]] bool empty() const { return sorted_.empty(); }

    /// Sorted samples (ascending) backing the CDF.
    [[nodiscard]] const std::vector<double>& sorted_samples() const { return sorted_; }

    /// Evaluates the CDF on an evenly spaced grid of `points` x-values
    /// spanning [min_sample, max_sample]; convenient for printing the
    /// figures as (x, F(x)) rows. Returns an empty vector if the CDF is
    /// empty or points < 2.
    struct Point {
        double x = 0.0;
        double f = 0.0;
    };
    [[nodiscard]] std::vector<Point> grid(int points) const;

  private:
    std::vector<double> sorted_;
};

}  // namespace atm::ts
