#pragma once

#include <span>
#include <vector>

namespace atm::ts {

/// Sample autocorrelation at lag k (k < n): corr(x_t, x_{t+k}) with the
/// population normalization. Returns 0 for constant or too-short series.
double autocorrelation(std::span<const double> xs, int lag);

/// Autocorrelation function for lags 0..max_lag (inclusive). acf[0] == 1
/// for non-constant series.
std::vector<double> autocorrelation_function(std::span<const double> xs,
                                             int max_lag);

/// Detects the dominant seasonality by scanning the ACF for its highest
/// peak in [min_period, max_period]. Returns 0 if no lag in range has an
/// autocorrelation above `min_strength`. Used to sanity-check the
/// 96-window diurnal period of data-center series.
int detect_period(std::span<const double> xs, int min_period, int max_period,
                  double min_strength = 0.2);

/// Centered rolling mean with window w (odd windows are symmetric; even
/// windows lean one sample to the past). Edges use the available samples.
std::vector<double> rolling_mean(std::span<const double> xs, int window);

/// Rolling maximum over the trailing `window` samples (inclusive).
std::vector<double> rolling_max(std::span<const double> xs, int window);

/// Classical additive seasonal decomposition:
///   x_t = trend_t + seasonal_t + residual_t
/// with the trend from a centered rolling mean of one period and the
/// seasonal component as per-phase means of the detrended series
/// (normalized to sum to zero). Requires at least two full periods.
struct Decomposition {
    std::vector<double> trend;
    std::vector<double> seasonal;
    std::vector<double> residual;
};
Decomposition decompose_additive(std::span<const double> xs, int period);

}  // namespace atm::ts
