#include "timeseries/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "timeseries/stats.hpp"

namespace atm::ts {

double autocorrelation(std::span<const double> xs, int lag) {
    if (lag < 0) throw std::invalid_argument("autocorrelation: negative lag");
    const std::size_t n = xs.size();
    if (static_cast<std::size_t>(lag) >= n || n < 2) return 0.0;
    const double m = mean(xs);
    double denom = 0.0;
    for (double x : xs) denom += (x - m) * (x - m);
    if (denom <= 0.0) return 0.0;
    double num = 0.0;
    for (std::size_t t = 0; t + static_cast<std::size_t>(lag) < n; ++t) {
        num += (xs[t] - m) * (xs[t + static_cast<std::size_t>(lag)] - m);
    }
    return num / denom;
}

std::vector<double> autocorrelation_function(std::span<const double> xs,
                                             int max_lag) {
    std::vector<double> acf;
    acf.reserve(static_cast<std::size_t>(std::max(max_lag, 0)) + 1);
    for (int k = 0; k <= max_lag; ++k) acf.push_back(autocorrelation(xs, k));
    return acf;
}

int detect_period(std::span<const double> xs, int min_period, int max_period,
                  double min_strength) {
    if (min_period < 1 || max_period < min_period) {
        throw std::invalid_argument("detect_period: bad period range");
    }
    int best_period = 0;
    double best = min_strength;
    for (int p = min_period; p <= max_period; ++p) {
        const double r = autocorrelation(xs, p);
        if (r > best) {
            best = r;
            best_period = p;
        }
    }
    return best_period;
}

std::vector<double> rolling_mean(std::span<const double> xs, int window) {
    if (window < 1) throw std::invalid_argument("rolling_mean: bad window");
    const std::size_t n = xs.size();
    std::vector<double> out(n, 0.0);
    const int half_back = window / 2;
    const int half_fwd = (window - 1) / 2;
    for (std::size_t t = 0; t < n; ++t) {
        const std::size_t lo =
            t >= static_cast<std::size_t>(half_back) ? t - static_cast<std::size_t>(half_back) : 0;
        const std::size_t hi =
            std::min(n - 1, t + static_cast<std::size_t>(half_fwd));
        double acc = 0.0;
        for (std::size_t i = lo; i <= hi; ++i) acc += xs[i];
        out[t] = acc / static_cast<double>(hi - lo + 1);
    }
    return out;
}

std::vector<double> rolling_max(std::span<const double> xs, int window) {
    if (window < 1) throw std::invalid_argument("rolling_max: bad window");
    const std::size_t n = xs.size();
    std::vector<double> out(n, 0.0);
    // Monotonic deque of indices with decreasing values.
    std::deque<std::size_t> dq;
    for (std::size_t t = 0; t < n; ++t) {
        while (!dq.empty() && xs[dq.back()] <= xs[t]) dq.pop_back();
        dq.push_back(t);
        const std::size_t lo =
            t + 1 >= static_cast<std::size_t>(window) ? t + 1 - static_cast<std::size_t>(window) : 0;
        while (dq.front() < lo) dq.pop_front();
        out[t] = xs[dq.front()];
    }
    return out;
}

Decomposition decompose_additive(std::span<const double> xs, int period) {
    if (period < 2) throw std::invalid_argument("decompose_additive: period < 2");
    const std::size_t n = xs.size();
    if (n < 2 * static_cast<std::size_t>(period)) {
        throw std::invalid_argument("decompose_additive: need two full periods");
    }
    Decomposition d;
    d.trend = rolling_mean(xs, period);

    // Per-phase means of the detrended series.
    std::vector<double> phase_sum(static_cast<std::size_t>(period), 0.0);
    std::vector<int> phase_count(static_cast<std::size_t>(period), 0);
    for (std::size_t t = 0; t < n; ++t) {
        const std::size_t phase = t % static_cast<std::size_t>(period);
        phase_sum[phase] += xs[t] - d.trend[t];
        ++phase_count[phase];
    }
    std::vector<double> phase_mean(static_cast<std::size_t>(period), 0.0);
    double grand = 0.0;
    for (std::size_t p = 0; p < phase_mean.size(); ++p) {
        phase_mean[p] = phase_count[p] > 0 ? phase_sum[p] / phase_count[p] : 0.0;
        grand += phase_mean[p];
    }
    grand /= static_cast<double>(period);
    for (double& v : phase_mean) v -= grand;  // normalize: seasonal sums to 0

    d.seasonal.resize(n);
    d.residual.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
        d.seasonal[t] = phase_mean[t % static_cast<std::size_t>(period)];
        d.residual[t] = xs[t] - d.trend[t] - d.seasonal[t];
    }
    return d;
}

}  // namespace atm::ts
