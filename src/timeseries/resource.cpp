#include "timeseries/resource.hpp"

namespace atm::ts {

std::string to_string(ResourceKind kind) {
    switch (kind) {
        case ResourceKind::kCpu: return "CPU";
        case ResourceKind::kRam: return "RAM";
    }
    return "UNKNOWN";
}

}  // namespace atm::ts
