#pragma once

#include <span>
#include <vector>

namespace atm::ts {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance (divides by n); 0 for spans shorter than 1.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Sample covariance with population normalization (divides by n).
/// Both spans must have equal length; returns 0 if either is empty.
double covariance(std::span<const double> xs, std::span<const double> ys);

/// Pearson's correlation coefficient between two equal-length spans.
///
/// This is the spatial-dependency measure used throughout Section II of the
/// paper (intra-CPU, intra-RAM, inter-all and inter-pair correlations).
/// Returns 0 when either span is constant (undefined correlation).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Smallest / largest element; 0 for an empty span.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Linear-interpolated empirical quantile, q in [0, 1].
/// q=0 -> min, q=0.5 -> median, q=1 -> max. 0 for an empty span.
double quantile(std::span<const double> xs, double q);

/// Median (quantile at 0.5).
double median(std::span<const double> xs);

/// Five-number-plus summary used by the paper's box plots
/// (Fig. 6/7 show 25th/50th/75th percentiles, mean, and extremes).
struct Summary {
    double min = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double stddev = 0.0;
    std::size_t count = 0;
};
Summary summarize(std::span<const double> xs);

/// Mean absolute percentage error between actual and fitted values, as a
/// fraction (0.20 == 20%). Matches the paper's footnote-3 definition
/// APE = |Actual - Fitting| / Actual, averaged over samples; samples whose
/// actual value is below `eps` are skipped to avoid division blow-up.
double mean_absolute_percentage_error(std::span<const double> actual,
                                      std::span<const double> fitted,
                                      double eps = 1e-9);

}  // namespace atm::ts
