#pragma once

#include <span>
#include <vector>

#include "linalg/flat_matrix.hpp"

namespace atm::ts {

/// Min-max scaler mapping samples into [0, 1]; inverse-transform restores
/// the original scale. Degenerate (constant) inputs map to 0.5.
///
/// Forecast models (MLP in particular) train on scaled targets; the
/// forecaster interface scales inputs and unscales predictions with this.
class MinMaxScaler {
  public:
    MinMaxScaler() = default;

    /// Learns min/max from the samples.
    void fit(std::span<const double> xs);

    [[nodiscard]] double transform(double x) const;
    [[nodiscard]] double inverse(double y) const;

    [[nodiscard]] std::vector<double> transform(std::span<const double> xs) const;

    [[nodiscard]] double min() const { return min_; }
    [[nodiscard]] double max() const { return max_; }

  private:
    double min_ = 0.0;
    double max_ = 1.0;
};

/// Z-score scaler (subtract mean, divide by stddev). Constant inputs map
/// to 0.
class StandardScaler {
  public:
    void fit(std::span<const double> xs);
    [[nodiscard]] double transform(double x) const;
    [[nodiscard]] double inverse(double z) const;
    [[nodiscard]] std::vector<double> transform(std::span<const double> xs) const;

    [[nodiscard]] double mean() const { return mean_; }
    [[nodiscard]] double stddev() const { return stddev_; }

  private:
    double mean_ = 0.0;
    double stddev_ = 1.0;
};

/// One supervised training example for autoregressive forecasting:
/// `lags` holds the most recent `p` samples (lags[0] = t-p ... lags[p-1]
/// = t-1) optionally followed by seasonal lags, `target` is the sample at t.
struct LagExample {
    std::vector<double> lags;
    double target = 0.0;
};

/// Builds a supervised lag dataset from a series.
///
/// Each example uses `num_lags` consecutive past samples; if
/// `seasonal_period > 0` one extra feature per example holds the sample one
/// season back (t - seasonal_period), capturing diurnal periodicity (96
/// windows/day at 15-minute sampling). Series shorter than the required
/// history yield an empty dataset.
std::vector<LagExample> make_lag_dataset(std::span<const double> xs,
                                         int num_lags,
                                         int seasonal_period = 0);

/// Flat-storage variant of make_lag_dataset for the MLP training hot
/// path: example i becomes row i of `features` (one contiguous block,
/// capacity reused across calls) and `targets[i]`. Row values and order
/// are bit-identical to make_lag_dataset's `lags`; an input too short
/// for the required history yields zero rows.
void make_lag_dataset_flat(std::span<const double> xs, int num_lags,
                           int seasonal_period, la::FlatMatrix& features,
                           std::vector<double>& targets);

}  // namespace atm::ts
