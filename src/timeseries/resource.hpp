#pragma once

#include <cstdint>
#include <string>

namespace atm::ts {

/// Kind of physical/virtual resource a usage or demand series refers to.
///
/// The paper (Section II) considers two resources per VM: CPU (measured in
/// GHz for demand, percent for usage) and RAM (GB / percent).
enum class ResourceKind : std::uint8_t {
    kCpu = 0,
    kRam = 1,
};

/// Number of distinct resources tracked per VM ("N" in the paper).
inline constexpr int kNumResources = 2;

/// Human-readable name for a resource kind ("CPU" / "RAM").
std::string to_string(ResourceKind kind);

/// Identifies one demand/usage series within a physical box:
/// the series of resource `resource` of co-located VM `vm_index`.
///
/// A box hosting M VMs has M * kNumResources series, indexed by
/// `flat_index() = vm_index * kNumResources + resource`.
struct SeriesId {
    int vm_index = 0;
    ResourceKind resource = ResourceKind::kCpu;

    /// Flattened index into the box's series array (VM-major order).
    [[nodiscard]] int flat_index() const {
        return vm_index * kNumResources + static_cast<int>(resource);
    }

    /// Inverse of flat_index().
    static SeriesId from_flat(int flat) {
        return SeriesId{flat / kNumResources,
                        static_cast<ResourceKind>(flat % kNumResources)};
    }

    friend bool operator==(const SeriesId&, const SeriesId&) = default;
};

}  // namespace atm::ts
