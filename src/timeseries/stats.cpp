#include "timeseries/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace atm::ts {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 1) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double covariance(std::span<const double> xs, std::span<const double> ys) {
    assert(xs.size() == ys.size());
    if (xs.empty()) return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) acc += (xs[i] - mx) * (ys[i] - my);
    return acc / static_cast<double>(xs.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
    assert(xs.size() == ys.size());
    const double sx = stddev(xs);
    const double sy = stddev(ys);
    if (sx <= 0.0 || sy <= 0.0) return 0.0;
    return covariance(xs, ys) / (sx * sy);
}

double min_value(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
    Summary s;
    s.count = xs.size();
    if (xs.empty()) return s;
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    auto at = [&](double q) {
        const double pos = q * static_cast<double>(sorted.size() - 1);
        const auto lo = static_cast<std::size_t>(std::floor(pos));
        const auto hi = static_cast<std::size_t>(std::ceil(pos));
        const double frac = pos - static_cast<double>(lo);
        return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    };
    s.min = sorted.front();
    s.max = sorted.back();
    s.p25 = at(0.25);
    s.median = at(0.5);
    s.p75 = at(0.75);
    s.mean = mean(xs);
    s.stddev = stddev(xs);
    return s;
}

double mean_absolute_percentage_error(std::span<const double> actual,
                                      std::span<const double> fitted,
                                      double eps) {
    assert(actual.size() == fitted.size());
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (std::abs(actual[i]) < eps) continue;
        acc += std::abs(actual[i] - fitted[i]) / std::abs(actual[i]);
        ++n;
    }
    return n == 0 ? 0.0 : acc / static_cast<double>(n);
}

}  // namespace atm::ts
