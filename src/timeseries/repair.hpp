#pragma once

#include <span>
#include <vector>

namespace atm::obs {
class MetricsRegistry;
}

namespace atm::ts {

/// A run of missing samples [first, first + length).
struct Gap {
    std::size_t first = 0;
    std::size_t length = 0;
};

/// Finds monitoring gaps: maximal runs of samples below `floor`
/// (monitoring outages are stored as zeros in the trace; utilization of a
/// running VM never genuinely reaches zero). Runs shorter than
/// `min_run` are ignored (a single zero-ish sample can be legitimate).
std::vector<Gap> find_gaps(std::span<const double> xs, double floor = 1e-9,
                           std::size_t min_run = 2);

/// Gap repair strategy.
enum class RepairMethod {
    kLinear,    ///< linear interpolation between the gap's neighbors
    kSeasonal,  ///< copy the value one period before (falls back to linear
                ///< when no prior period exists)
};

/// Returns a copy of the series with all `gaps` filled. For kSeasonal,
/// `period` is the seasonality in samples (96 for daily patterns at
/// 15-minute windows). Gaps touching the series edges are filled with the
/// nearest valid value; a gap spanning the whole series has no valid
/// neighbor and is pinned to flat zeros (callers detect that condition and
/// report it as core::PipelineErrorCode::kRepairFailed — ts cannot depend
/// on core, so the signal lives one layer up). The paper drops gappy boxes
/// from its Section V study; repair lets the remaining 6K-box analyses
/// (Sections II-IV) use them without bias from zero runs.
std::vector<double> repair_gaps(std::span<const double> xs,
                                const std::vector<Gap>& gaps,
                                RepairMethod method = RepairMethod::kSeasonal,
                                int period = 96);

/// Convenience: find_gaps + repair_gaps. When `metrics` is non-null,
/// records `repair.gaps` (runs found) and `repair.samples_filled`.
std::vector<double> repair_series(std::span<const double> xs,
                                  RepairMethod method = RepairMethod::kSeasonal,
                                  int period = 96,
                                  obs::MetricsRegistry* metrics = nullptr);

}  // namespace atm::ts
