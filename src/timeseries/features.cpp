#include "timeseries/features.hpp"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.hpp"

namespace atm::ts {

void MinMaxScaler::fit(std::span<const double> xs) {
    if (xs.empty()) {
        min_ = 0.0;
        max_ = 1.0;
        return;
    }
    min_ = *std::min_element(xs.begin(), xs.end());
    max_ = *std::max_element(xs.begin(), xs.end());
}

double MinMaxScaler::transform(double x) const {
    const double range = max_ - min_;
    if (range <= 0.0) return 0.5;
    return (x - min_) / range;
}

double MinMaxScaler::inverse(double y) const {
    const double range = max_ - min_;
    if (range <= 0.0) return min_;
    return min_ + y * range;
}

std::vector<double> MinMaxScaler::transform(std::span<const double> xs) const {
    std::vector<double> out(xs.size());
    std::transform(xs.begin(), xs.end(), out.begin(),
                   [this](double x) { return transform(x); });
    return out;
}

void StandardScaler::fit(std::span<const double> xs) {
    mean_ = ts::mean(xs);
    stddev_ = ts::stddev(xs);
    if (stddev_ <= 0.0) stddev_ = 1.0;
}

double StandardScaler::transform(double x) const { return (x - mean_) / stddev_; }

double StandardScaler::inverse(double z) const { return mean_ + z * stddev_; }

std::vector<double> StandardScaler::transform(std::span<const double> xs) const {
    std::vector<double> out(xs.size());
    std::transform(xs.begin(), xs.end(), out.begin(),
                   [this](double x) { return transform(x); });
    return out;
}

std::vector<LagExample> make_lag_dataset(std::span<const double> xs,
                                         int num_lags,
                                         int seasonal_period) {
    std::vector<LagExample> out;
    if (num_lags <= 0) return out;
    const auto history = static_cast<std::size_t>(
        std::max(num_lags, seasonal_period));
    if (xs.size() <= history) return out;
    for (std::size_t t = history; t < xs.size(); ++t) {
        LagExample ex;
        ex.lags.reserve(static_cast<std::size_t>(num_lags) +
                        (seasonal_period > 0 ? 1 : 0));
        for (int k = num_lags; k >= 1; --k) {
            ex.lags.push_back(xs[t - static_cast<std::size_t>(k)]);
        }
        if (seasonal_period > 0) {
            ex.lags.push_back(xs[t - static_cast<std::size_t>(seasonal_period)]);
        }
        ex.target = xs[t];
        out.push_back(std::move(ex));
    }
    return out;
}

void make_lag_dataset_flat(std::span<const double> xs, int num_lags,
                           int seasonal_period, la::FlatMatrix& features,
                           std::vector<double>& targets) {
    targets.clear();
    if (num_lags <= 0) {
        features.assign(0, 0, 0.0);
        return;
    }
    const auto history =
        static_cast<std::size_t>(std::max(num_lags, seasonal_period));
    if (xs.size() <= history) {
        features.assign(0, 0, 0.0);
        return;
    }
    const std::size_t rows = xs.size() - history;
    const std::size_t cols = static_cast<std::size_t>(num_lags) +
                             (seasonal_period > 0 ? 1 : 0);
    features.assign(rows, cols, 0.0);
    targets.reserve(rows);
    for (std::size_t t = history; t < xs.size(); ++t) {
        const std::span<double> row = features[t - history];
        std::size_t c = 0;
        for (int k = num_lags; k >= 1; --k) {
            row[c++] = xs[t - static_cast<std::size_t>(k)];
        }
        if (seasonal_period > 0) {
            row[c] = xs[t - static_cast<std::size_t>(seasonal_period)];
        }
        targets.push_back(xs[t]);
    }
}

}  // namespace atm::ts
