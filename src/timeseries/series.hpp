#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace atm::ts {

/// A univariate, regularly-sampled time series.
///
/// In ATM a `Series` holds either a *usage* series (utilization in percent,
/// 0..100) or a *demand* series (usage x allocated capacity, in GHz or GB)
/// sampled once per ticketing window (15 minutes in the paper).
///
/// The class is a thin, value-semantic wrapper over `std::vector<double>`
/// with a name for diagnostics; all analytics live in free functions
/// (stats.hpp, cdf.hpp, features.hpp) operating on `std::span<const double>`
/// so they compose with plain vectors too.
class Series {
  public:
    Series() = default;

    /// Creates a named series from samples.
    Series(std::string name, std::vector<double> values)
        : name_(std::move(name)), values_(std::move(values)) {}

    /// Creates an unnamed series from samples.
    explicit Series(std::vector<double> values) : values_(std::move(values)) {}

    /// Diagnostic name (e.g. "box17/vm3/CPU").
    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    [[nodiscard]] std::size_t size() const { return values_.size(); }
    [[nodiscard]] bool empty() const { return values_.empty(); }

    [[nodiscard]] double operator[](std::size_t i) const { return values_[i]; }
    [[nodiscard]] double& operator[](std::size_t i) { return values_[i]; }

    /// Underlying samples, in time order.
    [[nodiscard]] const std::vector<double>& values() const { return values_; }
    [[nodiscard]] std::vector<double>& values() { return values_; }

    /// Read-only view of the samples.
    [[nodiscard]] std::span<const double> view() const { return values_; }

    /// Copy of samples [first, first+count); clamps to the series length.
    [[nodiscard]] Series slice(std::size_t first, std::size_t count) const;

    /// Appends one sample.
    void push_back(double v) { values_.push_back(v); }

    /// Element-wise scaling: returns a series with every sample * factor.
    [[nodiscard]] Series scaled(double factor) const;

    auto begin() const { return values_.begin(); }
    auto end() const { return values_.end(); }

  private:
    std::string name_;
    std::vector<double> values_;
};

/// Splits a series into a training prefix and test suffix at `train_len`
/// samples. `train_len` is clamped to the series length.
struct TrainTestSplit {
    Series train;
    Series test;
};
TrainTestSplit split_train_test(const Series& s, std::size_t train_len);

}  // namespace atm::ts
