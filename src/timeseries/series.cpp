#include "timeseries/series.hpp"

#include <algorithm>

namespace atm::ts {

Series Series::slice(std::size_t first, std::size_t count) const {
    if (first >= values_.size()) return Series(name_, {});
    const std::size_t last = std::min(values_.size(), first + count);
    return Series(name_, std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(first),
                                             values_.begin() + static_cast<std::ptrdiff_t>(last)));
}

Series Series::scaled(double factor) const {
    std::vector<double> out(values_.size());
    std::transform(values_.begin(), values_.end(), out.begin(),
                   [factor](double v) { return v * factor; });
    return Series(name_, std::move(out));
}

TrainTestSplit split_train_test(const Series& s, std::size_t train_len) {
    train_len = std::min(train_len, s.size());
    return TrainTestSplit{
        s.slice(0, train_len),
        s.slice(train_len, s.size() - train_len),
    };
}

}  // namespace atm::ts
