#include "timeseries/repair.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace atm::ts {

std::vector<Gap> find_gaps(std::span<const double> xs, double floor,
                           std::size_t min_run) {
    std::vector<Gap> gaps;
    std::size_t run_start = 0;
    std::size_t run_len = 0;
    for (std::size_t t = 0; t <= xs.size(); ++t) {
        const bool missing = t < xs.size() && xs[t] <= floor;
        if (missing) {
            if (run_len == 0) run_start = t;
            ++run_len;
        } else if (run_len > 0) {
            if (run_len >= min_run) gaps.push_back(Gap{run_start, run_len});
            run_len = 0;
        }
    }
    return gaps;
}

std::vector<double> repair_gaps(std::span<const double> xs,
                                const std::vector<Gap>& gaps,
                                RepairMethod method, int period) {
    if (period < 1) throw std::invalid_argument("repair_gaps: bad period");
    std::vector<double> out(xs.begin(), xs.end());
    for (const Gap& gap : gaps) {
        if (gap.first >= out.size() || gap.length == 0) continue;
        const std::size_t last = std::min(out.size(), gap.first + gap.length);
        const bool has_left = gap.first > 0;
        const bool has_right = last < out.size();
        const double left = has_left ? out[gap.first - 1] : 0.0;
        const double right = has_right ? out[last] : 0.0;
        for (std::size_t t = gap.first; t < last; ++t) {
            if (method == RepairMethod::kSeasonal &&
                t >= static_cast<std::size_t>(period)) {
                const double prior = out[t - static_cast<std::size_t>(period)];
                // The prior-period sample may itself sit in a (repaired or
                // unrepaired) gap; only trust it when it looks valid.
                if (prior > 1e-9) {
                    out[t] = prior;
                    continue;
                }
            }
            if (has_left && has_right) {
                const double frac = static_cast<double>(t - gap.first + 1) /
                                    static_cast<double>(gap.length + 1);
                out[t] = left * (1.0 - frac) + right * frac;
            } else if (has_left) {
                out[t] = left;
            } else if (has_right) {
                out[t] = right;
            } else {
                // All-gap series: no valid sample anywhere to fill from.
                // Pin to flat zeros so downstream math stays finite; the
                // pipeline reports this as PipelineErrorCode::kRepairFailed.
                out[t] = 0.0;
            }
        }
    }
    return out;
}

std::vector<double> repair_series(std::span<const double> xs,
                                  RepairMethod method, int period,
                                  obs::MetricsRegistry* metrics) {
    const std::vector<Gap> gaps = find_gaps(xs);
    if (metrics != nullptr && !gaps.empty()) {
        std::uint64_t filled = 0;
        for (const Gap& gap : gaps) filled += gap.length;
        metrics->add("repair.gaps", gaps.size());
        metrics->add("repair.samples_filled", filled);
    }
    return repair_gaps(xs, gaps, method, period);
}

}  // namespace atm::ts
