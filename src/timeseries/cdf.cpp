#include "timeseries/cdf.hpp"

#include <algorithm>
#include <cmath>

namespace atm::ts {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
    std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::inverse(double p) const {
    if (sorted_.empty()) return 0.0;
    p = std::clamp(p, 1.0 / static_cast<double>(sorted_.size()), 1.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted_.size())) - 1.0);
    return sorted_[std::min(rank, sorted_.size() - 1)];
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::grid(int points) const {
    std::vector<Point> out;
    if (sorted_.empty() || points < 2) return out;
    const double lo = sorted_.front();
    const double hi = sorted_.back();
    out.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
        out.push_back(Point{x, (*this)(x)});
    }
    return out;
}

}  // namespace atm::ts
