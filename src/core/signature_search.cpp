#include "core/signature_search.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "cluster/dtw.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/ols.hpp"
#include "obs/metrics.hpp"
#include "timeseries/resource.hpp"

namespace atm::core {
namespace {

void validate(const std::vector<std::vector<double>>& series) {
    if (series.empty()) {
        throw std::invalid_argument("find_signatures: no series");
    }
    for (const auto& s : series) {
        if (s.size() != series.front().size()) {
            throw std::invalid_argument("find_signatures: ragged series lengths");
        }
        if (s.empty()) {
            throw std::invalid_argument("find_signatures: empty series");
        }
    }
}

}  // namespace

SignatureSearchResult find_signatures(
    const std::vector<std::vector<double>>& series,
    const SignatureSearchOptions& options) {
    validate(series);
    const int n = static_cast<int>(series.size());

    SignatureSearchResult result;
    obs::MetricsRegistry* metrics = options.metrics;
    // Both returns below funnel through here so the counters always
    // describe the *final* signature set.
    const auto record = [&]() {
        if (metrics == nullptr) return;
        metrics->add("search.series", static_cast<std::uint64_t>(n));
        metrics->add("search.clusters",
                     static_cast<std::uint64_t>(result.num_clusters));
        metrics->add("search.initial_signatures",
                     result.initial_signatures.size());
        metrics->add("search.final_signatures", result.signatures.size());
        metrics->set_gauge("search.silhouette", result.silhouette);
    };

    // ---- Step 1: time-series clustering -------------------------------------
    if (n == 1) {
        result.initial_signatures = {0};
        result.num_clusters = 1;
    } else if (options.method == ClusteringMethod::kDtw) {
        // The matrix is the expensive part; compute it on the pool (when
        // given) and through the per-box memo (when given), so the
        // cluster sweep and medoid pick below — and any later search on
        // the same window — never recompute a pairwise distance.
        la::FlatMatrix local;
        const la::FlatMatrix* dist;
        if (options.dtw_cache != nullptr) {
            dist = &options.dtw_cache->matrix(series, options.dtw_band,
                                              options.pool, metrics,
                                              options.cancel,
                                              options.dtw_workspace);
        } else {
            local = cluster::dtw_distance_matrix(series, options.dtw_band,
                                                 options.pool, metrics,
                                                 options.cancel,
                                                 options.dtw_workspace);
            dist = &local;
        }
        // k in [2, n/2] per the paper ("we aim to reduce the original set to
        // at least its half"); n < 4 degenerates to k = 2.
        const int k_max = std::max(2, n / 2);
        const cluster::BestClustering best =
            cluster::cluster_best_k(*dist, 2, k_max, options.linkage);
        result.num_clusters = best.num_clusters;
        result.silhouette = best.silhouette;
        result.initial_signatures = cluster::cluster_medoids(*dist, best.labels);
    } else {
        cluster::CbcOptions cbc_options;
        cbc_options.rho_threshold = options.rho_threshold;
        const std::vector<cluster::CbcCluster> clusters =
            cluster::cbc_cluster(series, cbc_options);
        result.num_clusters = static_cast<int>(clusters.size());
        result.initial_signatures.reserve(clusters.size());
        for (const cluster::CbcCluster& c : clusters) {
            result.initial_signatures.push_back(c.head);
        }
    }
    std::sort(result.initial_signatures.begin(), result.initial_signatures.end());

    // ---- Step 2: multicollinearity removal ----------------------------------
    if (!options.apply_stepwise || result.initial_signatures.size() < 2) {
        result.signatures = result.initial_signatures;
        record();
        return result;
    }
    std::vector<std::vector<double>> sig_series;
    sig_series.reserve(result.initial_signatures.size());
    for (int idx : result.initial_signatures) {
        sig_series.push_back(series[static_cast<std::size_t>(idx)]);
    }
    const std::vector<std::size_t> kept =
        la::reduce_multicollinearity(sig_series, options.vif_threshold, metrics);
    result.signatures.reserve(kept.size());
    for (std::size_t k : kept) {
        result.signatures.push_back(result.initial_signatures[k]);
    }
    record();
    return result;
}

std::vector<int> scope_indices(std::size_t total_series, ResourceScope scope) {
    std::vector<int> out;
    for (std::size_t i = 0; i < total_series; ++i) {
        const auto kind = static_cast<ts::ResourceKind>(i % ts::kNumResources);
        const bool keep = scope == ResourceScope::kInter ||
                          (scope == ResourceScope::kIntraCpu &&
                           kind == ts::ResourceKind::kCpu) ||
                          (scope == ResourceScope::kIntraRam &&
                           kind == ts::ResourceKind::kRam);
        if (keep) out.push_back(static_cast<int>(i));
    }
    return out;
}

}  // namespace atm::core
