#include "core/spatial_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/errors.hpp"
#include "linalg/ridge.hpp"
#include "timeseries/stats.hpp"

namespace atm::core {
namespace {

bool all_finite(const std::vector<double>& xs) {
    for (const double x : xs) {
        if (!std::isfinite(x)) return false;
    }
    return true;
}

/// Shrinkage small enough to be indistinguishable from OLS on the
/// problems OLS can solve, but it makes gram + lambda I strictly SPD.
constexpr double kFallbackRidgeLambda = 1e-6;

}  // namespace

void SpatialModel::fit(const std::vector<std::vector<double>>& series,
                       const std::vector<int>& signature_indices) {
    if (series.empty()) throw std::invalid_argument("SpatialModel::fit: no series");
    for (const auto& s : series) {
        if (s.size() != series.front().size()) {
            throw std::invalid_argument("SpatialModel::fit: ragged series");
        }
    }
    if (signature_indices.empty()) {
        throw std::invalid_argument("SpatialModel::fit: empty signature set");
    }
    for (int idx : signature_indices) {
        if (idx < 0 || static_cast<std::size_t>(idx) >= series.size()) {
            throw std::invalid_argument("SpatialModel::fit: signature index out of range");
        }
    }

    total_series_ = series.size();
    signature_indices_ = signature_indices;
    std::sort(signature_indices_.begin(), signature_indices_.end());

    dependent_indices_.clear();
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (!std::binary_search(signature_indices_.begin(), signature_indices_.end(),
                                static_cast<int>(i))) {
            dependent_indices_.push_back(static_cast<int>(i));
        }
    }

    std::vector<std::vector<double>> predictors;
    predictors.reserve(signature_indices_.size());
    for (int idx : signature_indices_) {
        predictors.push_back(series[static_cast<std::size_t>(idx)]);
    }

    fits_.clear();
    dependent_fit_ape_.clear();
    fits_.reserve(dependent_indices_.size());
    dependent_fit_ape_.reserve(dependent_indices_.size());
    ridge_fallbacks_ = 0;
    for (int dep : dependent_indices_) {
        const auto& y = series[static_cast<std::size_t>(dep)];
        la::OlsFit fit;
        bool ols_ok = true;
        try {
            fit = la::ols_fit(y, predictors);
            ols_ok = all_finite(fit.coefficients);
        } catch (const std::exception&) {
            ols_ok = false;
        }
        if (!ols_ok) {
            // Mirrors ridge.cpp's own solve_spd -> solve ladder: when the
            // least-squares problem is singular or under-determined, a tiny
            // L2 penalty restores a unique finite solution.
            fit = la::ridge_fit(y, predictors, kFallbackRidgeLambda);
            if (!all_finite(fit.coefficients)) {
                throw PipelineError(PipelineErrorCode::kSolverSingular,
                                    "spatial",
                                    "ridge fallback produced non-finite "
                                    "coefficients for dependent series " +
                                        std::to_string(dep));
            }
            ++ridge_fallbacks_;
        }
        dependent_fit_ape_.push_back(
            ts::mean_absolute_percentage_error(y, fit.fitted));
        // Fitted/residual vectors are per-training-window and only needed
        // for the APE above; drop them to keep per-box memory flat.
        fit.fitted.clear();
        fit.fitted.shrink_to_fit();
        fit.residuals.clear();
        fit.residuals.shrink_to_fit();
        fits_.push_back(std::move(fit));
    }
}

std::vector<std::vector<double>> SpatialModel::reconstruct(
    const std::vector<std::vector<double>>& signature_values) const {
    if (!fitted()) throw std::logic_error("SpatialModel::reconstruct before fit");
    if (signature_values.size() != signature_indices_.size()) {
        throw std::invalid_argument("SpatialModel::reconstruct: signature count mismatch");
    }
    const std::size_t horizon =
        signature_values.empty() ? 0 : signature_values.front().size();
    for (const auto& s : signature_values) {
        if (s.size() != horizon) {
            throw std::invalid_argument("SpatialModel::reconstruct: ragged horizons");
        }
    }

    std::vector<std::vector<double>> out(total_series_,
                                         std::vector<double>(horizon, 0.0));
    for (std::size_t s = 0; s < signature_indices_.size(); ++s) {
        out[static_cast<std::size_t>(signature_indices_[s])] = signature_values[s];
    }
    std::vector<double> at_t(signature_indices_.size());
    for (std::size_t d = 0; d < dependent_indices_.size(); ++d) {
        auto& row = out[static_cast<std::size_t>(dependent_indices_[d])];
        for (std::size_t t = 0; t < horizon; ++t) {
            for (std::size_t s = 0; s < signature_values.size(); ++s) {
                at_t[s] = signature_values[s][t];
            }
            // Demand cannot be negative; clamp the linear extrapolation.
            row[t] = std::max(0.0, fits_[d].predict(at_t));
        }
    }
    return out;
}

}  // namespace atm::core
