#include "core/spatial_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "timeseries/stats.hpp"

namespace atm::core {

void SpatialModel::fit(const std::vector<std::vector<double>>& series,
                       const std::vector<int>& signature_indices) {
    if (series.empty()) throw std::invalid_argument("SpatialModel::fit: no series");
    for (const auto& s : series) {
        if (s.size() != series.front().size()) {
            throw std::invalid_argument("SpatialModel::fit: ragged series");
        }
    }
    if (signature_indices.empty()) {
        throw std::invalid_argument("SpatialModel::fit: empty signature set");
    }
    for (int idx : signature_indices) {
        if (idx < 0 || static_cast<std::size_t>(idx) >= series.size()) {
            throw std::invalid_argument("SpatialModel::fit: signature index out of range");
        }
    }

    total_series_ = series.size();
    signature_indices_ = signature_indices;
    std::sort(signature_indices_.begin(), signature_indices_.end());

    dependent_indices_.clear();
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (!std::binary_search(signature_indices_.begin(), signature_indices_.end(),
                                static_cast<int>(i))) {
            dependent_indices_.push_back(static_cast<int>(i));
        }
    }

    std::vector<std::vector<double>> predictors;
    predictors.reserve(signature_indices_.size());
    for (int idx : signature_indices_) {
        predictors.push_back(series[static_cast<std::size_t>(idx)]);
    }

    fits_.clear();
    dependent_fit_ape_.clear();
    fits_.reserve(dependent_indices_.size());
    dependent_fit_ape_.reserve(dependent_indices_.size());
    for (int dep : dependent_indices_) {
        const auto& y = series[static_cast<std::size_t>(dep)];
        la::OlsFit fit = la::ols_fit(y, predictors);
        dependent_fit_ape_.push_back(
            ts::mean_absolute_percentage_error(y, fit.fitted));
        // Fitted/residual vectors are per-training-window and only needed
        // for the APE above; drop them to keep per-box memory flat.
        fit.fitted.clear();
        fit.fitted.shrink_to_fit();
        fit.residuals.clear();
        fit.residuals.shrink_to_fit();
        fits_.push_back(std::move(fit));
    }
}

std::vector<std::vector<double>> SpatialModel::reconstruct(
    const std::vector<std::vector<double>>& signature_values) const {
    if (!fitted()) throw std::logic_error("SpatialModel::reconstruct before fit");
    if (signature_values.size() != signature_indices_.size()) {
        throw std::invalid_argument("SpatialModel::reconstruct: signature count mismatch");
    }
    const std::size_t horizon =
        signature_values.empty() ? 0 : signature_values.front().size();
    for (const auto& s : signature_values) {
        if (s.size() != horizon) {
            throw std::invalid_argument("SpatialModel::reconstruct: ragged horizons");
        }
    }

    std::vector<std::vector<double>> out(total_series_,
                                         std::vector<double>(horizon, 0.0));
    for (std::size_t s = 0; s < signature_indices_.size(); ++s) {
        out[static_cast<std::size_t>(signature_indices_[s])] = signature_values[s];
    }
    std::vector<double> at_t(signature_indices_.size());
    for (std::size_t d = 0; d < dependent_indices_.size(); ++d) {
        auto& row = out[static_cast<std::size_t>(dependent_indices_[d])];
        for (std::size_t t = 0; t < horizon; ++t) {
            for (std::size_t s = 0; s < signature_values.size(); ++s) {
                at_t[s] = signature_values[s][t];
            }
            // Demand cannot be negative; clamp the linear extrapolation.
            row[t] = std::max(0.0, fits_[d].predict(at_t));
        }
    }
    return out;
}

}  // namespace atm::core
