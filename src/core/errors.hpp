#pragma once

#include <stdexcept>
#include <string>

namespace atm::core {

/// Structured failure taxonomy of the per-box pipeline. Every way a box
/// can fail (or degrade) maps to exactly one code, so fleet runs over
/// malformed production exports report *what* went wrong per box instead
/// of one opaque exception string, and chaos tests can assert that an
/// injected fault surfaced as the code it should.
///
/// The names are stable: `to_string` values are used as metric suffixes
/// (`robust.error.<code>`, see DESIGN.md §7.11) and in reports.
enum class PipelineErrorCode {
    kNone = 0,          ///< no error (default for successful boxes)
    kTraceInvalid,      ///< input rejected: empty/short/too-corrupt trace
    kRepairFailed,      ///< a series had no valid sample to repair from
    kSearchDegenerate,  ///< clustering collapsed / silhouette undefined
    kModelFitFailed,    ///< temporal model non-finite or failed to fit
    kSolverSingular,    ///< OLS solve failed; ridge fallback engaged
    kResizeInfeasible,  ///< MCKP infeasible even at minimal candidates
    kDeadlineExceeded,  ///< box exceeded FleetConfig::box_deadline_seconds
    kCancelled,         ///< operator stop drained the run before this box
    kFaultInjected,     ///< thrown by an exec::FaultPlan site
    kInternal,          ///< anything not classified above (catch-all)
};

/// Stable kebab-case name ("trace-invalid", ...); "none" / "internal" at
/// the ends. Suitable as a metric-name suffix.
const char* to_string(PipelineErrorCode code);

/// Inverse of `to_string`, for decoding journaled box records. Throws
/// std::invalid_argument on an unknown name (a journal from a different
/// schema version must not decode silently).
PipelineErrorCode error_code_from_string(const std::string& name);

/// Counter name under which fleet aggregation records one increment per
/// failed box: "robust.error." + to_string(code).
std::string error_counter_name(PipelineErrorCode code);

/// Exception carrying the taxonomy: the code, the pipeline stage that
/// raised it ("sanitize", "search", "forecast", ...), and a human-readable
/// message. The fleet driver catches these and fills the structured
/// FleetBoxResult fields instead of flattening everything into a string.
class PipelineError : public std::runtime_error {
  public:
    PipelineError(PipelineErrorCode code, std::string stage,
                  const std::string& message)
        : std::runtime_error(stage + ": " + message),
          code_(code),
          stage_(std::move(stage)) {}

    [[nodiscard]] PipelineErrorCode code() const { return code_; }
    [[nodiscard]] const std::string& stage() const { return stage_; }

  private:
    PipelineErrorCode code_;
    std::string stage_;
};

/// One rung of the graceful-degradation ladder that fired for a box: the
/// condition (code), the stage it fired in, and what the fallback was.
/// Degraded boxes stay in the fleet aggregates; this records how they got
/// there. Counted under `robust.fallback.<stage>`.
struct Degradation {
    PipelineErrorCode code = PipelineErrorCode::kNone;
    std::string stage;
    std::string detail;
};

}  // namespace atm::core
