#include "core/metrics_report.hpp"

#include "exec/io.hpp"

namespace atm::core {

obs::json::Value build_metrics_report(const FleetResult& fleet,
                                      const std::string& command,
                                      const obs::MetricsSnapshot& extra) {
    namespace json = obs::json;

    obs::MetricsSnapshot merged = extra;
    merged.merge(fleet.metrics);

    json::Value report = json::Value::make_object();
    report.set("schema", json::Value::of(kMetricsReportSchema));
    report.set("command", json::Value::of(command));
    report.set("jobs", json::Value::of(static_cast<std::int64_t>(fleet.jobs)));
    report.set("simd", json::Value::of(fleet.simd_path));
    report.set("wall_seconds", json::Value::of(fleet.wall_seconds));
    report.set("boxes_in_trace",
               json::Value::of(static_cast<std::uint64_t>(fleet.boxes_in_trace)));
    report.set("boxes_skipped",
               json::Value::of(static_cast<std::uint64_t>(fleet.boxes_skipped)));
    report.set("boxes_failed",
               json::Value::of(static_cast<std::uint64_t>(fleet.boxes_failed)));
    // Scheduler/arena execution stats. Like "jobs" and "wall_seconds"
    // this section describes how the run executed, not what it computed,
    // so report-equivalence checks strip it.
    json::Value scheduler = json::Value::make_object();
    scheduler.set("workers", json::Value::of(static_cast<std::int64_t>(
                                 fleet.exec_stats.workers)));
    scheduler.set("shard_size", json::Value::of(static_cast<std::uint64_t>(
                                    fleet.exec_stats.shard_size)));
    scheduler.set("arena_bytes_reserved",
                  json::Value::of(fleet.exec_stats.arena_bytes_reserved));
    scheduler.set("arena_high_water",
                  json::Value::of(fleet.exec_stats.arena_high_water));
    scheduler.set("arena_allocations",
                  json::Value::of(fleet.exec_stats.arena_allocations));
    scheduler.set("arena_slabs",
                  json::Value::of(fleet.exec_stats.arena_slabs));
    report.set("scheduler", std::move(scheduler));
    report.set("fleet", json::to_json(merged));

    json::Value boxes = json::Value::make_array();
    boxes.array.reserve(fleet.boxes.size());
    for (const FleetBoxResult& box : fleet.boxes) {
        json::Value entry = json::Value::make_object();
        entry.set("name", json::Value::of(box.box_name));
        entry.set("index",
                  json::Value::of(static_cast<std::int64_t>(box.box_index)));
        if (box.error.empty()) {
            entry.set("metrics", json::to_json(box.result.metrics));
        } else {
            entry.set("error", json::Value::of(box.error));
        }
        boxes.array.push_back(std::move(entry));
    }
    report.set("boxes", std::move(boxes));
    return report;
}

void write_metrics_report_file(const std::string& path,
                               const FleetResult& fleet,
                               const std::string& command,
                               const obs::MetricsSnapshot& extra) {
    const obs::json::Value report = build_metrics_report(fleet, command, extra);
    // Atomic (temp + rename): a crash or SIGKILL mid-write leaves either
    // the previous report or the new one, never a truncated file.
    exec::write_file_atomic(path, obs::json::serialize(report, 2) + '\n');
}

}  // namespace atm::core
