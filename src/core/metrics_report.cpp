#include "core/metrics_report.hpp"

#include "exec/io.hpp"

namespace atm::core {

obs::json::Value build_metrics_report(const FleetResult& fleet,
                                      const std::string& command,
                                      const obs::MetricsSnapshot& extra) {
    namespace json = obs::json;

    obs::MetricsSnapshot merged = extra;
    merged.merge(fleet.metrics);

    json::Value report = json::Value::make_object();
    report.set("schema", json::Value::of(kMetricsReportSchema));
    report.set("command", json::Value::of(command));
    report.set("jobs", json::Value::of(static_cast<std::int64_t>(fleet.jobs)));
    report.set("simd", json::Value::of(fleet.simd_path));
    report.set("wall_seconds", json::Value::of(fleet.wall_seconds));
    report.set("boxes_in_trace",
               json::Value::of(static_cast<std::uint64_t>(fleet.boxes_in_trace)));
    report.set("boxes_skipped",
               json::Value::of(static_cast<std::uint64_t>(fleet.boxes_skipped)));
    report.set("boxes_failed",
               json::Value::of(static_cast<std::uint64_t>(fleet.boxes_failed)));
    report.set("fleet", json::to_json(merged));

    json::Value boxes = json::Value::make_array();
    boxes.array.reserve(fleet.boxes.size());
    for (const FleetBoxResult& box : fleet.boxes) {
        json::Value entry = json::Value::make_object();
        entry.set("name", json::Value::of(box.box_name));
        entry.set("index",
                  json::Value::of(static_cast<std::int64_t>(box.box_index)));
        if (box.error.empty()) {
            entry.set("metrics", json::to_json(box.result.metrics));
        } else {
            entry.set("error", json::Value::of(box.error));
        }
        boxes.array.push_back(std::move(entry));
    }
    report.set("boxes", std::move(boxes));
    return report;
}

void write_metrics_report_file(const std::string& path,
                               const FleetResult& fleet,
                               const std::string& command,
                               const obs::MetricsSnapshot& extra) {
    const obs::json::Value report = build_metrics_report(fleet, command, extra);
    // Atomic (temp + rename): a crash or SIGKILL mid-write leaves either
    // the previous report or the new one, never a truncated file.
    exec::write_file_atomic(path, obs::json::serialize(report, 2) + '\n');
}

}  // namespace atm::core
