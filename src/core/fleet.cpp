#include "core/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "cluster/dtw.hpp"
#include "core/fleet_journal.hpp"
#include "exec/journal.hpp"
#include "exec/seed.hpp"
#include "exec/shard.hpp"
#include "exec/thread_pool.hpp"
#include "linalg/simd/simd.hpp"

namespace atm::core {
namespace {

/// Resolves FleetConfig::jobs to a concrete worker count.
unsigned resolve_jobs(int jobs) {
    if (jobs > 0) return static_cast<unsigned>(jobs);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/// Indices of the boxes a fleet run evaluates, in trace order.
std::vector<int> select_boxes(const trace::Trace& trace,
                              const FleetConfig& config) {
    std::vector<int> selected;
    for (std::size_t b = 0; b < trace.boxes.size(); ++b) {
        const trace::BoxTrace& box = trace.boxes[b];
        if (config.skip_gappy_boxes && box.has_gaps) continue;
        if (!config.box_names.empty() &&
            std::find(config.box_names.begin(), config.box_names.end(),
                      box.name) == config.box_names.end()) {
            continue;
        }
        if (config.max_boxes >= 0 &&
            selected.size() >= static_cast<std::size_t>(config.max_boxes)) {
            break;
        }
        selected.push_back(static_cast<int>(b));
    }
    return selected;
}

/// Sums per-box policy tickets into the fleet totals and computes the
/// mean APEs; boxes that failed contribute nothing.
void aggregate(const FleetConfig& config, FleetResult& fleet) {
    fleet.totals.assign(config.policies.size(), FleetPolicyTotals{});
    for (std::size_t p = 0; p < config.policies.size(); ++p) {
        fleet.totals[p].policy = config.policies[p];
    }
    double ape_all_sum = 0.0;
    double ape_peak_sum = 0.0;
    std::size_t evaluated = 0;
    std::size_t peak_boxes = 0;
    for (const FleetBoxResult& b : fleet.boxes) {
        if (!b.error.empty()) {
            ++fleet.boxes_failed;
            ++fleet.failures_by_code[b.error_code];
            continue;
        }
        ++evaluated;
        ape_all_sum += b.result.ape_all;
        if (b.result.ape_peak > 0.0) {
            ape_peak_sum += b.result.ape_peak;
            ++peak_boxes;
        }
        for (std::size_t p = 0;
             p < b.result.policies.size() && p < fleet.totals.size(); ++p) {
            // Widen before summing: per-box counts are int, but a
            // paper-scale fleet sum can exceed 2^31.
            fleet.totals[p].cpu_before +=
                static_cast<std::int64_t>(b.result.policies[p].cpu_before);
            fleet.totals[p].cpu_after +=
                static_cast<std::int64_t>(b.result.policies[p].cpu_after);
            fleet.totals[p].ram_before +=
                static_cast<std::int64_t>(b.result.policies[p].ram_before);
            fleet.totals[p].ram_after +=
                static_cast<std::int64_t>(b.result.policies[p].ram_after);
        }
    }
    if (evaluated > 0) {
        fleet.mean_ape_all = ape_all_sum / static_cast<double>(evaluated);
    }
    if (peak_boxes > 0) {
        fleet.mean_ape_peak = ape_peak_sum / static_cast<double>(peak_boxes);
    }
}

/// Background thread that periodically prods every registered per-box
/// CancellationToken. A token self-trips when its armed deadline is read
/// (CancellationToken::reason), so correctness never depends on this
/// thread getting scheduled — the watchdog exists so a box stuck in a
/// *long* stretch between cancellation points is still flagged close to
/// its deadline rather than at the next check. Registration is
/// mutex-protected: unwatch() returning guarantees the watchdog no longer
/// touches the (stack-owned) token.
class DeadlineWatchdog {
  public:
    explicit DeadlineWatchdog(double deadline_seconds) {
        // Scan at ~deadline/4, clamped to [1ms, 250ms].
        const double period = std::clamp(deadline_seconds / 4.0, 1e-3, 0.25);
        period_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::duration<double>(period));
        thread_ = std::thread([this] { loop(); });
    }

    DeadlineWatchdog(const DeadlineWatchdog&) = delete;
    DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

    ~DeadlineWatchdog() {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        thread_.join();
    }

    void watch(exec::CancellationToken* token) {
        const std::lock_guard<std::mutex> lock(mutex_);
        active_.push_back(token);
    }

    void unwatch(exec::CancellationToken* token) {
        const std::lock_guard<std::mutex> lock(mutex_);
        active_.erase(std::find(active_.begin(), active_.end(), token));
    }

  private:
    void loop() {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            // reason() trips an armed token whose deadline has passed.
            for (exec::CancellationToken* token : active_) token->reason();
            wake_.wait_for(lock, period_, [this] { return stop_; });
        }
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::vector<exec::CancellationToken*> active_;
    bool stop_ = false;
    std::chrono::nanoseconds period_{};
    std::thread thread_;
};

/// RAII registration of a per-attempt token with the (optional) watchdog.
class WatchdogGuard {
  public:
    WatchdogGuard(DeadlineWatchdog* watchdog, exec::CancellationToken* token)
        : watchdog_(watchdog) {
        if (watchdog_ != nullptr) {
            token_ = token;
            watchdog_->watch(token_);
        }
    }
    WatchdogGuard(const WatchdogGuard&) = delete;
    WatchdogGuard& operator=(const WatchdogGuard&) = delete;
    ~WatchdogGuard() {
        if (watchdog_ != nullptr) watchdog_->unwatch(token_);
    }

  private:
    DeadlineWatchdog* watchdog_;
    exec::CancellationToken* token_ = nullptr;
};

/// Transient codes re-run under FleetConfig::max_retries: injected faults
/// re-roll their Bernoulli draws per attempt, and kInternal covers
/// environmental flakes (the catch-all). Structural failures (bad input,
/// infeasible solve) would fail identically again, and cancellation codes
/// must end the box immediately.
bool is_transient(PipelineErrorCode code) {
    return code == PipelineErrorCode::kFaultInjected ||
           code == PipelineErrorCode::kInternal;
}

/// Shared scheduling skeleton of both fleet drivers: validate, select,
/// fan one task per box out on the pool, fill result slots by index
/// (retrying transient failures, enforcing per-box deadlines, journaling
/// and replaying when a checkpoint is configured), and aggregate.
/// `evaluate_box` must be thread-compatible (it only receives the box
/// index, attempt, and cancellation token, and writes the slot it owns).
template <typename EvaluateBox>
FleetResult run_fleet(const trace::Trace& trace, const FleetConfig& config,
                      const EvaluateBox& evaluate_box) {
    if (const std::string problems = config.validate(); !problems.empty()) {
        throw std::invalid_argument("FleetConfig: " + problems);
    }
    const auto start = std::chrono::steady_clock::now();

    FleetResult fleet;
    // Resolve the SIMD dispatch up front: the journal header binds it, and
    // an invalid ATM_SIMD should fail the run here, not mid-box.
    fleet.simd_path = simd::to_string(simd::active_path());
    fleet.boxes_in_trace = trace.boxes.size();
    const std::vector<int> selected = select_boxes(trace, config);
    fleet.boxes_skipped = trace.boxes.size() - selected.size();

    // Checkpoint journal: load the replayable prefix (resume) and open the
    // writer. A header mismatch — different trace, result-affecting
    // config, or seed — means the old journal answers a different
    // question, so it is ignored and the file starts fresh.
    std::map<int, FleetBoxResult> replayed;
    std::optional<exec::JournalWriter> journal;
    if (!config.checkpoint_path.empty()) {
        const std::string header = fleet_journal_header(trace, config);
        bool fresh = true;
        if (config.resume) {
            const exec::JournalLoad load =
                exec::load_journal(config.checkpoint_path);
            if (load.exists && load.header == header) {
                // A record that fails to *decode* is treated like checksum
                // corruption: keep the boxes before it, truncate the rest.
                std::uint64_t keep_bytes = load.header_end;
                for (std::size_t i = 0; i < load.records.size(); ++i) {
                    FleetBoxResult box;
                    try {
                        box = decode_box_record(load.records[i]);
                    } catch (const std::exception&) {
                        break;
                    }
                    const int index = box.box_index;
                    replayed.insert({index, std::move(box)});
                    keep_bytes = load.record_ends[i];
                }
                journal.emplace(exec::JournalWriter::append_after(
                    config.checkpoint_path, keep_bytes));
                fresh = false;
            }
        }
        if (fresh) {
            journal.emplace(
                exec::JournalWriter::create(config.checkpoint_path, header));
        }
    }

    const unsigned jobs = resolve_jobs(config.jobs);
    fleet.jobs = static_cast<int>(jobs);
    // jobs == 1 runs strictly on the calling thread; the determinism tests
    // compare this path against the pooled one. jobs > 1 borrows the
    // process-wide pool (grown to jobs - 1 helpers, the caller is worker
    // 0) instead of spawning a pool per run — repeated fleet runs reuse
    // warm threads.
    exec::ThreadPool* pool =
        jobs > 1 ? &exec::shared_pool(jobs - 1) : nullptr;

    // One reusable workspace per worker: a bump arena backing the DTW and
    // MLP scratch plus the per-box DTW memo. Workers evaluate box after
    // box on the same workspace, so steady-state inner kernels allocate
    // nothing; scratch contents never affect results.
    std::vector<std::unique_ptr<PipelineWorkspace>> workspaces;
    workspaces.reserve(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        workspaces.push_back(std::make_unique<PipelineWorkspace>());
    }

    exec::ShardOptions shard_options;
    shard_options.workers = jobs;
    shard_options.shard_size =
        config.shard_size > 0 ? static_cast<std::size_t>(config.shard_size) : 0;
    fleet.exec_stats.workers = static_cast<int>(jobs);
    fleet.exec_stats.shard_size = exec::resolve_shard_size(
        selected.size(), jobs, shard_options.shard_size);

    // Lend the fleet pool to each box's DTW matrix only when there are
    // fewer boxes than workers — otherwise box-level sharding already
    // saturates the workers and nested task fan-out would only add queue
    // contention (each box then computes its DTW serially on its worker's
    // own workspace).
    exec::ThreadPool* box_pool =
        (pool != nullptr && selected.size() < static_cast<std::size_t>(jobs))
            ? pool
            : nullptr;

    std::unique_ptr<DeadlineWatchdog> watchdog;
    if (config.box_deadline_seconds > 0.0) {
        watchdog = std::make_unique<DeadlineWatchdog>(config.box_deadline_seconds);
    }

    const int max_attempts = 1 + std::max(0, config.max_retries);
    fleet.boxes.resize(selected.size());
    exec::run_sharded(pool, selected.size(), shard_options, [&](unsigned worker,
                                                                std::size_t task) {
        const int box_index = selected[task];
        FleetBoxResult& slot = fleet.boxes[task];
        slot.box_index = box_index;
        slot.box_name = trace.boxes[static_cast<std::size_t>(box_index)].name;
        // Resume: replay the journaled outcome bit-identically. The
        // journal key is the box index (stable in trace order), so the
        // replay is independent of worker scheduling.
        if (const auto it = replayed.find(box_index); it != replayed.end()) {
            const std::string name = std::move(slot.box_name);
            slot = it->second;
            slot.box_index = box_index;
            slot.box_name = name;
            return;
        }
        // Operator drain: boxes not yet started when the stop token trips
        // are recorded as kCancelled — and NOT journaled, so a resume
        // evaluates them. In-flight boxes run to completion below.
        if (config.stop != nullptr && config.stop->cancelled()) {
            slot.error = "cancelled before start (operator stop)";
            slot.error_code = PipelineErrorCode::kCancelled;
            slot.error_stage = "fleet";
            slot.attempts = 0;
            return;
        }
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            slot.error.clear();
            slot.error_code = PipelineErrorCode::kNone;
            slot.error_stage.clear();
            slot.result = BoxPipelineResult{};
            slot.attempts = attempt + 1;
            // Fresh token — and fresh deadline budget — per attempt.
            exec::CancellationToken box_cancel;
            if (config.box_deadline_seconds > 0.0) {
                box_cancel.arm_deadline_after(config.box_deadline_seconds);
            }
            const WatchdogGuard guard(watchdog.get(), &box_cancel);
            try {
                const exec::FaultContext fault{
                    config.faults.empty() ? nullptr : &config.faults,
                    static_cast<std::uint64_t>(box_index),
                    static_cast<std::uint64_t>(attempt)};
                ATM_FAULT_SITE(fault, "fleet.box");
                evaluate_box(box_index, box_pool,
                             static_cast<std::uint64_t>(attempt), &box_cancel,
                             workspaces[worker].get(), slot.result);
            } catch (const PipelineError& e) {
                slot.error = e.what();
                slot.error_code = e.code();
                slot.error_stage = e.stage();
            } catch (const exec::OperationCancelled& e) {
                slot.error = e.what();
                slot.error_code =
                    e.reason() == exec::CancelReason::kDeadline
                        ? PipelineErrorCode::kDeadlineExceeded
                        : PipelineErrorCode::kCancelled;
                slot.error_stage = e.where();
            } catch (const exec::InjectedFault& e) {
                slot.error = e.what();
                slot.error_code = PipelineErrorCode::kFaultInjected;
                slot.error_stage = e.site();
            } catch (const std::invalid_argument& e) {
                // Precondition violations from lower layers (shape
                // mismatches, out-of-range days) mean the box's input was
                // unusable.
                slot.error = e.what();
                slot.error_code = PipelineErrorCode::kTraceInvalid;
                slot.error_stage = "input";
            } catch (const std::exception& e) {
                slot.error = e.what();
                slot.error_code = PipelineErrorCode::kInternal;
                slot.error_stage = "unknown";
            }
            if (slot.error.empty() || !is_transient(slot.error_code)) break;
        }
        // Journal the outcome — success or *settled* failure. Deadline and
        // cancellation outcomes are excluded on purpose: they describe
        // this run's interruption, not the box, and a resume should
        // evaluate such boxes for real.
        if (journal &&
            slot.error_code != PipelineErrorCode::kDeadlineExceeded &&
            slot.error_code != PipelineErrorCode::kCancelled) {
            journal->append(encode_box_record(slot));
        }
    });

    aggregate(config, fleet);
    for (const std::unique_ptr<PipelineWorkspace>& ws : workspaces) {
        const exec::ArenaStats& stats = ws->arena.stats();
        fleet.exec_stats.arena_bytes_reserved += stats.bytes_reserved;
        fleet.exec_stats.arena_high_water += stats.high_water;
        fleet.exec_stats.arena_allocations += stats.allocations;
        fleet.exec_stats.arena_slabs += stats.slabs;
    }
    for (const FleetBoxResult& b : fleet.boxes) {
        if (replayed.count(b.box_index) != 0) ++fleet.boxes_replayed;
    }
    fleet.interrupted = config.stop != nullptr && config.stop->cancelled();
    if (config.collect_metrics) {
        // Trace order, so the fleet merge is independent of scheduling.
        for (const FleetBoxResult& b : fleet.boxes) {
            if (b.error.empty()) fleet.metrics.merge(b.result.metrics);
        }
        // Structured failure counters, also in trace order. These only
        // exist when a box failed, so the clean golden run's counter set
        // is unchanged.
        for (const FleetBoxResult& b : fleet.boxes) {
            if (!b.error.empty()) {
                fleet.metrics.counters[error_counter_name(b.error_code)] += 1;
            }
        }
        // Retry counters, synthesized from the slots in trace order (not
        // incremented inside workers), so they are schedule-independent
        // and identical between a fresh run and a resumed one that
        // replayed the retried boxes.
        for (const FleetBoxResult& b : fleet.boxes) {
            if (b.attempts <= 1) continue;
            fleet.metrics.counters["robust.retry.attempts"] +=
                static_cast<std::uint64_t>(b.attempts - 1);
            if (b.error.empty()) {
                fleet.metrics.counters["robust.retry.recovered"] += 1;
            } else {
                fleet.metrics.counters["robust.retry.exhausted"] += 1;
            }
        }
    }
    fleet.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return fleet;
}

}  // namespace

std::string FleetConfig::validate() const {
    std::string problems;
    const auto add = [&problems](const std::string& p) {
        if (!problems.empty()) problems += "; ";
        problems += p;
    };
    if (pipeline.alpha <= 0.0 || pipeline.alpha > 1.0) {
        add("alpha must be in (0, 1], got " + std::to_string(pipeline.alpha));
    }
    if (pipeline.train_days < 1) {
        add("train_days must be >= 1, got " + std::to_string(pipeline.train_days));
    }
    if (pipeline.epsilon_pct < 0.0 || pipeline.epsilon_pct >= 100.0) {
        add("epsilon_pct must be in [0, 100) (0 disables discretization), got " +
            std::to_string(pipeline.epsilon_pct));
    }
    if (pipeline.max_bad_sample_fraction < 0.0 ||
        pipeline.max_bad_sample_fraction > 1.0) {
        add("max_bad_sample_fraction must be in [0, 1], got " +
            std::to_string(pipeline.max_bad_sample_fraction));
    }
    if (jobs < 0) {
        add("jobs must be >= 0 (0 = hardware concurrency), got " +
            std::to_string(jobs));
    }
    if (shard_size < 0) {
        add("shard_size must be >= 0 (0 = auto), got " +
            std::to_string(shard_size));
    }
    if (max_retries < 0) {
        add("max_retries must be >= 0, got " + std::to_string(max_retries));
    }
    if (box_deadline_seconds < 0.0) {
        add("box_deadline_seconds must be > 0 (or 0 to disable), got " +
            std::to_string(box_deadline_seconds));
    }
    if (resume && checkpoint_path.empty()) {
        add("resume requires a non-empty checkpoint_path");
    }
    return problems;
}

std::string FleetConfig::validate(const trace::Trace& trace) const {
    std::string problems = validate();
    const auto add = [&problems](const std::string& p) {
        if (!problems.empty()) problems += "; ";
        problems += p;
    };
    // The pipeline needs train_days of history plus one evaluation day.
    // Check against the longest box: short boxes still fail individually
    // with kTraceInvalid, but a train window no box can satisfy is a
    // configuration error, not a data problem.
    std::size_t longest = 0;
    for (const trace::BoxTrace& box : trace.boxes) {
        longest = std::max(longest, box.length());
    }
    const std::size_t needed =
        (static_cast<std::size_t>(std::max(pipeline.train_days, 1)) + 1) *
        static_cast<std::size_t>(trace.windows_per_day);
    if (!trace.boxes.empty() && longest < needed) {
        add("train_days = " + std::to_string(pipeline.train_days) + " needs " +
            std::to_string(needed) + " windows per box but the longest box has " +
            std::to_string(longest));
    }
    return problems;
}

FleetResult run_pipeline_on_fleet(const trace::Trace& trace,
                                  const FleetConfig& config) {
    // The trace-aware overload additionally checks that the train window
    // fits; evaluate_resize_on_fleet skips it (it never trains).
    if (const std::string problems = config.validate(trace); !problems.empty()) {
        throw std::invalid_argument("FleetConfig: " + problems);
    }
    return run_fleet(
        trace, config,
        [&trace, &config](int box_index, exec::ThreadPool* pool,
                          std::uint64_t attempt,
                          const exec::CancellationToken* cancel,
                          PipelineWorkspace* workspace, BoxPipelineResult& out) {
            PipelineConfig box_config = config.pipeline;
            // Per-box seed from (fleet seed, box index): independent of
            // worker count and scheduling order, distinct per box. Retry
            // attempts extend the chain with the attempt number — attempt
            // 0 keeps the historical derivation, so clean runs (and the
            // golden suite) are unchanged.
            std::uint64_t seed = exec::derive_seed(
                config.pipeline.seed, static_cast<std::uint64_t>(box_index));
            if (attempt != 0) seed = exec::derive_seed(seed, attempt);
            box_config.seed = static_cast<unsigned>(seed);
            box_config.cancel = cancel;
            // Per-worker scratch: DTW/MLP workspaces draw from the
            // worker's arena, and the DTW matrix memo is reused across
            // boxes (cleared first — it is per-box). The pool is the
            // fleet's only when boxes are scarcer than workers.
            workspace->dtw_cache.clear();
            box_config.workspace = workspace;
            box_config.search.pool = pool;
            box_config.search.dtw_cache = &workspace->dtw_cache;
            // One registry per box: pool workers touching this box's DTW
            // rows write counters here, never into another box's registry.
            std::optional<obs::MetricsRegistry> registry;
            if (config.collect_metrics) {
                registry.emplace();
                box_config.metrics = &*registry;
            }
            const trace::BoxTrace* box =
                &trace.boxes[static_cast<std::size_t>(box_index)];
            const exec::FaultContext fault{
                config.faults.empty() ? nullptr : &config.faults,
                static_cast<std::uint64_t>(box_index), attempt};
            box_config.fault = fault;
            // Data faults mutate the trace, so the box is copied first —
            // only when a corruption/truncation rule is actually armed.
            trace::BoxTrace corrupted;
            if (fault.plan != nullptr && fault.plan->has_data_faults()) {
                corrupted = *box;
                const std::size_t keep = fault.truncated_length(corrupted.length());
                std::uint64_t corrupted_samples = 0;
                for (std::size_t v = 0; v < corrupted.vms.size(); ++v) {
                    trace::VmTrace& vm = corrupted.vms[v];
                    for (ts::Series* s :
                         {&vm.cpu_usage_pct, &vm.ram_usage_pct,
                          &vm.cpu_demand_ghz, &vm.ram_demand_gb}) {
                        if (keep < s->size()) s->values().resize(keep);
                    }
                    // Streams 2v / 2v+1: one independent corruption stream
                    // per demand series, stable under scheduling.
                    corrupted_samples += fault.corrupt_samples(
                        vm.cpu_demand_ghz.values(), 2 * v);
                    corrupted_samples += fault.corrupt_samples(
                        vm.ram_demand_gb.values(), 2 * v + 1);
                }
                if (registry && corrupted_samples > 0) {
                    registry->add("robust.fault.samples_corrupted",
                                  corrupted_samples);
                }
                box = &corrupted;
            }
            out = run_pipeline_on_box(*box, trace.windows_per_day, box_config,
                                      config.policies);
        });
}

FleetResult evaluate_resize_on_fleet(const trace::Trace& trace, int day,
                                     const FleetConfig& config) {
    return run_fleet(trace, config,
                     [&trace, &config, day](int box_index, exec::ThreadPool*,
                                            std::uint64_t /*attempt*/,
                                            const exec::CancellationToken*,
                                            PipelineWorkspace* /*workspace*/,
                                            BoxPipelineResult& out) {
                         std::optional<obs::MetricsRegistry> registry;
                         if (config.collect_metrics) registry.emplace();
                         obs::MetricsRegistry* metrics =
                             registry ? &*registry : nullptr;
                         out.policies = evaluate_resize_policies_on_actuals(
                             trace.boxes[static_cast<std::size_t>(box_index)],
                             trace.windows_per_day, day, config.pipeline.alpha,
                             config.pipeline.epsilon_pct, config.policies,
                             config.pipeline.use_lower_bounds, metrics);
                         if (metrics != nullptr) out.metrics = metrics->snapshot();
                     });
}

}  // namespace atm::core
