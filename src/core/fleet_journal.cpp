#include "core/fleet_journal.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "exec/journal.hpp"
#include "linalg/simd/simd.hpp"
#include "obs/json.hpp"

namespace atm::core {
namespace {

using obs::json::Value;

/// Streaming digest helpers on the journal's FNV-1a chain. Every numeric
/// field is fed as its exact bit pattern (doubles via memcpy, never via
/// text), so the digest is stable across locales and formatting.
void mix_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
    hash = exec::fnv1a64_mix(
        hash, std::string_view(static_cast<const char*>(data), size));
}

void mix_u64(std::uint64_t& hash, std::uint64_t value) {
    mix_bytes(hash, &value, sizeof(value));
}

void mix_double(std::uint64_t& hash, double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix_u64(hash, bits);
}

void mix_string(std::uint64_t& hash, const std::string& text) {
    // Length-prefixed so ("ab","c") and ("a","bc") digest differently.
    mix_u64(hash, text.size());
    mix_bytes(hash, text.data(), text.size());
}

std::string hex16(std::uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

Value int_array(const std::vector<int>& values) {
    Value array = Value::make_array();
    for (const int v : values) {
        array.array.push_back(Value::of(static_cast<std::int64_t>(v)));
    }
    return array;
}

std::vector<int> int_array_from(const Value& value) {
    std::vector<int> values;
    values.reserve(value.array.size());
    for (const Value& v : value.array) {
        values.push_back(static_cast<int>(v.as_int()));
    }
    return values;
}

}  // namespace

std::uint64_t trace_fingerprint(const trace::Trace& trace) {
    std::uint64_t hash = exec::kFnv1a64Offset;
    mix_u64(hash, static_cast<std::uint64_t>(trace.windows_per_day));
    mix_u64(hash, trace.boxes.size());
    for (const trace::BoxTrace& box : trace.boxes) {
        mix_string(hash, box.name);
        mix_u64(hash, box.has_gaps ? 1 : 0);
        mix_double(hash, box.cpu_capacity_ghz);
        mix_double(hash, box.ram_capacity_gb);
        mix_u64(hash, box.vms.size());
        for (const trace::VmTrace& vm : box.vms) {
            mix_string(hash, vm.name);
            mix_double(hash, vm.cpu_capacity_ghz);
            mix_double(hash, vm.ram_capacity_gb);
            for (const ts::Series* series :
                 {&vm.cpu_usage_pct, &vm.ram_usage_pct, &vm.cpu_demand_ghz,
                  &vm.ram_demand_gb}) {
                const std::vector<double>& values = series->values();
                mix_u64(hash, values.size());
                mix_bytes(hash, values.data(),
                          values.size() * sizeof(double));
            }
        }
    }
    return hash;
}

std::uint64_t pipeline_config_digest(const PipelineConfig& p) {
    std::uint64_t hash = exec::kFnv1a64Offset;
    mix_u64(hash, static_cast<std::uint64_t>(p.search.method));
    mix_double(hash, p.search.rho_threshold);
    mix_double(hash, p.search.vif_threshold);
    mix_u64(hash, p.search.apply_stepwise ? 1 : 0);
    mix_u64(hash, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(p.search.dtw_band)));
    mix_u64(hash, static_cast<std::uint64_t>(p.search.linkage));
    mix_u64(hash, static_cast<std::uint64_t>(p.temporal));
    mix_u64(hash, static_cast<std::uint64_t>(p.train_days));
    mix_double(hash, p.alpha);
    mix_double(hash, p.epsilon_pct);
    mix_u64(hash, p.use_lower_bounds ? 1 : 0);
    mix_u64(hash, static_cast<std::uint64_t>(p.scope));
    mix_u64(hash, p.seed);
    mix_double(hash, p.max_bad_sample_fraction);
    return hash;
}

std::uint64_t fleet_config_digest(const FleetConfig& config) {
    std::uint64_t hash = exec::kFnv1a64Offset;
    mix_u64(hash, pipeline_config_digest(config.pipeline));
    // Fleet selection / evaluation knobs.
    mix_u64(hash, config.skip_gappy_boxes ? 1 : 0);
    mix_u64(hash, config.box_names.size());
    for (const std::string& name : config.box_names) mix_string(hash, name);
    mix_u64(hash, static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(config.max_boxes)));
    mix_u64(hash, config.policies.size());
    for (const resize::ResizePolicy policy : config.policies) {
        mix_u64(hash, static_cast<std::uint64_t>(policy));
    }
    mix_u64(hash, config.collect_metrics ? 1 : 0);
    mix_u64(hash, static_cast<std::uint64_t>(config.max_retries));
    // Chaos plan: seed plus every rule.
    mix_u64(hash, config.faults.seed);
    mix_u64(hash, config.faults.rules.size());
    for (const exec::FaultRule& rule : config.faults.rules) {
        mix_string(hash, rule.site);
        mix_u64(hash, static_cast<std::uint64_t>(rule.action));
        mix_double(hash, rule.rate);
    }
    return hash;
}

std::string fleet_journal_header(const trace::Trace& trace,
                                 const FleetConfig& config) {
    Value header = Value::make_object();
    header.set("schema", Value::of(kFleetJournalSchema));
    // u64 digests as hex strings: doubles only hold 53 exact bits.
    header.set("fingerprint", Value::of(hex16(trace_fingerprint(trace))));
    header.set("config", Value::of(hex16(fleet_config_digest(config))));
    header.set("seed",
               Value::of(static_cast<std::uint64_t>(config.pipeline.seed)));
    // The dispatched SIMD path is result-affecting (vectorized MLP
    // forwards reassociate; simd.hpp's tolerance policy), so a journal
    // written under one path must not be replayed under another — a
    // mismatch makes the resume start fresh, like any config change.
    header.set("simd", Value::of(simd::to_string(simd::active_path())));
    return obs::json::serialize(header, 0);
}

std::string encode_box_record(const FleetBoxResult& box) {
    Value record = Value::make_object();
    record.set("box", Value::of(static_cast<std::int64_t>(box.box_index)));
    record.set("name", Value::of(box.box_name));
    record.set("attempts",
               Value::of(static_cast<std::int64_t>(box.attempts)));
    if (!box.error.empty()) {
        record.set("error", Value::of(box.error));
        record.set("code", Value::of(to_string(box.error_code)));
        record.set("stage", Value::of(box.error_stage));
        return obs::json::serialize(record, 0);
    }
    const BoxPipelineResult& r = box.result;
    Value result = Value::make_object();
    Value search = Value::make_object();
    search.set("signatures", int_array(r.search.signatures));
    search.set("initial", int_array(r.search.initial_signatures));
    search.set("clusters",
               Value::of(static_cast<std::int64_t>(r.search.num_clusters)));
    search.set("silhouette", Value::of(r.search.silhouette));
    result.set("search", std::move(search));
    result.set("ape_all", Value::of(r.ape_all));
    result.set("ape_peak", Value::of(r.ape_peak));
    Value pred = Value::make_array();
    for (const std::vector<double>& series : r.predicted_demands) {
        Value row = Value::make_array();
        for (const double v : series) row.array.push_back(Value::of(v));
        pred.array.push_back(std::move(row));
    }
    result.set("pred", std::move(pred));
    Value policies = Value::make_array();
    for (const PolicyTickets& tickets : r.policies) {
        Value entry = Value::make_object();
        entry.set("policy", Value::of(static_cast<std::int64_t>(
                                static_cast<int>(tickets.policy))));
        entry.set("cpu_before",
                  Value::of(static_cast<std::int64_t>(tickets.cpu_before)));
        entry.set("cpu_after",
                  Value::of(static_cast<std::int64_t>(tickets.cpu_after)));
        entry.set("ram_before",
                  Value::of(static_cast<std::int64_t>(tickets.ram_before)));
        entry.set("ram_after",
                  Value::of(static_cast<std::int64_t>(tickets.ram_after)));
        policies.array.push_back(std::move(entry));
    }
    result.set("policies", std::move(policies));
    Value degradations = Value::make_array();
    for (const Degradation& d : r.degradations) {
        Value entry = Value::make_object();
        entry.set("code", Value::of(to_string(d.code)));
        entry.set("stage", Value::of(d.stage));
        entry.set("detail", Value::of(d.detail));
        degradations.array.push_back(std::move(entry));
    }
    result.set("degradations", std::move(degradations));
    result.set("metrics", obs::json::to_json(r.metrics));
    record.set("result", std::move(result));
    return obs::json::serialize(record, 0);
}

FleetBoxResult decode_box_record(const std::string& payload) {
    const Value record = obs::json::parse(payload);
    FleetBoxResult box;
    box.box_index = static_cast<int>(record.at("box").as_int());
    box.box_name = record.at("name").as_string();
    box.attempts = static_cast<int>(record.at("attempts").as_int());
    if (record.has("error")) {
        box.error = record.at("error").as_string();
        box.error_code = error_code_from_string(record.at("code").as_string());
        box.error_stage = record.at("stage").as_string();
        return box;
    }
    const Value& result = record.at("result");
    BoxPipelineResult& r = box.result;
    const Value& search = result.at("search");
    r.search.signatures = int_array_from(search.at("signatures"));
    r.search.initial_signatures = int_array_from(search.at("initial"));
    r.search.num_clusters = static_cast<int>(search.at("clusters").as_int());
    r.search.silhouette = search.at("silhouette").as_double();
    r.ape_all = result.at("ape_all").as_double();
    r.ape_peak = result.at("ape_peak").as_double();
    for (const Value& row : result.at("pred").array) {
        std::vector<double> series;
        series.reserve(row.array.size());
        for (const Value& v : row.array) series.push_back(v.as_double());
        r.predicted_demands.push_back(std::move(series));
    }
    for (const Value& entry : result.at("policies").array) {
        PolicyTickets tickets;
        const std::int64_t policy = entry.at("policy").as_int();
        if (policy < 0 ||
            policy > static_cast<std::int64_t>(resize::ResizePolicy::kStingy)) {
            throw std::runtime_error("fleet journal: policy id out of range");
        }
        tickets.policy = static_cast<resize::ResizePolicy>(policy);
        tickets.cpu_before = static_cast<int>(entry.at("cpu_before").as_int());
        tickets.cpu_after = static_cast<int>(entry.at("cpu_after").as_int());
        tickets.ram_before = static_cast<int>(entry.at("ram_before").as_int());
        tickets.ram_after = static_cast<int>(entry.at("ram_after").as_int());
        r.policies.push_back(tickets);
    }
    for (const Value& entry : result.at("degradations").array) {
        Degradation d;
        d.code = error_code_from_string(entry.at("code").as_string());
        d.stage = entry.at("stage").as_string();
        d.detail = entry.at("detail").as_string();
        r.degradations.push_back(std::move(d));
    }
    r.metrics = obs::json::snapshot_from_json(result.at("metrics"));
    return box;
}

namespace {

Value double_array(const std::vector<double>& values) {
    Value array = Value::make_array();
    for (const double v : values) array.array.push_back(Value::of(v));
    return array;
}

std::vector<double> double_array_from(const Value& value) {
    std::vector<double> values;
    values.reserve(value.array.size());
    for (const Value& v : value.array) values.push_back(v.as_double());
    return values;
}

}  // namespace

std::string encode_epoch_record(const ServeEpochRecord& record) {
    Value out = Value::make_object();
    out.set("box", Value::of(static_cast<std::int64_t>(record.box_index)));
    out.set("epoch", Value::of(static_cast<std::uint64_t>(record.epoch)));
    out.set("ladder", Value::of(static_cast<std::int64_t>(record.ladder)));
    out.set("searched", Value::of(record.searched));
    out.set("retrained",
            Value::of(static_cast<std::int64_t>(record.retrained)));
    out.set("attempts", Value::of(static_cast<std::int64_t>(record.attempts)));
    out.set("cpu", double_array(record.cpu));
    out.set("ram", double_array(record.ram));
    return obs::json::serialize(out, 0);
}

ServeEpochRecord decode_epoch_record(const std::string& payload) {
    const Value in = obs::json::parse(payload);
    ServeEpochRecord record;
    record.box_index = static_cast<int>(in.at("box").as_int());
    record.epoch = static_cast<std::uint64_t>(in.at("epoch").as_int());
    record.ladder = static_cast<int>(in.at("ladder").as_int());
    if (record.ladder < 0 || record.ladder > 15) {
        throw std::runtime_error("serve journal: ladder mask out of range");
    }
    record.searched = in.at("searched").as_bool();
    record.retrained = static_cast<int>(in.at("retrained").as_int());
    record.attempts = static_cast<int>(in.at("attempts").as_int());
    record.cpu = double_array_from(in.at("cpu"));
    record.ram = double_array_from(in.at("ram"));
    return record;
}

}  // namespace atm::core
