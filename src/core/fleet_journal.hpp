#pragma once

#include <cstdint>
#include <string>

#include "core/fleet.hpp"

namespace atm::core {

/// Schema tag of the fleet checkpoint journal's header record. Bump when
/// the record encoding changes incompatibly: a resume against an older
/// journal then starts fresh instead of mis-decoding.
inline constexpr const char* kFleetJournalSchema = "atm.fleet-journal.v1";

/// Schema tag of the serve daemon's epoch journal. Same framing as the
/// fleet journal (exec::JournalWriter), but each record is one applied
/// streaming window rather than one finished box.
inline constexpr const char* kServeJournalSchema = "atm.serve-journal.v1";

/// Digest of everything about the *input data* that affects per-box
/// results: windows_per_day, per-box names/gap flags/VM counts and the
/// exact bit patterns of every sample. Two traces with the same
/// fingerprint produce the same fleet results for a given config.
[[nodiscard]] std::uint64_t trace_fingerprint(const trace::Trace& trace);

/// Digest of every PipelineConfig field that affects per-box results.
/// Shared by the fleet digest below and the serve daemon's journal
/// header (which binds serve knobs separately).
[[nodiscard]] std::uint64_t pipeline_config_digest(const PipelineConfig& config);

/// Digest of every FleetConfig field that affects per-box *results*.
/// Execution-only knobs are deliberately excluded so a journal stays
/// valid across them: `jobs` (results are schedule-independent by
/// contract), `checkpoint_path`/`resume` (the journal itself),
/// `box_deadline_seconds` and the stop token (interrupted boxes are never
/// journaled, so resuming with a longer deadline just retries them).
[[nodiscard]] std::uint64_t fleet_config_digest(const FleetConfig& config);

/// The journal's header payload: one compact JSON line binding the file
/// to (schema, trace fingerprint, config digest, seed). A resume whose
/// header does not match byte-for-byte ignores the old journal and
/// starts fresh.
[[nodiscard]] std::string fleet_journal_header(const trace::Trace& trace,
                                               const FleetConfig& config);

/// Encodes one completed box outcome as a compact single-line JSON
/// payload for exec::JournalWriter. Everything that feeds the fleet
/// aggregates and the resume-equivalence contract is included: the error
/// triple or the full BoxPipelineResult (search, APEs, predicted demands,
/// policy tickets, degradations, metrics snapshot) plus the attempt
/// count. Doubles are serialized at full precision, so a decoded record
/// is bit-identical to the in-memory original.
[[nodiscard]] std::string encode_box_record(const FleetBoxResult& box);

/// Inverse of encode_box_record. Throws std::runtime_error (or the JSON
/// parser's errors) on malformed payloads; the fleet driver treats a
/// record that fails to decode like checksum corruption — the journal is
/// truncated to the records before it.
[[nodiscard]] FleetBoxResult decode_box_record(const std::string& payload);

/// One applied streaming window in the serve journal. The record captures
/// the *control decisions* the daemon took (shed-load rung, whether search
/// or a retrain ran, how many apply attempts it cost) plus the emitted
/// recommendation. Warm restart replays incoming windows below a box's
/// recorded next epoch with these decisions *forced*, so the rebuilt
/// state, counters, and recommendations are bit-identical to the
/// uninterrupted run even when the original decisions were driven by
/// wall-clock SLO deadlines that would not reproduce.
struct ServeEpochRecord {
    int box_index = 0;
    std::uint64_t epoch = 0;
    /// Shed-load ladder, encoded as a bitmask because the rungs are not
    /// strictly nested (a window can compute a fresh forecast and still
    /// shed the resize step): 0 full work, bit 1 = model refresh skipped
    /// (search or retrain), bit 2 = last forecast reused, bit 4 = max-min
    /// fallback resize, bit 8 = ingest only (retries exhausted, or no
    /// model and nothing to shed to).
    int ladder = 0;
    bool searched = false;  ///< signature search (re-)ran this window
    int retrained = 0;      ///< 0 none, 1 warm retrain, 2 cold refit
    int attempts = 1;       ///< apply attempts (retries = attempts - 1)
    std::vector<double> cpu;  ///< per-VM recommended CPU allocation (GHz)
    std::vector<double> ram;  ///< per-VM recommended RAM allocation (GB)
};

/// Encode/decode one ServeEpochRecord as a compact single-line JSON
/// payload (doubles at full precision, same contract as box records).
/// decode throws on malformed payloads; the serve driver treats that like
/// checksum corruption and truncates the journal before the bad record.
[[nodiscard]] std::string encode_epoch_record(const ServeEpochRecord& record);
[[nodiscard]] ServeEpochRecord decode_epoch_record(const std::string& payload);

}  // namespace atm::core
