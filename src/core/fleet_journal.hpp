#pragma once

#include <cstdint>
#include <string>

#include "core/fleet.hpp"

namespace atm::core {

/// Schema tag of the fleet checkpoint journal's header record. Bump when
/// the record encoding changes incompatibly: a resume against an older
/// journal then starts fresh instead of mis-decoding.
inline constexpr const char* kFleetJournalSchema = "atm.fleet-journal.v1";

/// Digest of everything about the *input data* that affects per-box
/// results: windows_per_day, per-box names/gap flags/VM counts and the
/// exact bit patterns of every sample. Two traces with the same
/// fingerprint produce the same fleet results for a given config.
[[nodiscard]] std::uint64_t trace_fingerprint(const trace::Trace& trace);

/// Digest of every FleetConfig field that affects per-box *results*.
/// Execution-only knobs are deliberately excluded so a journal stays
/// valid across them: `jobs` (results are schedule-independent by
/// contract), `checkpoint_path`/`resume` (the journal itself),
/// `box_deadline_seconds` and the stop token (interrupted boxes are never
/// journaled, so resuming with a longer deadline just retries them).
[[nodiscard]] std::uint64_t fleet_config_digest(const FleetConfig& config);

/// The journal's header payload: one compact JSON line binding the file
/// to (schema, trace fingerprint, config digest, seed). A resume whose
/// header does not match byte-for-byte ignores the old journal and
/// starts fresh.
[[nodiscard]] std::string fleet_journal_header(const trace::Trace& trace,
                                               const FleetConfig& config);

/// Encodes one completed box outcome as a compact single-line JSON
/// payload for exec::JournalWriter. Everything that feeds the fleet
/// aggregates and the resume-equivalence contract is included: the error
/// triple or the full BoxPipelineResult (search, APEs, predicted demands,
/// policy tickets, degradations, metrics snapshot) plus the attempt
/// count. Doubles are serialized at full precision, so a decoded record
/// is bit-identical to the in-memory original.
[[nodiscard]] std::string encode_box_record(const FleetBoxResult& box);

/// Inverse of encode_box_record. Throws std::runtime_error (or the JSON
/// parser's errors) on malformed payloads; the fleet driver treats a
/// record that fails to decode like checksum corruption — the journal is
/// truncated to the records before it.
[[nodiscard]] FleetBoxResult decode_box_record(const std::string& payload);

}  // namespace atm::core
