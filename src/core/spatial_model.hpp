#pragma once

#include <vector>

#include "linalg/ols.hpp"

namespace atm::core {

/// The spatial prediction model of Section III-B: every dependent series
/// is an OLS linear combination (Eq. 1) of the signature series.
///
/// Fit on the training window; then any realization of the signature
/// series — actual values (Section III-C evaluation) or temporal-model
/// forecasts (full ATM, Section V) — reconstructs all dependent series.
class SpatialModel {
  public:
    SpatialModel() = default;

    /// Fits one regression per dependent series.
    ///
    /// `series` is the full per-box series set over the training window;
    /// `signature_indices` selects the predictors. Every non-signature
    /// index becomes a dependent series. Throws std::invalid_argument on
    /// ragged input or an empty/out-of-range signature set.
    ///
    /// When OLS cannot produce a finite fit for a dependent series (e.g.
    /// fewer training samples than predictors), that series falls back to
    /// ridge with a tiny penalty — gram + lambda I is SPD for any predictor
    /// set — and `ridge_fallbacks()` counts how many dependents degraded
    /// this way. A series that defeats ridge too raises
    /// PipelineError(kSolverSingular).
    void fit(const std::vector<std::vector<double>>& series,
             const std::vector<int>& signature_indices);

    /// Number of dependent series whose OLS fit was replaced by ridge in
    /// the last fit() call (0 on the clean path).
    [[nodiscard]] std::size_t ridge_fallbacks() const {
        return ridge_fallbacks_;
    }

    /// Reconstructs the full series set from signature realizations.
    ///
    /// `signature_values[s][t]` is the value of the s-th signature (in the
    /// order passed to fit) at time t. Returns a matrix with the same
    /// series count and index layout as the fit input: signature rows are
    /// copied through verbatim, dependent rows come from their regressions.
    [[nodiscard]] std::vector<std::vector<double>> reconstruct(
        const std::vector<std::vector<double>>& signature_values) const;

    [[nodiscard]] const std::vector<int>& signature_indices() const {
        return signature_indices_;
    }
    [[nodiscard]] const std::vector<int>& dependent_indices() const {
        return dependent_indices_;
    }

    /// Fit (in-sample) of dependent series as fractional mean APE values,
    /// one per dependent series, in dependent_indices() order — the
    /// Section III-C "prediction error" of the spatial model alone.
    [[nodiscard]] const std::vector<double>& dependent_fit_ape() const {
        return dependent_fit_ape_;
    }

    [[nodiscard]] bool fitted() const { return !signature_indices_.empty(); }

  private:
    std::vector<int> signature_indices_;
    std::vector<int> dependent_indices_;
    std::vector<la::OlsFit> fits_;  // one per dependent, same order
    std::vector<double> dependent_fit_ape_;
    std::size_t total_series_ = 0;
    std::size_t ridge_fallbacks_ = 0;
};

}  // namespace atm::core
