#pragma once

#include <string>

#include "core/fleet.hpp"
#include "obs/json.hpp"

namespace atm::core {

/// Schema identifier stamped into every metrics report; bump on any
/// backwards-incompatible change to the report layout.
inline constexpr const char* kMetricsReportSchema = "atm.metrics.v1";

/// Builds the stable JSON metrics report for a fleet run:
///
///   {
///     "schema": "atm.metrics.v1",
///     "command": "<CLI subcommand or driver name>",
///     "jobs": <workers used>,
///     "wall_seconds": <fleet wall time>,
///     "boxes_in_trace": N, "boxes_skipped": N, "boxes_failed": N,
///     "fleet": { counters/gauges/timers/histograms },   // merged
///     "boxes": [ {"name": .., "index": .., "metrics": {..}}
///                | {"name": .., "index": .., "error": ".."} ]
///   }
///
/// `fleet` is the merge of every evaluated box's snapshot plus anything
/// recorded in `extra` (e.g. the CLI's trace-load timer). Boxes appear in
/// trace order; failed boxes carry `error` and no `metrics` key.
obs::json::Value build_metrics_report(const FleetResult& fleet,
                                      const std::string& command,
                                      const obs::MetricsSnapshot& extra = {});

/// Serializes `build_metrics_report` and writes it to `path` (2-space
/// indent, trailing newline). Throws std::runtime_error when the file
/// cannot be opened or written.
void write_metrics_report_file(const std::string& path,
                               const FleetResult& fleet,
                               const std::string& command,
                               const obs::MetricsSnapshot& extra = {});

}  // namespace atm::core
