#pragma once

#include <vector>

#include "core/pipeline.hpp"

namespace atm::core {

/// One evaluated day of the rolling (online) pipeline.
struct RollingDayResult {
    int day = 0;  ///< trace day index that was predicted & resized
    double ape_all = 0.0;
    double ape_peak = 0.0;
    int cpu_before = 0;
    int cpu_after = 0;
    int ram_before = 0;
    int ram_after = 0;
    /// Signature-set size chosen from that day's training window.
    int num_signatures = 0;
};

/// Aggregate outcome of a rolling run on one box.
struct RollingResult {
    std::vector<RollingDayResult> days;
    [[nodiscard]] long total_before() const;
    [[nodiscard]] long total_after() const;
    [[nodiscard]] double mean_ape() const;
};

/// The paper's stated future work ("use ATM's prediction abilities to
/// drive online dynamic workload management"): a walk-forward loop that,
/// for every day d in [train_days, num_days), retrains the signature
/// search + spatial + temporal models on the `train_days` window ending
/// at d, predicts day d, resizes with the ATM greedy, and counts tickets
/// on the actual demands of day d. Each day's resizing is independent
/// (capacity decisions do not carry over — the trace's usage was recorded
/// under the original allocations, so compounding them would be
/// counterfactual).
RollingResult run_rolling_pipeline(const trace::BoxTrace& box,
                                   int windows_per_day, int num_days,
                                   const PipelineConfig& config);

}  // namespace atm::core
