#pragma once

#include <vector>

#include "cluster/cbc.hpp"
#include "cluster/hierarchical.hpp"

namespace atm::exec {
class ThreadPool;
class CancellationToken;
}
namespace atm::cluster {
class DtwMatrixCache;
struct DtwWorkspace;
}
namespace atm::obs {
class MetricsRegistry;
}

namespace atm::core {

/// Step-1 clustering technique for the signature search (Section III-A).
enum class ClusteringMethod {
    kDtw,  ///< dynamic-time-warping distances + hierarchical clustering
    kCbc,  ///< the paper's correlation-based clustering
};

/// Which series participate in the model (Fig. 7 ablation): the paper's
/// inter-resource model mixes CPU and RAM series of a box; the intra
/// variants treat each resource separately.
enum class ResourceScope {
    kInter,
    kIntraCpu,
    kIntraRam,
};

/// Options for the two-step signature-set search.
struct SignatureSearchOptions {
    ClusteringMethod method = ClusteringMethod::kDtw;
    /// CBC correlation threshold rho_Th.
    double rho_threshold = 0.7;
    /// Step 2 trigger: a VIF above this flags multicollinearity.
    double vif_threshold = 4.0;
    /// Disable to measure the clustering step alone (Fig. 6 ablation).
    bool apply_stepwise = true;
    /// Sakoe–Chiba band for DTW; < 0 = unconstrained (paper recurrence).
    int dtw_band = -1;
    cluster::Linkage linkage = cluster::Linkage::kAverage;
    /// Optional pool for the O(n²·len²) DTW distance matrix. Results are
    /// identical with or without it; safe to point at the fleet pool (the
    /// work-sharing loop tolerates nesting). Not owned.
    exec::ThreadPool* pool = nullptr;
    /// Optional per-box memo of DTW matrices, so repeated searches over
    /// the same training window (two-step vs step-1-only, band sweeps)
    /// reuse the matrix instead of recomputing it. Not owned; one cache
    /// per series set.
    cluster::DtwMatrixCache* dtw_cache = nullptr;
    /// Optional caller-owned DTW scratch (not owned), forwarded to the
    /// distance matrix for serial (pool-less) computation — the fleet
    /// scheduler's per-worker arena-backed workspace. Pure scratch:
    /// results are bit-identical with or without it.
    cluster::DtwWorkspace* dtw_workspace = nullptr;
    /// Optional stage-metrics sink (not owned). Records search counters
    /// (`search.series`, `search.clusters`, `search.initial_signatures`,
    /// `search.final_signatures`), the clustering silhouette gauge, and
    /// is forwarded to the DTW matrix / cache and the VIF reduction.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional cooperative-cancellation token (not owned), forwarded to
    /// the DTW distance matrix, which checks it once per series pair —
    /// the search's only super-linear loop. Null disables the checks.
    const exec::CancellationToken* cancel = nullptr;
};

/// Result of the signature search over a box's series set.
struct SignatureSearchResult {
    /// Indices (into the input series set) of the final signature series.
    std::vector<int> signatures;
    /// Signatures after step 1 only (before multicollinearity removal).
    std::vector<int> initial_signatures;
    /// Number of clusters found by step 1.
    int num_clusters = 0;
    /// Mean silhouette of the chosen DTW clustering (0 for CBC).
    double silhouette = 0.0;

    /// Signature count divided by total series count ("ratio of signature
    /// to original", Figs. 6a/7a), for the final set.
    [[nodiscard]] double signature_ratio(std::size_t total_series) const {
        return total_series == 0
                   ? 0.0
                   : static_cast<double>(signatures.size()) /
                         static_cast<double>(total_series);
    }
};

/// Runs the two-step signature search on a set of equal-length series
/// (typically a box's M x N demand series over the training window).
///
/// Step 1 clusters the series (DTW+hierarchical with silhouette-optimal k
/// in [2, n/2], or CBC) and takes per-cluster representatives (DTW medoid /
/// CBC head). Step 2 computes VIFs over the representative series and,
/// when any exceeds the threshold, removes the most collinear series one
/// at a time until all VIFs pass — the paper's stepwise-regression
/// reduction. Throws std::invalid_argument for fewer than 1 series or
/// ragged lengths.
SignatureSearchResult find_signatures(
    const std::vector<std::vector<double>>& series,
    const SignatureSearchOptions& options = {});

/// Restricts a flattened VM-major series set (vm0/CPU, vm0/RAM, vm1/CPU,
/// ...) to a resource scope, returning the selected flat indices.
std::vector<int> scope_indices(std::size_t total_series, ResourceScope scope);

}  // namespace atm::core
