#include "core/rolling.hpp"

#include <stdexcept>

namespace atm::core {

long RollingResult::total_before() const {
    long total = 0;
    for (const RollingDayResult& d : days) total += d.cpu_before + d.ram_before;
    return total;
}

long RollingResult::total_after() const {
    long total = 0;
    for (const RollingDayResult& d : days) total += d.cpu_after + d.ram_after;
    return total;
}

double RollingResult::mean_ape() const {
    if (days.empty()) return 0.0;
    double acc = 0.0;
    for (const RollingDayResult& d : days) acc += d.ape_all;
    return acc / static_cast<double>(days.size());
}

RollingResult run_rolling_pipeline(const trace::BoxTrace& box,
                                   int windows_per_day, int num_days,
                                   const PipelineConfig& config) {
    if (num_days * windows_per_day >
        static_cast<int>(box.length())) {
        throw std::invalid_argument("run_rolling_pipeline: trace shorter than num_days");
    }
    if (config.train_days < 1 || config.train_days >= num_days) {
        throw std::invalid_argument("run_rolling_pipeline: bad train_days");
    }

    RollingResult result;
    const auto wpd = static_cast<std::size_t>(windows_per_day);

    for (int day = config.train_days; day < num_days; ++day) {
        // Build a per-day view: a copy of the box whose series are the
        // sliding window [day - train_days, day] (training + target day).
        trace::BoxTrace window = box;
        const std::size_t first =
            static_cast<std::size_t>(day - config.train_days) * wpd;
        const std::size_t count =
            static_cast<std::size_t>(config.train_days + 1) * wpd;
        for (trace::VmTrace& vm : window.vms) {
            vm.cpu_usage_pct = vm.cpu_usage_pct.slice(first, count);
            vm.ram_usage_pct = vm.ram_usage_pct.slice(first, count);
            vm.cpu_demand_ghz = vm.cpu_demand_ghz.slice(first, count);
            vm.ram_demand_gb = vm.ram_demand_gb.slice(first, count);
        }

        const BoxPipelineResult day_result =
            run_pipeline_on_box(window, windows_per_day, config, default_policies());

        RollingDayResult r;
        r.day = day;
        r.ape_all = day_result.ape_all;
        r.ape_peak = day_result.ape_peak;
        r.num_signatures = static_cast<int>(day_result.search.signatures.size());
        if (!day_result.policies.empty()) {
            r.cpu_before = day_result.policies[0].cpu_before;
            r.cpu_after = day_result.policies[0].cpu_after;
            r.ram_before = day_result.policies[0].ram_before;
            r.ram_after = day_result.policies[0].ram_after;
        }
        result.days.push_back(r);
    }
    return result;
}

}  // namespace atm::core
