#include "core/errors.hpp"

namespace atm::core {

const char* to_string(PipelineErrorCode code) {
    switch (code) {
        case PipelineErrorCode::kNone: return "none";
        case PipelineErrorCode::kTraceInvalid: return "trace-invalid";
        case PipelineErrorCode::kRepairFailed: return "repair-failed";
        case PipelineErrorCode::kSearchDegenerate: return "search-degenerate";
        case PipelineErrorCode::kModelFitFailed: return "model-fit-failed";
        case PipelineErrorCode::kSolverSingular: return "solver-singular";
        case PipelineErrorCode::kResizeInfeasible: return "resize-infeasible";
        case PipelineErrorCode::kDeadlineExceeded: return "deadline-exceeded";
        case PipelineErrorCode::kCancelled: return "cancelled";
        case PipelineErrorCode::kFaultInjected: return "fault-injected";
        case PipelineErrorCode::kInternal: return "internal";
    }
    return "unknown";
}

PipelineErrorCode error_code_from_string(const std::string& name) {
    for (const PipelineErrorCode code :
         {PipelineErrorCode::kNone, PipelineErrorCode::kTraceInvalid,
          PipelineErrorCode::kRepairFailed, PipelineErrorCode::kSearchDegenerate,
          PipelineErrorCode::kModelFitFailed, PipelineErrorCode::kSolverSingular,
          PipelineErrorCode::kResizeInfeasible,
          PipelineErrorCode::kDeadlineExceeded, PipelineErrorCode::kCancelled,
          PipelineErrorCode::kFaultInjected, PipelineErrorCode::kInternal}) {
        if (name == to_string(code)) return code;
    }
    throw std::invalid_argument("unknown PipelineErrorCode name '" + name + "'");
}

std::string error_counter_name(PipelineErrorCode code) {
    return std::string("robust.error.") + to_string(code);
}

}  // namespace atm::core
