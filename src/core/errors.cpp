#include "core/errors.hpp"

namespace atm::core {

const char* to_string(PipelineErrorCode code) {
    switch (code) {
        case PipelineErrorCode::kNone: return "none";
        case PipelineErrorCode::kTraceInvalid: return "trace-invalid";
        case PipelineErrorCode::kRepairFailed: return "repair-failed";
        case PipelineErrorCode::kSearchDegenerate: return "search-degenerate";
        case PipelineErrorCode::kModelFitFailed: return "model-fit-failed";
        case PipelineErrorCode::kSolverSingular: return "solver-singular";
        case PipelineErrorCode::kResizeInfeasible: return "resize-infeasible";
        case PipelineErrorCode::kFaultInjected: return "fault-injected";
        case PipelineErrorCode::kInternal: return "internal";
    }
    return "unknown";
}

std::string error_counter_name(PipelineErrorCode code) {
    return std::string("robust.error.") + to_string(code);
}

}  // namespace atm::core
