#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "exec/cancel.hpp"

namespace atm::core {

/// Fleet-level configuration: the per-box PipelineConfig plus execution
/// and box-selection knobs. The CLI and examples construct pipeline runs
/// only through this type, so every entry point shares one validation
/// path (`validate()`) instead of each caller re-checking ranges.
struct FleetConfig {
    PipelineConfig pipeline;

    /// Worker threads for the fleet scheduler: 0 = hardware concurrency,
    /// 1 = fully serial (no pool). Results are bit-identical for every
    /// value — per-box seeds are derived from `pipeline.seed` and the box
    /// index (splitmix64), never from scheduling order.
    int jobs = 0;

    /// Boxes per scheduler shard: 0 picks ~8 shards per worker (clamped
    /// to [1, 64]). Purely an execution knob — workers claim whole shards
    /// from an atomic cursor, so larger shards mean fewer claims (less
    /// contention) and smaller shards mean better load balance, but the
    /// per-box results never depend on it. Excluded from the checkpoint
    /// journal's config digest for the same reason as `jobs`.
    int shard_size = 0;

    /// Drop boxes whose monitoring data has gaps (the paper's Section V
    /// evaluation keeps only the gap-free boxes).
    bool skip_gappy_boxes = true;

    /// Evaluate only boxes with these names; empty = every box.
    std::vector<std::string> box_names;

    /// Evaluate at most this many selected boxes (in trace order);
    /// negative = unlimited.
    int max_boxes = -1;

    /// Policies evaluated per box. Empty = prediction only (no resizing),
    /// as in the Fig. 9 accuracy study.
    std::vector<resize::ResizePolicy> policies = default_policies();

    /// Collect stage metrics: each box gets its own MetricsRegistry (so
    /// attribution is exact under the pool), its snapshot lands in
    /// BoxPipelineResult::metrics, and the per-box snapshots are merged —
    /// in trace order, so counter sums are identical for every `jobs`
    /// value — into FleetResult::metrics. Off by default: the pipeline
    /// then runs with a null registry at near-zero overhead.
    bool collect_metrics = false;

    /// Chaos-testing plan (see exec/fault.hpp): corrupts/truncates box
    /// traces and arms the ATM_FAULT_SITE throw points, all derived from
    /// (faults.seed, box index, site) so a chaos run is bit-identical for
    /// every `jobs` value. Empty (the default) disables injection
    /// entirely. Parse a CLI `--fault-spec` with exec::FaultPlan::parse.
    exec::FaultPlan faults;

    /// Crash-safe checkpoint journal (DESIGN.md §7.12): when non-empty,
    /// every finished box is appended (framed + fsync'd) to this file as
    /// it completes, under a header binding (trace fingerprint, config
    /// digest, seed). Empty (the default) disables journaling.
    std::string checkpoint_path;

    /// Resume from `checkpoint_path`: boxes already journaled by a
    /// matching previous run are replayed bit-identically instead of
    /// recomputed, so a resumed run's FleetResult equals an uninterrupted
    /// one (modulo wall_seconds/jobs/boxes_replayed). A journal whose
    /// header does not match the current trace + config is ignored and
    /// the run starts fresh. Requires a non-empty `checkpoint_path`.
    bool resume = false;

    /// Extra attempts for boxes that fail with a *transient* code
    /// (kFaultInjected, kInternal). Attempt k > 0 re-derives the box seed
    /// and all fault draws from (seed, box, k) via splitmix64, so retry
    /// outcomes are schedule-independent and bit-identical across `jobs`.
    /// 0 (the default) disables retries.
    int max_retries = 0;

    /// Per-box wall-clock deadline in seconds; a box exceeding it is
    /// cooperatively cancelled at its next cancellation point and
    /// recorded as kDeadlineExceeded (each retry attempt gets a fresh
    /// budget). Deadline-exceeded boxes are not journaled, so a resume
    /// retries them. 0 (the default) disables the deadline. Note this
    /// knob is inherently wall-clock: results of *timed-out* boxes can
    /// vary across machines; boxes that finish are unaffected.
    double box_deadline_seconds = 0.0;

    /// Optional operator stop token (not owned). Once cancelled, boxes
    /// not yet started are recorded as kCancelled (and not journaled)
    /// while in-flight boxes run to completion and are journaled — the
    /// graceful-drain half of the CLI's SIGINT handling.
    const exec::CancellationToken* stop = nullptr;

    /// Empty string when the configuration is usable; otherwise a
    /// human-readable description of every out-of-range value.
    [[nodiscard]] std::string validate() const;

    /// Same, plus trace-dependent checks: `train_days` + the evaluation
    /// day must fit in the longest box. Used by run_pipeline_on_fleet
    /// (evaluate_resize_on_fleet never trains, so it skips this).
    [[nodiscard]] std::string validate(const trace::Trace& trace) const;
};

/// Outcome of one box inside a fleet run.
struct FleetBoxResult {
    /// Index into Trace::boxes (results are returned in trace order,
    /// independent of worker scheduling).
    int box_index = -1;
    std::string box_name;
    BoxPipelineResult result;
    /// Non-empty if the box's pipeline threw; `result` is then empty and
    /// the box is excluded from the aggregates below.
    std::string error;
    /// Structured failure taxonomy alongside the message: kNone while the
    /// box succeeded; PipelineError's own code for classified failures;
    /// kFaultInjected for exec::InjectedFault; kInternal for anything the
    /// taxonomy does not know.
    PipelineErrorCode error_code = PipelineErrorCode::kNone;
    /// Stage (or fault site) the failure came from; empty on success.
    std::string error_stage;
    /// Attempts consumed: 1 on the clean path, 1 + retries when the
    /// transient-failure retry loop engaged, 0 for a box cancelled by an
    /// operator stop before it ever started.
    int attempts = 1;
};

/// Fleet-wide ticket sums for one policy. Deliberately wider than the
/// per-box PolicyTickets: a paper-scale fleet (thousands of boxes x
/// hundreds of windows x tens of VMs) overflows 32-bit sums long before
/// it overflows per-box counts, so the accumulators are 64-bit.
struct FleetPolicyTotals {
    resize::ResizePolicy policy = resize::ResizePolicy::kAtmGreedy;
    std::int64_t cpu_before = 0;
    std::int64_t cpu_after = 0;
    std::int64_t ram_before = 0;
    std::int64_t ram_after = 0;

    /// Signed reduction percentage; 0 when there were no tickets before.
    [[nodiscard]] double cpu_reduction_pct() const {
        return cpu_before == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(cpu_before - cpu_after) /
                         static_cast<double>(cpu_before);
    }
    [[nodiscard]] double ram_reduction_pct() const {
        return ram_before == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(ram_before - ram_after) /
                         static_cast<double>(ram_before);
    }
};

/// How the sharded scheduler executed a fleet run: worker/shard geometry
/// plus the per-worker arena counters summed over all workers. Purely
/// observational (never part of the resume-equivalence contract or the
/// golden metrics) — reported in the metrics report's "scheduler"
/// section and the fleet benchmarks.
struct FleetExecStats {
    /// Workers the scheduler ran with (== FleetResult::jobs).
    int workers = 0;
    /// Resolved boxes-per-shard the run used (after the 0 = auto rule).
    std::size_t shard_size = 0;
    /// Sum over workers of each arena's slab bytes reserved.
    std::uint64_t arena_bytes_reserved = 0;
    /// Sum over workers of each arena's high-water mark (live bytes).
    std::uint64_t arena_high_water = 0;
    /// Sum over workers of arena allocation calls served.
    std::uint64_t arena_allocations = 0;
    /// Sum over workers of slabs created.
    std::uint64_t arena_slabs = 0;
};

/// Fleet-level outcome: per-box results plus cross-box aggregates.
struct FleetResult {
    /// One entry per *evaluated* box (selected, gap-filtered, capped), in
    /// trace order.
    std::vector<FleetBoxResult> boxes;

    std::size_t boxes_in_trace = 0;
    /// Boxes excluded by name selection, the gap filter, or `max_boxes`.
    std::size_t boxes_skipped = 0;
    /// Boxes whose pipeline threw (subset of `boxes`).
    std::size_t boxes_failed = 0;
    /// Failed boxes bucketed by taxonomy code (empty when none failed).
    /// When `collect_metrics` is on, the same counts land in
    /// FleetResult::metrics as `robust.error.<code>` counters, merged in
    /// trace order.
    std::map<PipelineErrorCode, std::size_t> failures_by_code;

    /// Fleet-wide ticket sums per policy, same order as
    /// FleetConfig::policies: cpu/ram before and after summed over every
    /// successfully evaluated box (64-bit — see FleetPolicyTotals).
    std::vector<FleetPolicyTotals> totals;

    /// Mean per-box APE over successfully evaluated boxes ("All" /
    /// "Peak" of Fig. 9; peak mean skips boxes without peak windows).
    double mean_ape_all = 0.0;
    double mean_ape_peak = 0.0;

    /// Merge of every evaluated box's metrics snapshot (trace order);
    /// empty unless FleetConfig::collect_metrics was set. Counters and
    /// histogram counts are deterministic across job counts; timer values
    /// are wall-clock measurements and are not.
    obs::MetricsSnapshot metrics;

    /// Wall-clock duration of the run (scheduling + compute).
    double wall_seconds = 0.0;
    /// Worker count actually used (jobs after hardware-concurrency
    /// resolution).
    int jobs = 0;
    /// SIMD kernel path the run dispatched to ("scalar", "avx2",
    /// "avx512", "neon") — recorded in metrics reports and BENCH JSON so
    /// perf numbers are attributable to an ISA. Bound by the checkpoint
    /// journal header: a resume under a different path starts fresh
    /// (vectorized MLP forwards may drift by ULPs from scalar, so mixed
    /// journals would break resume bit-equivalence).
    std::string simd_path;
    /// Boxes replayed bit-identically from the resume journal instead of
    /// recomputed. Like wall_seconds/jobs, excluded from the
    /// resume-equivalence contract (it describes how the run executed,
    /// not what it computed).
    std::size_t boxes_replayed = 0;
    /// True when FleetConfig::stop drained this run: some boxes were
    /// recorded as kCancelled without being evaluated (or journaled).
    bool interrupted = false;
    /// Scheduler/arena execution statistics (like wall_seconds and jobs,
    /// excluded from the determinism and resume-equivalence contracts).
    FleetExecStats exec_stats;

    [[nodiscard]] std::size_t boxes_evaluated() const {
        return boxes.size() - boxes_failed;
    }
};

/// Runs the full ATM pipeline over every selected box of the trace, one
/// pool task per box. Throws std::invalid_argument when
/// `config.validate()` reports problems. Deterministic: per-box seeds are
/// splitmix64-derived from (config.pipeline.seed, box index), per-box DTW
/// matrices are memoized, and results land in trace order — `jobs = 1`
/// and `jobs = N` produce bit-identical results. With
/// `checkpoint_path`/`resume` set the run is additionally crash-safe:
/// finished boxes are journaled as they complete and a resumed run
/// replays them bit-identically (DESIGN.md §7.12).
FleetResult run_pipeline_on_fleet(const trace::Trace& trace,
                                  const FleetConfig& config);

/// Fleet version of the Fig. 8 study: resizing with *perfect* demand
/// knowledge of day `day` (no prediction; `pipeline.temporal`,
/// `pipeline.search` and the seed are unused). Only the `policies`
/// tickets of each FleetBoxResult are populated.
FleetResult evaluate_resize_on_fleet(const trace::Trace& trace, int day,
                                     const FleetConfig& config);

}  // namespace atm::core
