#pragma once

#include <vector>

#include "cluster/dtw.hpp"
#include "core/errors.hpp"
#include "core/signature_search.hpp"
#include "core/spatial_model.hpp"
#include "exec/arena.hpp"
#include "exec/cancel.hpp"
#include "exec/fault.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/nn.hpp"
#include "obs/metrics.hpp"
#include "resize/policies.hpp"
#include "ticketing/tickets.hpp"
#include "tracegen/trace.hpp"

namespace atm::core {

/// Per-worker reusable scratch for run_pipeline_on_box (DESIGN.md
/// §7.14): one bump arena backing the DTW and MLP workspaces, plus the
/// per-box DTW matrix memo. The sharded fleet scheduler keeps one per
/// worker and reuses it box after box, so in the steady state the box
/// pipeline's inner kernels perform no heap allocation at all. The
/// caller must clear `dtw_cache` between boxes (it memoizes per series
/// set); `dtw`/`mlp` are pure scratch and carry nothing across calls —
/// results are bit-identical with or without a workspace.
struct PipelineWorkspace {
    PipelineWorkspace() : dtw(&arena), mlp(&arena) {}

    exec::Arena arena;
    cluster::DtwWorkspace dtw;
    forecast::MlpWorkspace mlp;
    /// Per-box DTW matrix memo (heap-backed: its matrices are per-box
    /// temporaries, which must not draw from the monotonic arena).
    cluster::DtwMatrixCache dtw_cache;
};

/// Configuration of the full ATM pipeline (Section V-A): train the
/// spatial + temporal models on `train_days` of history, predict the next
/// day, and resize every box's VMs for that day.
struct PipelineConfig {
    SignatureSearchOptions search;
    forecast::TemporalModel temporal = forecast::TemporalModel::kNeuralNetwork;
    /// Days of history used for signature search / model training.
    int train_days = 5;
    /// Ticket threshold as a fraction (usage tickets at 60%).
    double alpha = 0.6;
    /// Discretization factor epsilon, in *percent of each VM's current
    /// capacity*: predicted demands are rounded up to multiples of
    /// (epsilon_pct/100) x capacity before resizing. The paper's eps = 5
    /// on percent-scaled demands corresponds to epsilon_pct = 5. <= 0
    /// disables discretization.
    double epsilon_pct = 5.0;
    /// Enforce per-VM capacity lower bounds = peak demand over the last
    /// training day (Section IV-A1: no spillover of unfinished demand).
    bool use_lower_bounds = true;
    /// Restrict the model to a resource subset (Fig. 7 ablation).
    ResourceScope scope = ResourceScope::kInter;
    unsigned seed = 42;
    /// Sanitization threshold: a box whose scoped demand matrix contains
    /// more than this fraction of bad samples (non-finite or negative) is
    /// rejected with PipelineErrorCode::kTraceInvalid; at or below it, bad
    /// samples are repaired in place (ts::repair_gaps) and the box
    /// continues with a `degradations` entry. Must be in [0, 1].
    double max_bad_sample_fraction = 0.5;
    /// Chaos-testing context (see exec/fault.hpp). Default (null plan) is
    /// inert: every ATM_FAULT_SITE reduces to one pointer test.
    exec::FaultContext fault;
    /// Optional cooperative-cancellation token (not owned). Checked at
    /// every stage boundary and inside the long loops (DTW pairs, MLP
    /// epochs, MCKP iterations); a tripped token aborts the box with
    /// exec::OperationCancelled, which the degradation ladder re-throws
    /// instead of treating as a recoverable stage failure. Null (the
    /// default) makes every check a single pointer test.
    const exec::CancellationToken* cancel = nullptr;
    /// Optional stage-metrics sink (not owned). When set, the pipeline
    /// records per-stage timers (`stage.search`, `stage.spatial_fit`,
    /// `stage.forecast`, `stage.reconstruct`, `stage.accuracy`,
    /// `stage.resize`), per-model fit/predict timers, the `predict.ape`
    /// histogram and all sub-stage counters, and the final snapshot is
    /// copied into BoxPipelineResult::metrics. Also forwarded into the
    /// signature search (overriding `search.metrics` for the run). Null
    /// disables all instrumentation at near-zero cost.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional per-worker scratch (not owned): forwards the DTW
    /// workspace into the signature search and the MLP workspace into
    /// the temporal models. Null keeps per-call local scratch. Results
    /// are bit-identical either way.
    PipelineWorkspace* workspace = nullptr;
};

/// Ticket outcome of one policy on one box for one resource.
struct PolicyTickets {
    resize::ResizePolicy policy = resize::ResizePolicy::kAtmGreedy;
    int cpu_before = 0;
    int cpu_after = 0;
    int ram_before = 0;
    int ram_after = 0;

    /// Signed reduction percentage; 0 when there were no tickets before.
    [[nodiscard]] double cpu_reduction_pct() const {
        return cpu_before == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(cpu_before - cpu_after) / cpu_before;
    }
    [[nodiscard]] double ram_reduction_pct() const {
        return ram_before == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(ram_before - ram_after) / ram_before;
    }
};

/// Full per-box pipeline outcome.
struct BoxPipelineResult {
    SignatureSearchResult search;
    /// Mean fractional APE of the predicted demand of every series on the
    /// evaluation day (Fig. 9 "All").
    double ape_all = 0.0;
    /// Mean fractional APE restricted to windows whose *actual* usage
    /// exceeds the ticket threshold (Fig. 9 "Peak"); 0 if no such window.
    double ape_peak = 0.0;
    /// Predicted demand matrix for the evaluation day (flattened VM-major
    /// layout, same as BoxTrace::demand_matrix).
    std::vector<std::vector<double>> predicted_demands;
    /// One entry per evaluated policy.
    std::vector<PolicyTickets> policies;
    /// Graceful-degradation ladder rungs that fired for this box, in stage
    /// order (empty on the clean path). A box with degradations still
    /// counts in fleet aggregates; each entry is also counted under the
    /// `robust.fallback.<stage>` metric.
    std::vector<Degradation> degradations;
    /// Snapshot of PipelineConfig::metrics taken when the pipeline ends;
    /// empty when no registry was attached.
    obs::MetricsSnapshot metrics;
};

/// The policy set evaluated when a caller does not name one: the paper's
/// ATM greedy alone. Shared by every pipeline entry point so the default
/// is declared exactly once.
const std::vector<resize::ResizePolicy>& default_policies();

/// Runs the full ATM pipeline on one box: signature search + spatial model
/// on the training window, temporal forecasts for signatures, spatial
/// reconstruction for dependents, then VM resizing for the evaluation day
/// under each of `policies`. Prediction-driven policies decide capacities
/// from the *predicted* demands; tickets before/after are both counted on
/// the *actual* evaluation-day demands.
///
/// Failure behavior (DESIGN.md §7.11): malformed input is sanitized or the
/// box is rejected with PipelineError(kTraceInvalid); recoverable stage
/// failures (degenerate clustering, singular OLS, diverging temporal
/// model, infeasible MCKP) engage per-stage fallbacks recorded in
/// BoxPipelineResult::degradations; anything unrecoverable throws
/// PipelineError carrying the taxonomy code and stage.
///
/// Fleet-scale callers should prefer `run_pipeline_on_fleet` (core/fleet.hpp),
/// which schedules this per box on a thread pool with per-box seeds.
BoxPipelineResult run_pipeline_on_box(
    const trace::BoxTrace& box, int windows_per_day, const PipelineConfig& config,
    const std::vector<resize::ResizePolicy>& policies = default_policies());

/// Fig. 8 study: resizing with *perfect* demand knowledge — policies see
/// the actual demands of evaluation day `day` (no prediction). Returns
/// one PolicyTickets per policy.
std::vector<PolicyTickets> evaluate_resize_policies_on_actuals(
    const trace::BoxTrace& box, int windows_per_day, int day, double alpha,
    double epsilon_pct,
    const std::vector<resize::ResizePolicy>& policies = default_policies(),
    bool use_lower_bounds = true, obs::MetricsRegistry* metrics = nullptr);

}  // namespace atm::core
