#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "timeseries/repair.hpp"
#include "timeseries/stats.hpp"

namespace atm::core {
namespace {

/// Capacity of the VM+resource owning flat series index `flat`.
double series_capacity(const trace::BoxTrace& box, std::size_t flat) {
    const ts::SeriesId id = ts::SeriesId::from_flat(static_cast<int>(flat));
    return box.vms[static_cast<std::size_t>(id.vm_index)].capacity(id.resource);
}

/// Records one fired rung of the degradation ladder: an entry in the box
/// result plus a `robust.fallback.<stage>` counter. Nothing here runs on
/// the clean path, so the golden run's counter set is untouched.
void note_degradation(BoxPipelineResult& result, obs::MetricsRegistry* metrics,
                      PipelineErrorCode code, std::string stage,
                      std::string detail) {
    if (metrics != nullptr) metrics->add("robust.fallback." + stage, 1);
    result.degradations.push_back(
        Degradation{code, std::move(stage), std::move(detail)});
}

/// Cancellation must escape the degradation ladder: every rung's catch
/// block calls this first, so a box cancelled mid-stage (deadline or
/// operator stop) aborts instead of "recovering" onto a fallback and
/// burning the rest of its budget. Only valid inside a catch block.
void rethrow_if_cancelled(const std::exception& e) {
    if (dynamic_cast<const exec::OperationCancelled*>(&e) != nullptr) throw;
}

/// Classifies an in-flight exception for degradation bookkeeping:
/// injected faults and PipelineErrors keep their own code; anything else
/// gets the rung's default code.
PipelineErrorCode classify_current(const std::exception& e,
                                   PipelineErrorCode fallback_code) {
    if (dynamic_cast<const exec::InjectedFault*>(&e) != nullptr) {
        return PipelineErrorCode::kFaultInjected;
    }
    if (const auto* pe = dynamic_cast<const PipelineError*>(&e)) {
        return pe->code();
    }
    return fallback_code;
}

/// Resize policies evaluated for one resource kind, given the demand
/// series the policy *sees* (predicted or actual) and the actual demands
/// used for ticket accounting.
void run_policies_for_kind(
    const trace::BoxTrace& box, ts::ResourceKind kind,
    const std::vector<std::vector<double>>& policy_demands,
    const std::vector<std::vector<double>>& actual_demands,
    const std::vector<double>& lower_bounds, double alpha, double epsilon_pct,
    const std::vector<resize::ResizePolicy>& policies,
    std::vector<PolicyTickets>& results, obs::MetricsRegistry* metrics,
    const exec::FaultContext& fault,
    const exec::CancellationToken* cancel,
    std::vector<Degradation>* degradations) {
    const std::size_t m = box.vms.size();

    resize::ResizeInput input;
    input.demands = policy_demands;
    input.total_capacity = box.capacity(kind);
    input.alpha = alpha;
    input.lower_bounds = lower_bounds;
    input.metrics = metrics;
    input.cancel = cancel;
    input.current_capacities.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        input.current_capacities[i] = box.vms[i].capacity(kind);
    }
    if (epsilon_pct > 0.0) {
        input.epsilons.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            input.epsilons[i] = epsilon_pct / 100.0 * box.vms[i].capacity(kind);
        }
    }

    // Tickets before resizing: actual demands against current allocations.
    int before = 0;
    for (std::size_t i = 0; i < m; ++i) {
        before += ticketing::count_demand_tickets(actual_demands[i],
                                                  box.vms[i].capacity(kind), alpha);
    }

    for (std::size_t p = 0; p < policies.size(); ++p) {
        obs::ScopedTimer policy_timer(
            metrics, "resize.policy." + resize::to_string(policies[p]));
        // The ATM policies optimize against a capacity budget and can come
        // back infeasible (lower bounds alone exceed C) or be killed by an
        // injected fault; both degrade to the always-feasible max-min
        // water-filling. The baselines have no budget to violate, so their
        // (informational) feasible flag is passed through untouched.
        const bool is_atm =
            policies[p] == resize::ResizePolicy::kAtmGreedy ||
            policies[p] == resize::ResizePolicy::kAtmGreedyNoDiscretization;
        resize::ResizeResult r;
        PipelineErrorCode degrade_code = PipelineErrorCode::kNone;
        std::string degrade_detail;
        try {
            if (is_atm) ATM_FAULT_SITE(fault, "resize.mckp");
            r = resize::apply_policy(policies[p], input);
            if (is_atm && !r.feasible) {
                degrade_code = PipelineErrorCode::kResizeInfeasible;
                degrade_detail = resize::to_string(policies[p]) +
                                 " infeasible under capacity budget";
            }
        } catch (const std::exception& e) {
            rethrow_if_cancelled(e);
            degrade_code =
                classify_current(e, PipelineErrorCode::kResizeInfeasible);
            degrade_detail =
                resize::to_string(policies[p]) + " threw: " + e.what();
        }
        if (degrade_code != PipelineErrorCode::kNone) {
            r = resize::max_min_fairness_resize(input);
            if (metrics != nullptr) metrics->add("robust.fallback.resize", 1);
            if (degradations != nullptr) {
                degradations->push_back(Degradation{
                    degrade_code, "resize",
                    degrade_detail + "; fell back to max-min fairness"});
            }
        }
        policy_timer.stop();
        const int after =
            resize::tickets_for_allocation(actual_demands, r.capacities, alpha);
        if (kind == ts::ResourceKind::kCpu) {
            results[p].cpu_before = before;
            results[p].cpu_after = after;
        } else {
            results[p].ram_before = before;
            results[p].ram_after = after;
        }
    }
}

}  // namespace

const std::vector<resize::ResizePolicy>& default_policies() {
    static const std::vector<resize::ResizePolicy> kDefault{
        resize::ResizePolicy::kAtmGreedy};
    return kDefault;
}

BoxPipelineResult run_pipeline_on_box(
    const trace::BoxTrace& box, int windows_per_day, const PipelineConfig& config,
    const std::vector<resize::ResizePolicy>& policies) {
    exec::checkpoint(config.cancel, "pipeline.start");
    ATM_FAULT_SITE(config.fault, "pipeline.start");
    if (box.vms.empty()) {
        throw PipelineError(PipelineErrorCode::kTraceInvalid, "input",
                            "run_pipeline_on_box: empty box");
    }
    const auto wpd = static_cast<std::size_t>(windows_per_day);
    const std::size_t train_len = static_cast<std::size_t>(config.train_days) * wpd;
    if (box.length() < train_len + wpd) {
        throw PipelineError(PipelineErrorCode::kTraceInvalid, "input",
                            "run_pipeline_on_box: trace too short for config");
    }

    std::vector<std::vector<double>> demands = box.demand_matrix();
    const std::vector<int> scope = scope_indices(demands.size(), config.scope);

    BoxPipelineResult result;
    obs::MetricsRegistry* metrics = config.metrics;

    // --- input sanitization (ladder rung 1) ----------------------------------
    // Real monitoring exports carry NaN/Inf/negative samples. Count them
    // over the scoped demand matrix; past the configured fraction the box
    // is not trustworthy and is rejected, otherwise bad samples are zeroed
    // and gap-repaired so every later stage sees finite, non-negative data.
    {
        exec::checkpoint(config.cancel, "pipeline.sanitize");
        ATM_FAULT_SITE(config.fault, "pipeline.sanitize");
        std::size_t total_samples = 0;
        std::size_t bad_samples = 0;
        for (int idx : scope) {
            const auto& row = demands[static_cast<std::size_t>(idx)];
            total_samples += row.size();
            for (const double x : row) {
                if (!std::isfinite(x) || x < 0.0) ++bad_samples;
            }
        }
        if (bad_samples > 0) {
            obs::ScopedTimer timer(metrics, "stage.sanitize");
            if (static_cast<double>(bad_samples) >
                config.max_bad_sample_fraction *
                    static_cast<double>(total_samples)) {
                throw PipelineError(
                    PipelineErrorCode::kTraceInvalid, "sanitize",
                    std::to_string(bad_samples) + " of " +
                        std::to_string(total_samples) +
                        " scoped demand samples are non-finite or negative "
                        "(max_bad_sample_fraction exceeded)");
            }
            std::size_t repaired_series = 0;
            for (int idx : scope) {
                auto& row = demands[static_cast<std::size_t>(idx)];
                // Explicit bad-sample runs (length >= 1): find_gaps's
                // default min_run of 2 deliberately ignores isolated
                // zero-ish samples, but a corrupted sample must be repaired
                // even when isolated.
                std::vector<ts::Gap> gaps;
                std::size_t row_bad = 0;
                for (std::size_t t = 0; t < row.size(); ++t) {
                    if (std::isfinite(row[t]) && row[t] >= 0.0) continue;
                    row[t] = 0.0;
                    ++row_bad;
                    if (!gaps.empty() &&
                        gaps.back().first + gaps.back().length == t) {
                        ++gaps.back().length;
                    } else {
                        gaps.push_back(ts::Gap{t, 1});
                    }
                }
                if (gaps.empty()) continue;
                row = ts::repair_gaps(row, gaps, ts::RepairMethod::kSeasonal,
                                      windows_per_day);
                if (row_bad == row.size()) {
                    note_degradation(result, metrics,
                                     PipelineErrorCode::kRepairFailed,
                                     "sanitize",
                                     "series " + std::to_string(idx) +
                                         " had no valid sample; pinned to "
                                         "flat zeros");
                } else {
                    ++repaired_series;
                }
            }
            if (metrics != nullptr) {
                metrics->add("robust.sanitize.bad_samples", bad_samples);
            }
            if (repaired_series > 0) {
                note_degradation(result, metrics,
                                 PipelineErrorCode::kTraceInvalid, "sanitize",
                                 "repaired " + std::to_string(bad_samples) +
                                     " bad samples across " +
                                     std::to_string(repaired_series) +
                                     " series");
            }
        }
    }

    std::vector<std::vector<double>> scoped_train;
    scoped_train.reserve(scope.size());
    for (int idx : scope) {
        const auto& row = demands[static_cast<std::size_t>(idx)];
        scoped_train.emplace_back(row.begin(),
                                  row.begin() + static_cast<std::ptrdiff_t>(train_len));
    }

    // All-signature fallback shared by the search and spatial rungs: with
    // every scoped series a signature there are no dependents, so neither
    // clustering nor regression can fail.
    const auto all_signatures = [&scoped_train] {
        std::vector<int> all(scoped_train.size());
        std::iota(all.begin(), all.end(), 0);
        return all;
    };

    // --- signature search + spatial model on the training window -----------
    {
        obs::ScopedTimer timer(metrics, "stage.search");
        exec::checkpoint(config.cancel, "pipeline.search");
        ATM_FAULT_SITE(config.fault, "pipeline.search");
        SignatureSearchOptions search = config.search;
        search.metrics = metrics;
        search.cancel = config.cancel;
        if (config.workspace != nullptr) {
            search.dtw_workspace = &config.workspace->dtw;
        }
        try {
            ATM_FAULT_SITE(config.fault, "search.step1");
            result.search = find_signatures(scoped_train, search);
            if (result.search.signatures.empty()) {
                throw PipelineError(PipelineErrorCode::kSearchDegenerate,
                                    "search", "empty signature set");
            }
            if (!std::isfinite(result.search.silhouette)) {
                throw PipelineError(PipelineErrorCode::kSearchDegenerate,
                                    "search", "silhouette undefined");
            }
        } catch (const std::exception& e) {
            rethrow_if_cancelled(e);
            const PipelineErrorCode code =
                classify_current(e, PipelineErrorCode::kSearchDegenerate);
            result.search = SignatureSearchResult{};
            result.search.signatures = all_signatures();
            result.search.initial_signatures = result.search.signatures;
            result.search.num_clusters =
                static_cast<int>(result.search.signatures.size());
            note_degradation(result, metrics, code, "search",
                             std::string(e.what()) +
                                 "; fell back to the all-signature set");
        }
    }
    SpatialModel spatial;
    {
        obs::ScopedTimer timer(metrics, "stage.spatial_fit");
        exec::checkpoint(config.cancel, "pipeline.spatial");
        ATM_FAULT_SITE(config.fault, "pipeline.spatial");
        try {
            ATM_FAULT_SITE(config.fault, "spatial.ols");
            spatial.fit(scoped_train, result.search.signatures);
            if (spatial.ridge_fallbacks() > 0) {
                note_degradation(result, metrics,
                                 PipelineErrorCode::kSolverSingular, "spatial",
                                 std::to_string(spatial.ridge_fallbacks()) +
                                     " dependent series refit with ridge");
            }
        } catch (const std::exception& e) {
            rethrow_if_cancelled(e);
            // Even ridge failed (or a fault fired): collapse to the
            // all-signature set, which has no regressions left to solve.
            const PipelineErrorCode code =
                classify_current(e, PipelineErrorCode::kSolverSingular);
            result.search.signatures = all_signatures();
            spatial.fit(scoped_train, result.search.signatures);
            note_degradation(result, metrics, code, "spatial",
                             std::string(e.what()) +
                                 "; fell back to the all-signature set");
        }
    }

    // --- temporal forecasts for the signature series -------------------------
    std::vector<std::vector<double>> signature_forecasts;
    signature_forecasts.reserve(spatial.signature_indices().size());
    {
        obs::ScopedTimer timer(metrics, "stage.forecast");
        exec::checkpoint(config.cancel, "pipeline.forecast");
        ATM_FAULT_SITE(config.fault, "pipeline.forecast");
        const auto fit_and_forecast = [&](forecast::TemporalModel model,
                                          int s) -> std::vector<double> {
            const std::string model_name = forecast::to_string(model);
            auto forecaster = forecast::make_forecaster(
                model, windows_per_day, config.seed + static_cast<unsigned>(s),
                metrics, config.cancel,
                config.workspace != nullptr ? &config.workspace->mlp : nullptr);
            {
                obs::ScopedTimer fit_timer(metrics, "forecast.fit." + model_name);
                forecaster->fit(scoped_train[static_cast<std::size_t>(s)]);
            }
            obs::ScopedTimer predict_timer(metrics,
                                           "forecast.predict." + model_name);
            std::vector<double> values = forecaster->forecast(windows_per_day);
            for (const double v : values) {
                if (!std::isfinite(v)) {
                    throw PipelineError(PipelineErrorCode::kModelFitFailed,
                                        "forecast",
                                        "non-finite forecast from " + model_name);
                }
            }
            return values;
        };
        // Per-signature model ladder: the configured model, then AR, then
        // seasonal-naive (which cannot fail on finite input). Only the
        // primary attempt carries a fault site — the fallbacks are the
        // recovery path under test.
        const forecast::TemporalModel ladder[] = {
            config.temporal, forecast::TemporalModel::kAutoregressive,
            forecast::TemporalModel::kSeasonalNaive};
        for (int s : spatial.signature_indices()) {
            std::vector<double> values;
            bool done = false;
            PipelineErrorCode first_code = PipelineErrorCode::kNone;
            std::string first_error;
            for (std::size_t a = 0; a < std::size(ladder) && !done; ++a) {
                bool already_tried = false;
                for (std::size_t b = 0; b < a; ++b) {
                    if (ladder[b] == ladder[a]) already_tried = true;
                }
                if (already_tried) continue;
                try {
                    if (a == 0) ATM_FAULT_SITE(config.fault, "forecast.fit");
                    values = fit_and_forecast(ladder[a], s);
                    done = true;
                    if (a > 0) {
                        note_degradation(
                            result, metrics, first_code, "forecast",
                            "signature " + std::to_string(s) + ": " +
                                first_error + "; fell back to " +
                                forecast::to_string(ladder[a]));
                    }
                } catch (const std::exception& e) {
                    rethrow_if_cancelled(e);
                    if (first_code == PipelineErrorCode::kNone) {
                        first_code = classify_current(
                            e, PipelineErrorCode::kModelFitFailed);
                        first_error = e.what();
                    }
                }
            }
            if (!done) {
                throw PipelineError(PipelineErrorCode::kModelFitFailed,
                                    "forecast",
                                    "every temporal model failed for signature " +
                                        std::to_string(s) + ": " + first_error);
            }
            signature_forecasts.push_back(std::move(values));
        }
    }

    // --- spatial reconstruction of every scoped series -----------------------
    exec::checkpoint(config.cancel, "pipeline.reconstruct");
    ATM_FAULT_SITE(config.fault, "pipeline.reconstruct");
    obs::ScopedTimer reconstruct_timer(metrics, "stage.reconstruct");
    const std::vector<std::vector<double>> scoped_pred =
        spatial.reconstruct(signature_forecasts);

    // Predicted demands in the full flattened layout (unscoped rows empty).
    result.predicted_demands.assign(demands.size(), {});
    for (std::size_t k = 0; k < scope.size(); ++k) {
        result.predicted_demands[static_cast<std::size_t>(scope[k])] = scoped_pred[k];
    }
    reconstruct_timer.stop();

    // --- prediction accuracy on the evaluation day ---------------------------
    exec::checkpoint(config.cancel, "pipeline.accuracy");
    ATM_FAULT_SITE(config.fault, "pipeline.accuracy");
    obs::ScopedTimer accuracy_timer(metrics, "stage.accuracy");
    double ape_sum = 0.0;
    std::size_t ape_count = 0;
    double peak_sum = 0.0;
    std::size_t peak_count = 0;
    for (std::size_t k = 0; k < scope.size(); ++k) {
        const auto flat = static_cast<std::size_t>(scope[k]);
        const auto& actual_row = demands[flat];
        const double cap = series_capacity(box, flat);
        const double peak_level = config.alpha * cap;
        const auto& pred = scoped_pred[k];
        double series_sum = 0.0;
        std::size_t series_n = 0;
        for (std::size_t t = 0; t < wpd; ++t) {
            const double actual = actual_row[train_len + t];
            if (std::abs(actual) < 1e-9) continue;
            const double err = std::abs(actual - pred[t]) / std::abs(actual);
            if (!std::isfinite(err)) continue;  // belt-and-braces post-ladder
            series_sum += err;
            ++series_n;
            if (actual > peak_level) {
                peak_sum += err;
                ++peak_count;
            }
        }
        if (series_n > 0) {
            const double series_ape = series_sum / static_cast<double>(series_n);
            ape_sum += series_ape;
            ++ape_count;
            if (metrics != nullptr) metrics->observe("predict.ape", series_ape);
        }
    }
    result.ape_all = ape_count > 0 ? ape_sum / static_cast<double>(ape_count) : 0.0;
    result.ape_peak = peak_count > 0 ? peak_sum / static_cast<double>(peak_count) : 0.0;
    accuracy_timer.stop();

    // --- resizing for the evaluation day -------------------------------------
    if (policies.empty()) {
        if (metrics != nullptr) result.metrics = metrics->snapshot();
        return result;
    }
    result.policies.resize(policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p) {
        result.policies[p].policy = policies[p];
    }

    exec::checkpoint(config.cancel, "pipeline.resize");
    ATM_FAULT_SITE(config.fault, "pipeline.resize");
    obs::ScopedTimer resize_timer(metrics, "stage.resize");
    const std::size_t m = box.vms.size();
    for (ts::ResourceKind kind : {ts::ResourceKind::kCpu, ts::ResourceKind::kRam}) {
        // Skip resources excluded from the model scope.
        const bool in_scope =
            config.scope == ResourceScope::kInter ||
            (config.scope == ResourceScope::kIntraCpu && kind == ts::ResourceKind::kCpu) ||
            (config.scope == ResourceScope::kIntraRam && kind == ts::ResourceKind::kRam);
        if (!in_scope) continue;

        std::vector<std::vector<double>> policy_demands(m);
        std::vector<std::vector<double>> actual_eval(m);
        std::vector<double> lower_bounds;
        for (std::size_t i = 0; i < m; ++i) {
            const auto flat = static_cast<std::size_t>(
                ts::SeriesId{static_cast<int>(i), kind}.flat_index());
            policy_demands[i] = result.predicted_demands[flat];
            const auto& row = demands[flat];
            actual_eval[i].assign(
                row.begin() + static_cast<std::ptrdiff_t>(train_len),
                row.begin() + static_cast<std::ptrdiff_t>(train_len + wpd));
        }
        if (config.use_lower_bounds) {
            lower_bounds.resize(m);
            for (std::size_t i = 0; i < m; ++i) {
                const auto flat = static_cast<std::size_t>(
                    ts::SeriesId{static_cast<int>(i), kind}.flat_index());
                const auto& row = demands[flat];
                lower_bounds[i] = *std::max_element(
                    row.begin() + static_cast<std::ptrdiff_t>(train_len - wpd),
                    row.begin() + static_cast<std::ptrdiff_t>(train_len));
            }
        }
        run_policies_for_kind(box, kind, policy_demands, actual_eval, lower_bounds,
                              config.alpha, config.epsilon_pct, policies,
                              result.policies, metrics, config.fault,
                              config.cancel, &result.degradations);
    }
    resize_timer.stop();
    if (metrics != nullptr) result.metrics = metrics->snapshot();
    return result;
}

std::vector<PolicyTickets> evaluate_resize_policies_on_actuals(
    const trace::BoxTrace& box, int windows_per_day, int day, double alpha,
    double epsilon_pct, const std::vector<resize::ResizePolicy>& policies,
    bool use_lower_bounds, obs::MetricsRegistry* metrics) {
    if (box.vms.empty()) {
        throw PipelineError(PipelineErrorCode::kTraceInvalid, "input",
                            "evaluate_resize_policies_on_actuals: empty box");
    }
    const auto wpd = static_cast<std::size_t>(windows_per_day);
    const std::size_t first = static_cast<std::size_t>(day) * wpd;
    if (box.length() < first + wpd) {
        throw PipelineError(PipelineErrorCode::kTraceInvalid, "input",
                            "evaluate_resize_policies_on_actuals: day out of range");
    }

    const std::vector<std::vector<double>> demands = box.demand_matrix();
    std::vector<PolicyTickets> results(policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p) results[p].policy = policies[p];

    const std::size_t m = box.vms.size();
    for (ts::ResourceKind kind : {ts::ResourceKind::kCpu, ts::ResourceKind::kRam}) {
        std::vector<std::vector<double>> day_demands(m);
        std::vector<double> lower_bounds;
        for (std::size_t i = 0; i < m; ++i) {
            const auto flat = static_cast<std::size_t>(
                ts::SeriesId{static_cast<int>(i), kind}.flat_index());
            const auto& row = demands[flat];
            day_demands[i].assign(row.begin() + static_cast<std::ptrdiff_t>(first),
                                  row.begin() + static_cast<std::ptrdiff_t>(first + wpd));
        }
        if (use_lower_bounds && day > 0) {
            lower_bounds.resize(m);
            for (std::size_t i = 0; i < m; ++i) {
                const auto flat = static_cast<std::size_t>(
                    ts::SeriesId{static_cast<int>(i), kind}.flat_index());
                const auto& row = demands[flat];
                lower_bounds[i] = *std::max_element(
                    row.begin() + static_cast<std::ptrdiff_t>(first - wpd),
                    row.begin() + static_cast<std::ptrdiff_t>(first));
            }
        }
        run_policies_for_kind(box, kind, day_demands, day_demands, lower_bounds,
                              alpha, epsilon_pct, policies, results, metrics,
                              exec::FaultContext{}, nullptr, nullptr);
    }
    return results;
}

}  // namespace atm::core
