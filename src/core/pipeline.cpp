#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "timeseries/stats.hpp"

namespace atm::core {
namespace {

/// Capacity of the VM+resource owning flat series index `flat`.
double series_capacity(const trace::BoxTrace& box, std::size_t flat) {
    const ts::SeriesId id = ts::SeriesId::from_flat(static_cast<int>(flat));
    return box.vms[static_cast<std::size_t>(id.vm_index)].capacity(id.resource);
}

/// Resize policies evaluated for one resource kind, given the demand
/// series the policy *sees* (predicted or actual) and the actual demands
/// used for ticket accounting.
void run_policies_for_kind(
    const trace::BoxTrace& box, ts::ResourceKind kind,
    const std::vector<std::vector<double>>& policy_demands,
    const std::vector<std::vector<double>>& actual_demands,
    const std::vector<double>& lower_bounds, double alpha, double epsilon_pct,
    const std::vector<resize::ResizePolicy>& policies,
    std::vector<PolicyTickets>& results, obs::MetricsRegistry* metrics) {
    const std::size_t m = box.vms.size();

    resize::ResizeInput input;
    input.demands = policy_demands;
    input.total_capacity = box.capacity(kind);
    input.alpha = alpha;
    input.lower_bounds = lower_bounds;
    input.metrics = metrics;
    input.current_capacities.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        input.current_capacities[i] = box.vms[i].capacity(kind);
    }
    if (epsilon_pct > 0.0) {
        input.epsilons.resize(m);
        for (std::size_t i = 0; i < m; ++i) {
            input.epsilons[i] = epsilon_pct / 100.0 * box.vms[i].capacity(kind);
        }
    }

    // Tickets before resizing: actual demands against current allocations.
    int before = 0;
    for (std::size_t i = 0; i < m; ++i) {
        before += ticketing::count_demand_tickets(actual_demands[i],
                                                  box.vms[i].capacity(kind), alpha);
    }

    for (std::size_t p = 0; p < policies.size(); ++p) {
        obs::ScopedTimer policy_timer(
            metrics, "resize.policy." + resize::to_string(policies[p]));
        const resize::ResizeResult r = resize::apply_policy(policies[p], input);
        policy_timer.stop();
        const int after =
            resize::tickets_for_allocation(actual_demands, r.capacities, alpha);
        if (kind == ts::ResourceKind::kCpu) {
            results[p].cpu_before = before;
            results[p].cpu_after = after;
        } else {
            results[p].ram_before = before;
            results[p].ram_after = after;
        }
    }
}

}  // namespace

const std::vector<resize::ResizePolicy>& default_policies() {
    static const std::vector<resize::ResizePolicy> kDefault{
        resize::ResizePolicy::kAtmGreedy};
    return kDefault;
}

BoxPipelineResult run_pipeline_on_box(
    const trace::BoxTrace& box, int windows_per_day, const PipelineConfig& config,
    const std::vector<resize::ResizePolicy>& policies) {
    if (box.vms.empty()) throw std::invalid_argument("run_pipeline_on_box: empty box");
    const auto wpd = static_cast<std::size_t>(windows_per_day);
    const std::size_t train_len = static_cast<std::size_t>(config.train_days) * wpd;
    if (box.length() < train_len + wpd) {
        throw std::invalid_argument("run_pipeline_on_box: trace too short for config");
    }

    const std::vector<std::vector<double>> demands = box.demand_matrix();
    const std::vector<int> scope = scope_indices(demands.size(), config.scope);

    std::vector<std::vector<double>> scoped_train;
    scoped_train.reserve(scope.size());
    for (int idx : scope) {
        const auto& row = demands[static_cast<std::size_t>(idx)];
        scoped_train.emplace_back(row.begin(),
                                  row.begin() + static_cast<std::ptrdiff_t>(train_len));
    }

    BoxPipelineResult result;
    obs::MetricsRegistry* metrics = config.metrics;

    // --- signature search + spatial model on the training window -----------
    {
        obs::ScopedTimer timer(metrics, "stage.search");
        SignatureSearchOptions search = config.search;
        search.metrics = metrics;
        result.search = find_signatures(scoped_train, search);
    }
    SpatialModel spatial;
    {
        obs::ScopedTimer timer(metrics, "stage.spatial_fit");
        spatial.fit(scoped_train, result.search.signatures);
    }

    // --- temporal forecasts for the signature series -------------------------
    std::vector<std::vector<double>> signature_forecasts;
    signature_forecasts.reserve(spatial.signature_indices().size());
    {
        obs::ScopedTimer timer(metrics, "stage.forecast");
        const std::string model_name = forecast::to_string(config.temporal);
        for (int s : spatial.signature_indices()) {
            auto forecaster = forecast::make_forecaster(
                config.temporal, windows_per_day,
                config.seed + static_cast<unsigned>(s), metrics);
            {
                obs::ScopedTimer fit_timer(metrics, "forecast.fit." + model_name);
                forecaster->fit(scoped_train[static_cast<std::size_t>(s)]);
            }
            obs::ScopedTimer predict_timer(metrics,
                                           "forecast.predict." + model_name);
            signature_forecasts.push_back(forecaster->forecast(windows_per_day));
        }
    }

    // --- spatial reconstruction of every scoped series -----------------------
    obs::ScopedTimer reconstruct_timer(metrics, "stage.reconstruct");
    const std::vector<std::vector<double>> scoped_pred =
        spatial.reconstruct(signature_forecasts);

    // Predicted demands in the full flattened layout (unscoped rows empty).
    result.predicted_demands.assign(demands.size(), {});
    for (std::size_t k = 0; k < scope.size(); ++k) {
        result.predicted_demands[static_cast<std::size_t>(scope[k])] = scoped_pred[k];
    }
    reconstruct_timer.stop();

    // --- prediction accuracy on the evaluation day ---------------------------
    obs::ScopedTimer accuracy_timer(metrics, "stage.accuracy");
    double ape_sum = 0.0;
    std::size_t ape_count = 0;
    double peak_sum = 0.0;
    std::size_t peak_count = 0;
    for (std::size_t k = 0; k < scope.size(); ++k) {
        const auto flat = static_cast<std::size_t>(scope[k]);
        const auto& actual_row = demands[flat];
        const double cap = series_capacity(box, flat);
        const double peak_level = config.alpha * cap;
        const auto& pred = scoped_pred[k];
        double series_sum = 0.0;
        std::size_t series_n = 0;
        for (std::size_t t = 0; t < wpd; ++t) {
            const double actual = actual_row[train_len + t];
            if (std::abs(actual) < 1e-9) continue;
            const double err = std::abs(actual - pred[t]) / std::abs(actual);
            series_sum += err;
            ++series_n;
            if (actual > peak_level) {
                peak_sum += err;
                ++peak_count;
            }
        }
        if (series_n > 0) {
            const double series_ape = series_sum / static_cast<double>(series_n);
            ape_sum += series_ape;
            ++ape_count;
            if (metrics != nullptr) metrics->observe("predict.ape", series_ape);
        }
    }
    result.ape_all = ape_count > 0 ? ape_sum / static_cast<double>(ape_count) : 0.0;
    result.ape_peak = peak_count > 0 ? peak_sum / static_cast<double>(peak_count) : 0.0;
    accuracy_timer.stop();

    // --- resizing for the evaluation day -------------------------------------
    if (policies.empty()) {
        if (metrics != nullptr) result.metrics = metrics->snapshot();
        return result;
    }
    result.policies.resize(policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p) {
        result.policies[p].policy = policies[p];
    }

    obs::ScopedTimer resize_timer(metrics, "stage.resize");
    const std::size_t m = box.vms.size();
    for (ts::ResourceKind kind : {ts::ResourceKind::kCpu, ts::ResourceKind::kRam}) {
        // Skip resources excluded from the model scope.
        const bool in_scope =
            config.scope == ResourceScope::kInter ||
            (config.scope == ResourceScope::kIntraCpu && kind == ts::ResourceKind::kCpu) ||
            (config.scope == ResourceScope::kIntraRam && kind == ts::ResourceKind::kRam);
        if (!in_scope) continue;

        std::vector<std::vector<double>> policy_demands(m);
        std::vector<std::vector<double>> actual_eval(m);
        std::vector<double> lower_bounds;
        for (std::size_t i = 0; i < m; ++i) {
            const auto flat = static_cast<std::size_t>(
                ts::SeriesId{static_cast<int>(i), kind}.flat_index());
            policy_demands[i] = result.predicted_demands[flat];
            const auto& row = demands[flat];
            actual_eval[i].assign(
                row.begin() + static_cast<std::ptrdiff_t>(train_len),
                row.begin() + static_cast<std::ptrdiff_t>(train_len + wpd));
        }
        if (config.use_lower_bounds) {
            lower_bounds.resize(m);
            for (std::size_t i = 0; i < m; ++i) {
                const auto flat = static_cast<std::size_t>(
                    ts::SeriesId{static_cast<int>(i), kind}.flat_index());
                const auto& row = demands[flat];
                lower_bounds[i] = *std::max_element(
                    row.begin() + static_cast<std::ptrdiff_t>(train_len - wpd),
                    row.begin() + static_cast<std::ptrdiff_t>(train_len));
            }
        }
        run_policies_for_kind(box, kind, policy_demands, actual_eval, lower_bounds,
                              config.alpha, config.epsilon_pct, policies,
                              result.policies, metrics);
    }
    resize_timer.stop();
    if (metrics != nullptr) result.metrics = metrics->snapshot();
    return result;
}

std::vector<PolicyTickets> evaluate_resize_policies_on_actuals(
    const trace::BoxTrace& box, int windows_per_day, int day, double alpha,
    double epsilon_pct, const std::vector<resize::ResizePolicy>& policies,
    bool use_lower_bounds, obs::MetricsRegistry* metrics) {
    if (box.vms.empty()) {
        throw std::invalid_argument("evaluate_resize_policies_on_actuals: empty box");
    }
    const auto wpd = static_cast<std::size_t>(windows_per_day);
    const std::size_t first = static_cast<std::size_t>(day) * wpd;
    if (box.length() < first + wpd) {
        throw std::invalid_argument("evaluate_resize_policies_on_actuals: day out of range");
    }

    const std::vector<std::vector<double>> demands = box.demand_matrix();
    std::vector<PolicyTickets> results(policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p) results[p].policy = policies[p];

    const std::size_t m = box.vms.size();
    for (ts::ResourceKind kind : {ts::ResourceKind::kCpu, ts::ResourceKind::kRam}) {
        std::vector<std::vector<double>> day_demands(m);
        std::vector<double> lower_bounds;
        for (std::size_t i = 0; i < m; ++i) {
            const auto flat = static_cast<std::size_t>(
                ts::SeriesId{static_cast<int>(i), kind}.flat_index());
            const auto& row = demands[flat];
            day_demands[i].assign(row.begin() + static_cast<std::ptrdiff_t>(first),
                                  row.begin() + static_cast<std::ptrdiff_t>(first + wpd));
        }
        if (use_lower_bounds && day > 0) {
            lower_bounds.resize(m);
            for (std::size_t i = 0; i < m; ++i) {
                const auto flat = static_cast<std::size_t>(
                    ts::SeriesId{static_cast<int>(i), kind}.flat_index());
                const auto& row = demands[flat];
                lower_bounds[i] = *std::max_element(
                    row.begin() + static_cast<std::ptrdiff_t>(first - wpd),
                    row.begin() + static_cast<std::ptrdiff_t>(first));
            }
        }
        run_policies_for_kind(box, kind, day_demands, day_demands, lower_bounds,
                              alpha, epsilon_pct, policies, results, metrics);
    }
    return results;
}

}  // namespace atm::core
