#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fleet_journal.hpp"
#include "core/pipeline.hpp"
#include "exec/fault.hpp"
#include "exec/journal.hpp"
#include "forecast/nn.hpp"
#include "obs/metrics.hpp"
#include "resize/policies.hpp"
#include "timeseries/features.hpp"
#include "tracegen/trace.hpp"

namespace atm::serve {

/// Configuration of the streaming serve engine (DESIGN.md §7.15). The
/// embedded PipelineConfig supplies the modelling knobs the batch
/// pipeline already defines (search options, temporal model, train_days
/// as the rolling-window length in days, alpha/epsilon/lower-bound
/// resizing knobs, seed, sanitization threshold); serve adds streaming
/// lifecycle knobs on top. Result-affecting knobs are bound into the
/// journal header; execution-only knobs (queue depth, SLO, backoff) are
/// not — their *effects* are journaled per window instead.
struct ServeConfig {
    core::PipelineConfig pipeline;
    /// Resize policy run per window (the paper's greedy by default).
    resize::ResizePolicy policy = resize::ResizePolicy::kAtmGreedy;
    /// Bounded ingest-queue depth enforced by the daemon (updates beyond
    /// it are rejected with retry-after). Validated here so every serve
    /// knob has one range-check site; the engine itself ignores it.
    int queue_depth = 256;
    /// Per-window latency SLO in milliseconds; 0 disables. A window that
    /// overruns sheds work down the degradation ladder instead of
    /// blocking ingest (see ServeEpochRecord::ladder).
    double slo_ms = 0.0;
    /// Mean-absolute-correlation drift that re-triggers signature search
    /// (clustering + VIF + spatial refit + cold model fits).
    double drift_threshold = 0.25;
    /// Warm-retrain cadence in windows (every Nth window per box).
    int retrain_every = 4;
    /// SGD epochs for a warm retrain continuing from previous weights.
    int retrain_epochs = 8;
    /// SGD epochs for a cold fit (after search or a rescale refit).
    int train_epochs = 40;
    /// Transient-failure retries per window (exponential backoff).
    int max_retries = 2;
    double backoff_ms = 1.0;
    double backoff_max_ms = 100.0;
    /// Epoch journal path; empty disables journaling (and warm restart).
    std::string journal_path;
    /// Resume from an existing journal whose header matches; on mismatch
    /// (or no file) the daemon starts fresh.
    bool resume = false;
    /// Chaos plan: "serve.apply" throw rules fire per (seed, box, epoch,
    /// attempt) — see exec::FaultContext::epoch.
    exec::FaultPlan faults;
    /// Optional per-worker scratch (not owned), as in PipelineConfig.
    core::PipelineWorkspace* workspace = nullptr;

    /// Validates every serve knob (and the pipeline knobs serve
    /// constrains); returns "" when valid, else every violation joined
    /// with "; " — same contract as FleetConfig::validate.
    [[nodiscard]] std::string validate() const;
};

/// Digest of every result-affecting serve knob (includes the embedded
/// pipeline digest). Bound into the journal header.
[[nodiscard]] std::uint64_t serve_config_digest(const ServeConfig& config);

/// Header payload of the serve epoch journal: schema, trace fingerprint,
/// config digest, seed, SIMD path — one compact JSON line. A resume whose
/// header mismatches starts fresh.
[[nodiscard]] std::string serve_journal_header(const trace::Trace& trace,
                                               const ServeConfig& config);

/// One per-window fleet update: the newest demand sample of every VM on
/// one box. `epoch` numbers a box's windows from 0; the engine applies
/// them strictly in order.
struct WindowUpdate {
    int box_index = 0;
    std::uint64_t epoch = 0;
    std::vector<double> cpu;  ///< per-VM CPU demand sample (GHz)
    std::vector<double> ram;  ///< per-VM RAM demand sample (GB)
};

enum class ApplyStatus {
    kApplied,   ///< window applied; outcome carries the recommendation
    kWarming,   ///< applied, but history is still too short for models
    kStale,     ///< epoch below the box's next epoch; no state change
    kGap,       ///< epoch above the box's next epoch; rejected
    kBadShape,  ///< sample counts disagree with the box's VM count
};
const char* to_string(ApplyStatus status);

/// Outcome of ServeEngine::apply for one update.
struct ApplyOutcome {
    ApplyStatus status = ApplyStatus::kApplied;
    std::uint64_t epoch = 0;   ///< epoch this outcome refers to
    int ladder = 0;            ///< shed mask taken (ServeEpochRecord)
    int attempts = 1;          ///< apply attempts (retries + 1)
    std::vector<double> cpu;   ///< per-VM recommended CPU allocation
    std::vector<double> ram;   ///< per-VM recommended RAM allocation
    std::string error;         ///< reason for kGap / kBadShape
};

/// The streaming prediction/resizing engine behind `atm serve`: per-box
/// rolling demand windows, drift-gated signature search, warm-started MLP
/// retraining, per-window forecasts + resize recommendations, SLO
/// shedding, retry with backoff, and a crash-safe epoch journal enabling
/// bit-identical warm restart (clients resend from epoch 0 and journaled
/// windows replay with their recorded control decisions forced).
///
/// apply() is single-threaded by contract — the daemon funnels all
/// updates through one worker. Metrics in `metrics()` are deterministic
/// (identical for a killed+resumed run and an uninterrupted one) except
/// for timers, which are wall-clock and excluded from that contract.
class ServeEngine {
  public:
    /// Copies box metadata (names, VM capacities) from `trace`; samples
    /// arrive only via apply(). Throws std::invalid_argument when
    /// config.validate() fails, std::runtime_error on journal I/O errors.
    ServeEngine(const trace::Trace& trace, ServeConfig config);
    ~ServeEngine();

    ApplyOutcome apply(const WindowUpdate& update);

    [[nodiscard]] int num_boxes() const;
    /// Box index by trace name; -1 when unknown.
    [[nodiscard]] int find_box(const std::string& name) const;
    /// Next epoch the box will accept (== applied-window count).
    [[nodiscard]] std::uint64_t next_epoch(int box_index) const;
    /// Journaled windows not yet replayed (resume progress; 0 when live).
    [[nodiscard]] std::uint64_t replay_remaining() const;
    /// True when a matching journal was loaded for warm restart.
    [[nodiscard]] bool resumed() const { return resumed_; }

    /// Deterministic engine metrics accumulated so far (counters, the
    /// serve.ape histogram, serve.drift gauge, model-stage counters).
    [[nodiscard]] const obs::MetricsSnapshot& metrics() const {
        return metrics_;
    }

    /// Flushes and closes the journal (destructor also does). Idempotent.
    void close();

  private:
    struct WarmModel;
    struct BoxMeta;
    struct BoxState;
    struct Decisions;

    ApplyOutcome apply_window(int box_index, const WindowUpdate& update,
                              const core::ServeEpochRecord* forced,
                              core::ServeEpochRecord& record);
    void ingest_samples(int box_index, const WindowUpdate& update);
    void model_work(int box_index, std::uint64_t epoch, Decisions& d,
                    const exec::CancellationToken* slo);
    [[nodiscard]] double mean_abs_correlation(const BoxState& box) const;
    bool run_search(int box_index, const exec::CancellationToken* slo);
    bool run_retrain(int box_index, std::uint64_t epoch,
                     const exec::CancellationToken* slo);
    [[nodiscard]] double predict_one(const WarmModel& model,
                                     const std::vector<double>& history) const;
    void forecast_next(int box_index);
    void resize_window(int box_index, bool max_min_only,
                       const exec::CancellationToken* slo);
    void cold_fit(WarmModel& model, const std::vector<double>& history,
                  std::uint64_t sig_seed, obs::MetricsRegistry* scratch,
                  const exec::CancellationToken* slo);
    void record_retry(int attempts, int ladder);
    void counter(const std::string& name, std::uint64_t delta = 1);

    ServeConfig config_;
    int windows_per_day_ = 96;
    std::size_t train_len_ = 0;   ///< rolling-window cap in samples
    std::size_t warmup_len_ = 0;  ///< samples required before model work
    std::vector<BoxMeta> meta_;
    std::vector<std::unique_ptr<BoxState>> boxes_;
    obs::MetricsSnapshot metrics_;
    std::optional<exec::JournalWriter> journal_;
    bool resumed_ = false;
    /// Scratch reused across windows (lag datasets, staging).
    la::FlatMatrix features_;
    std::vector<double> targets_;
};

}  // namespace atm::serve
