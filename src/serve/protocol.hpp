#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/socket.hpp"
#include "serve/serve.hpp"

namespace atm::serve {

/// Wire protocol version, exchanged in the hello handshake. A daemon
/// rejects clients announcing a different version with an error response
/// (never by guessing at the frame layout).
inline constexpr const char* kServeProtocol = "atm.serve.v1";

/// One parsed client request (one JSON line on the socket).
struct Request {
    enum class Type { kHello, kWindow, kStat, kShutdown };
    Type type = Type::kHello;
    std::string proto;  ///< hello: announced protocol version
    std::string box;    ///< window: box addressed by trace name
    std::uint64_t epoch = 0;
    std::vector<double> cpu;
    std::vector<double> ram;
};

/// Parses one request line; throws std::runtime_error on malformed JSON,
/// a missing/unknown "type", or missing fields for that type.
[[nodiscard]] Request parse_request(const std::string& line);

[[nodiscard]] std::string encode_hello();
[[nodiscard]] std::string encode_window(const std::string& box,
                                        std::uint64_t epoch,
                                        const std::vector<double>& cpu,
                                        const std::vector<double>& ram);
[[nodiscard]] std::string encode_stat();
[[nodiscard]] std::string encode_shutdown();

/// One parsed server response. `type` is one of "hello", "ack", "busy",
/// "error", "ok", "stat"; only the fields for that type are meaningful.
struct Response {
    std::string type;
    std::string proto;     ///< hello
    int boxes = 0;         ///< hello
    bool resumed = false;  ///< hello
    std::string status;    ///< ack: ApplyStatus to_string value
    std::uint64_t epoch = 0;
    int ladder = 0;
    std::vector<double> cpu;  ///< ack: recommended allocations (may be empty)
    std::vector<double> ram;
    double retry_after_ms = 0.0;  ///< busy: backpressure hint
    std::string message;          ///< error
    std::string metrics_json;     ///< stat: serialized metrics report
};

[[nodiscard]] Response parse_response(const std::string& line);

[[nodiscard]] std::string encode_hello_response(int boxes, bool resumed);
[[nodiscard]] std::string encode_ack(const ApplyOutcome& outcome);
[[nodiscard]] std::string encode_busy(double retry_after_ms);
[[nodiscard]] std::string encode_error(const std::string& message);
[[nodiscard]] std::string encode_ok();
[[nodiscard]] std::string encode_stat_response(const std::string& metrics_json);

/// Blocking lock-step client over a Unix-domain socket: each call sends
/// one request line and waits for the matching response line. Used by
/// `atm play`, tests, and as the reference client in README.
class ServeClient {
  public:
    /// Connects (retrying while the daemon's socket does not exist yet)
    /// and performs the hello handshake. Throws std::runtime_error on
    /// timeout, protocol mismatch, or an error response.
    static ServeClient connect(const std::string& socket_path,
                               int timeout_ms = 5000);

    /// Sends one window update; returns the daemon's response ("ack" or
    /// "busy" or "error"). Throws std::runtime_error when the connection
    /// dies or times out.
    Response window(const std::string& box, std::uint64_t epoch,
                    const std::vector<double>& cpu,
                    const std::vector<double>& ram, int timeout_ms = 30000);

    /// Like window(), but sleeps out "busy" responses (using the daemon's
    /// retry_after_ms hint) until an ack arrives or `deadline_ms` of total
    /// budget is spent — the well-behaved reaction to backpressure.
    Response window_retry(const std::string& box, std::uint64_t epoch,
                          const std::vector<double>& cpu,
                          const std::vector<double>& ram,
                          int deadline_ms = 60000);

    Response stat(int timeout_ms = 30000);
    Response shutdown(int timeout_ms = 30000);

    [[nodiscard]] const Response& hello() const { return hello_; }

  private:
    explicit ServeClient(exec::UnixSocket socket) : socket_(std::move(socket)) {}
    Response transact(const std::string& line, int timeout_ms);

    exec::UnixSocket socket_;
    Response hello_;
};

}  // namespace atm::serve
