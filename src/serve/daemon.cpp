#include "serve/daemon.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "core/metrics_report.hpp"
#include "exec/fault.hpp"
#include "exec/io.hpp"
#include "obs/json.hpp"

namespace atm::serve {

namespace {
/// Poll period of the accept loop and reader loops: how quickly a drain
/// request is observed when a connection is idle.
constexpr int kPollMs = 200;
}  // namespace

// ---------------------------------------------------------------------------
// IngestQueue

bool IngestQueue::try_push(IngestJob job) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || jobs_.size() >= capacity_) return false;
        jobs_.push_back(std::move(job));
        peak_ = std::max(peak_, jobs_.size());
    }
    ready_.notify_one();
    return true;
}

std::optional<IngestJob> IngestQueue::pop(int timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return !jobs_.empty() || closed_; });
    if (jobs_.empty()) return std::nullopt;
    IngestJob job = std::move(jobs_.front());
    jobs_.pop_front();
    return job;
}

void IngestQueue::close() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    ready_.notify_all();
}

std::size_t IngestQueue::depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.size();
}

std::size_t IngestQueue::peak() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return peak_;
}

// ---------------------------------------------------------------------------
// ServeDaemon

ServeDaemon::ServeDaemon(const trace::Trace& trace, ServeConfig config,
                         DaemonOptions options)
    : config_(std::move(config)),
      options_(std::move(options)),
      engine_(std::make_unique<ServeEngine>(trace, config_)),
      queue_(static_cast<std::size_t>(config_.queue_depth)) {
    if (options_.socket_path.empty()) {
        throw std::invalid_argument("serve daemon: socket path is required");
    }
    deliveries_.assign(static_cast<std::size_t>(engine_->num_boxes()),
                       {0, 0});
    listener_ = exec::UnixListener::bind(options_.socket_path);
}

ServeDaemon::~ServeDaemon() = default;

const std::string& ServeDaemon::socket_path() const {
    return listener_.path();
}

int ServeDaemon::run() {
    std::thread worker([this] { worker_loop(); });
    std::vector<std::thread> readers;
    std::atomic<bool> draining{false};

    while (!draining.load(std::memory_order_acquire)) {
        if ((options_.stop != nullptr && options_.stop->cancelled()) ||
            shutdown_requested_.load(std::memory_order_acquire)) {
            draining.store(true, std::memory_order_release);
            break;
        }
        exec::UnixSocket socket = listener_.accept(kPollMs);
        if (!socket.valid()) continue;
        transport_.add("transport.connections");
        auto conn = std::make_shared<Connection>(std::move(socket));
        readers.emplace_back(
            [this, conn = std::move(conn)] { reader_loop(conn); });
    }

    // Drain: no new connections; readers exit on their next poll (they
    // observe the same stop conditions), then the worker finishes every
    // queued window before the journal flushes its last record.
    listener_.close();
    for (std::thread& reader : readers) reader.join();
    queue_.close();
    worker.join();

    int exit_code = 0;
    if (!options_.metrics_path.empty()) {
        try {
            write_report();
        } catch (const std::exception&) {
            exit_code = 2;
        }
    }
    {
        const std::lock_guard<std::mutex> lock(engine_mutex_);
        engine_->close();
    }
    return exit_code;
}

void ServeDaemon::reader_loop(std::shared_ptr<Connection> conn) {
    while (true) {
        if ((options_.stop != nullptr && options_.stop->cancelled()) ||
            shutdown_requested_.load(std::memory_order_acquire)) {
            return;
        }
        bool eof = false;
        std::optional<std::string> line;
        try {
            line = conn->socket.read_line(kPollMs, &eof);
        } catch (const std::exception&) {
            return;  // oversize line or socket error: drop the connection
        }
        if (!line.has_value()) {
            if (eof) return;
            continue;  // idle poll round
        }
        Request request;
        try {
            request = parse_request(*line);
        } catch (const std::exception& error) {
            transport_.add("transport.bad_requests");
            if (!conn->send(encode_error(error.what()))) return;
            continue;
        }
        switch (request.type) {
            case Request::Type::kHello: {
                if (request.proto != kServeProtocol) {
                    transport_.add("transport.bad_requests");
                    conn->send(encode_error(
                        "unsupported protocol '" + request.proto +
                        "', daemon speaks " + kServeProtocol));
                    return;
                }
                if (!conn->send(encode_hello_response(engine_->num_boxes(),
                                                      engine_->resumed()))) {
                    return;
                }
                break;
            }
            case Request::Type::kWindow:
                handle_window(conn, request);
                break;
            case Request::Type::kStat: {
                std::string report;
                try {
                    report = build_report();
                } catch (const std::exception& error) {
                    conn->send(encode_error(error.what()));
                    break;
                }
                if (!conn->send(encode_stat_response(report))) return;
                break;
            }
            case Request::Type::kShutdown: {
                conn->send(encode_ok());
                shutdown_requested_.store(true, std::memory_order_release);
                return;
            }
        }
    }
}

void ServeDaemon::handle_window(const std::shared_ptr<Connection>& conn,
                                const Request& request) {
    const int box_index = engine_->find_box(request.box);
    if (box_index < 0) {
        transport_.add("transport.bad_requests");
        conn->send(encode_error("unknown box '" + request.box + "'"));
        return;
    }

    // "serve.ingest" chaos site: a firing rule models a transient ingest
    // failure (e.g. a dropped datagram) — reported as "busy" so a
    // well-behaved client re-sends, which re-rolls the draw via the
    // delivery count in FaultContext::attempt.
    if (!config_.faults.empty()) {
        std::uint64_t delivery = 0;
        {
            const std::lock_guard<std::mutex> lock(delivery_mutex_);
            auto& [epoch, count] = deliveries_[static_cast<std::size_t>(box_index)];
            if (epoch != request.epoch) {
                epoch = request.epoch;
                count = 0;
            }
            delivery = count++;
        }
        exec::FaultContext fault;
        fault.plan = &config_.faults;
        fault.entity = static_cast<std::uint64_t>(box_index);
        fault.attempt = delivery;
        fault.epoch = request.epoch + 1;
        try {
            ATM_FAULT_SITE(fault, "serve.ingest");
        } catch (const exec::InjectedFault&) {
            transport_.add("serve.rejected.fault");
            conn->send(encode_busy(options_.retry_after_ms));
            return;
        }
    }

    IngestJob job;
    job.update.box_index = box_index;
    job.update.epoch = request.epoch;
    job.update.cpu = request.cpu;
    job.update.ram = request.ram;
    job.conn = conn;  // shared: the job may outlive the reader loop
    if (!queue_.try_push(std::move(job))) {
        transport_.add("serve.rejected.backpressure");
        conn->send(encode_busy(options_.retry_after_ms));
    }
}

void ServeDaemon::worker_loop() {
    std::uint64_t applied_since_report = 0;
    while (true) {
        std::optional<IngestJob> job = queue_.pop(kPollMs);
        if (!job.has_value()) {
            // Either an idle poll round or a closed-and-drained queue.
            if (queue_.depth() == 0 &&
                ((options_.stop != nullptr && options_.stop->cancelled()) ||
                 shutdown_requested_.load(std::memory_order_acquire))) {
                return;
            }
            continue;
        }
        if (options_.apply_delay_ms > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
                options_.apply_delay_ms));
        }
        ApplyOutcome outcome;
        {
            const std::lock_guard<std::mutex> lock(engine_mutex_);
            outcome = engine_->apply(job->update);
        }
        if (job->conn != nullptr) job->conn->send(encode_ack(outcome));
        if (outcome.status == ApplyStatus::kApplied ||
            outcome.status == ApplyStatus::kWarming) {
            ++applied_since_report;
            if (!options_.metrics_path.empty() &&
                options_.metrics_every_windows > 0 &&
                applied_since_report >=
                    static_cast<std::uint64_t>(options_.metrics_every_windows)) {
                applied_since_report = 0;
                try {
                    write_report();
                } catch (const std::exception&) {
                    transport_.add("transport.report_failures");
                }
            }
        }
    }
}

std::string ServeDaemon::build_report() {
    obs::MetricsSnapshot engine_metrics;
    {
        const std::lock_guard<std::mutex> lock(engine_mutex_);
        engine_metrics = engine_->metrics();
    }
    obs::MetricsSnapshot transport = transport_.snapshot();
    transport.gauges["transport.queue.capacity"] =
        static_cast<double>(queue_.capacity());
    transport.gauges["transport.queue.peak"] =
        static_cast<double>(queue_.peak());

    obs::json::Value report = obs::json::Value::make_object();
    report.set("schema", obs::json::Value::of("atm.serve-metrics.v1"));
    report.set("command", obs::json::Value::of("serve"));
    // "engine" is deterministic (the resume-equivalence contract);
    // "transport" is wall-clock/schedule-dependent by nature and is
    // stripped by compare_metrics_reports.py, like timers.
    report.set("engine", obs::json::to_json(engine_metrics));
    report.set("transport", obs::json::to_json(transport));
    return obs::json::serialize(report, 2) + "\n";
}

void ServeDaemon::write_report() {
    exec::write_file_atomic(options_.metrics_path, build_report());
}

}  // namespace atm::serve
