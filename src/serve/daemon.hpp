#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/socket.hpp"
#include "serve/protocol.hpp"
#include "serve/serve.hpp"

namespace atm::serve {

/// One accepted client connection: the socket plus a write lock so the
/// worker thread (acks) and the reader thread (busy/error responses)
/// never interleave bytes of two response lines.
struct Connection {
    explicit Connection(exec::UnixSocket s) : socket(std::move(s)) {}

    bool send(const std::string& line) {
        const std::lock_guard<std::mutex> lock(write_mutex);
        return socket.write_line(line);
    }

    exec::UnixSocket socket;
    std::mutex write_mutex;
};

/// One queued window update awaiting the worker, with the connection the
/// ack must go back on (null in unit tests).
struct IngestJob {
    WindowUpdate update;
    std::shared_ptr<Connection> conn;
};

/// Bounded multi-producer single-consumer ingest queue — the daemon's
/// backpressure boundary. try_push never blocks: a full queue returns
/// false and the caller answers "busy" with a retry-after hint instead
/// of letting a fast client grow the heap without bound.
class IngestQueue {
  public:
    explicit IngestQueue(std::size_t capacity) : capacity_(capacity) {}

    /// False when the queue is at capacity (backpressure) or closed.
    bool try_push(IngestJob job);

    /// Waits up to `timeout_ms` for a job; nullopt on timeout, or when
    /// the queue is closed and fully drained.
    std::optional<IngestJob> pop(int timeout_ms);

    /// Stops accepting pushes; pop keeps draining what is queued.
    void close();

    [[nodiscard]] std::size_t depth() const;
    /// High-water mark of depth() over the queue's lifetime.
    [[nodiscard]] std::size_t peak() const;
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<IngestJob> jobs_;
    std::size_t peak_ = 0;
    bool closed_ = false;
};

/// Daemon lifecycle knobs (transport-level; model knobs live in
/// ServeConfig, validated there).
struct DaemonOptions {
    std::string socket_path;
    /// Metrics report path (written atomically); empty disables.
    std::string metrics_path;
    /// Rewrite the metrics report every N applied windows (crash
    /// observability); <= 0 writes only the final report on drain.
    int metrics_every_windows = 64;
    /// Backpressure hint returned with "busy" responses.
    double retry_after_ms = 25.0;
    /// Test seam: the worker sleeps this long before each apply, so a
    /// backpressure test can fill the queue deterministically.
    double apply_delay_ms = 0.0;
    /// Drain trigger (SIGTERM/SIGINT in the CLI): stop accepting, finish
    /// queued windows, flush, exit. Not owned; null = shutdown request
    /// over the socket is the only way out.
    const exec::CancellationToken* stop = nullptr;
};

/// The atmd daemon: a Unix-socket listener feeding one ServeEngine
/// through a bounded IngestQueue. One worker thread owns the engine (so
/// apply stays single-threaded by construction); one reader thread per
/// connection parses requests and enqueues; the accept loop runs on the
/// caller's thread inside run().
class ServeDaemon {
  public:
    /// Validates config (via ServeEngine) and binds the socket. Throws
    /// std::invalid_argument / std::runtime_error on failure.
    ServeDaemon(const trace::Trace& trace, ServeConfig config,
                DaemonOptions options);
    ~ServeDaemon();

    /// Serves until the stop token trips or a client sends "shutdown",
    /// then drains queued windows, writes the final metrics report, and
    /// closes the journal. Returns 0 on a clean drain, 2 when the final
    /// metrics report could not be written.
    int run();

    /// The bound socket path (run() must not have returned yet).
    [[nodiscard]] const std::string& socket_path() const;

  private:
    void reader_loop(std::shared_ptr<Connection> conn);
    void worker_loop();
    void handle_window(const std::shared_ptr<Connection>& conn,
                       const Request& request);
    /// Serialized metrics report: {"schema", "command", "engine",
    /// "transport"} — "transport" carries wall-clock-dependent transport
    /// counters and is stripped by the comparison script.
    [[nodiscard]] std::string build_report();
    void write_report();

    ServeConfig config_;
    DaemonOptions options_;
    std::unique_ptr<ServeEngine> engine_;
    std::mutex engine_mutex_;  ///< worker applies; stat readers snapshot
    exec::UnixListener listener_;
    IngestQueue queue_;
    obs::MetricsRegistry transport_;
    /// Per-box (epoch, delivery count) so client re-sends of the same
    /// window re-roll the "serve.ingest" fault draw (FaultContext::attempt).
    std::mutex delivery_mutex_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> deliveries_;
    std::atomic<bool> shutdown_requested_{false};
};

}  // namespace atm::serve
